//! Set-associative cache model with KNC's two-ported L1 and the
//! deferred-fill prefetch semantics of Fig. 1c.
//!
//! Knights Corner's L1 has one read port and one write port. A prefetch
//! whose line has arrived from L2 must *fill* L1: the victim line is
//! evicted and the new line written, an operation that needs **both**
//! ports for a cycle. When another instruction is using a port — e.g. a
//! vector FMA with a memory operand occupies the read port — the fill is
//! deferred and re-checked every cycle; after a threshold number of
//! deferrals the core pipeline **stalls** for a few cycles to force the
//! fill through. Basic Kernel 2 exists precisely to open port-free
//! "holes" so fills land without stalls (Section III-A2).

/// Cache geometry and behaviour parameters.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes (L1: 32 KB, L2: 512 KB per core).
    pub capacity_bytes: usize,
    /// Associativity (8-way on KNC for both levels).
    pub ways: usize,
    /// Line size in bytes (64 on KNC).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// KNC per-core L1 data cache: 32 KB, 8-way, 64 B lines.
    pub fn knc_l1() -> Self {
        Self {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// KNC per-core L2 cache: 512 KB, 8-way, 64 B lines.
    pub fn knc_l2() -> Self {
        Self {
            capacity_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }
}

/// An LRU set-associative cache over abstract line addresses.
///
/// Addresses are *element* indices (f64 granularity); a line holds 8.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    /// `tags[set]` ordered most-recently-used first.
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            cfg,
            sets,
            tags: vec![Vec::with_capacity(cfg.ways); sets],
            hits: 0,
            misses: 0,
        }
    }

    fn line_of(&self, elem_idx: usize) -> u64 {
        (elem_idx * 8 / self.cfg.line_bytes) as u64
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// True when the line containing `elem_idx` is resident (does not
    /// update LRU or counters).
    pub fn contains(&self, elem_idx: usize) -> bool {
        let line = self.line_of(elem_idx);
        self.tags[self.set_of(line)].contains(&line)
    }

    /// Performs an access: returns `true` on hit. Misses insert the line
    /// (evicting LRU) — i.e. access-with-allocate.
    pub fn access(&mut self, elem_idx: usize) -> bool {
        let line = self.line_of(elem_idx);
        let set = self.set_of(line);
        let ways = self.cfg.ways;
        let entry = &mut self.tags[set];
        if let Some(pos) = entry.iter().position(|&t| t == line) {
            entry.remove(pos);
            entry.insert(0, line);
            self.hits += 1;
            true
        } else {
            entry.insert(0, line);
            entry.truncate(ways);
            self.misses += 1;
            false
        }
    }

    /// Inserts the line containing `elem_idx` without counting an access
    /// (prefetch fill path).
    pub fn fill(&mut self, elem_idx: usize) {
        let line = self.line_of(elem_idx);
        let set = self.set_of(line);
        let ways = self.cfg.ways;
        let entry = &mut self.tags[set];
        if let Some(pos) = entry.iter().position(|&t| t == line) {
            entry.remove(pos);
        }
        entry.insert(0, line);
        entry.truncate(ways);
    }

    /// [`Self::access`] with an undo record appended to `log`, for the
    /// trace-replay rollback path. Counters are NOT captured in the log —
    /// the replayer snapshots and restores them wholesale.
    pub fn access_logged(&mut self, elem_idx: usize, log: &mut Vec<CacheUndo>) -> bool {
        let line = self.line_of(elem_idx);
        let set = self.set_of(line);
        let ways = self.cfg.ways;
        let entry = &mut self.tags[set];
        if let Some(pos) = entry.iter().position(|&t| t == line) {
            entry.remove(pos);
            entry.insert(0, line);
            self.hits += 1;
            log.push(CacheUndo::Touched { set, from_pos: pos });
            true
        } else {
            entry.insert(0, line);
            let evicted = if entry.len() > ways {
                entry.pop()
            } else {
                None
            };
            self.misses += 1;
            log.push(CacheUndo::Inserted { set, evicted });
            false
        }
    }

    /// [`Self::fill`] with an undo record appended to `log`.
    pub fn fill_logged(&mut self, elem_idx: usize, log: &mut Vec<CacheUndo>) {
        let line = self.line_of(elem_idx);
        let set = self.set_of(line);
        let ways = self.cfg.ways;
        let entry = &mut self.tags[set];
        if let Some(pos) = entry.iter().position(|&t| t == line) {
            entry.remove(pos);
            entry.insert(0, line);
            log.push(CacheUndo::Touched { set, from_pos: pos });
        } else {
            entry.insert(0, line);
            let evicted = if entry.len() > ways {
                entry.pop()
            } else {
                None
            };
            log.push(CacheUndo::Inserted { set, evicted });
        }
    }

    /// Reverses one logged mutation. Records must be undone in reverse
    /// order of logging; doing so restores the exact pre-mutation LRU
    /// state (counters are restored separately via [`Self::set_stats`]).
    pub fn undo(&mut self, op: CacheUndo) {
        match op {
            CacheUndo::Touched { set, from_pos } => {
                let line = self.tags[set].remove(0);
                self.tags[set].insert(from_pos, line);
            }
            CacheUndo::Inserted { set, evicted } => {
                self.tags[set].remove(0);
                if let Some(t) = evicted {
                    self.tags[set].push(t);
                }
            }
        }
    }

    /// Overwrites the (hits, misses) counters — rollback companion of
    /// [`Self::undo`].
    pub fn set_stats(&mut self, hits: u64, misses: u64) {
        self.hits = hits;
        self.misses = misses;
    }

    /// Invalidates every line (counters are kept) — the cache half of a
    /// TLB-shootdown-style global invalidation.
    pub fn flush(&mut self) {
        for set in &mut self.tags {
            set.clear();
        }
    }

    /// FNV-1a digest of the full tag state (sets in order, MRU-first
    /// within each set) plus the counters — bit-identity evidence for the
    /// differential harness.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let fold = |w: u64, h: &mut u64| {
            for b in w.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for (si, set) in self.tags.iter().enumerate() {
            fold(si as u64, &mut h);
            for &t in set {
                fold(t.wrapping_add(1), &mut h);
            }
        }
        fold(self.hits, &mut h);
        fold(self.misses, &mut h);
        h
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate over all accesses (1.0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A reversible record of one cache mutation, produced by
/// [`Cache::access_logged`] / [`Cache::fill_logged`] and consumed (in
/// reverse order) by [`Cache::undo`].
#[derive(Clone, Copy, Debug)]
pub enum CacheUndo {
    /// An already-resident line moved from `from_pos` to MRU position 0.
    Touched {
        /// Set index the mutation happened in.
        set: usize,
        /// Position the line occupied before being promoted.
        from_pos: usize,
    },
    /// A new line was inserted at MRU, possibly evicting the LRU line.
    Inserted {
        /// Set index the mutation happened in.
        set: usize,
        /// The evicted tag, if the set was full.
        evicted: Option<u64>,
    },
}

/// Per-cycle occupancy of the L1's two ports.
#[derive(Clone, Copy, Debug, Default)]
pub struct L1Ports {
    /// Read port claimed this cycle.
    pub read_busy: bool,
    /// Write port claimed this cycle.
    pub write_busy: bool,
}

impl L1Ports {
    /// Resets both ports at the start of a cycle.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// True when a prefetch fill (needing both ports, Fig. 1c) can
    /// complete this cycle.
    pub fn fill_possible(&self) -> bool {
        !self.read_busy && !self.write_busy
    }
}

/// A pending L1 prefetch: issued, waiting for its line and then for a
/// port-free cycle to fill.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PendingFill {
    /// Element index whose line is being prefetched.
    pub elem_idx: usize,
    /// Cycle at which the line arrives from L2/memory and the fill first
    /// becomes attemptable.
    pub ready_at: u64,
    /// Number of cycles the fill has been deferred by busy ports.
    pub deferred: u32,
    /// Per-iteration stride of the prefetch address that created this
    /// fill. Lets the trace engine compare pending lists across loop
    /// iterations in iteration-relative form (`elem_idx - iter * scale`).
    pub scale_iter: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let l1 = CacheConfig::knc_l1();
        assert_eq!(l1.sets(), 64);
        let l2 = CacheConfig::knc_l2();
        assert_eq!(l2.sets(), 1024);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(CacheConfig::knc_l1());
        assert!(!c.contains(0));
        c.fill(0);
        assert!(c.contains(0));
        assert!(c.contains(7), "same 8-element line");
        assert!(!c.contains(8), "next line");
    }

    #[test]
    fn access_allocates_and_counts() {
        let mut c = Cache::new(CacheConfig::knc_l1());
        assert!(!c.access(100));
        assert!(c.access(100));
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_within_set() {
        let cfg = CacheConfig {
            capacity_bytes: 2 * 64, // 2 lines total
            ways: 2,
            line_bytes: 64,
        };
        assert_eq!(cfg.sets(), 1);
        let mut c = Cache::new(cfg);
        c.access(0); // line 0
        c.access(8); // line 1
        c.access(0); // touch line 0 → line 1 is LRU
        c.access(16); // line 2 evicts line 1
        assert!(c.contains(0));
        assert!(!c.contains(8));
        assert!(c.contains(16));
    }

    #[test]
    fn conflict_misses_with_large_stride() {
        // Lines mapping to the same set (stride = sets * line) thrash an
        // 8-way set once more than 8 distinct lines are touched — the TLB /
        // associativity pathology packing exists to avoid (Section III-A3).
        let mut c = Cache::new(CacheConfig::knc_l1());
        let stride_elems = 64 * 8; // 64 sets * 8 elems per line
        for rep in 0..2 {
            for i in 0..9 {
                c.access(i * stride_elems);
            }
            let _ = rep;
        }
        let (hits, misses) = c.stats();
        assert!(
            misses > 9,
            "second sweep must still miss (thrash): h={hits} m={misses}"
        );
    }

    #[test]
    fn ports_gate_fills() {
        let mut p = L1Ports::default();
        assert!(p.fill_possible());
        p.read_busy = true;
        assert!(!p.fill_possible());
        p.reset();
        p.write_busy = true;
        assert!(!p.fill_possible());
    }
}
