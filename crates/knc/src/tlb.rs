//! TLB model: why packing exists (Section III-A3).
//!
//! "Multiplying matrices stored in row or column-major format may result
//! in performance degradation, due to TLB pressure and cache associativity
//! conflicts, especially when these matrices have large leading
//! dimensions." This module models KNC's data TLB (64 entries, 4 KB
//! pages) and demonstrates the claim: walking a *column* of a matrix with
//! a large leading dimension touches one page per element and thrashes
//! the TLB, while the same work over a packed tile (small leading
//! dimension) stays within a handful of pages.

/// A fully-associative LRU TLB over fixed-size pages.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: usize,
    page_bytes: usize,
    /// Resident page numbers, most-recently-used first.
    pages: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// A TLB with `entries` slots over `page_bytes` pages.
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(entries > 0 && page_bytes.is_power_of_two());
        Self {
            entries,
            page_bytes,
            pages: Vec::with_capacity(entries),
            hits: 0,
            misses: 0,
        }
    }

    /// KNC's first-level data TLB: 64 entries × 4 KB pages.
    pub fn knc_dtlb() -> Self {
        Self::new(64, 4096)
    }

    /// Translates a byte address, updating LRU and counters. Returns
    /// `true` on hit.
    pub fn access(&mut self, byte_addr: usize) -> bool {
        let page = (byte_addr / self.page_bytes) as u64;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            self.pages.remove(pos);
            self.pages.insert(0, page);
            self.hits += 1;
            true
        } else {
            self.pages.insert(0, page);
            self.pages.truncate(self.entries);
            self.misses += 1;
            false
        }
    }

    /// [`Self::access`] with an undo record appended to `log` (trace
    /// replay). Counters are snapshot/restored by the caller.
    pub fn access_logged(&mut self, byte_addr: usize, log: &mut Vec<TlbUndo>) -> bool {
        let page = (byte_addr / self.page_bytes) as u64;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            self.pages.remove(pos);
            self.pages.insert(0, page);
            self.hits += 1;
            log.push(TlbUndo::Touched { from_pos: pos });
            true
        } else {
            self.pages.insert(0, page);
            let evicted = if self.pages.len() > self.entries {
                self.pages.pop()
            } else {
                None
            };
            self.misses += 1;
            log.push(TlbUndo::Inserted { evicted });
            false
        }
    }

    /// Reverses one logged mutation (undo in reverse order of logging).
    pub fn undo(&mut self, op: TlbUndo) {
        match op {
            TlbUndo::Touched { from_pos } => {
                let page = self.pages.remove(0);
                self.pages.insert(from_pos, page);
            }
            TlbUndo::Inserted { evicted } => {
                self.pages.remove(0);
                if let Some(p) = evicted {
                    self.pages.push(p);
                }
            }
        }
    }

    /// Overwrites the counters — rollback companion of [`Self::undo`].
    pub fn set_stats(&mut self, hits: u64, misses: u64) {
        self.hits = hits;
        self.misses = misses;
    }

    /// Drops every translation (counters kept) — a TLB shootdown.
    pub fn flush(&mut self) {
        self.pages.clear();
    }

    /// FNV-1a digest of resident pages (LRU order) plus counters.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let fold = |w: u64, h: &mut u64| {
            for b in w.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for &p in &self.pages {
            fold(p.wrapping_add(1), &mut h);
        }
        fold(self.hits, &mut h);
        fold(self.misses, &mut h);
        h
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss rate over all accesses so far (0.0 with no accesses).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A reversible record of one TLB mutation (see [`Tlb::access_logged`]).
#[derive(Clone, Copy, Debug)]
pub enum TlbUndo {
    /// A resident page moved from `from_pos` to MRU position 0.
    Touched {
        /// Position the page occupied before promotion.
        from_pos: usize,
    },
    /// A new page was inserted at MRU, possibly evicting the LRU page.
    Inserted {
        /// The evicted page, if the TLB was full.
        evicted: Option<u64>,
    },
}

/// Walks the access pattern of reading `cols` consecutive elements from
/// each of `rows` rows of an f64 matrix with leading dimension `ld`
/// (elements), in column-major-ish kernel order: for each column chunk,
/// touch every row. Returns the TLB miss rate — the experiment behind
/// Section III-A3.
pub fn column_walk_miss_rate(rows: usize, cols: usize, ld: usize, mut tlb: Tlb) -> f64 {
    for j in 0..cols {
        for i in 0..rows {
            tlb.access((i * ld + j) * 8);
        }
    }
    tlb.miss_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_basics() {
        let mut t = Tlb::new(2, 4096);
        assert!(!t.access(0));
        assert!(t.access(8)); // same page
        assert!(!t.access(4096));
        assert!(t.access(0)); // still resident
        assert!(!t.access(2 * 4096)); // evicts page 1 (LRU)
        assert!(!t.access(4096));
        assert_eq!(t.stats().0, 2);
    }

    #[test]
    fn packing_kills_tlb_pressure() {
        // The Section III-A3 experiment: a 31-row column walk over a
        // matrix with leading dimension 28,000 touches 31 distinct pages
        // per column (ld*8 = 224 KB row stride ≫ 4 KB page) and misses
        // almost always with only 64 entries... per fresh column; across
        // columns the same 31 pages are re-walked, so the rate collapses
        // only if they all FIT — which they do (31 < 64). The real
        // pressure appears when the kernel streams several tiles at once:
        // model that with 120 rows (the paper's mc), which exceeds the
        // TLB.
        let thrash = column_walk_miss_rate(120, 64, 28_000, Tlb::knc_dtlb());
        assert!(
            thrash > 0.9,
            "large-ld walk must thrash the TLB: miss rate {thrash:.3}"
        );
        // The packed tile: leading dimension 30 → a whole 30×k tile spans
        // k*30*8 bytes contiguously; 64 columns is 15 KB = 4 pages.
        let packed = column_walk_miss_rate(120, 64, 30, Tlb::knc_dtlb());
        assert!(
            packed < 0.01,
            "packed-tile walk must be TLB-friendly: miss rate {packed:.3}"
        );
    }

    #[test]
    fn small_matrices_fit_regardless() {
        // With a small leading dimension even many rows fit: 64 entries ×
        // 4 KB = 256 KB reach.
        let rate = column_walk_miss_rate(64, 64, 256, Tlb::knc_dtlb());
        assert!(rate < 0.05, "{rate}");
    }

    #[test]
    fn miss_rate_zero_without_accesses() {
        assert_eq!(Tlb::knc_dtlb().miss_rate(), 0.0);
    }
}
