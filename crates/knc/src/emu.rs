//! Cycle-level functional emulator of one Knights Corner core.
//!
//! [`CoreSim`] executes a kernel [`Program`] on up to four hardware
//! threads, advancing a virtual cycle counter under the issue rules of
//! [`PipelineConfig`]:
//!
//! * one vector (U-pipe) instruction per cycle, round-robin among threads;
//! * one prefetch/scalar (V-pipe) instruction may co-issue with it;
//! * every memory-operand instruction claims the L1 read port for its
//!   cycle, stores claim the write port;
//! * an L1 prefetch enqueues a *pending fill* that arrives after the
//!   L2-hit latency and then needs a cycle with both ports free; after
//!   `fill_defer_threshold` deferrals the pipeline stalls to force it
//!   through (Fig. 1c);
//! * demand misses stall the pipeline.
//!
//! Arithmetic is executed for real — the register file and memory hold
//! actual `f64`s — so the same run yields both a bit-exact result and a
//! cycle count. `vprefetch1` (L2 prefetch) installs its line eagerly; the
//! approximation only affects demand accesses landing inside the L2
//! latency window, which the tuned kernels never do.

use crate::cache::{Cache, CacheConfig, PendingFill};
use crate::isa::{
    broadcast, swizzle, Addr, Instr, Operand, Program, StreamId, VReg, NUM_VREGS, VLEN,
};
use crate::pipeline::{PipelineConfig, TraceConfig};
use crate::tlb::Tlb;
use crate::trace::{self, Cmd, CmdKind, ExecOut, ReadOut, Recording, TraceEngine, TraceStats};

/// Per-thread base element indices of the three kernel streams.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamBases {
    /// Base of the packed `A` tile (usually shared across threads).
    pub a: usize,
    /// Base of this thread's packed `B` tile.
    pub b: usize,
    /// Base of this thread's `C` output tile.
    pub c: usize,
}

impl StreamBases {
    pub(crate) fn get(&self, s: StreamId) -> usize {
        match s {
            StreamId::A => self.a,
            StreamId::B => self.b,
            StreamId::C => self.c,
        }
    }
}

/// Counters produced by a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Vector (U-pipe) instructions issued.
    pub vector_issued: u64,
    /// Vector multiply-adds among them.
    pub fmadds: u64,
    /// V-pipe (prefetch/scalar) instructions issued.
    pub vpipe_issued: u64,
    /// Pipeline stall cycles forced by blocked prefetch fills (Fig. 1c).
    pub fill_stall_cycles: u64,
    /// Stall cycles from demand misses (unprefetched data).
    pub demand_stall_cycles: u64,
    /// Prefetch fills completed without stalling (landed in port holes).
    pub fills_in_holes: u64,
    /// Total L1 prefetch fills completed.
    pub fills_completed: u64,
}

impl RunStats {
    /// Achieved FMA efficiency: multiply-add issue slots over all cycles —
    /// the metric behind the paper's "% of peak" numbers.
    pub fn fma_efficiency(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fmadds as f64 / self.cycles as f64
        }
    }
}

/// Control state of one hardware thread (registers live in [`CoreSim`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ThreadCtl {
    pub(crate) bases: StreamBases,
    pub(crate) pc: usize,
    pub(crate) iter: usize,
    pub(crate) in_epilogue: bool,
    pub(crate) done: bool,
}

impl ThreadCtl {
    fn new(bases: StreamBases) -> Self {
        Self {
            bases,
            pc: 0,
            iter: 0,
            in_epilogue: false,
            done: false,
        }
    }
}

/// One simulated KNC core: shared L1/L2, four threads, one vector pipe.
pub struct CoreSim {
    pub(crate) cfg: PipelineConfig,
    pub(crate) mem: Vec<f64>,
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
    pub(crate) tlb: Tlb,
    pub(crate) thread_regs: Vec<[VReg; NUM_VREGS]>,
    pub(crate) pending_fills: Vec<PendingFill>,
    pub(crate) stats: RunStats,
    pub(crate) cycle: u64,
    /// Remaining stall cycles (no issue while > 0).
    pub(crate) stall: u64,
    /// Block-trace engine; `None` runs pure interpretation.
    trace: Option<Box<TraceEngine>>,
    /// In-progress segment recording (owned here so the hot execute path
    /// can push commands without going through the engine).
    pub(crate) rec: Option<Recording>,
    /// Outcome class of the instruction currently executing (scratch).
    last_out: ExecOut,
}

impl CoreSim {
    /// Creates a core over the given memory image.
    pub fn new(cfg: PipelineConfig, mem: Vec<f64>) -> Self {
        let threads = cfg.threads_per_core;
        Self {
            cfg,
            mem,
            l1: Cache::new(CacheConfig::knc_l1()),
            l2: Cache::new(CacheConfig::knc_l2()),
            tlb: Tlb::knc_dtlb(),
            thread_regs: vec![[[0.0; VLEN]; NUM_VREGS]; threads],
            pending_fills: Vec::new(),
            stats: RunStats::default(),
            cycle: 0,
            stall: 0,
            trace: None,
            rec: None,
            last_out: ExecOut::None,
        }
    }

    /// Enables the block-trace fast path with default knobs. Runs stay
    /// bit-identical to pure interpretation; see [`crate::trace`].
    pub fn enable_trace(&mut self) {
        self.enable_trace_with(TraceConfig::default());
    }

    /// [`Self::enable_trace`] with explicit [`TraceConfig`] knobs.
    pub fn enable_trace_with(&mut self, cfg: TraceConfig) {
        self.trace = Some(Box::new(TraceEngine::new(cfg)));
    }

    /// Trace-engine counters (`None` when tracing is disabled).
    pub fn trace_stats(&self) -> Option<TraceStats> {
        self.trace.as_ref().map(|t| t.stats())
    }

    /// Ratio of total simulated cycles to interpreter-executed cycles —
    /// the deterministic coverage speedup of the fast path (1.0 when
    /// nothing replayed).
    pub fn replay_speedup(&self) -> f64 {
        let Some(ts) = self.trace_stats() else {
            return 1.0;
        };
        let total = self.stats.cycles;
        let interpreted = total.saturating_sub(ts.replayed_cycles);
        if total == 0 || interpreted == 0 {
            1.0
        } else {
            total as f64 / interpreted as f64
        }
    }

    /// A TLB shootdown: drops every translation and, because the modelled
    /// invalidation also flushes the core's caches and kills in-flight
    /// prefetches, it is a block-invalidating event — all trace templates
    /// are discarded. Applied identically whether or not tracing is on.
    pub fn tlb_shootdown(&mut self) {
        self.tlb.flush();
        self.l1.flush();
        self.l2.flush();
        self.pending_fills.clear();
        self.rec = None;
        if let Some(t) = &mut self.trace {
            t.invalidate_templates();
        }
    }

    /// FNV-1a digest of the complete architectural + micro-architectural
    /// state: cycle, stall, all counters, every register bit, every memory
    /// bit, cache tag state, TLB state, and pending fills. Two simulations
    /// agree on this digest iff they are bit-identical.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let fold = |w: u64, h: &mut u64| {
            for b in w.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        fold(self.cycle, &mut h);
        fold(self.stall, &mut h);
        let s = &self.stats;
        for w in [
            s.cycles,
            s.vector_issued,
            s.fmadds,
            s.vpipe_issued,
            s.fill_stall_cycles,
            s.demand_stall_cycles,
            s.fills_in_holes,
            s.fills_completed,
        ] {
            fold(w, &mut h);
        }
        for regs in &self.thread_regs {
            for r in regs.iter() {
                for v in r {
                    fold(v.to_bits(), &mut h);
                }
            }
        }
        for v in &self.mem {
            fold(v.to_bits(), &mut h);
        }
        fold(self.l1.digest(), &mut h);
        fold(self.l2.digest(), &mut h);
        fold(self.tlb.digest(), &mut h);
        for f in &self.pending_fills {
            fold(f.elem_idx as u64, &mut h);
            fold(f.ready_at, &mut h);
            fold(f.deferred as u64, &mut h);
            fold(f.scale_iter as u64, &mut h);
        }
        h
    }

    /// L1 (hits, misses).
    pub fn l1_stats(&self) -> (u64, u64) {
        self.l1.stats()
    }

    /// L2 (hits, misses).
    pub fn l2_stats(&self) -> (u64, u64) {
        self.l2.stats()
    }

    /// TLB (hits, misses).
    pub fn tlb_stats(&self) -> (u64, u64) {
        self.tlb.stats()
    }

    /// Marks `len` elements starting at `start` as L2-resident, as if
    /// freshly written through the cache hierarchy. Runners call this for
    /// buffers their packing stage just produced (packed SpMV slices,
    /// stencil tap blocks): a packer that stored the data moments ago
    /// leaves it in L2, so the kernel's `vprefetch0` pays the L2-hit
    /// latency rather than a full GDDR access. Costs no cycles.
    pub fn warm_l2(&mut self, start: usize, len: usize) {
        let mut idx = start;
        while idx < start + len {
            self.l2.fill(idx);
            idx += 8;
        }
    }

    /// The memory image (read results back after a run).
    pub fn mem(&self) -> &[f64] {
        &self.mem
    }

    /// Mutable access to memory (set up inputs).
    pub fn mem_mut(&mut self) -> &mut [f64] {
        &mut self.mem
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs `body` for `iters` iterations followed by `epilogue` once, on
    /// one hardware thread per entry of `threads`. Returns the cycles
    /// consumed by this segment.
    pub fn run(
        &mut self,
        body: &Program,
        epilogue: &Program,
        iters: usize,
        threads: &[StreamBases],
    ) -> u64 {
        self.run_with_marks(body, epilogue, iters, threads, iters, iters)
            .0
    }

    /// Like [`Self::run`], but additionally reports two checkpoints for
    /// steady-state measurement: the cycles at which **all** threads had
    /// completed `mark1` (resp. `mark2`) loop iterations. Placing both
    /// marks strictly inside the loop excludes cold-start effects *and*
    /// the end-of-loop drain (where the first thread's epilogue demand
    /// misses stall threads still finishing the loop).
    pub fn run_with_marks(
        &mut self,
        body: &Program,
        epilogue: &Program,
        iters: usize,
        threads: &[StreamBases],
        mark1: usize,
        mark2: usize,
    ) -> (u64, u64, u64) {
        assert!(!threads.is_empty() && threads.len() <= self.cfg.threads_per_core);
        let start_cycle = self.cycle;
        let nthreads = self.cfg.threads_per_core;
        let mut ts: Vec<ThreadCtl> = threads.iter().map(|b| ThreadCtl::new(*b)).collect();
        if iters == 0 && epilogue.body.is_empty() {
            return (0, 0, 0);
        }
        let budget = 10_000_000u64
            + (iters as u64 + 2) * 64 * (body.body.len() + epilogue.body.len() + 1) as u64;
        let mut mark1_cycle: Option<u64> = None;
        let mut mark2_cycle: Option<u64> = None;

        // The engine is moved out so it can borrow `self` mutably at
        // segment boundaries; restored before returning.
        let mut eng = self.trace.take();
        if let Some(e) = eng.as_mut() {
            e.begin_run(trace::fingerprint(body, epilogue, threads, nthreads));
        }

        while !ts.iter().all(|t| t.done) {
            if let Some(e) = eng.as_mut() {
                // A candidate segment boundary: thread 0's own issue slot
                // with the pipeline drained. The loop-body wrap itself is
                // not observable between slots (`issue_slot` wraps and
                // keeps issuing), so segment completion is detected by
                // thread 0's iteration counter having advanced to the
                // recording's target `k` — segments then tile the run
                // one macro-iteration at a time.
                let in_segment = self.rec.as_ref().is_some_and(|r| ts[0].iter < r.k);
                if self.stall == 0
                    && !body.body.is_empty()
                    && (self.cycle as usize).is_multiple_of(nthreads)
                    && !ts[0].done
                    && !ts[0].in_epilogue
                    && !in_segment
                {
                    e.on_boundary(self, &ts);
                    while let Some(r) = e.try_replay(self, &mut ts, iters) {
                        // The interpreter's mark checkpoints fire on the
                        // first cycle where every thread reached the mark
                        // iteration; inside a replayed segment those are
                        // its recorded crossings, in ascending order.
                        let entry_rel = self.cycle - start_cycle - r.len;
                        for &(rel, off) in &r.reach {
                            let v = r.k as i64 + rel;
                            if mark1_cycle.is_none() && v >= mark1 as i64 {
                                mark1_cycle = Some(entry_rel + off as u64);
                            }
                            if mark2_cycle.is_none() && v >= mark2 as i64 {
                                mark2_cycle = Some(entry_rel + off as u64);
                            }
                        }
                    }
                    e.arm_recording(self, &ts);
                }
            }
            let mut read_busy = false;
            let mut write_busy = false;

            if self.stall > 0 {
                self.stall -= 1;
            } else {
                let tid = (self.cycle as usize) % nthreads;
                if tid < ts.len() && !ts[tid].done {
                    self.issue_slot(
                        &mut ts[tid],
                        tid,
                        body,
                        epilogue,
                        iters,
                        &mut read_busy,
                        &mut write_busy,
                    );
                }
            }

            self.advance_fills(read_busy, write_busy);
            self.cycle += 1;
            self.stats.cycles = self.cycle;
            if mark1_cycle.is_none() && ts.iter().all(|t| t.iter >= mark1 || t.done) {
                mark1_cycle = Some(self.cycle - start_cycle);
            }
            if mark2_cycle.is_none() && ts.iter().all(|t| t.iter >= mark2 || t.done) {
                mark2_cycle = Some(self.cycle - start_cycle);
            }
            if let Some(rec) = &mut self.rec {
                // Mark-crossing detector: record the offset at which each
                // successive iteration count becomes reached-by-all.
                let min_live = ts.iter().filter(|t| !t.done).map(|t| t.iter as i64).min();
                if let Some(m) = min_live {
                    while rec.last_min < m {
                        rec.last_min += 1;
                        rec.reach.push((
                            rec.last_min - rec.k as i64,
                            (self.cycle - rec.entry_cycle) as u32,
                        ));
                    }
                }
            }
            assert!(
                self.cycle - start_cycle < budget,
                "emulated kernel failed to converge"
            );
        }
        self.rec = None;
        self.trace = eng;
        let total = self.cycle - start_cycle;
        (
            total,
            mark1_cycle.unwrap_or(total),
            mark2_cycle.unwrap_or(total),
        )
    }

    /// Issues up to one U-pipe and one V-pipe instruction for one thread.
    #[allow(clippy::too_many_arguments)]
    fn issue_slot(
        &mut self,
        t: &mut ThreadCtl,
        tid: usize,
        body: &Program,
        epilogue: &Program,
        iters: usize,
        read_busy: &mut bool,
        write_busy: &mut bool,
    ) {
        let mut issued_vector = false;
        let mut issued_vpipe = false;

        loop {
            let prog: &Program = if t.in_epilogue { epilogue } else { body };
            if t.pc >= prog.body.len() {
                if !t.in_epilogue {
                    t.iter += 1;
                    t.pc = 0;
                    if t.iter >= iters {
                        t.in_epilogue = true;
                        if epilogue.body.is_empty() {
                            t.done = true;
                            return;
                        }
                    }
                    continue;
                }
                t.done = true;
                return;
            }
            let instr = prog.body[t.pc];
            if instr.is_vector() {
                if issued_vector {
                    return;
                }
                issued_vector = true;
            } else {
                if issued_vpipe {
                    return;
                }
                issued_vpipe = true;
            }
            t.pc += 1;
            self.execute(instr, t.iter, tid, t.bases, read_busy, write_busy);
            if issued_vector && issued_vpipe {
                return;
            }
        }
    }

    /// Functional + port-model execution of a single instruction.
    fn execute(
        &mut self,
        instr: Instr,
        iter: usize,
        thread: usize,
        bases: StreamBases,
        read_busy: &mut bool,
        write_busy: &mut bool,
    ) {
        self.last_out = ExecOut::None;
        let resolve = |a: &Addr| a.resolve(iter, thread, bases.get(a.stream));
        match instr {
            Instr::Fmadd { acc, src, b } => {
                let sv = self.operand_value(&src, iter, thread, bases, read_busy);
                let bv = self.thread_regs[thread][b as usize];
                let out = &mut self.thread_regs[thread][acc as usize];
                for l in 0..VLEN {
                    out[l] = sv[l].mul_add(bv[l], out[l]);
                }
                self.stats.vector_issued += 1;
                self.stats.fmadds += 1;
            }
            Instr::Load { dst, addr } => {
                let idx = resolve(&addr);
                self.demand_access(idx, read_busy);
                let mut v = [0.0; VLEN];
                v.copy_from_slice(&self.mem[idx..idx + VLEN]);
                self.thread_regs[thread][dst as usize] = v;
                self.stats.vector_issued += 1;
            }
            Instr::Store { src, addr } => {
                let idx = resolve(&addr);
                *write_busy = true;
                self.tlb.access(idx * 8);
                let v = self.thread_regs[thread][src as usize];
                self.mem[idx..idx + VLEN].copy_from_slice(&v);
                self.l1.fill(idx); // write-allocate
                self.stats.vector_issued += 1;
            }
            Instr::Broadcast { dst, addr, mode } => {
                let idx = resolve(&addr);
                self.demand_access(idx, read_busy);
                self.thread_regs[thread][dst as usize] = broadcast(&self.mem, idx, mode);
                self.stats.vector_issued += 1;
            }
            Instr::Add { dst, src } => {
                let sv = self.operand_value(&src, iter, thread, bases, read_busy);
                let out = &mut self.thread_regs[thread][dst as usize];
                for l in 0..VLEN {
                    out[l] += sv[l];
                }
                self.stats.vector_issued += 1;
            }
            Instr::Mul { dst, src } => {
                let sv = self.operand_value(&src, iter, thread, bases, read_busy);
                let out = &mut self.thread_regs[thread][dst as usize];
                for l in 0..VLEN {
                    out[l] *= sv[l];
                }
                self.stats.vector_issued += 1;
            }
            Instr::PrefetchL1(addr) => {
                let idx = resolve(&addr);
                self.tlb.access(idx * 8);
                self.stats.vpipe_issued += 1;
                let line = idx / 8;
                if !self.l1.contains(idx)
                    && !self.pending_fills.iter().any(|f| f.elem_idx / 8 == line)
                {
                    let l2_hit = self.l2.contains(idx);
                    let latency = if l2_hit {
                        self.cfg.l2_hit_latency
                    } else {
                        self.cfg.mem_latency
                    };
                    self.l2.fill(idx); // the line passes through L2
                    self.pending_fills.push(PendingFill {
                        elem_idx: idx,
                        ready_at: self.cycle + latency,
                        deferred: 0,
                        scale_iter: addr.scale_iter,
                    });
                    self.last_out = ExecOut::Pref1Queue { l2_hit };
                } else {
                    self.last_out = ExecOut::Pref1Skip;
                }
            }
            Instr::PrefetchL2(addr) => {
                let idx = resolve(&addr);
                self.tlb.access(idx * 8);
                self.stats.vpipe_issued += 1;
                // Eager install (see module docs): no L1 port cost.
                self.l2.fill(idx);
            }
            Instr::ScalarOp => {
                self.stats.vpipe_issued += 1;
            }
        }
        let out = self.last_out;
        let cycle = self.cycle;
        if let Some(rec) = self.rec.as_mut() {
            // Iteration-relative address constant: replay recomputes the
            // concrete index as c0 + k * scale_iter.
            let c0 = match Self::instr_addr(&instr) {
                Some(a) => {
                    a.resolve(iter, thread, bases.get(a.stream)) as i64
                        - (rec.k as i64) * (a.scale_iter as i64)
                }
                None => 0,
            };
            rec.cmds.push(Cmd {
                off: (cycle - rec.entry_cycle) as u32,
                kind: CmdKind::Exec {
                    tid: thread as u8,
                    instr,
                    c0,
                    out,
                },
            });
        }
    }

    /// The memory address an instruction touches, if any.
    fn instr_addr(instr: &Instr) -> Option<Addr> {
        match instr {
            Instr::Load { addr, .. }
            | Instr::Store { addr, .. }
            | Instr::Broadcast { addr, .. }
            | Instr::PrefetchL1(addr)
            | Instr::PrefetchL2(addr) => Some(*addr),
            Instr::Fmadd { src, .. } | Instr::Add { src, .. } | Instr::Mul { src, .. } => {
                src.addr()
            }
            Instr::ScalarOp => None,
        }
    }

    /// Reads a source operand, modelling its port usage and demand misses.
    fn operand_value(
        &mut self,
        op: &Operand,
        iter: usize,
        thread: usize,
        bases: StreamBases,
        read_busy: &mut bool,
    ) -> VReg {
        match op {
            Operand::Reg(r) => self.thread_regs[thread][*r as usize],
            Operand::Swizzle(r, i) => swizzle(&self.thread_regs[thread][*r as usize], *i),
            Operand::Mem(a) => {
                let idx = a.resolve(iter, thread, bases.get(a.stream));
                self.demand_access(idx, read_busy);
                let mut v = [0.0; VLEN];
                v.copy_from_slice(&self.mem[idx..idx + VLEN]);
                v
            }
            Operand::MemBcast(a, mode) => {
                let idx = a.resolve(iter, thread, bases.get(a.stream));
                self.demand_access(idx, read_busy);
                broadcast(&self.mem, idx, *mode)
            }
        }
    }

    /// Models a demand read: claims the read port; on L1 miss, charges the
    /// appropriate stall and installs the line.
    fn demand_access(&mut self, idx: usize, read_busy: &mut bool) {
        *read_busy = true;
        self.tlb.access(idx * 8);
        if self.l1.access(idx) {
            self.last_out = ExecOut::Read(ReadOut::Hit);
            return;
        }
        let line = idx / 8;
        if let Some(pos) = self
            .pending_fills
            .iter()
            .position(|f| f.elem_idx / 8 == line)
        {
            // Prefetch in flight: wait only for its arrival.
            let f = self.pending_fills.remove(pos);
            let wait = f.ready_at.saturating_sub(self.cycle).max(1);
            self.stall += wait;
            self.stats.demand_stall_cycles += wait;
            self.l1.fill(idx);
            self.stats.fills_completed += 1;
            self.last_out = ExecOut::Read(ReadOut::Pending { wait });
            return;
        }
        let l2_hit = self.l2.contains(idx);
        let penalty = if l2_hit {
            self.cfg.demand_l2_penalty
        } else {
            self.cfg.demand_mem_penalty
        };
        self.stall += penalty;
        self.stats.demand_stall_cycles += penalty;
        self.l2.fill(idx);
        self.l1.fill(idx);
        self.last_out = ExecOut::Read(if l2_hit { ReadOut::L2 } else { ReadOut::Mem });
    }

    /// Tries to complete one pending L1 fill this cycle; defers or forces
    /// a stall per Fig. 1c.
    fn advance_fills(&mut self, read_busy: bool, write_busy: bool) {
        let cyc = self.cycle;
        let Some(pos) = self.pending_fills.iter().position(|f| f.ready_at <= cyc) else {
            return;
        };
        let kind;
        if !read_busy && !write_busy {
            let f = self.pending_fills.remove(pos);
            self.l1.fill(f.elem_idx);
            self.stats.fills_completed += 1;
            self.stats.fills_in_holes += 1;
            kind = trace::FillKind::Hole;
        } else {
            let f = &mut self.pending_fills[pos];
            f.deferred += 1;
            if f.deferred >= self.cfg.fill_defer_threshold {
                let f = self.pending_fills.remove(pos);
                self.l1.fill(f.elem_idx);
                self.stats.fills_completed += 1;
                self.stall += self.cfg.fill_stall_cycles;
                self.stats.fill_stall_cycles += self.cfg.fill_stall_cycles;
                kind = trace::FillKind::Forced;
            } else {
                kind = trace::FillKind::Defer;
            }
        }
        if let Some(rec) = &mut self.rec {
            rec.cmds.push(Cmd {
                off: (cyc - rec.entry_cycle) as u32,
                kind: CmdKind::Fill(kind),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::BcastMode;

    fn addr(stream: StreamId, scale: usize, off: usize) -> Addr {
        Addr::new(stream, scale, off)
    }

    /// A trivial program: load 8 values, add a broadcast constant, store.
    #[test]
    fn functional_load_add_store() {
        let mut mem = vec![0.0; 64];
        for (i, m) in mem.iter_mut().enumerate().take(8) {
            *m = i as f64;
        }
        mem[8] = 10.0; // broadcast source
        let mut sim = CoreSim::new(PipelineConfig::default(), mem);
        let mut body = Program::new();
        body.push(Instr::Load {
            dst: 0,
            addr: addr(StreamId::A, 0, 0),
        });
        body.push(Instr::Add {
            dst: 0,
            src: Operand::MemBcast(addr(StreamId::A, 0, 8), BcastMode::OneToEight),
        });
        body.push(Instr::Store {
            src: 0,
            addr: addr(StreamId::C, 0, 0),
        });
        let threads = [StreamBases { a: 0, b: 0, c: 16 }];
        sim.run(&body, &Program::new(), 1, &threads);
        for i in 0..8 {
            assert_eq!(sim.mem()[16 + i], i as f64 + 10.0);
        }
    }

    /// An FMA with a register operand and a swizzled operand.
    #[test]
    fn functional_fmadd_swizzle() {
        let mut mem = vec![0.0; 64];
        // b row = [1..8]; a 4to8 source = [2,3,4,5].
        for (i, m) in mem.iter_mut().enumerate().take(8) {
            *m = (i + 1) as f64;
        }
        mem[8] = 2.0;
        mem[9] = 3.0;
        mem[10] = 4.0;
        mem[11] = 5.0;
        let mut sim = CoreSim::new(PipelineConfig::default(), mem);
        let mut body = Program::new();
        body.push(Instr::Load {
            dst: 31,
            addr: addr(StreamId::A, 0, 0),
        });
        body.push(Instr::Broadcast {
            dst: 30,
            addr: addr(StreamId::A, 0, 8),
            mode: BcastMode::FourToEight,
        });
        // acc v0 += swizzle_1(v30) * v31  →  lane l: 3.0 * (l+1)
        body.push(Instr::Fmadd {
            acc: 0,
            src: Operand::Swizzle(30, 1),
            b: 31,
        });
        body.push(Instr::Store {
            src: 0,
            addr: addr(StreamId::C, 0, 0),
        });
        let threads = [StreamBases { a: 0, b: 0, c: 32 }];
        sim.run(&body, &Program::new(), 1, &threads);
        for l in 0..8 {
            assert_eq!(sim.mem()[32 + l], 3.0 * (l + 1) as f64, "lane {l}");
        }
        assert_eq!(sim.stats().fmadds, 1);
    }

    /// Demand misses cost cycles; a second pass over the same data does
    /// not.
    #[test]
    fn demand_misses_are_charged_once() {
        let mem = vec![1.0; 1024];
        let mut sim = CoreSim::new(PipelineConfig::default(), mem);
        let mut body = Program::new();
        body.push(Instr::Load {
            dst: 0,
            addr: addr(StreamId::A, 8, 0),
        });
        let threads = [StreamBases::default()];
        let cold = sim.run(&body, &Program::new(), 8, &threads);
        let warm = sim.run(&body, &Program::new(), 8, &threads);
        assert!(
            cold > warm,
            "cold pass ({cold}) must be slower than warm ({warm})"
        );
        assert!(sim.stats().demand_stall_cycles > 0);
    }

    /// Prefetched lines arrive without demand stalls.
    #[test]
    fn prefetch_hides_latency() {
        let mem = vec![1.0; 4096];
        // Version A: stream loads with no prefetch.
        let mut body_np = Program::new();
        body_np.push(Instr::Load {
            dst: 0,
            addr: addr(StreamId::A, 8, 0),
        });
        // Pad with register FMAs so there is time for fills to land.
        for _ in 0..7 {
            body_np.push(Instr::Fmadd {
                acc: 1,
                src: Operand::Reg(2),
                b: 3,
            });
        }
        // Version B: same plus an L1 prefetch 2 iterations ahead (plenty
        // of holes: the register FMAs leave the read port free).
        let mut body_pf = body_np.clone();
        body_pf.push(Instr::PrefetchL2(addr(StreamId::A, 8, 32)));
        body_pf.push(Instr::PrefetchL1(addr(StreamId::A, 8, 16)));

        let threads = [StreamBases::default()];
        let mut sim_np = CoreSim::new(PipelineConfig::default(), mem.clone());
        let c_np = sim_np.run(&body_np, &Program::new(), 64, &threads);
        let mut sim_pf = CoreSim::new(PipelineConfig::default(), mem);
        let c_pf = sim_pf.run(&body_pf, &Program::new(), 64, &threads);
        assert!(
            c_pf < c_np,
            "prefetch ({c_pf}) must beat no-prefetch ({c_np})"
        );
        assert!(sim_pf.stats().fills_in_holes > 0);
    }

    /// Four threads share the vector pipe round-robin: cycles scale with
    /// the thread count, not quadratically.
    #[test]
    fn four_threads_interleave() {
        let mem = vec![1.0; 4096];
        let mut body = Program::new();
        for _ in 0..8 {
            body.push(Instr::Fmadd {
                acc: 1,
                src: Operand::Reg(2),
                b: 3,
            });
        }
        let one = [StreamBases::default()];
        let four = [StreamBases::default(); 4];
        let mut s1 = CoreSim::new(PipelineConfig::default(), mem.clone());
        let c1 = s1.run(&body, &Program::new(), 100, &one);
        let mut s4 = CoreSim::new(PipelineConfig::default(), mem);
        let c4 = s4.run(&body, &Program::new(), 100, &four);
        // One thread only issues every 4th cycle; four threads fill the
        // pipe, so the same per-thread work takes roughly the same wall
        // cycles while doing 4x the FMAs.
        assert_eq!(s4.stats().fmadds, 4 * s1.stats().fmadds);
        assert!(c4 < c1 * 2, "c1={c1} c4={c4}");
        // With 4 threads the pipe is ~fully utilized.
        assert!(
            s4.stats().fma_efficiency() > 0.95,
            "{}",
            s4.stats().fma_efficiency()
        );
    }
}
