//! The paper's DGEMM inner kernels (Fig. 2), expressed in the emulated
//! ISA and executed on the cycle-level core model.
//!
//! Each of the four hardware threads multiplies an `MR × k` packed tile of
//! `a` (shared) by its own `k × 8` packed tile of `b`, accumulating into
//! `MR` vector registers and finally updating its `MR × 8` tile of `c`
//! (Fig. 2a). Tile columns are padded to 32 elements so every column spans
//! exactly four cache lines, which the four threads prefetch cooperatively
//! — one line each ("the four lines are only brought in once from L2 into
//! L1 by one of the threads", Section III-A2).
//!
//! * [`build_basic_kernel`]`(Kernel1)` emits Fig. 2b: 31 FMAs per
//!   iteration, every one broadcasting its `a` element from memory. The
//!   L1 read port is busy on every cycle, so the two prefetch fills per
//!   thread-iteration can never slip in — they defer and eventually stall
//!   the pipe, pulling achieved efficiency to ≈ 31/34 ≈ 91%.
//! * [`build_basic_kernel`]`(Kernel2)` emits Fig. 2c: a `4to8` broadcast
//!   pulls four `a` elements into `v30`, and four FMAs take their operand
//!   by *swizzle* instead of from memory. Those four port-free holes per
//!   iteration absorb the fills: no stalls, achieved efficiency ≈ 30/32 =
//!   93.7%.
//!
//! The same run computes the numerically exact product, verified against
//! a reference in the tests.

use crate::emu::{CoreSim, RunStats, StreamBases};
use crate::isa::{Addr, BcastMode, Instr, Operand, Program, StreamId};
use crate::pipeline::PipelineConfig;
use crate::trace::TraceStats;
use phi_blas::gemm::MicroKernelKind;

/// Column stride of the padded `a` tile: 32 elements = 4 cache lines.
pub const A_COL_STRIDE: usize = 32;
/// Width of a `b` row / `c` row: one vector register.
pub const NR: usize = 8;

/// Register-block height for a kernel variant: Kernel 1 keeps 31 rows of
/// `c` in registers (`v0`–`v30`, `v31` holds the `b` row); Kernel 2
/// sacrifices one row for the broadcast register `v30`.
pub fn kernel_mr(kind: MicroKernelKind) -> usize {
    match kind {
        MicroKernelKind::Kernel1 => 31,
        MicroKernelKind::Kernel2 => 30,
    }
}

/// Builds the loop body and the C-update epilogue for a kernel variant.
///
/// Returns `(body, epilogue)`. Register map: `v0..vMR` = `c` accumulators,
/// `v31` = current `b` row, `v30` (Kernel 2 only) = `4to8` broadcast of
/// the leading `a` elements.
pub fn build_basic_kernel(kind: MicroKernelKind) -> (Program, Program) {
    let mr = kernel_mr(kind);
    let mut body = Program::new();

    // The V-pipe instructions (prefetches) are interleaved one-per-slot
    // with vector instructions so each cycle dual-issues — exactly how the
    // hand-written assembly schedules them ("prefetches and scalar
    // instructions co-issue with vector operations in the same cycle").
    let pf_b_next = Instr::PrefetchL1(Addr::new(StreamId::B, NR, NR));
    let pf_a_next =
        Instr::PrefetchL1(Addr::new(StreamId::A, A_COL_STRIDE, A_COL_STRIDE).with_thread_scale(NR));
    let pf_a_l2 = Instr::PrefetchL2(
        Addr::new(StreamId::A, A_COL_STRIDE, 2 * A_COL_STRIDE).with_thread_scale(NR),
    );
    let pf_b_l2 = Instr::PrefetchL2(Addr::new(StreamId::B, NR, 2 * NR));

    match kind {
        MicroKernelKind::Kernel1 => {
            // Fig. 2b: 31 FMAs, each 1to8-broadcasting a[r] from memory —
            // every slot's vector op occupies the L1 read port.
            body.push(pf_b_next);
            body.push(Instr::Load {
                dst: 31,
                addr: Addr::new(StreamId::B, NR, 0),
            });
            for r in 0..mr as u8 {
                match r {
                    0 => body.push(pf_a_next),
                    1 => body.push(pf_a_l2),
                    2 => body.push(pf_b_l2),
                    _ => &mut body,
                };
                body.push(Instr::Fmadd {
                    acc: r,
                    src: Operand::MemBcast(
                        Addr::new(StreamId::A, A_COL_STRIDE, r as usize),
                        BcastMode::OneToEight,
                    ),
                    b: 31,
                });
            }
        }
        MicroKernelKind::Kernel2 => {
            // Fig. 2c: a 4to8 broadcast pulls a[0..4] into v30, and the
            // first four FMAs swizzle it — four slots with the L1 ports
            // idle, the "holes" the prefetch fills land in.
            body.push(pf_b_next);
            body.push(Instr::Load {
                dst: 31,
                addr: Addr::new(StreamId::B, NR, 0),
            });
            body.push(pf_a_next);
            body.push(Instr::Broadcast {
                dst: 30,
                addr: Addr::new(StreamId::A, A_COL_STRIDE, 0),
                mode: BcastMode::FourToEight,
            });
            for r in 0..4u8 {
                match r {
                    0 => body.push(pf_a_l2),
                    1 => body.push(pf_b_l2),
                    _ => &mut body,
                };
                body.push(Instr::Fmadd {
                    acc: r,
                    src: Operand::Swizzle(30, r),
                    b: 31,
                });
            }
            for r in 4..mr as u8 {
                body.push(Instr::Fmadd {
                    acc: r,
                    src: Operand::MemBcast(
                        Addr::new(StreamId::A, A_COL_STRIDE, r as usize),
                        BcastMode::OneToEight,
                    ),
                    b: 31,
                });
            }
        }
    }

    // Epilogue: fold the register block into c (c += acc), one row per
    // load-add + store pair — the "overhead of updating C" whose cost
    // decreases linearly with k (Section III-A2).
    let mut epi = Program::new();
    for r in 0..mr as u8 {
        epi.push(Instr::Add {
            dst: r,
            src: Operand::Mem(Addr::new(StreamId::C, 0, r as usize * NR)),
        });
        epi.push(Instr::Store {
            src: r,
            addr: Addr::new(StreamId::C, 0, r as usize * NR),
        });
    }
    #[cfg(debug_assertions)]
    for (what, p) in [("body", &body), ("epilogue", &epi)] {
        let errs = crate::disasm::validate(p);
        assert!(
            errs.is_empty(),
            "generated {kind:?} {what} is invalid: {errs:?}"
        );
    }
    (body, epi)
}

/// Outcome of emulating one four-thread tile product.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel variant executed.
    pub kind: MicroKernelKind,
    /// Register-block height.
    pub mr: usize,
    /// Inner dimension `k`.
    pub depth: usize,
    /// Total cycles including cold start and C update.
    pub cycles_total: u64,
    /// Steady-state cycles per loop iteration (all four threads), from
    /// differencing a full and a half run.
    pub steady_cycles_per_iter: f64,
    /// Achieved steady-state efficiency: FMAs per cycle (peak = 1).
    pub steady_efficiency: f64,
    /// Instruction-mix bound: FMAs / vector slots (31/32 or 30/32).
    pub theoretical_efficiency: f64,
    /// Raw counters of the full run.
    pub stats: RunStats,
    /// The four computed `MR × 8` C tiles, row-major per thread.
    pub c_tiles: Vec<Vec<f64>>,
}

/// Memory image layout for a tile product.
struct Layout {
    a_base: usize,
    b_base: [usize; 4],
    c_base: [usize; 4],
    total: usize,
}

fn layout(mr: usize, depth: usize) -> Layout {
    let _ = mr; // a is padded to A_COL_STRIDE regardless of mr
    let a_len = A_COL_STRIDE * depth;
    let b_len = NR * depth;
    let c_len = A_COL_STRIDE * NR; // roomy, aligned
    let a_base = 0;
    let mut cursor = a_len.next_multiple_of(8);
    let mut b_base = [0; 4];
    for b in &mut b_base {
        *b = cursor;
        cursor += b_len.next_multiple_of(8);
    }
    let mut c_base = [0; 4];
    for c in &mut c_base {
        *c = cursor;
        cursor += c_len;
    }
    Layout {
        a_base,
        b_base,
        c_base,
        total: cursor,
    }
}

/// Emulates the four-thread `MR×k · k×8` tile product of Fig. 2a.
///
/// `a` is `mr * depth` values in column-major order (column stride `mr` —
/// the packed format of `phi-blas`); `bs[t]` is thread `t`'s `depth × 8`
/// row-major tile. Returns cycle statistics and the four result tiles.
pub fn run_tile_product(
    kind: MicroKernelKind,
    depth: usize,
    a: &[f64],
    bs: &[Vec<f64>; 4],
    cfg: PipelineConfig,
) -> KernelReport {
    run_tile_product_impl(kind, depth, a, bs, cfg, false).0
}

/// [`run_tile_product`] with the block-trace fast path enabled
/// ([`crate::trace`]). The report is guaranteed bit-identical to the
/// interpreter's; the extras are the trace counters and the coverage
/// speedup (total cycles over interpreter-executed cycles).
pub fn run_tile_product_traced(
    kind: MicroKernelKind,
    depth: usize,
    a: &[f64],
    bs: &[Vec<f64>; 4],
    cfg: PipelineConfig,
) -> (KernelReport, TraceStats, f64) {
    let (rep, extra) = run_tile_product_impl(kind, depth, a, bs, cfg, true);
    let (stats, speedup) = extra.expect("tracing was enabled");
    (rep, stats, speedup)
}

#[allow(clippy::type_complexity)]
fn run_tile_product_impl(
    kind: MicroKernelKind,
    depth: usize,
    a: &[f64],
    bs: &[Vec<f64>; 4],
    cfg: PipelineConfig,
    traced: bool,
) -> (KernelReport, Option<(TraceStats, f64)>) {
    let mr = kernel_mr(kind);
    assert_eq!(a.len(), mr * depth, "a tile shape");
    for b in bs {
        assert_eq!(b.len(), depth * NR, "b tile shape");
    }
    let (body, epi) = build_basic_kernel(kind);

    let build_sim = |iters: usize| -> (CoreSim, [StreamBases; 4]) {
        let l = layout(mr, depth);
        let mut mem = vec![0.0; l.total];
        // Repack a into the padded 32-element column stride.
        for p in 0..depth {
            for r in 0..mr {
                mem[l.a_base + p * A_COL_STRIDE + r] = a[p * mr + r];
            }
        }
        for t in 0..4 {
            mem[l.b_base[t]..l.b_base[t] + depth * NR].copy_from_slice(&bs[t]);
        }
        let threads = [
            StreamBases {
                a: l.a_base,
                b: l.b_base[0],
                c: l.c_base[0],
            },
            StreamBases {
                a: l.a_base,
                b: l.b_base[1],
                c: l.c_base[1],
            },
            StreamBases {
                a: l.a_base,
                b: l.b_base[2],
                c: l.c_base[2],
            },
            StreamBases {
                a: l.a_base,
                b: l.b_base[3],
                c: l.c_base[3],
            },
        ];
        let sim = CoreSim::new(cfg, mem);
        let _ = iters;
        (sim, threads)
    };

    // Single run with two in-loop checkpoints: the marginal cycles
    // between them are free of both cold-start effects (cache warming)
    // and the end-of-loop drain (the first thread's epilogue misses).
    let (mut sim, threads) = build_sim(depth);
    if traced {
        sim.enable_trace();
    }
    let mark1 = (depth / 4).max(1).min(depth);
    let mark2 = (depth.saturating_sub(depth / 8)).max(mark1);
    let (cycles_total, mark_cycle, loop_end) =
        sim.run_with_marks(&body, &epi, depth, &threads, mark1, mark2);
    let stats = sim.stats();
    let l = layout(mr, depth);
    let c_tiles: Vec<Vec<f64>> = (0..4)
        .map(|t| sim.mem()[l.c_base[t]..l.c_base[t] + mr * NR].to_vec())
        .collect();

    let iter_delta = mark2.saturating_sub(mark1).max(1) as f64;
    let steady_cycles_per_iter = (loop_end as f64 - mark_cycle as f64).max(1.0) / iter_delta;
    // Four threads perform 4*mr FMAs per iteration.
    let steady_efficiency = (4 * mr) as f64 / steady_cycles_per_iter;

    let extra = sim.trace_stats().map(|t| (t, sim.replay_speedup()));
    (
        KernelReport {
            kind,
            mr,
            depth,
            cycles_total,
            steady_cycles_per_iter,
            steady_efficiency,
            theoretical_efficiency: body.theoretical_efficiency(),
            stats,
            c_tiles,
        },
        extra,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_matrix::HplRng;

    fn random_tiles(mr: usize, depth: usize, seed: u64) -> (Vec<f64>, [Vec<f64>; 4]) {
        let mut rng = HplRng::new(seed);
        let a: Vec<f64> = (0..mr * depth).map(|_| rng.next_value()).collect();
        let bs = std::array::from_fn(|_| (0..depth * NR).map(|_| rng.next_value()).collect());
        (a, bs)
    }

    fn reference_c(mr: usize, depth: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; mr * NR];
        for p in 0..depth {
            for r in 0..mr {
                let av = a[p * mr + r];
                for j in 0..NR {
                    c[r * NR + j] = av.mul_add(b[p * NR + j], c[r * NR + j]);
                }
            }
        }
        c
    }

    #[test]
    fn kernel2_computes_exact_product() {
        let depth = 64;
        let (a, bs) = random_tiles(30, depth, 1);
        let rep = run_tile_product(
            MicroKernelKind::Kernel2,
            depth,
            &a,
            &bs,
            PipelineConfig::default(),
        );
        for (t, b) in bs.iter().enumerate() {
            let expect = reference_c(30, depth, &a, b);
            assert_eq!(rep.c_tiles[t], expect, "thread {t} C tile");
        }
    }

    #[test]
    fn kernel1_computes_exact_product() {
        let depth = 48;
        let (a, bs) = random_tiles(31, depth, 2);
        let rep = run_tile_product(
            MicroKernelKind::Kernel1,
            depth,
            &a,
            &bs,
            PipelineConfig::default(),
        );
        for (t, b) in bs.iter().enumerate() {
            let expect = reference_c(31, depth, &a, b);
            assert_eq!(rep.c_tiles[t], expect, "thread {t} C tile");
        }
    }

    #[test]
    fn theoretical_efficiencies_match_paper() {
        let (b1, _) = build_basic_kernel(MicroKernelKind::Kernel1);
        let (b2, _) = build_basic_kernel(MicroKernelKind::Kernel2);
        assert_eq!(b1.vector_count(), 32);
        assert_eq!(b1.fmadd_count(), 31);
        assert_eq!(b2.vector_count(), 32);
        assert_eq!(b2.fmadd_count(), 30);
        assert!((b1.theoretical_efficiency() - 31.0 / 32.0).abs() < 1e-12);
        assert!((b2.theoretical_efficiency() - 30.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn kernel2_beats_kernel1_in_practice() {
        // The heart of Section III-A2: Kernel 1's higher theoretical
        // efficiency loses to port-conflict stalls; Kernel 2 wins.
        let depth = 300;
        let (a1, bs1) = random_tiles(31, depth, 3);
        let r1 = run_tile_product(
            MicroKernelKind::Kernel1,
            depth,
            &a1,
            &bs1,
            PipelineConfig::default(),
        );
        let (a2, bs2) = random_tiles(30, depth, 4);
        let r2 = run_tile_product(
            MicroKernelKind::Kernel2,
            depth,
            &a2,
            &bs2,
            PipelineConfig::default(),
        );

        assert!(
            r1.theoretical_efficiency > r2.theoretical_efficiency,
            "Kernel 1 has more FMAs per slot on paper"
        );
        assert!(
            r2.steady_efficiency > r1.steady_efficiency,
            "but Kernel 2 must win in practice: k1={:.4} k2={:.4}",
            r1.steady_efficiency,
            r2.steady_efficiency
        );
        // Kernel 2 runs stall-free near its bound (93.7%)...
        assert!(
            r2.steady_efficiency > 0.92,
            "kernel2 steady eff {:.4}",
            r2.steady_efficiency
        );
        // ...while Kernel 1 is dragged below it by fill stalls (the paper's
        // worst case is 31/34 ≈ 91%; in our model stall holes absorb part
        // of the fill backlog, landing between 91% and 93.7%).
        assert!(
            r1.steady_efficiency < r2.steady_efficiency - 0.003,
            "kernel1 {:.4} must trail kernel2 {:.4}",
            r1.steady_efficiency,
            r2.steady_efficiency
        );
        assert!(
            r1.stats.fill_stall_cycles > 0,
            "kernel1 must stall on fills"
        );
        assert!(
            r2.stats.fill_stall_cycles == 0,
            "kernel2 must not stall: {} stall cycles",
            r2.stats.fill_stall_cycles
        );
    }

    #[test]
    fn traced_tile_product_is_bit_identical_and_covers() {
        for (kind, seed) in [(MicroKernelKind::Kernel1, 6), (MicroKernelKind::Kernel2, 7)] {
            let mr = kernel_mr(kind);
            let depth = 256;
            let (a, bs) = random_tiles(mr, depth, seed);
            let slow = run_tile_product(kind, depth, &a, &bs, PipelineConfig::default());
            let (fast, ts, speedup) =
                run_tile_product_traced(kind, depth, &a, &bs, PipelineConfig::default());
            assert_eq!(slow.cycles_total, fast.cycles_total, "{kind:?}");
            assert_eq!(
                slow.steady_cycles_per_iter, fast.steady_cycles_per_iter,
                "{kind:?}"
            );
            assert_eq!(slow.stats, fast.stats, "{kind:?}");
            assert_eq!(slow.c_tiles, fast.c_tiles, "{kind:?}");
            assert!(
                ts.replayed_segments > depth as u64 / 2,
                "{kind:?} must replay most iterations: {ts:?}"
            );
            assert!(speedup > 2.0, "{kind:?} coverage speedup {speedup:.2}");
        }
    }

    #[test]
    fn kernel2_fills_land_in_holes() {
        let depth = 200;
        let (a, bs) = random_tiles(30, depth, 5);
        let rep = run_tile_product(
            MicroKernelKind::Kernel2,
            depth,
            &a,
            &bs,
            PipelineConfig::default(),
        );
        assert!(
            rep.stats.fills_in_holes > rep.stats.fill_stall_cycles,
            "holes={} stalls={}",
            rep.stats.fills_in_holes,
            rep.stats.fill_stall_cycles
        );
    }
}
