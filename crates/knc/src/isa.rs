//! The Knights Corner vector ISA subset used by the paper's DGEMM kernels.
//!
//! KNC cores have 32 vector registers of 512 bits — eight `f64` lanes —
//! and a rich FMA-centric instruction set (Section II of the paper):
//!
//! * most vector operations can take one operand **from memory**, which
//!   shrinks the instruction footprint of the inner loop;
//! * memory operands can be **broadcast**: `1to8` replicates one double
//!   eight times, `4to8` replicates four doubles twice (Fig. 1a);
//! * register operands can be **swizzled in flight**: `SWIZZLE_i`
//!   replicates the i-th element of each 4-element lane (Fig. 1b);
//! * `vprefetch0`/`vprefetch1` prefetch into L1/L2 and may **co-issue**
//!   with a vector instruction thanks to the dual-issue pipeline.
//!
//! Addresses are symbolic: an [`Addr`] names a *stream* (the packed `a`
//! tile, `b` tile, or `c` output) plus a per-iteration scale and a fixed
//! offset, so one [`Program`] describes every iteration of the inner loop
//! and every hardware thread (threads differ only in stream bases).

/// Number of vector registers per thread (KNC has 32: `v0`–`v31`).
pub const NUM_VREGS: usize = 32;
/// f64 lanes per 512-bit vector register.
pub const VLEN: usize = 8;
/// Elements (f64) per 64-byte cache line.
pub const LINE_ELEMS: usize = 8;

/// A 512-bit vector register value: eight doubles.
pub type VReg = [f64; VLEN];

/// Identifies one of the data streams a kernel walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// The packed `MR × k` tile of `A` (shared by the core's 4 threads).
    A,
    /// The packed `k × 8` tile of `B` (private per thread).
    B,
    /// The `MR × 8` output tile of `C` (private per thread).
    C,
}

/// A symbolic effective address:
/// `element_index = base(stream) + iter*scale_iter + thread*scale_thread + offset`.
///
/// The thread term lets all four hardware threads share one [`Program`]
/// while, e.g., splitting the prefetch of the four `a` cache lines among
/// themselves ("the four lines are only brought in once from L2 into L1 by
/// one of the threads", Section III-A2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Addr {
    /// Which stream's base to use.
    pub stream: StreamId,
    /// Elements advanced per loop iteration.
    pub scale_iter: usize,
    /// Elements advanced per hardware-thread index.
    pub scale_thread: usize,
    /// Fixed element offset.
    pub offset: usize,
}

impl Addr {
    /// Address within stream `s` at `iter*scale + offset`.
    pub const fn new(stream: StreamId, scale_iter: usize, offset: usize) -> Self {
        Self {
            stream,
            scale_iter,
            scale_thread: 0,
            offset,
        }
    }

    /// Adds a per-thread stride to the address.
    pub const fn with_thread_scale(mut self, scale_thread: usize) -> Self {
        self.scale_thread = scale_thread;
        self
    }

    /// Resolves to a concrete element index for loop iteration `iter`,
    /// hardware thread `thread`, and the given stream base.
    pub fn resolve(&self, iter: usize, thread: usize, base: usize) -> usize {
        base + iter * self.scale_iter + thread * self.scale_thread + self.offset
    }
}

/// Memory broadcast flavours (Fig. 1a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcastMode {
    /// `1to8`: one double replicated into all 8 lanes.
    OneToEight,
    /// `4to8`: four consecutive doubles replicated twice.
    FourToEight,
}

/// The second source of an FMA / arithmetic op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A vector register.
    Reg(u8),
    /// A full 8-element aligned memory operand.
    Mem(Addr),
    /// A broadcast memory operand (uses the L1 read port).
    MemBcast(Addr, BcastMode),
    /// `SWIZZLE_i(reg)`: lane-replicate element `i` (0..4) of each
    /// 4-element half of `reg` — **no memory access** (Fig. 1b), the key
    /// property Basic Kernel 2 exploits.
    Swizzle(u8, u8),
}

impl Operand {
    /// True when evaluating this operand touches the L1 read port.
    pub fn reads_memory(&self) -> bool {
        matches!(self, Operand::Mem(_) | Operand::MemBcast(_, _))
    }

    /// The address read, if any.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Operand::Mem(a) | Operand::MemBcast(a, _) => Some(*a),
            _ => None,
        }
    }
}

/// One instruction of the emulated subset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// `vfmadd231pd acc, b, src`: `acc += src .* b` elementwise.
    Fmadd {
        /// Accumulator register.
        acc: u8,
        /// First multiplicand (register, memory or swizzle source).
        src: Operand,
        /// Second multiplicand register.
        b: u8,
    },
    /// `vmovapd dst, [addr]`: aligned vector load.
    Load {
        /// Destination register.
        dst: u8,
        /// Source address.
        addr: Addr,
    },
    /// `vmovapd [addr], src`: aligned vector store (uses the L1 write
    /// port).
    Store {
        /// Source register.
        src: u8,
        /// Destination address.
        addr: Addr,
    },
    /// `vbroadcast dst, [addr]`: broadcast load into a register ("v30" in
    /// Fig. 2c).
    Broadcast {
        /// Destination register.
        dst: u8,
        /// Source address.
        addr: Addr,
        /// Replication pattern.
        mode: BcastMode,
    },
    /// `vaddpd dst, dst, src`: elementwise add (used by the C update).
    Add {
        /// Destination (and first source) register.
        dst: u8,
        /// Second source.
        src: Operand,
    },
    /// `vmulpd dst, dst, src`: elementwise multiply (alpha scaling).
    Mul {
        /// Destination (and first source) register.
        dst: u8,
        /// Second source.
        src: Operand,
    },
    /// `vprefetch0 [addr]`: prefetch the line into L1. Co-issues on the
    /// V-pipe; its *fill* later needs a free L1 port cycle (Fig. 1c).
    PrefetchL1(Addr),
    /// `vprefetch1 [addr]`: prefetch the line into L2. Co-issues; fills
    /// into L2 without contending for L1 ports.
    PrefetchL2(Addr),
    /// Scalar bookkeeping (loop counter, address arithmetic) on the
    /// V-pipe; co-issues with a vector instruction.
    ScalarOp,
}

impl Instr {
    /// True for instructions executed on the vector U-pipe (occupy the
    /// single vector issue slot).
    pub fn is_vector(&self) -> bool {
        !matches!(
            self,
            Instr::PrefetchL1(_) | Instr::PrefetchL2(_) | Instr::ScalarOp
        )
    }

    /// True when this instruction is a vector multiply-add — the unit the
    /// efficiency metric counts.
    pub fn is_fmadd(&self) -> bool {
        matches!(self, Instr::Fmadd { .. })
    }

    /// True when executing the instruction occupies the L1 read port this
    /// cycle.
    pub fn uses_l1_read_port(&self) -> bool {
        match self {
            Instr::Load { .. } | Instr::Broadcast { .. } => true,
            Instr::Fmadd { src, .. } | Instr::Add { src, .. } | Instr::Mul { src, .. } => {
                src.reads_memory()
            }
            _ => false,
        }
    }

    /// True when executing the instruction occupies the L1 write port.
    pub fn uses_l1_write_port(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }
}

/// A straight-line kernel body, executed once per loop iteration.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Instructions in program order.
    pub body: Vec<Instr>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.body.push(i);
        self
    }

    /// Number of vector (U-pipe) instructions per iteration.
    pub fn vector_count(&self) -> usize {
        self.body.iter().filter(|i| i.is_vector()).count()
    }

    /// Number of vector multiply-adds per iteration.
    pub fn fmadd_count(&self) -> usize {
        self.body.iter().filter(|i| i.is_fmadd()).count()
    }

    /// Theoretical efficiency: FMAs / vector slots — 31/32 = 96.9% for
    /// Basic Kernel 1, 30/32 = 93.7% for Basic Kernel 2 (Section III-A2).
    pub fn theoretical_efficiency(&self) -> f64 {
        self.fmadd_count() as f64 / self.vector_count() as f64
    }
}

/// Applies `SWIZZLE_i` to a register value: replicate element `i` of each
/// 4-element lane four times within that lane (Fig. 1b).
pub fn swizzle(v: &VReg, i: u8) -> VReg {
    assert!(i < 4, "swizzle selects within a 4-element lane");
    let i = i as usize;
    [
        v[i],
        v[i],
        v[i],
        v[i],
        v[4 + i],
        v[4 + i],
        v[4 + i],
        v[4 + i],
    ]
}

/// Materializes a broadcast memory value (Fig. 1a).
pub fn broadcast(mem: &[f64], idx: usize, mode: BcastMode) -> VReg {
    match mode {
        BcastMode::OneToEight => [mem[idx]; VLEN],
        BcastMode::FourToEight => {
            let m = &mem[idx..idx + 4];
            [m[0], m[1], m[2], m[3], m[0], m[1], m[2], m[3]]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swizzle_replicates_lane_elements() {
        let v = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(swizzle(&v, 0), [0.0, 0.0, 0.0, 0.0, 4.0, 4.0, 4.0, 4.0]);
        assert_eq!(swizzle(&v, 2), [2.0, 2.0, 2.0, 2.0, 6.0, 6.0, 6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "4-element lane")]
    fn swizzle_index_bounded() {
        let _ = swizzle(&[0.0; 8], 4);
    }

    #[test]
    fn broadcast_modes() {
        let mem = [9.0, 8.0, 7.0, 6.0, 5.0];
        assert_eq!(broadcast(&mem, 1, BcastMode::OneToEight), [8.0; 8]);
        assert_eq!(
            broadcast(&mem, 0, BcastMode::FourToEight),
            [9.0, 8.0, 7.0, 6.0, 9.0, 8.0, 7.0, 6.0]
        );
    }

    #[test]
    fn addr_resolution() {
        let a = Addr::new(StreamId::A, 30, 7);
        assert_eq!(a.resolve(0, 0, 100), 107);
        assert_eq!(a.resolve(3, 0, 100), 100 + 90 + 7);
        let t = a.with_thread_scale(8);
        assert_eq!(t.resolve(3, 2, 100), 100 + 90 + 16 + 7);
    }

    #[test]
    fn port_usage_classification() {
        let mem = Addr::new(StreamId::B, 8, 0);
        assert!(Instr::Load { dst: 0, addr: mem }.uses_l1_read_port());
        assert!(Instr::Store { src: 0, addr: mem }.uses_l1_write_port());
        assert!(Instr::Fmadd {
            acc: 0,
            src: Operand::MemBcast(mem, BcastMode::OneToEight),
            b: 1
        }
        .uses_l1_read_port());
        assert!(!Instr::Fmadd {
            acc: 0,
            src: Operand::Swizzle(30, 1),
            b: 1
        }
        .uses_l1_read_port());
        assert!(!Instr::PrefetchL1(mem).is_vector());
        assert!(!Instr::ScalarOp.is_vector());
    }

    #[test]
    fn program_counting() {
        let mut p = Program::new();
        let mem = Addr::new(StreamId::B, 8, 0);
        p.push(Instr::Load { dst: 31, addr: mem });
        for r in 0..31u8 {
            p.push(Instr::Fmadd {
                acc: r,
                src: Operand::MemBcast(
                    Addr::new(StreamId::A, 31, r as usize),
                    BcastMode::OneToEight,
                ),
                b: 31,
            });
        }
        p.push(Instr::PrefetchL1(mem));
        assert_eq!(p.vector_count(), 32);
        assert_eq!(p.fmadd_count(), 31);
        assert!((p.theoretical_efficiency() - 31.0 / 32.0).abs() < 1e-12);
    }
}
