//! Block-trace fast path for the cycle-level emulator.
//!
//! The paper's kernels are steady-state loops: after cache warm-up, every
//! macro-iteration (one pass of the loop body on all hardware threads)
//! issues the same instructions on the same relative cycles with the same
//! cache outcomes. This module exploits that shape the way block-
//! compiling emulators do — but with a guard discipline that makes the
//! fast path *provably* bit-identical to the interpreter:
//!
//! 1. **Record.** While interpreting, [`crate::emu::CoreSim`] logs every
//!    executed instruction and every prefetch-fill event of the current
//!    segment (boundary = thread 0 about to wrap its loop body) as a
//!    `Cmd` with its cycle offset, iteration-relative address constant,
//!    and observed outcome class (L1 hit, in-flight prefetch with its
//!    wait, L2/memory miss, fill-in-hole, defer, forced fill).
//! 2. **Form.** When the last `2p` recorded segments are `p`-periodic
//!    (`p ≤` [`crate::pipeline::TraceConfig::max_period`]), they become a
//!    replay template.
//! 3. **Replay with guards.** At a segment boundary whose architectural
//!    entry pattern (thread PCs, uniform iteration counts, zero stall,
//!    iteration-relative pending-fill list) matches the template, the
//!    segment is re-executed command-by-command: real register/memory
//!    arithmetic, real cache/TLB/pending-list updates — but no per-cycle
//!    loop, no decode, no address resolution. Every cache and fill
//!    decision is re-evaluated against live state and compared to the
//!    recorded outcome class. **Any mismatch rolls the whole segment back
//!    via an undo log and deopts to the interpreter** — so the fast path
//!    can be wrong about steadiness, never about state.
//!
//! Deopt events: a mid-segment outcome mismatch (template dropped, ring
//! cleared), an entry-guard miss (that boundary interprets; recording
//! continues so the template can re-form), a program/bases fingerprint
//! change between runs (self-modifying listings), and
//! [`crate::emu::CoreSim::tlb_shootdown`].

use crate::cache::{CacheUndo, PendingFill};
use crate::emu::{CoreSim, RunStats, StreamBases, ThreadCtl};
use crate::isa::{broadcast, swizzle, Instr, Operand, Program, VReg, VLEN};
use crate::pipeline::TraceConfig;
use crate::tlb::TlbUndo;
use std::collections::VecDeque;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Identity of a (body, epilogue, stream bases, thread count) workload.
/// A change — e.g. a self-modifying edit of the kernel listing between
/// runs — invalidates every template.
pub(crate) fn fingerprint(
    body: &Program,
    epilogue: &Program,
    threads: &[StreamBases],
    nthreads: usize,
) -> u64 {
    let mut h = FNV_OFFSET;
    for s in [
        format!("{body:?}"),
        format!("{epilogue:?}"),
        format!("{threads:?}"),
        format!("{nthreads}"),
    ] {
        for &b in s.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Outcome class of a demand read, recorded and re-verified at replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum ReadOut {
    /// L1 hit.
    Hit,
    /// Line in flight from a prefetch; stalled `wait` cycles for it.
    Pending {
        /// The exact stall charged (verified at replay).
        wait: u64,
    },
    /// L1 miss, L2 hit.
    L2,
    /// Missed both levels.
    Mem,
}

/// Outcome class of one executed instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum ExecOut {
    /// No memory decision involved.
    None,
    /// The instruction's demand read resolved as recorded.
    Read(ReadOut),
    /// `vprefetch0` deduplicated against L1 or an in-flight fill.
    Pref1Skip,
    /// `vprefetch0` queued a fill (`l2_hit` selects its latency).
    Pref1Queue {
        /// Whether the line was already in L2.
        l2_hit: bool,
    },
}

/// What `advance_fills` did on a cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum FillKind {
    /// Fill completed in a port-free hole.
    Hole,
    /// Fill deferred by a busy port.
    Defer,
    /// Deferral threshold crossed: fill forced through with a stall.
    Forced,
}

/// One recorded event of a segment.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Cmd {
    /// Cycle offset from segment entry.
    pub(crate) off: u32,
    pub(crate) kind: CmdKind,
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum CmdKind {
    /// An issued instruction. `c0` is the iteration-relative address
    /// constant: the concrete element index is `c0 + k * scale_iter` for
    /// segment iteration `k` (0 for address-free instructions).
    Exec {
        tid: u8,
        instr: Instr,
        c0: i64,
        out: ExecOut,
    },
    /// An `advance_fills` action.
    Fill(FillKind),
}

/// Iteration-relative view of one in-flight prefetch.
#[derive(Clone, Copy, Debug, PartialEq)]
struct PendPat {
    elem_rel: i64,
    ready_rel: i64,
    deferred: u32,
    scale: usize,
}

/// The architectural entry guard of a segment: thread PCs, per-thread
/// iteration offsets relative to the segment reference (demand-stall
/// windows skew the round-robin by fractional iterations, so threads may
/// run permanently staggered), zero stall, no epilogue/done threads, and
/// the pending-fill list in iteration-relative form.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct EntryPat {
    pcs: Vec<u16>,
    /// `t.iter - (k - 1)` per thread; index 0 is 0 by construction of
    /// the reference `k = ts[0].iter + 1`.
    deltas: Vec<i16>,
    pending: Vec<PendPat>,
}

impl EntryPat {
    fn capture(core: &CoreSim, ts: &[ThreadCtl], k: usize, entry_cycle: u64) -> Option<Self> {
        if core.stall != 0 || ts.is_empty() || ts[0].iter + 1 != k {
            return None;
        }
        let mut pcs = Vec::with_capacity(ts.len());
        let mut deltas = Vec::with_capacity(ts.len());
        for t in ts {
            if t.in_epilogue || t.done || t.pc > u16::MAX as usize {
                return None;
            }
            let d = t.iter as i64 - (k as i64 - 1);
            if i16::try_from(d).is_err() {
                return None;
            }
            pcs.push(t.pc as u16);
            deltas.push(d as i16);
        }
        let pending = core
            .pending_fills
            .iter()
            .map(|f| PendPat {
                elem_rel: f.elem_idx as i64 - (k as i64) * (f.scale_iter as i64),
                ready_rel: f.ready_at as i64 - entry_cycle as i64,
                deferred: f.deferred,
                scale: f.scale_iter,
            })
            .collect();
        Some(Self {
            pcs,
            deltas,
            pending,
        })
    }

    fn max_delta(&self) -> i64 {
        self.deltas.iter().map(|&d| d as i64).max().unwrap_or(0)
    }
}

/// An in-progress segment recording (owned by [`CoreSim`] while the
/// interpreter runs; the emulator pushes [`Cmd`]s into it).
pub(crate) struct Recording {
    /// Segment reference iteration: entry `ts[0].iter + 1`. Address
    /// constants and mark crossings are stored relative to it.
    pub(crate) k: usize,
    /// Absolute cycle at segment entry.
    pub(crate) entry_cycle: u64,
    entry: EntryPat,
    /// Events in interpreter execution order.
    pub(crate) cmds: Vec<Cmd>,
    /// Smallest live-thread iteration seen so far (crossing detector).
    pub(crate) last_min: i64,
    /// Mark crossings: `(v - k, off)` for each iteration count `v` that
    /// became reached-by-all at cycle offset `off` — the points the
    /// `run_with_marks` checkpoints observe.
    pub(crate) reach: Vec<(i64, u32)>,
}

/// A finalized recorded segment.
#[derive(Clone, Debug, PartialEq)]
struct SegRec {
    entry: EntryPat,
    /// The architectural pattern observed at the segment's exit boundary,
    /// relative to reference `k + adv`. Replay restores thread state from
    /// *this* — never from the next template phase's entry, which is only
    /// equal to it when the recorded segments were truly consecutive.
    exit: EntryPat,
    cmds: Vec<Cmd>,
    len: u64,
    /// Reference-iteration advance across the segment (usually 1; a
    /// boundary gap can fuse several loop passes into one segment).
    adv: u32,
    reach: Vec<(i64, u32)>,
}

struct Template {
    /// `period` consecutive segments; replay cycles through them.
    segs: Vec<SegRec>,
    next_phase: usize,
}

/// Counters of the trace engine, exposed via
/// [`crate::emu::CoreSim::trace_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Segments recorded by the interpreter.
    pub recorded_segments: u64,
    /// Templates formed from periodic recordings.
    pub templates_formed: u64,
    /// Segments replayed through the fast path.
    pub replayed_segments: u64,
    /// Cycles covered by replayed segments.
    pub replayed_cycles: u64,
    /// Boundaries where a template existed but the entry guard missed.
    pub guard_misses: u64,
    /// Mid-segment mismatches: replay rolled back, template dropped.
    pub deopts: u64,
    /// Wholesale invalidations (fingerprint change, TLB shootdown).
    pub invalidations: u64,
}

/// Result of one successful segment replay.
pub(crate) struct Replayed {
    /// The segment's reference iteration.
    pub(crate) k: usize,
    /// Cycles the segment spans.
    pub(crate) len: u64,
    /// Mark crossings of the segment, `(v - k, off)` (see [`Recording`]).
    pub(crate) reach: Vec<(i64, u32)>,
}

/// The record/replay engine, held by [`CoreSim`] when tracing is enabled.
pub struct TraceEngine {
    cfg: TraceConfig,
    fp: Option<u64>,
    ring: VecDeque<SegRec>,
    template: Option<Template>,
    stats: TraceStats,
}

impl TraceEngine {
    pub(crate) fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.max_period >= 1 && cfg.ring_cap > 2 * cfg.max_period);
        Self {
            cfg,
            fp: None,
            ring: VecDeque::new(),
            template: None,
            stats: TraceStats::default(),
        }
    }

    /// Engine counters.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Drops all templates and recordings (block-invalidating event).
    pub(crate) fn invalidate_templates(&mut self) {
        if self.template.is_some() || !self.ring.is_empty() {
            self.stats.invalidations += 1;
        }
        self.template = None;
        self.ring.clear();
    }

    /// Called at the start of each `run_with_marks`: a changed workload
    /// fingerprint (edited listing, new bases) invalidates everything.
    /// The ring is cleared unconditionally — segments recorded in
    /// different runs are not temporally adjacent, and letting period
    /// detection pair them across the gap can form a template whose
    /// phases never occurred back-to-back.
    pub(crate) fn begin_run(&mut self, fp: u64) {
        if self.fp != Some(fp) {
            if self.fp.is_some() {
                self.invalidate_templates();
            }
            self.fp = Some(fp);
        }
        self.ring.clear();
    }

    /// Finalizes the recording that ended at this boundary (if any) and
    /// re-runs period detection over the ring. A recording is only
    /// finalized when this slot can itself serve as a segment entry
    /// (capture succeeds); the captured pattern is stored as the
    /// segment's exit so replay restores the state the interpreter
    /// actually reached.
    pub(crate) fn on_boundary(&mut self, core: &mut CoreSim, ts: &[ThreadCtl]) {
        let Some(rec) = core.rec.take() else { return };
        let Some(t0) = ts.first() else { return };
        let Some(exit) = EntryPat::capture(core, ts, t0.iter + 1, core.cycle) else {
            return;
        };
        let len = core.cycle - rec.entry_cycle;
        if t0.iter < rec.k || len == 0 {
            return;
        }
        let adv = (t0.iter - (rec.k - 1)) as u32;
        self.ring.push_back(SegRec {
            entry: rec.entry,
            exit,
            cmds: rec.cmds,
            len,
            adv,
            reach: rec.reach,
        });
        if self.ring.len() > self.cfg.ring_cap {
            self.ring.pop_front();
        }
        self.stats.recorded_segments += 1;
        self.try_form();
    }

    fn try_form(&mut self) {
        let n = self.ring.len();
        for p in 1..=self.cfg.max_period {
            if n < 2 * p {
                break;
            }
            if (n - p..n).all(|i| self.ring[i] == self.ring[i - p]) {
                self.template = Some(Template {
                    segs: (n - p..n).map(|i| self.ring[i].clone()).collect(),
                    next_phase: 0,
                });
                self.stats.templates_formed += 1;
                return;
            }
        }
    }

    /// Attempts to replay one segment at the current boundary. `None`
    /// means the interpreter must execute it (no template, guard miss,
    /// last iterations, or a deopt that just rolled back).
    pub(crate) fn try_replay(
        &mut self,
        core: &mut CoreSim,
        ts: &mut [ThreadCtl],
        iters: usize,
    ) -> Option<Replayed> {
        let p = self.template.as_ref()?.segs.len();
        let k = ts.first()?.iter + 1;
        let entry_cycle = core.cycle;
        let entry = EntryPat::capture(core, ts, k, entry_cycle)?;
        let tpl = self.template.as_ref()?;
        let phase = (0..p)
            .map(|i| (tpl.next_phase + i) % p)
            .find(|&ph| tpl.segs[ph].entry == entry);
        let Some(phase) = phase else {
            self.stats.guard_misses += 1;
            return None;
        };
        let next = (phase + 1) % p;
        // Loop-exit guard: every wrap the recorded segment performed
        // compared `iter >= iters` and found it false. That transfers to
        // the current `iters` iff the largest iteration count any thread
        // reaches by segment exit is still below it.
        let k_next = k + tpl.segs[phase].adv as usize;
        if (k_next as i64 - 1) + tpl.segs[phase].exit.max_delta() >= iters as i64 {
            return None;
        }
        match replay_segment(core, &tpl.segs[phase], k) {
            Ok(()) => {
                let seg_len = tpl.segs[phase].len;
                let reach = tpl.segs[phase].reach.clone();
                let xp = &tpl.segs[phase].exit;
                for ((t, &pc), &d) in ts.iter_mut().zip(xp.pcs.iter()).zip(xp.deltas.iter()) {
                    t.iter = ((k_next as i64 - 1) + d as i64) as usize;
                    t.pc = pc as usize;
                }
                core.cycle += seg_len;
                core.stats.cycles = core.cycle;
                self.template.as_mut().expect("template present").next_phase = next;
                self.stats.replayed_segments += 1;
                self.stats.replayed_cycles += seg_len;
                Some(Replayed {
                    k,
                    len: seg_len,
                    reach,
                })
            }
            Err(()) => {
                // State already rolled back bit-exactly; the interpreter
                // takes over and recording starts fresh.
                self.template = None;
                self.ring.clear();
                self.stats.deopts += 1;
                None
            }
        }
    }

    /// Arms a fresh recording for the segment starting at this boundary
    /// (a no-op when the entry state is not recordable).
    pub(crate) fn arm_recording(&mut self, core: &mut CoreSim, ts: &[ThreadCtl]) {
        let Some(t0) = ts.first() else {
            core.rec = None;
            return;
        };
        let k = t0.iter + 1;
        let entry_min = ts
            .iter()
            .filter(|t| !t.done)
            .map(|t| t.iter as i64)
            .min()
            .unwrap_or(0);
        core.rec = EntryPat::capture(core, ts, k, core.cycle).map(|entry| Recording {
            k,
            entry_cycle: core.cycle,
            entry,
            cmds: Vec::new(),
            last_min: entry_min,
            reach: Vec::new(),
        });
    }
}

/// Undo record for the pending-fill list.
enum PendUndo {
    Removed { pos: usize, f: PendingFill },
    Pushed,
    Deferred { pos: usize },
}

/// The rollback context of one replay attempt: snapshots of the `Copy`
/// state plus ordered undo logs for every mutated structure. Undoing each
/// log in reverse restores the exact pre-replay state (per-structure
/// ordering suffices — the structures share no storage).
struct ReplayCtx {
    snap_stats: RunStats,
    snap_cycle: u64,
    snap_stall: u64,
    snap_l1: (u64, u64),
    snap_l2: (u64, u64),
    snap_tlb: (u64, u64),
    l1_undo: Vec<CacheUndo>,
    l2_undo: Vec<CacheUndo>,
    tlb_undo: Vec<TlbUndo>,
    mem_undo: Vec<(usize, [f64; VLEN])>,
    reg_undo: Vec<(usize, usize, VReg)>,
    pend_undo: Vec<PendUndo>,
}

impl ReplayCtx {
    fn new(core: &CoreSim) -> Self {
        Self {
            snap_stats: core.stats,
            snap_cycle: core.cycle,
            snap_stall: core.stall,
            snap_l1: core.l1.stats(),
            snap_l2: core.l2.stats(),
            snap_tlb: core.tlb.stats(),
            l1_undo: Vec::new(),
            l2_undo: Vec::new(),
            tlb_undo: Vec::new(),
            mem_undo: Vec::new(),
            reg_undo: Vec::new(),
            pend_undo: Vec::new(),
        }
    }

    fn rollback(self, core: &mut CoreSim) {
        for op in self.pend_undo.into_iter().rev() {
            match op {
                PendUndo::Removed { pos, f } => core.pending_fills.insert(pos, f),
                PendUndo::Pushed => {
                    core.pending_fills.pop();
                }
                PendUndo::Deferred { pos } => core.pending_fills[pos].deferred -= 1,
            }
        }
        for (idx, old) in self.mem_undo.into_iter().rev() {
            core.mem[idx..idx + VLEN].copy_from_slice(&old);
        }
        for (tid, r, old) in self.reg_undo.into_iter().rev() {
            core.thread_regs[tid][r] = old;
        }
        for op in self.l1_undo.into_iter().rev() {
            core.l1.undo(op);
        }
        for op in self.l2_undo.into_iter().rev() {
            core.l2.undo(op);
        }
        for op in self.tlb_undo.into_iter().rev() {
            core.tlb.undo(op);
        }
        core.l1.set_stats(self.snap_l1.0, self.snap_l1.1);
        core.l2.set_stats(self.snap_l2.0, self.snap_l2.1);
        core.tlb.set_stats(self.snap_tlb.0, self.snap_tlb.1);
        core.stats = self.snap_stats;
        core.cycle = self.snap_cycle;
        core.stall = self.snap_stall;
    }
}

/// Replays a whole segment for iteration `k`, committing directly to core
/// state under guard checks. On any mismatch — including a post-condition
/// check that the resulting pending-fill list matches the segment's
/// recorded exit pattern — the undo log restores the entry state
/// bit-exactly and `Err` is returned.
fn replay_segment(core: &mut CoreSim, seg: &SegRec, k: usize) -> Result<(), ()> {
    let entry_cycle = core.cycle;
    let mut ctx = ReplayCtx::new(core);
    for cmd in &seg.cmds {
        let cur = entry_cycle + cmd.off as u64;
        let r = match &cmd.kind {
            CmdKind::Exec {
                tid,
                instr,
                c0,
                out,
            } => apply_exec(core, *tid as usize, instr, *c0, *out, k, cur, &mut ctx),
            CmdKind::Fill(kind) => apply_fill(core, *kind, cur, &mut ctx),
        };
        if r.is_err() {
            ctx.rollback(core);
            return Err(());
        }
    }
    let k_fin = (k + seg.adv as usize) as i64;
    let exit_cycle = (entry_cycle + seg.len) as i64;
    let pending_ok = core.pending_fills.len() == seg.exit.pending.len()
        && core
            .pending_fills
            .iter()
            .zip(seg.exit.pending.iter())
            .all(|(f, p)| {
                f.elem_idx as i64 - k_fin * (f.scale_iter as i64) == p.elem_rel
                    && f.ready_at as i64 - exit_cycle == p.ready_rel
                    && f.deferred == p.deferred
                    && f.scale_iter == p.scale
            });
    if !pending_ok {
        ctx.rollback(core);
        return Err(());
    }
    Ok(())
}

fn idx_of(c0: i64, scale: usize, k: usize) -> usize {
    (c0 + (k as i64) * (scale as i64)) as usize
}

fn expect_read(out: ExecOut) -> Result<ReadOut, ()> {
    match out {
        ExecOut::Read(r) => Ok(r),
        _ => Err(()),
    }
}

/// Mirror of `CoreSim::demand_access`, with the resolved outcome checked
/// against the recorded class.
fn replay_read(
    core: &mut CoreSim,
    idx: usize,
    expected: ReadOut,
    cur: u64,
    ctx: &mut ReplayCtx,
) -> Result<(), ()> {
    core.tlb.access_logged(idx * 8, &mut ctx.tlb_undo);
    if core.l1.access_logged(idx, &mut ctx.l1_undo) {
        return if expected == ReadOut::Hit {
            Ok(())
        } else {
            Err(())
        };
    }
    let line = idx / 8;
    if let Some(pos) = core
        .pending_fills
        .iter()
        .position(|f| f.elem_idx / 8 == line)
    {
        let f = core.pending_fills.remove(pos);
        ctx.pend_undo.push(PendUndo::Removed { pos, f });
        let wait = f.ready_at.saturating_sub(cur).max(1);
        if expected != (ReadOut::Pending { wait }) {
            return Err(());
        }
        core.stats.demand_stall_cycles += wait;
        core.l1.fill_logged(idx, &mut ctx.l1_undo);
        core.stats.fills_completed += 1;
        return Ok(());
    }
    let l2_hit = core.l2.contains(idx);
    let want = if l2_hit { ReadOut::L2 } else { ReadOut::Mem };
    if expected != want {
        return Err(());
    }
    let penalty = if l2_hit {
        core.cfg.demand_l2_penalty
    } else {
        core.cfg.demand_mem_penalty
    };
    core.stats.demand_stall_cycles += penalty;
    core.l2.fill_logged(idx, &mut ctx.l2_undo);
    core.l1.fill_logged(idx, &mut ctx.l1_undo);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn read_operand(
    core: &mut CoreSim,
    tid: usize,
    src: &Operand,
    c0: i64,
    out: ExecOut,
    k: usize,
    cur: u64,
    ctx: &mut ReplayCtx,
) -> Result<VReg, ()> {
    match src {
        Operand::Reg(r) => Ok(core.thread_regs[tid][*r as usize]),
        Operand::Swizzle(r, i) => Ok(swizzle(&core.thread_regs[tid][*r as usize], *i)),
        Operand::Mem(a) => {
            let idx = idx_of(c0, a.scale_iter, k);
            replay_read(core, idx, expect_read(out)?, cur, ctx)?;
            let mut v = [0.0; VLEN];
            v.copy_from_slice(&core.mem[idx..idx + VLEN]);
            Ok(v)
        }
        Operand::MemBcast(a, mode) => {
            let idx = idx_of(c0, a.scale_iter, k);
            replay_read(core, idx, expect_read(out)?, cur, ctx)?;
            Ok(broadcast(&core.mem, idx, *mode))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_exec(
    core: &mut CoreSim,
    tid: usize,
    instr: &Instr,
    c0: i64,
    out: ExecOut,
    k: usize,
    cur: u64,
    ctx: &mut ReplayCtx,
) -> Result<(), ()> {
    match *instr {
        Instr::Fmadd { acc, src, b } => {
            let sv = read_operand(core, tid, &src, c0, out, k, cur, ctx)?;
            let bv = core.thread_regs[tid][b as usize];
            ctx.reg_undo
                .push((tid, acc as usize, core.thread_regs[tid][acc as usize]));
            let dst = &mut core.thread_regs[tid][acc as usize];
            for l in 0..VLEN {
                dst[l] = sv[l].mul_add(bv[l], dst[l]);
            }
            core.stats.vector_issued += 1;
            core.stats.fmadds += 1;
            Ok(())
        }
        Instr::Load { dst, addr } => {
            let idx = idx_of(c0, addr.scale_iter, k);
            replay_read(core, idx, expect_read(out)?, cur, ctx)?;
            ctx.reg_undo
                .push((tid, dst as usize, core.thread_regs[tid][dst as usize]));
            let mut v = [0.0; VLEN];
            v.copy_from_slice(&core.mem[idx..idx + VLEN]);
            core.thread_regs[tid][dst as usize] = v;
            core.stats.vector_issued += 1;
            Ok(())
        }
        Instr::Store { src, addr } => {
            let idx = idx_of(c0, addr.scale_iter, k);
            core.tlb.access_logged(idx * 8, &mut ctx.tlb_undo);
            let mut old = [0.0; VLEN];
            old.copy_from_slice(&core.mem[idx..idx + VLEN]);
            ctx.mem_undo.push((idx, old));
            let v = core.thread_regs[tid][src as usize];
            core.mem[idx..idx + VLEN].copy_from_slice(&v);
            core.l1.fill_logged(idx, &mut ctx.l1_undo);
            core.stats.vector_issued += 1;
            Ok(())
        }
        Instr::Broadcast { dst, addr, mode } => {
            let idx = idx_of(c0, addr.scale_iter, k);
            replay_read(core, idx, expect_read(out)?, cur, ctx)?;
            ctx.reg_undo
                .push((tid, dst as usize, core.thread_regs[tid][dst as usize]));
            core.thread_regs[tid][dst as usize] = broadcast(&core.mem, idx, mode);
            core.stats.vector_issued += 1;
            Ok(())
        }
        Instr::Add { dst, src } => {
            let sv = read_operand(core, tid, &src, c0, out, k, cur, ctx)?;
            ctx.reg_undo
                .push((tid, dst as usize, core.thread_regs[tid][dst as usize]));
            let d = &mut core.thread_regs[tid][dst as usize];
            for l in 0..VLEN {
                d[l] += sv[l];
            }
            core.stats.vector_issued += 1;
            Ok(())
        }
        Instr::Mul { dst, src } => {
            let sv = read_operand(core, tid, &src, c0, out, k, cur, ctx)?;
            ctx.reg_undo
                .push((tid, dst as usize, core.thread_regs[tid][dst as usize]));
            let d = &mut core.thread_regs[tid][dst as usize];
            for l in 0..VLEN {
                d[l] *= sv[l];
            }
            core.stats.vector_issued += 1;
            Ok(())
        }
        Instr::PrefetchL1(addr) => {
            let idx = idx_of(c0, addr.scale_iter, k);
            core.tlb.access_logged(idx * 8, &mut ctx.tlb_undo);
            core.stats.vpipe_issued += 1;
            let line = idx / 8;
            let skip =
                core.l1.contains(idx) || core.pending_fills.iter().any(|f| f.elem_idx / 8 == line);
            match out {
                ExecOut::Pref1Skip if skip => Ok(()),
                ExecOut::Pref1Queue { l2_hit } if !skip => {
                    if core.l2.contains(idx) != l2_hit {
                        return Err(());
                    }
                    let latency = if l2_hit {
                        core.cfg.l2_hit_latency
                    } else {
                        core.cfg.mem_latency
                    };
                    core.l2.fill_logged(idx, &mut ctx.l2_undo);
                    core.pending_fills.push(PendingFill {
                        elem_idx: idx,
                        ready_at: cur + latency,
                        deferred: 0,
                        scale_iter: addr.scale_iter,
                    });
                    ctx.pend_undo.push(PendUndo::Pushed);
                    Ok(())
                }
                _ => Err(()),
            }
        }
        Instr::PrefetchL2(addr) => {
            let idx = idx_of(c0, addr.scale_iter, k);
            core.tlb.access_logged(idx * 8, &mut ctx.tlb_undo);
            core.stats.vpipe_issued += 1;
            core.l2.fill_logged(idx, &mut ctx.l2_undo);
            Ok(())
        }
        Instr::ScalarOp => {
            core.stats.vpipe_issued += 1;
            Ok(())
        }
    }
}

/// Mirror of `CoreSim::advance_fills` for one recorded action.
fn apply_fill(core: &mut CoreSim, kind: FillKind, cur: u64, ctx: &mut ReplayCtx) -> Result<(), ()> {
    let Some(pos) = core.pending_fills.iter().position(|f| f.ready_at <= cur) else {
        return Err(());
    };
    match kind {
        FillKind::Hole => {
            let f = core.pending_fills.remove(pos);
            ctx.pend_undo.push(PendUndo::Removed { pos, f });
            core.l1.fill_logged(f.elem_idx, &mut ctx.l1_undo);
            core.stats.fills_completed += 1;
            core.stats.fills_in_holes += 1;
            Ok(())
        }
        FillKind::Defer => {
            core.pending_fills[pos].deferred += 1;
            ctx.pend_undo.push(PendUndo::Deferred { pos });
            if core.pending_fills[pos].deferred >= core.cfg.fill_defer_threshold {
                Err(())
            } else {
                Ok(())
            }
        }
        FillKind::Forced => {
            let f = core.pending_fills.remove(pos);
            ctx.pend_undo.push(PendUndo::Removed { pos, f });
            if f.deferred + 1 < core.cfg.fill_defer_threshold {
                return Err(());
            }
            core.l1.fill_logged(f.elem_idx, &mut ctx.l1_undo);
            core.stats.fills_completed += 1;
            core.stats.fill_stall_cycles += core.cfg.fill_stall_cycles;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::emu::{CoreSim, StreamBases};
    use crate::isa::{Addr, Instr, Operand, Program, StreamId};
    use crate::pipeline::PipelineConfig;

    /// A streaming kernel shaped like the paper's inner loops: one load,
    /// FMA work, an L2 and an L1 prefetch one/two iterations ahead.
    fn streaming_body() -> Program {
        let mut p = Program::new();
        p.push(Instr::Load {
            dst: 0,
            addr: Addr::new(StreamId::A, 8, 0),
        });
        for _ in 0..6 {
            p.push(Instr::Fmadd {
                acc: 1,
                src: Operand::Reg(0),
                b: 2,
            });
        }
        p.push(Instr::PrefetchL2(Addr::new(StreamId::A, 8, 32)));
        p.push(Instr::PrefetchL1(Addr::new(StreamId::A, 8, 16)));
        p.push(Instr::ScalarOp);
        p
    }

    fn epilogue_store() -> Program {
        let mut p = Program::new();
        p.push(Instr::Store {
            src: 1,
            addr: Addr::new(StreamId::C, 0, 0),
        });
        p
    }

    fn mem_image() -> Vec<f64> {
        (0..16384).map(|i| (i % 97) as f64 * 0.5 - 3.0).collect()
    }

    fn pair() -> (CoreSim, CoreSim) {
        let slow = CoreSim::new(PipelineConfig::default(), mem_image());
        let mut fast = CoreSim::new(PipelineConfig::default(), mem_image());
        fast.enable_trace();
        (slow, fast)
    }

    #[test]
    fn steady_loop_replays_bit_identically() {
        let body = streaming_body();
        let epi = epilogue_store();
        let threads = [StreamBases {
            a: 0,
            b: 0,
            c: 8192,
        }];
        let (mut slow, mut fast) = pair();
        let rs = slow.run_with_marks(&body, &epi, 96, &threads, 24, 80);
        let rf = fast.run_with_marks(&body, &epi, 96, &threads, 24, 80);
        assert_eq!(rs, rf, "total and mark cycles must match");
        assert_eq!(slow.state_digest(), fast.state_digest());
        let ts = fast.trace_stats().unwrap();
        assert!(ts.templates_formed >= 1, "{ts:?}");
        assert!(ts.replayed_segments > 60, "{ts:?}");
        assert_eq!(ts.deopts, 0, "{ts:?}");
        assert!(fast.replay_speedup() > 2.0, "{}", fast.replay_speedup());
    }

    #[test]
    fn four_threads_replay_bit_identically() {
        let body = streaming_body();
        let mk = |t: usize| StreamBases {
            a: t * 2048,
            b: 0,
            c: 8192 + t * 64,
        };
        let threads = [mk(0), mk(1), mk(2), mk(3)];
        let (mut slow, mut fast) = pair();
        let rs = slow.run_with_marks(&body, &epilogue_store(), 64, &threads, 16, 48);
        let rf = fast.run_with_marks(&body, &epilogue_store(), 64, &threads, 16, 48);
        assert_eq!(rs, rf);
        assert_eq!(slow.state_digest(), fast.state_digest());
        let ts = fast.trace_stats().unwrap();
        assert!(ts.replayed_segments > 0, "{ts:?}");
    }

    #[test]
    fn cache_divergence_deopts_and_rolls_back_exactly() {
        // An all-vector body: the wrap slot re-issues body[0] (a vector
        // op) immediately, so the steady boundary state is pc == 0 —
        // identical to a fresh run's first boundary. Run 1's template
        // records cold demand misses; run 2 walks the same (now cached)
        // addresses, so the entry guard matches but the first replayed
        // read resolves differently → a genuine mid-segment deopt whose
        // rollback must leave the state bit-identical to the interpreter.
        let mut body = Program::new();
        body.push(Instr::Load {
            dst: 0,
            addr: Addr::new(StreamId::A, 8, 0),
        });
        for _ in 0..7 {
            body.push(Instr::Fmadd {
                acc: 1,
                src: Operand::Reg(0),
                b: 2,
            });
        }
        let threads = [StreamBases::default()];
        let (mut slow, mut fast) = pair();
        slow.run(&body, &Program::new(), 48, &threads);
        fast.run(&body, &Program::new(), 48, &threads);
        assert!(fast.trace_stats().unwrap().replayed_segments > 0);
        slow.run(&body, &Program::new(), 48, &threads);
        fast.run(&body, &Program::new(), 48, &threads);
        let ts = fast.trace_stats().unwrap();
        assert!(ts.deopts >= 1, "stale template must deopt: {ts:?}");
        assert_eq!(slow.state_digest(), fast.state_digest());
        assert!(
            ts.replayed_segments > 0,
            "template must re-form after deopt: {ts:?}"
        );
    }

    #[test]
    fn program_edit_invalidates_templates() {
        let body = streaming_body();
        let threads = [StreamBases::default()];
        let (mut slow, mut fast) = pair();
        slow.run(&body, &Program::new(), 40, &threads);
        fast.run(&body, &Program::new(), 40, &threads);
        // A self-modifying listing edit: same length, different opcode mix.
        let mut edited = streaming_body();
        edited.body[3] = Instr::Add {
            dst: 1,
            src: Operand::Reg(0),
        };
        slow.run(&edited, &Program::new(), 40, &threads);
        fast.run(&edited, &Program::new(), 40, &threads);
        let ts = fast.trace_stats().unwrap();
        assert!(ts.invalidations >= 1, "{ts:?}");
        assert_eq!(slow.state_digest(), fast.state_digest());
    }

    #[test]
    fn tlb_shootdown_matches_interpreter() {
        let body = streaming_body();
        let threads = [StreamBases::default()];
        let (mut slow, mut fast) = pair();
        slow.run(&body, &Program::new(), 40, &threads);
        fast.run(&body, &Program::new(), 40, &threads);
        slow.tlb_shootdown();
        fast.tlb_shootdown();
        slow.run(&body, &Program::new(), 40, &threads);
        fast.run(&body, &Program::new(), 40, &threads);
        assert_eq!(slow.state_digest(), fast.state_digest());
        assert!(fast.trace_stats().unwrap().invalidations >= 1);
    }

    #[test]
    fn empty_body_and_epilogue_only_runs_are_safe() {
        let threads = [StreamBases::default()];
        let (mut slow, mut fast) = pair();
        let rs = slow.run(&Program::new(), &epilogue_store(), 0, &threads);
        let rf = fast.run(&Program::new(), &epilogue_store(), 0, &threads);
        assert_eq!(rs, rf);
        assert_eq!(slow.state_digest(), fast.state_digest());
        let ts = fast.trace_stats().unwrap();
        assert_eq!(ts.replayed_segments, 0);
    }

    #[test]
    fn memory_value_changes_do_not_need_deopt() {
        // Replay executes real arithmetic against live memory, so changing
        // *data* (not programs) between runs must neither deopt nor
        // diverge.
        let body = streaming_body();
        let threads = [StreamBases::default()];
        let (mut slow, mut fast) = pair();
        slow.run(&body, &Program::new(), 48, &threads);
        fast.run(&body, &Program::new(), 48, &threads);
        for m in [&mut slow, &mut fast] {
            for v in m.mem_mut().iter_mut().take(512) {
                *v *= -1.25;
            }
        }
        slow.run(&body, &Program::new(), 48, &threads);
        fast.run(&body, &Program::new(), 48, &threads);
        assert_eq!(slow.state_digest(), fast.state_digest());
        let ts = fast.trace_stats().unwrap();
        assert_eq!(ts.deopts, 0, "{ts:?}");
        assert!(ts.replayed_segments > 40, "{ts:?}");
    }
}
