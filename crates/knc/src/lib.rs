//! Knights Corner (KNC) substrate: the simulated replacement for the Intel
//! Xeon Phi coprocessor the paper runs on.
//!
//! Since no Phi hardware (or toolchain) exists in this environment, the
//! coprocessor is rebuilt as three cooperating layers:
//!
//! 1. [`isa`] + [`emu`] — an **instruction-level emulator** for the vector
//!    ISA subset the paper's DGEMM kernels use (Fig. 1–2): 512-bit fused
//!    multiply-add with `1to8`/`4to8` memory broadcast, in-flight register
//!    swizzles, aligned loads/stores and L1/L2 prefetches. Programs execute
//!    real `f64` arithmetic against real memory, so emulated kernels are
//!    verified bit-for-bit against `phi-blas`.
//! 2. [`cache`] + [`pipeline`] — a **cycle-level core model**: in-order
//!    dual-issue pipeline, 4-way round-robin SMT, two-ported L1 with the
//!    deferred-fill / threshold-stall prefetch semantics of Fig. 1c, and
//!    set-associative L1/L2 caches. This is the layer on which Basic
//!    Kernel 1 loses to Basic Kernel 2 (Section III-A2), for exactly the
//!    reason the paper gives: port conflicts between streaming FMAs and
//!    prefetch fills.
//! 3. [`chip`] — an **analytic chip model** that composes per-iteration
//!    cycle counts (calibrated from the emulator) with the paper's own
//!    overhead terms — C-tile update, packing traffic, L2 spill, tile
//!    quantization across 60 cores — to predict DGEMM/SGEMM efficiency at
//!    paper scale (Table II, Fig. 4) and to provide task durations for the
//!    discrete-event Linpack simulations (Fig. 6–9, Table III).
//!
//! The division of labour is deliberate: the emulator establishes the
//! *microarchitectural* constants from first principles; the chip model
//! scales them to matrices that would need terabytes if held in memory.

#![warn(missing_docs)]

pub mod cache;
pub mod chip;
pub mod disasm;
pub mod emu;
pub mod isa;
pub mod kernels;
pub mod pipeline;
pub mod roofline;
pub mod spmv;
pub mod stencil;
pub mod stream;
pub mod tlb;
pub mod trace;

pub use chip::{GemmModel, KncChip, LuTaskModel, Precision};
pub use emu::{CoreSim, RunStats};
pub use isa::{Addr, BcastMode, Instr, Operand, Program, StreamId};
pub use kernels::{build_basic_kernel, run_tile_product, KernelReport};
pub use pipeline::{PipelineConfig, TraceConfig};
pub use roofline::{RooflineClass, RooflinePoint};
pub use spmv::{build_spmv_kernel, run_spmv, run_spmv_traced, Csr, SpmvReport};
pub use stencil::{build_stencil_kernel, run_stencil, StarStencil, StencilReport};
pub use trace::TraceStats;
