//! CSR sparse matrix–vector product on the emulated core — the
//! bandwidth-bound workload of the performance lab.
//!
//! The storage follows Saule et al.'s KNC SpMV study: rows are grouped
//! into *slices* of 8 (one vector lane per row, the ELLPACK-sliced
//! "SELL-C" format with C = `VLEN`), and each four-thread run covers one
//! *row block* of 4 slices. Within a block every slice is padded to the
//! block's chunk depth `L` — the per-thread nonzero balance knob: sorting
//! or blocking rows so slices in a block have similar lengths keeps the
//! zero-padding (and therefore the wasted bandwidth) small.
//!
//! Per chunk the kernel streams one cache line of packed values and one
//! line of pre-gathered `x` entries through a single FMA, then closes
//! the iteration with two u-pipe-only `vprefetch1` turns:
//!
//! ```text
//! vprefetch0 [vals  + 128]      ; vmovapd     v31, [vals]
//! vprefetch0 [xpack + 128]      ; vfmadd231pd v0, v31, [xpack]
//! vprefetch1 [vals  + 1024]
//! vprefetch1 [xpack + 1024]
//! ```
//!
//! Every vector slot reads memory (zero register reuse — the defining
//! property of the bandwidth-bound class), so without the trailing
//! `vprefetch1` turns the L1 ports would be busy on every cycle and the
//! two fills each chunk queues could only force their way in through
//! Fig. 1c threshold stalls. The two u-only turns are deliberate holes:
//! one deferred fill completes in each, balancing fills against holes
//! exactly, and the steady state becomes a pure L1-hit fixed point that
//! the block-trace engine can template and replay. The kernel's roofline
//! class is [`RooflineClass::BandwidthBound`](crate::roofline::RooflineClass::BandwidthBound) by construction — the
//! memory system still paces the chip-level throughput; the hole
//! structure just keeps the core from paying for that twice.

use crate::emu::{CoreSim, RunStats, StreamBases};
use crate::isa::{Addr, Instr, Operand, Program, StreamId, LINE_ELEMS, VLEN};
use crate::pipeline::PipelineConfig;
use crate::roofline::{self, RooflinePoint};
use crate::trace::TraceStats;

/// Rows per slice: one vector lane per row.
pub const SLICE_ROWS: usize = VLEN;
/// Slices per four-thread row block.
pub const BLOCK_SLICES: usize = 4;
/// Rows covered by one emulated run.
pub const BLOCK_ROWS: usize = SLICE_ROWS * BLOCK_SLICES;
/// L1 prefetch distance in chunks (= cache lines). Two iterations of
/// lead time (32 aggregate cycles at 4 threads) comfortably covers the
/// 12-cycle L2 fill latency while keeping the pending-fill queue shallow
/// enough that the steady state is a fixed point the trace engine can
/// template. Bounded above by the lint warmup window (8 lines).
pub const SPMV_PF_DIST: usize = 2;
/// L2 prefetch distance in chunks for the `vprefetch1` filler turns.
/// Further out than [`SPMV_PF_DIST`] so a line is already L2-resident
/// when its L1 prefetch issues — the standard KNC two-level software
/// prefetch ladder.
pub const SPMV_PF_L2_DIST: usize = 16;

/// A compressed-sparse-row matrix (f64 values, element column indices).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes row `r`'s nonzeros.
    pub row_ptr: Vec<usize>,
    /// Column of each nonzero.
    pub col_idx: Vec<usize>,
    /// Value of each nonzero.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from (row, col, value) triplets. Triplets are
    /// sorted (row-major, then by column) and duplicates are summed, so
    /// construction is a pure function of the triplet *set*.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut t: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &t {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
        }
        t.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(t.len());
        let mut vals = Vec::with_capacity(t.len());
        let mut last_rc: Option<(usize, usize)> = None;
        for (r, c, v) in t {
            if last_rc == Some((r, c)) {
                *vals.last_mut().unwrap() += v;
            } else {
                col_idx.push(c);
                vals.push(v);
                last_rc = Some((r, c));
            }
            row_ptr[r + 1] = col_idx.len();
        }
        // Make row_ptr cumulative over empty rows too.
        for r in 0..rows {
            row_ptr[r + 1] = row_ptr[r + 1].max(row_ptr[r]);
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// The matrix as sorted (row, col, value) triplets — the inverse of
    /// [`Csr::from_triplets`] for duplicate-free input.
    pub fn to_triplets(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                out.push((r, self.col_idx[i], self.vals[i]));
            }
        }
        out
    }

    /// Stored nonzero count.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Length of row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Arithmetic intensity of `y = A·x` in flops per byte, charging the
    /// standard CSR traffic: 12 bytes per nonzero (8-byte value + 4-byte
    /// column index), one streaming pass over `x`, and a read+write of
    /// `y` plus the row pointers.
    pub fn arithmetic_intensity(&self) -> f64 {
        let flops = 2.0 * self.nnz() as f64;
        let bytes = 12.0 * self.nnz() as f64 + 8.0 * self.cols as f64 + 20.0 * self.rows as f64;
        flops / bytes.max(1.0)
    }

    /// Roofline placement of this operator on `chip`.
    pub fn roofline(&self, chip: &crate::chip::KncChip) -> RooflinePoint {
        roofline::place(chip, self.arithmetic_intensity())
    }
}

/// Reference `y = A·x`, accumulating each row's nonzeros in CSR order
/// with fused multiply-adds — bit-identical to the emulated kernel
/// (zero-padding contributes `0·0 + acc = acc` exactly).
pub fn reference_spmv(a: &Csr, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols);
    let mut y = vec![0.0; a.rows];
    for (r, yr) in y.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for i in a.row_ptr[r]..a.row_ptr[r + 1] {
            acc = a.vals[i].mul_add(x[a.col_idx[i]], acc);
        }
        *yr = acc;
    }
    y
}

/// Builds the SpMV inner loop for a row block of chunk depth `chunks`.
///
/// Register map: `v0` = the 8 row accumulators of this thread's slice,
/// `v31` = the current chunk of packed values. Stream map: `A` = packed
/// values (one base for the block, thread-strided by `8·chunks`), `B` =
/// this thread's pre-gathered `x` chunks, `C` = the slice's `y` vector.
pub fn build_spmv_kernel(chunks: usize) -> (Program, Program) {
    assert!(chunks >= 1);
    let tstride = SLICE_ROWS * chunks;
    let mut body = Program::new();
    body.push(Instr::PrefetchL1(
        Addr::new(StreamId::A, LINE_ELEMS, SPMV_PF_DIST * LINE_ELEMS).with_thread_scale(tstride),
    ));
    body.push(Instr::Load {
        dst: 31,
        addr: Addr::new(StreamId::A, LINE_ELEMS, 0).with_thread_scale(tstride),
    });
    body.push(Instr::PrefetchL1(Addr::new(
        StreamId::B,
        LINE_ELEMS,
        SPMV_PF_DIST * LINE_ELEMS,
    )));
    body.push(Instr::Fmadd {
        acc: 0,
        src: Operand::Mem(Addr::new(StreamId::B, LINE_ELEMS, 0)),
        b: 31,
    });
    // Two u-pipe-only `vprefetch1` turns close the iteration. They claim
    // no L1 port, so each is a hole in which one deferred L1 fill can
    // complete — exactly the two fills the iteration queued above. The
    // balance (2 fills in, 2 holes out) is what keeps the steady state on
    // the L1-hit path instead of the Fig. 1c forced-stall path.
    body.push(Instr::PrefetchL2(
        Addr::new(StreamId::A, LINE_ELEMS, SPMV_PF_L2_DIST * LINE_ELEMS).with_thread_scale(tstride),
    ));
    body.push(Instr::PrefetchL2(Addr::new(
        StreamId::B,
        LINE_ELEMS,
        SPMV_PF_L2_DIST * LINE_ELEMS,
    )));
    let mut epi = Program::new();
    epi.push(Instr::Store {
        src: 0,
        addr: Addr::new(StreamId::C, 0, 0),
    });
    #[cfg(debug_assertions)]
    for (what, p) in [("body", &body), ("epilogue", &epi)] {
        let errs = crate::disasm::validate(p);
        assert!(
            errs.is_empty(),
            "generated spmv {what} is invalid: {errs:?}"
        );
    }
    (body, epi)
}

/// The listing shipped to static analysis: a canonical chunk depth, deep
/// enough that the lint walk sees disjoint per-thread slices.
pub const SPMV_LINT_CHUNKS: usize = 512;

/// The SpMV listing `phi-lint` and the conformance suite analyze.
pub fn spmv_listing() -> (Program, Program) {
    build_spmv_kernel(SPMV_LINT_CHUNKS)
}

/// Outcome of emulating `y = A·x` over every row block.
#[derive(Clone, Debug)]
pub struct SpmvReport {
    /// Matrix shape.
    pub rows: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Padded nonzeros actually streamed (the balance overhead).
    pub padded_nnz: usize,
    /// Total cycles across all row blocks.
    pub cycles_total: u64,
    /// Aggregated emulator counters.
    pub stats: RunStats,
    /// The computed `y`.
    pub y: Vec<f64>,
}

impl SpmvReport {
    /// Useful flops per cycle achieved by the emulated core (peak = 16).
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles_total == 0 {
            0.0
        } else {
            2.0 * self.nnz as f64 / self.cycles_total as f64
        }
    }

    /// Padding overhead: streamed per stored nonzero (≥ 1).
    pub fn balance_overhead(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.padded_nnz as f64 / self.nnz as f64
        }
    }
}

struct BlockLayout {
    a_base: usize,
    b_base: [usize; BLOCK_SLICES],
    c_base: [usize; BLOCK_SLICES],
    total: usize,
}

fn block_layout(chunks: usize) -> BlockLayout {
    let a_len = BLOCK_SLICES * SLICE_ROWS * chunks;
    let b_len = SLICE_ROWS * chunks;
    let mut cursor = a_len;
    let b_base = std::array::from_fn(|_| {
        let base = cursor;
        cursor += b_len;
        base
    });
    let c_base = std::array::from_fn(|_| {
        let base = cursor;
        cursor += SLICE_ROWS;
        base
    });
    BlockLayout {
        a_base: 0,
        b_base,
        c_base,
        total: cursor,
    }
}

/// Emulates `y = A·x` block by block (interpreter path).
pub fn run_spmv(a: &Csr, x: &[f64], cfg: PipelineConfig) -> SpmvReport {
    run_spmv_impl(a, x, cfg, false).0
}

/// [`run_spmv`] with the block-trace fast path enabled. The report is
/// bit-identical to the interpreter's; the extras are the aggregated
/// trace counters and the overall coverage speedup.
pub fn run_spmv_traced(a: &Csr, x: &[f64], cfg: PipelineConfig) -> (SpmvReport, TraceStats, f64) {
    let (rep, extra) = run_spmv_impl(a, x, cfg, true);
    let (stats, speedup) = extra.expect("tracing was enabled");
    (rep, stats, speedup)
}

fn run_spmv_impl(
    a: &Csr,
    x: &[f64],
    cfg: PipelineConfig,
    traced: bool,
) -> (SpmvReport, Option<(TraceStats, f64)>) {
    assert_eq!(x.len(), a.cols, "x length");
    let blocks = a.rows.div_ceil(BLOCK_ROWS);
    let mut y = vec![0.0; a.rows];
    let mut cycles_total = 0u64;
    let mut stats = RunStats::default();
    let mut trace = TraceStats::default();
    let mut replayed_cycles = 0u64;
    let mut padded_nnz = 0usize;

    for blk in 0..blocks {
        let row0 = blk * BLOCK_ROWS;
        let chunks = (row0..(row0 + BLOCK_ROWS).min(a.rows))
            .map(|r| a.row_len(r))
            .max()
            .unwrap_or(1)
            .max(1);
        padded_nnz += BLOCK_ROWS.min(a.rows - row0) * chunks;

        let (body, epi) = build_spmv_kernel(chunks);
        let l = block_layout(chunks);
        let mut mem = vec![0.0; l.total];
        for t in 0..BLOCK_SLICES {
            for lane in 0..SLICE_ROWS {
                let r = row0 + t * SLICE_ROWS + lane;
                if r >= a.rows {
                    continue;
                }
                for (p, i) in (a.row_ptr[r]..a.row_ptr[r + 1]).enumerate() {
                    mem[l.a_base + (t * chunks + p) * SLICE_ROWS + lane] = a.vals[i];
                    mem[l.b_base[t] + p * SLICE_ROWS + lane] = x[a.col_idx[i]];
                }
            }
        }
        let threads: [StreamBases; BLOCK_SLICES] = std::array::from_fn(|t| StreamBases {
            a: l.a_base,
            b: l.b_base[t],
            c: l.c_base[t],
        });
        let mut sim = CoreSim::new(cfg, mem);
        // The packing stage just wrote the value and x-gather buffers:
        // they are L2-resident, so prefetches pay the L2-hit latency.
        sim.warm_l2(l.a_base, BLOCK_SLICES * SLICE_ROWS * chunks);
        sim.warm_l2(l.b_base[0], BLOCK_SLICES * SLICE_ROWS * chunks);
        if traced {
            sim.enable_trace();
        }
        cycles_total += sim.run(&body, &epi, chunks, &threads);
        let s = sim.stats();
        stats.cycles += s.cycles;
        stats.vector_issued += s.vector_issued;
        stats.fmadds += s.fmadds;
        stats.vpipe_issued += s.vpipe_issued;
        stats.fill_stall_cycles += s.fill_stall_cycles;
        stats.demand_stall_cycles += s.demand_stall_cycles;
        stats.fills_in_holes += s.fills_in_holes;
        stats.fills_completed += s.fills_completed;
        if let Some(ts) = sim.trace_stats() {
            trace.recorded_segments += ts.recorded_segments;
            trace.templates_formed += ts.templates_formed;
            trace.replayed_segments += ts.replayed_segments;
            trace.replayed_cycles += ts.replayed_cycles;
            trace.guard_misses += ts.guard_misses;
            trace.deopts += ts.deopts;
            trace.invalidations += ts.invalidations;
            replayed_cycles += ts.replayed_cycles;
        }
        for t in 0..BLOCK_SLICES {
            for lane in 0..SLICE_ROWS {
                let r = row0 + t * SLICE_ROWS + lane;
                if r < a.rows {
                    y[r] = sim.mem()[l.c_base[t] + lane];
                }
            }
        }
    }

    let extra = traced.then(|| {
        let interpreted = cycles_total.saturating_sub(replayed_cycles);
        let speedup = if cycles_total == 0 || interpreted == 0 {
            1.0
        } else {
            cycles_total as f64 / interpreted as f64
        };
        (trace, speedup)
    });
    (
        SpmvReport {
            rows: a.rows,
            nnz: a.nnz(),
            padded_nnz,
            cycles_total,
            stats,
            y,
        },
        extra,
    )
}

/// A deterministic banded test matrix: `band` nonzeros per row, columns
/// wrapping modulo `n`, values seeded from an FNV-mixed counter.
pub fn banded_csr(n: usize, band: usize, seed: u64) -> Csr {
    let mut triplets = Vec::with_capacity(n * band);
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for r in 0..n {
        for j in 0..band {
            let c = (r + j * 7 + 1) % n;
            h ^= (r * band + j) as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
            let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            triplets.push((r, c, v));
        }
    }
    Csr::from_triplets(n, n, &triplets)
}

/// A deterministic rectangular matrix with exactly `per_row` nonzeros in
/// every row — deep uniform slices, the shape the replay fast path sees
/// in a long inner loop.
pub fn uniform_rect_csr(rows: usize, per_row: usize, seed: u64) -> Csr {
    let cols = (8 * per_row).max(16);
    let mut triplets = Vec::with_capacity(rows * per_row);
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for r in 0..rows {
        for j in 0..per_row {
            let c = (r * 13 + j * 11 + 1) % cols;
            h ^= (r * per_row + j) as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
            let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            triplets.push((r, c, v));
        }
    }
    Csr::from_triplets(rows, cols, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::KncChip;
    use crate::roofline::RooflineClass;

    #[test]
    fn csr_round_trips_through_triplets() {
        let a = banded_csr(40, 3, 1);
        let b = Csr::from_triplets(a.rows, a.cols, &a.to_triplets());
        assert_eq!(a, b);
    }

    #[test]
    fn from_triplets_sorts_and_sums_duplicates() {
        let a = Csr::from_triplets(2, 4, &[(1, 3, 2.0), (0, 1, 1.0), (1, 3, 0.5), (1, 0, -1.0)]);
        assert_eq!(a.row_ptr, vec![0, 1, 3]);
        assert_eq!(a.col_idx, vec![1, 0, 3]);
        assert_eq!(a.vals, vec![1.0, -1.0, 2.5]);
    }

    #[test]
    fn emulated_spmv_matches_reference_bitwise() {
        let a = banded_csr(80, 5, 7); // 80 rows: 2 full blocks + a ragged one
        let x: Vec<f64> = (0..a.cols).map(|i| 0.25 + i as f64 * 0.5).collect();
        let rep = run_spmv(&a, &x, PipelineConfig::default());
        assert_eq!(rep.y, reference_spmv(&a, &x));
        assert_eq!(rep.nnz, 400);
        assert!(rep.balance_overhead() >= 1.0);
    }

    #[test]
    fn spmv_is_bandwidth_bound_on_the_roofline() {
        let a = banded_csr(256, 8, 3);
        let chip = KncChip::default();
        let p = a.roofline(&chip);
        assert_eq!(p.class, RooflineClass::BandwidthBound);
        assert!(p.attainable_gflops < 0.1 * chip.native_peak_gflops(crate::Precision::F64));
    }

    #[test]
    fn traced_spmv_is_bit_identical_and_replays() {
        let a = uniform_rect_csr(BLOCK_ROWS, 300, 11); // one deep block
        let x: Vec<f64> = (0..a.cols).map(|i| (i % 17) as f64 - 8.0).collect();
        let slow = run_spmv(&a, &x, PipelineConfig::default());
        let (fast, ts, speedup) = run_spmv_traced(&a, &x, PipelineConfig::default());
        assert_eq!(slow.cycles_total, fast.cycles_total);
        assert_eq!(slow.stats, fast.stats);
        assert_eq!(slow.y, fast.y);
        assert!(
            ts.replayed_segments > 100,
            "deep spmv block must replay: {ts:?}"
        );
        assert!(speedup > 1.5, "coverage speedup {speedup:.2}");
    }

    /// Authoring aid: sweep prefetch distances and print trace-engine
    /// behaviour. `cargo test -p phi-knc --lib probe_spmv -- --ignored --nocapture`
    #[test]
    #[ignore]
    fn probe_spmv_replay() {
        let a = uniform_rect_csr(BLOCK_ROWS, 300, 11);
        let x: Vec<f64> = (0..a.cols).map(|i| (i % 17) as f64 - 8.0).collect();
        let (rep, ts, speedup) = run_spmv_traced(&a, &x, PipelineConfig::default());
        println!(
            "dist={SPMV_PF_DIST} cycles={} fill_stall={} demand_stall={} holes={} {ts:?} speedup={speedup:.2}",
            rep.cycles_total,
            rep.stats.fill_stall_cycles,
            rep.stats.demand_stall_cycles,
            rep.stats.fills_in_holes,
        );
    }

    #[test]
    fn kernel_balances_fills_against_holes() {
        // Every vector slot touches memory (zero register reuse), and the
        // body ends in exactly two u-pipe-only vprefetch1 turns — one
        // port-free hole per L1 fill the iteration queues.
        let (body, _) = spmv_listing();
        for i in &body.body {
            if i.is_vector() {
                assert!(i.uses_l1_read_port(), "{i:?} must read memory");
            }
        }
        let l2_pf = body
            .body
            .iter()
            .filter(|i| matches!(i, Instr::PrefetchL2(_)))
            .count();
        let l1_pf = body
            .body
            .iter()
            .filter(|i| matches!(i, Instr::PrefetchL1(_)))
            .count();
        assert_eq!(l2_pf, l1_pf, "one hole per queued fill");
        assert!(matches!(body.body.last(), Some(Instr::PrefetchL2(_))));
    }
}
