//! STREAM bandwidth: the memory-bandwidth anchor of Table I.
//!
//! The paper cites McCalpin's STREAM benchmark for both machines
//! (150 GB/s on KNC, 76 GB/s on the host) and uses the KNC number to
//! justify the cache-blocking bound of Section III-A1 ("well within the
//! limits of Knights Corner's achievable STREAM bandwidth of 150 GB/s").
//! This module provides:
//!
//! * the four STREAM kernels (copy/scale/add/triad) as analytic traffic
//!   models over the chip constants, and
//! * an **emulated** cache-level triad on the cycle-level core model,
//!   which exposes the L1 port ceiling: with one read and one write port,
//!   a core cannot stream more than 64 bytes/cycle from L1 no matter how
//!   wide the vectors are.

use crate::emu::{CoreSim, StreamBases};
use crate::isa::{Addr, Instr, Operand, Program, StreamId};
use crate::pipeline::PipelineConfig;
use crate::KncChip;

/// The four STREAM kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 16 bytes of traffic per element.
    Copy,
    /// `b[i] = s·c[i]` — 16 bytes per element.
    Scale,
    /// `c[i] = a[i] + b[i]` — 24 bytes per element.
    Add,
    /// `a[i] = b[i] + s·c[i]` — 24 bytes per element.
    Triad,
}

impl StreamKernel {
    /// Bytes of DRAM traffic per f64 element (STREAM's own accounting:
    /// write-allocate traffic is not counted).
    pub fn bytes_per_elem(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }
}

/// Analytic STREAM time for `n` elements on the chip's sustained DRAM
/// bandwidth.
pub fn stream_time_s(chip: &KncChip, kernel: StreamKernel, n: usize) -> f64 {
    (kernel.bytes_per_elem() * n) as f64 / (chip.stream_bw_gbs * 1e9)
}

/// Result of the emulated cache-level triad.
#[derive(Clone, Copy, Debug)]
pub struct EmulatedStream {
    /// Cycles for the steady-state portion.
    pub cycles: u64,
    /// Bytes moved through L1 in that portion.
    pub bytes: u64,
    /// Achieved L1 bytes per cycle.
    pub bytes_per_cycle: f64,
}

/// Runs an L2-resident triad `a[i] = b[i] + s·c[i]` on the emulated core
/// with `threads` hardware threads and returns the achieved L1 bandwidth.
///
/// Each iteration is three vector instructions — load `b`, FMA with a
/// memory operand `c`, store to `a` — moving 3 × 64 bytes. The dual-ported
/// L1 allows at most one read and one write per cycle, so the bound is
/// 2 cycles per iteration (two reads serialize) → 96 bytes/cycle. The
/// emulated value lands well below that because a pure stream has **no
/// port-free holes at all**: every cycle reads or writes L1, so the two
/// prefetch fills per iteration can only complete through Fig. 1c
/// threshold stalls — the very pathology Basic Kernel 2 dodges in GEMM,
/// unavoidable here. (Real KNC STREAM uses non-temporal stores to shed
/// part of this pressure.)
pub fn emulated_triad(iters: usize, threads: usize) -> EmulatedStream {
    assert!((1..=4).contains(&threads));
    const AHEAD: usize = 20; // prefetch distance covering the DRAM latency
    let elems_per_thread = 8 * (iters + AHEAD + 4);
    let total = 3 * 4 * elems_per_thread + 64;
    let mem = vec![1.0f64; total];

    let mut body = Program::new();
    // Software prefetch far enough ahead to cover the memory latency —
    // streaming kernels on KNC prefetch many lines ahead, unlike the
    // L2-resident GEMM kernels which prefetch one iteration ahead.
    body.push(Instr::PrefetchL1(Addr::new(StreamId::B, 8, 8 * AHEAD)));
    body.push(Instr::Load {
        dst: 1,
        addr: Addr::new(StreamId::B, 8, 0),
    });
    body.push(Instr::PrefetchL1(Addr::new(StreamId::C, 8, 8 * AHEAD)));
    // a[i] = b[i] + s*c[i]: FMA with memory operand c, s in register 2
    // (zero-initialized: the arithmetic value is irrelevant to timing).
    body.push(Instr::Fmadd {
        acc: 1,
        src: Operand::Mem(Addr::new(StreamId::C, 8, 0)),
        b: 2,
    });
    body.push(Instr::Store {
        src: 1,
        addr: Addr::new(StreamId::A, 8, 0),
    });

    let bases: Vec<StreamBases> = (0..threads)
        .map(|t| StreamBases {
            a: t * elems_per_thread,
            b: threads * elems_per_thread + t * elems_per_thread,
            c: 2 * threads * elems_per_thread + t * elems_per_thread,
        })
        .collect();

    let mut sim = CoreSim::new(PipelineConfig::default(), mem);
    let mark1 = iters / 4;
    let mark2 = iters - iters / 8;
    let (_, c1, c2) = sim.run_with_marks(&body, &Program::new(), iters, &bases, mark1, mark2);
    let steady_iters = (mark2 - mark1) as u64 * threads as u64;
    let cycles = c2.saturating_sub(c1).max(1);
    let bytes = steady_iters * 3 * 64;
    EmulatedStream {
        cycles,
        bytes,
        bytes_per_cycle: bytes as f64 / cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_times_match_table1_anchor() {
        let chip = KncChip::default();
        // 1 GB of triad traffic at 150 GB/s.
        let n = 1_000_000_000 / 24;
        let t = stream_time_s(&chip, StreamKernel::Triad, n);
        assert!((t - 1.0 / 150.0).abs() < 1e-4, "{t}");
        assert!(
            stream_time_s(&chip, StreamKernel::Copy, 1000)
                < stream_time_s(&chip, StreamKernel::Add, 1000)
        );
    }

    #[test]
    fn emulated_triad_respects_the_port_ceiling() {
        let r = emulated_triad(512, 4);
        // Ceiling: 1 write + 2 reads per iteration on a (1R,1W)-ported L1
        // is 2 cycles/iteration → 96 B/cycle.
        assert!(
            r.bytes_per_cycle <= 96.0 + 1e-9,
            "triad exceeded the L1 port bound: {:.1} B/cycle",
            r.bytes_per_cycle
        );
        // With 4 threads it reaches roughly 40% of the port bound — the
        // rest is eaten by fill stalls (no port holes in a pure stream).
        assert!(
            (30.0..70.0).contains(&r.bytes_per_cycle),
            "triad out of the expected band: {:.1} B/cycle",
            r.bytes_per_cycle
        );
    }

    #[test]
    fn more_threads_more_bandwidth() {
        let one = emulated_triad(512, 1);
        let four = emulated_triad(512, 4);
        assert!(
            four.bytes_per_cycle > 1.5 * one.bytes_per_cycle,
            "SMT must lift streaming throughput: {:.1} vs {:.1}",
            four.bytes_per_cycle,
            one.bytes_per_cycle
        );
    }
}
