//! Roofline placement of a kernel on the simulated KNC chip.
//!
//! The roofline model bounds attainable throughput by
//! `min(peak, AI × stream_bw)` where AI is the kernel's arithmetic
//! intensity in flops per byte of memory traffic. The ridge point of the
//! Table-I chip sits at `1056 GF / 150 GB/s ≈ 7 flops/byte`: DGEMM
//! (AI ≈ k/16 per packed element, far right of the ridge) is
//! compute-bound, while CSR SpMV (≈ 0.12 flops/byte) and low-order
//! stencils (≈ 0.2 flops/byte) live on the bandwidth slope — the side of
//! the chart the paper's HPL pipeline never exercises.

use crate::chip::{KncChip, Precision};

/// Which roofline slope a kernel's operating point sits on.
///
/// The class is a *property of the listing*, not a measured outcome: a
/// bandwidth-bound body streams fresh cache lines through every vector
/// slot (no register reuse), so its L1 ports are busy on every cycle and
/// prefetch fills can only land in forced stalls — the Fig. 1c deficit is
/// its steady operating point rather than a scheduling defect. Static
/// analyses (see `phi-lint`) use the class to decide whether a fill
/// deficit is a diagnostic or simply priced into the cycle bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RooflineClass {
    /// Left of the ridge is for memory: attainable ≈ AI × bandwidth.
    BandwidthBound,
    /// Right of the ridge: attainable ≈ peak flops.
    #[default]
    ComputeBound,
}

impl RooflineClass {
    /// Stable lowercase name (used in reports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            RooflineClass::BandwidthBound => "bandwidth-bound",
            RooflineClass::ComputeBound => "compute-bound",
        }
    }
}

/// One kernel's placement on the chip's roofline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflinePoint {
    /// Arithmetic intensity: useful flops per byte of DRAM traffic.
    pub flops_per_byte: f64,
    /// `min(peak, AI × stream_bw)` in GFLOPS (native 60-core peak).
    pub attainable_gflops: f64,
    /// Which slope the point sits on.
    pub class: RooflineClass,
}

impl RooflinePoint {
    /// Fraction of native peak the roofline permits.
    pub fn peak_fraction(&self, chip: &KncChip) -> f64 {
        self.attainable_gflops / chip.native_peak_gflops(Precision::F64)
    }
}

/// The ridge point: arithmetic intensity at which the two roofs meet.
pub fn ridge_flops_per_byte(chip: &KncChip) -> f64 {
    chip.native_peak_gflops(Precision::F64) / chip.stream_bw_gbs
}

/// Places an arithmetic intensity on the chip's double-precision roofline.
pub fn place(chip: &KncChip, flops_per_byte: f64) -> RooflinePoint {
    let peak = chip.native_peak_gflops(Precision::F64);
    let bw_roof = flops_per_byte * chip.stream_bw_gbs;
    let class = if bw_roof < peak {
        RooflineClass::BandwidthBound
    } else {
        RooflineClass::ComputeBound
    };
    RooflinePoint {
        flops_per_byte,
        attainable_gflops: bw_roof.min(peak),
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_sits_near_seven_flops_per_byte() {
        let chip = KncChip::default();
        let ridge = ridge_flops_per_byte(&chip);
        assert!((6.0..8.0).contains(&ridge), "{ridge}");
    }

    #[test]
    fn dgemm_side_is_compute_bound() {
        let chip = KncChip::default();
        // A k=256 packed DGEMM moves ~16 bytes per 2*k flops per element.
        let p = place(&chip, 256.0 / 16.0);
        assert_eq!(p.class, RooflineClass::ComputeBound);
        assert!((p.attainable_gflops - chip.native_peak_gflops(Precision::F64)).abs() < 1e-9);
    }

    #[test]
    fn spmv_side_is_bandwidth_bound() {
        let chip = KncChip::default();
        let p = place(&chip, 0.125);
        assert_eq!(p.class, RooflineClass::BandwidthBound);
        assert!((p.attainable_gflops - 0.125 * chip.stream_bw_gbs).abs() < 1e-9);
        assert!(p.peak_fraction(&chip) < 0.05, "{}", p.peak_fraction(&chip));
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(RooflineClass::BandwidthBound.name(), "bandwidth-bound");
        assert_eq!(RooflineClass::ComputeBound.name(), "compute-bound");
        assert_eq!(RooflineClass::default(), RooflineClass::ComputeBound);
    }
}
