//! 3D star-stencil sweep on the emulated core — the second
//! bandwidth-bound workload of the performance lab.
//!
//! A radius-`R` star stencil (`6R + 1` taps) is applied to a periodic
//! `nx × ny × nz` grid with `nz = 8·lz`: the grid is *lane-folded* so
//! vector lane `l` owns the z-slab `[l·lz, (l+1)·lz)`, making every
//! output point's 8 z-translates one vector register. The kernel is
//! *tap-blocked* and GEMM-shaped: a run computes `MR = 8` output vectors
//! held in registers `v0..v7`, the loop iterates over the taps, and each
//! iteration broadcasts one coefficient and streams the tap's 8
//! pre-packed neighbor lines through 8 FMAs:
//!
//! ```text
//! vprefetch0 [coef + 8]    ; vbroadcastsd v31, [coef]
//! vprefetch0 [tap + 64+r*8]; vfmadd231pd  vr,  v31, [tap + r*8]   (×8)
//! ```
//!
//! Nine dual-issue turns per tap, no body stores, accumulators never
//! redefined — the listing is clean under every `phi-lint` pass. Like
//! SpMV every vector slot reads memory, so there are no port holes: the
//! kernel's roofline class is [`RooflineClass::BandwidthBound`](crate::roofline::RooflineClass::BandwidthBound) and the
//! fill deficit is its operating point. The packer performs all periodic
//! wrapping and lane-crossing at pack time, so the kernel itself stays a
//! pure affine stream (the same trick as DGEMM's packed tiles); the
//! honest DRAM traffic lives in the analytic intensity model.

use crate::emu::{CoreSim, RunStats, StreamBases};
use crate::isa::{Addr, BcastMode, Instr, Operand, Program, StreamId, LINE_ELEMS, VLEN};
use crate::pipeline::PipelineConfig;
use crate::roofline::{self, RooflinePoint};

/// Output vectors computed per run (register block height, `v0..v7`).
pub const STENCIL_MR: usize = 8;
/// Threads per run (one register block each).
pub const STENCIL_THREADS: usize = 4;

/// A star stencil: one center tap plus `radius` taps along each of the
/// six axis directions.
#[derive(Clone, Debug, PartialEq)]
pub struct StarStencil {
    /// Taps extend `1..=radius` points along each axis.
    pub radius: usize,
    /// Coefficients in tap order: `[center, (+x,1), (-x,1), (+y,1),
    /// (-y,1), (+z,1), (-z,1), (+x,2), ...]`.
    pub coeffs: Vec<f64>,
}

impl StarStencil {
    /// A stencil from explicit coefficients (`coeffs.len() == 6r + 1`).
    pub fn new(radius: usize, coeffs: Vec<f64>) -> Self {
        assert!(radius >= 1);
        assert_eq!(coeffs.len(), 6 * radius + 1, "coefficient count");
        Self { radius, coeffs }
    }

    /// The classic 7-point Laplacian-like stencil.
    pub fn seven_point(center: f64, neighbor: f64) -> Self {
        Self::new(
            1,
            vec![
                center, neighbor, neighbor, neighbor, neighbor, neighbor, neighbor,
            ],
        )
    }

    /// Tap count `T = 6·radius + 1`.
    pub fn taps(&self) -> usize {
        self.coeffs.len()
    }

    /// Offset (dx, dy, dz) of tap `j`.
    pub fn tap_offset(&self, j: usize) -> (i64, i64, i64) {
        if j == 0 {
            return (0, 0, 0);
        }
        let d = ((j - 1) / 6 + 1) as i64;
        match (j - 1) % 6 {
            0 => (d, 0, 0),
            1 => (-d, 0, 0),
            2 => (0, d, 0),
            3 => (0, -d, 0),
            4 => (0, 0, d),
            _ => (0, 0, -d),
        }
    }

    /// Arithmetic intensity in flops per byte under the streaming model:
    /// `2T` flops per point against one cached read of the input, the
    /// output write and its write-allocate fill (3 × 8 bytes).
    pub fn arithmetic_intensity(&self) -> f64 {
        2.0 * self.taps() as f64 / 24.0
    }

    /// Roofline placement of this stencil on `chip`.
    pub fn roofline(&self, chip: &crate::chip::KncChip) -> RooflinePoint {
        roofline::place(chip, self.arithmetic_intensity())
    }
}

/// Builds the tap-blocked stencil loop for a `taps`-tap stencil.
///
/// Register map: `v0..v7` = the `MR` output accumulators, `v31` = the
/// broadcast coefficient of the current tap. Stream map: `A` = the
/// tap-major packed neighbor values (thread-strided by `taps·MR·8`),
/// `B` = the stride-8 padded coefficient table, `C` = the output block.
pub fn build_stencil_kernel(taps: usize) -> (Program, Program) {
    assert!(taps >= 1);
    let block = STENCIL_MR * VLEN; // elements per tap per thread
    let mut body = Program::new();
    body.push(Instr::PrefetchL1(Addr::new(
        StreamId::B,
        LINE_ELEMS,
        LINE_ELEMS,
    )));
    body.push(Instr::Broadcast {
        dst: 31,
        addr: Addr::new(StreamId::B, LINE_ELEMS, 0),
        mode: BcastMode::OneToEight,
    });
    for r in 0..STENCIL_MR {
        body.push(Instr::PrefetchL1(
            Addr::new(StreamId::A, block, block + r * VLEN).with_thread_scale(taps * block),
        ));
        body.push(Instr::Fmadd {
            acc: r as u8,
            src: Operand::Mem(
                Addr::new(StreamId::A, block, r * VLEN).with_thread_scale(taps * block),
            ),
            b: 31,
        });
    }
    // Hole turns: every vector slot above reads the L1 port (the
    // broadcast included), so the nine fills each tap queues need nine
    // port-free turns to complete in. Lone `vprefetch1`s provide them
    // while warming the tap after next — same fills-vs-holes balance as
    // the SpMV body.
    for r in 0..STENCIL_MR {
        body.push(Instr::PrefetchL2(
            Addr::new(StreamId::A, block, 2 * block + r * VLEN).with_thread_scale(taps * block),
        ));
    }
    body.push(Instr::PrefetchL2(Addr::new(
        StreamId::B,
        LINE_ELEMS,
        2 * LINE_ELEMS,
    )));
    let mut epi = Program::new();
    for r in 0..STENCIL_MR {
        epi.push(Instr::Store {
            src: r as u8,
            addr: Addr::new(StreamId::C, 0, r * VLEN),
        });
    }
    #[cfg(debug_assertions)]
    for (what, p) in [("body", &body), ("epilogue", &epi)] {
        let errs = crate::disasm::validate(p);
        assert!(
            errs.is_empty(),
            "generated stencil {what} is invalid: {errs:?}"
        );
    }
    (body, epi)
}

/// The listing shipped to static analysis (7-point stencil shape).
pub fn stencil_listing() -> (Program, Program) {
    build_stencil_kernel(7)
}

/// Reference sweep over the periodic grid, accumulating taps in tap
/// order with fused multiply-adds — bit-identical to the emulated
/// kernel. `input` is `[(z·ny + y)·nx + x]` with `z ∈ 0..8·lz`.
pub fn reference_stencil(
    st: &StarStencil,
    (nx, ny, lz): (usize, usize, usize),
    input: &[f64],
) -> Vec<f64> {
    let nz = VLEN * lz;
    assert_eq!(input.len(), nx * ny * nz, "input length");
    let at = |x: i64, y: i64, z: i64| {
        let xi = x.rem_euclid(nx as i64) as usize;
        let yi = y.rem_euclid(ny as i64) as usize;
        let zi = z.rem_euclid(nz as i64) as usize;
        input[(zi * ny + yi) * nx + xi]
    };
    let mut out = vec![0.0; nx * ny * nz];
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let mut acc = 0.0f64;
                for j in 0..st.taps() {
                    let (dx, dy, dz) = st.tap_offset(j);
                    acc = at(x + dx, y + dy, z + dz).mul_add(st.coeffs[j], acc);
                }
                out[((z as usize) * ny + y as usize) * nx + x as usize] = acc;
            }
        }
    }
    out
}

/// Outcome of emulating one full stencil sweep.
#[derive(Clone, Debug)]
pub struct StencilReport {
    /// Grid dimensions (nx, ny, lz); the z extent is `8·lz`.
    pub dims: (usize, usize, usize),
    /// Tap count.
    pub taps: usize,
    /// Total cycles across all register blocks.
    pub cycles_total: u64,
    /// Aggregated emulator counters.
    pub stats: RunStats,
    /// The swept grid, same layout as the input.
    pub out: Vec<f64>,
}

impl StencilReport {
    /// Useful flops per cycle achieved by the emulated core (peak = 16).
    pub fn flops_per_cycle(&self) -> f64 {
        let (nx, ny, lz) = self.dims;
        let points = (nx * ny * lz * VLEN) as f64;
        if self.cycles_total == 0 {
            0.0
        } else {
            2.0 * self.taps as f64 * points / self.cycles_total as f64
        }
    }
}

/// Emulates one sweep of `st` over the periodic lane-folded grid.
/// `input` uses the natural `[(z·ny + y)·nx + x]` layout.
pub fn run_stencil(
    st: &StarStencil,
    (nx, ny, lz): (usize, usize, usize),
    input: &[f64],
    cfg: PipelineConfig,
) -> StencilReport {
    let nz = VLEN * lz;
    assert_eq!(input.len(), nx * ny * nz, "input length");
    let taps = st.taps();
    let block = STENCIL_MR * VLEN;
    let vectors = nx * ny * lz; // output vectors (8 lanes each)
    let blocks = vectors.div_ceil(STENCIL_MR);
    let groups = blocks.div_ceil(STENCIL_THREADS);

    // Natural-layout lookup with periodic wrap; lane l holds z-slab l.
    let at = |x: i64, y: i64, z: i64| {
        let xi = x.rem_euclid(nx as i64) as usize;
        let yi = y.rem_euclid(ny as i64) as usize;
        let zi = z.rem_euclid(nz as i64) as usize;
        input[(zi * ny + yi) * nx + xi]
    };
    // Decompose an output-vector index into (x, y, z-in-slab).
    let coords = |e: usize| {
        let x = e % nx;
        let y = (e / nx) % ny;
        let zl = e / (nx * ny);
        (x as i64, y as i64, zl as i64)
    };

    let a_len = STENCIL_THREADS * taps * block;
    let b_base = a_len;
    let c_base: [usize; STENCIL_THREADS] =
        std::array::from_fn(|t| b_base + taps * LINE_ELEMS + t * block);
    let total = b_base + taps * LINE_ELEMS + STENCIL_THREADS * block;

    let (body, epi) = build_stencil_kernel(taps);
    let mut out = vec![0.0; nx * ny * nz];
    let mut cycles_total = 0u64;
    let mut stats = RunStats::default();

    for g in 0..groups {
        let mut mem = vec![0.0; total];
        // Coefficient table, stride-8 padded (only element j*8 is read).
        for j in 0..taps {
            for k in 0..LINE_ELEMS {
                mem[b_base + j * LINE_ELEMS + k] = st.coeffs[j];
            }
        }
        // Tap-major neighbor pack: thread t, tap j, vector r, lane l.
        for t in 0..STENCIL_THREADS {
            let blk = g * STENCIL_THREADS + t;
            for r in 0..STENCIL_MR {
                let e = blk * STENCIL_MR + r;
                if e >= vectors {
                    continue;
                }
                let (x, y, zl) = coords(e);
                for j in 0..taps {
                    let (dx, dy, dz) = st.tap_offset(j);
                    for l in 0..VLEN {
                        let z = zl + (l * lz) as i64;
                        mem[t * taps * block + j * block + r * VLEN + l] =
                            at(x + dx, y + dy, z + dz);
                    }
                }
            }
        }
        let threads: [StreamBases; STENCIL_THREADS] = std::array::from_fn(|t| StreamBases {
            a: 0,
            b: b_base,
            c: c_base[t],
        });
        let mut sim = CoreSim::new(cfg, mem);
        // The tap packer just wrote the neighbor and coefficient buffers:
        // they are L2-resident, so prefetches pay the L2-hit latency.
        sim.warm_l2(0, b_base + taps * LINE_ELEMS);
        cycles_total += sim.run(&body, &epi, taps, &threads);
        let s = sim.stats();
        stats.cycles += s.cycles;
        stats.vector_issued += s.vector_issued;
        stats.fmadds += s.fmadds;
        stats.vpipe_issued += s.vpipe_issued;
        stats.fill_stall_cycles += s.fill_stall_cycles;
        stats.demand_stall_cycles += s.demand_stall_cycles;
        stats.fills_in_holes += s.fills_in_holes;
        stats.fills_completed += s.fills_completed;
        for (t, &cb) in c_base.iter().enumerate().take(STENCIL_THREADS) {
            let blk = g * STENCIL_THREADS + t;
            for r in 0..STENCIL_MR {
                let e = blk * STENCIL_MR + r;
                if e >= vectors {
                    continue;
                }
                let (x, y, zl) = coords(e);
                for l in 0..VLEN {
                    let z = zl as usize + l * lz;
                    out[(z * ny + y as usize) * nx + x as usize] = sim.mem()[cb + r * VLEN + l];
                }
            }
        }
    }

    StencilReport {
        dims: (nx, ny, lz),
        taps,
        cycles_total,
        stats,
        out,
    }
}

/// A deterministic seeded input grid for tests and benches.
pub fn seeded_grid((nx, ny, lz): (usize, usize, usize), seed: u64) -> Vec<f64> {
    let n = nx * ny * lz * VLEN;
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..n)
        .map(|i| {
            h ^= i as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
            ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::KncChip;
    use crate::roofline::RooflineClass;

    #[test]
    fn seven_point_sweep_matches_reference_bitwise() {
        let st = StarStencil::seven_point(-6.0, 1.0);
        let dims = (4, 3, 2); // nz = 16, 24 output vectors = 3 groups
        let input = seeded_grid(dims, 5);
        let rep = run_stencil(&st, dims, &input, PipelineConfig::default());
        assert_eq!(rep.out, reference_stencil(&st, dims, &input));
        assert!(rep.cycles_total > 0);
    }

    #[test]
    fn radius_two_star_matches_reference() {
        let coeffs: Vec<f64> = (0..13).map(|j| 1.0 / (1.0 + j as f64)).collect();
        let st = StarStencil::new(2, coeffs);
        let dims = (5, 5, 1);
        let input = seeded_grid(dims, 9);
        let rep = run_stencil(&st, dims, &input, PipelineConfig::default());
        assert_eq!(rep.out, reference_stencil(&st, dims, &input));
    }

    #[test]
    fn constant_field_sums_coefficients() {
        let st = StarStencil::seven_point(2.0, 0.5);
        let dims = (4, 4, 1);
        let input = vec![1.0; 4 * 4 * 8];
        let rep = run_stencil(&st, dims, &input, PipelineConfig::default());
        for v in rep.out {
            assert!((v - 5.0).abs() < 1e-12, "{v}"); // 2 + 6 * 0.5
        }
    }

    #[test]
    fn listing_balances_fills_against_holes() {
        // 9 paired turns (vector + vprefetch0) stream the tap, then 9
        // lone-vprefetch1 hole turns absorb the 9 fills it queued.
        let (body, epi) = stencil_listing();
        let u = body.body.iter().filter(|i| i.is_vector()).count();
        let l1_pf = body
            .body
            .iter()
            .filter(|i| matches!(i, Instr::PrefetchL1(_)))
            .count();
        let l2_pf = body
            .body
            .iter()
            .filter(|i| matches!(i, Instr::PrefetchL2(_)))
            .count();
        assert_eq!(u, STENCIL_MR + 1);
        assert_eq!(l1_pf, STENCIL_MR + 1);
        assert_eq!(l2_pf, l1_pf, "one hole turn per queued fill");
        assert_eq!(epi.body.len(), STENCIL_MR);
    }

    #[test]
    fn stencil_is_bandwidth_bound_on_the_roofline() {
        let st = StarStencil::seven_point(-6.0, 1.0);
        let p = st.roofline(&KncChip::default());
        assert_eq!(p.class, RooflineClass::BandwidthBound);
        assert!(p.flops_per_byte < 1.0);
    }

    #[test]
    fn tap_offsets_enumerate_the_star() {
        let st = StarStencil::new(2, vec![0.0; 13]);
        assert_eq!(st.tap_offset(0), (0, 0, 0));
        assert_eq!(st.tap_offset(1), (1, 0, 0));
        assert_eq!(st.tap_offset(6), (0, 0, -1));
        assert_eq!(st.tap_offset(7), (2, 0, 0));
        assert_eq!(st.tap_offset(12), (0, 0, -2));
    }
}
