//! Disassembly and static validation of kernel programs.
//!
//! [`disassemble`] renders a [`Program`] in an Intel-ish syntax close to
//! the listings of Fig. 2b/2c, so the kernel regenerators can print what
//! the paper printed. [`parse_instr`] / [`parse_program`] invert that
//! syntax exactly (the ISA conformance tables in `tests/isa/*.md` are
//! written in it). [`validate`] statically checks a program against the
//! machine constraints (register indices, lane selectors, address
//! sanity) before it reaches the emulator.

use crate::isa::{Addr, BcastMode, Instr, Operand, Program, StreamId, NUM_VREGS};

fn stream_name(s: StreamId) -> &'static str {
    match s {
        StreamId::A => "rA",
        StreamId::B => "rB",
        StreamId::C => "rC",
    }
}

fn addr_str(a: &Addr) -> String {
    let mut s = format!("[{}", stream_name(a.stream));
    if a.scale_iter != 0 {
        s.push_str(&format!(" + i*{}", a.scale_iter));
    }
    if a.scale_thread != 0 {
        s.push_str(&format!(" + t*{}", a.scale_thread));
    }
    if a.offset != 0 {
        s.push_str(&format!(" + {}", a.offset));
    }
    s.push(']');
    s
}

fn operand_str(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => format!("v{r}"),
        Operand::Mem(a) => addr_str(a),
        Operand::MemBcast(a, BcastMode::OneToEight) => format!("{}{{1to8}}", addr_str(a)),
        Operand::MemBcast(a, BcastMode::FourToEight) => format!("{}{{4to8}}", addr_str(a)),
        Operand::Swizzle(r, i) => format!("v{r}{{dddd}}[{i}]"),
    }
}

/// Renders one instruction.
pub fn instr_str(i: &Instr) -> String {
    match i {
        Instr::Fmadd { acc, src, b } => {
            format!("vfmadd231pd v{acc}, v{b}, {}", operand_str(src))
        }
        Instr::Load { dst, addr } => format!("vmovapd v{dst}, {}", addr_str(addr)),
        Instr::Store { src, addr } => format!("vmovapd {}, v{src}", addr_str(addr)),
        Instr::Broadcast {
            dst,
            addr,
            mode: BcastMode::OneToEight,
        } => format!("vbroadcastsd v{dst}, {}", addr_str(addr)),
        Instr::Broadcast {
            dst,
            addr,
            mode: BcastMode::FourToEight,
        } => format!("vbroadcastf64x4 v{dst}, {}", addr_str(addr)),
        Instr::Add { dst, src } => format!("vaddpd v{dst}, v{dst}, {}", operand_str(src)),
        Instr::Mul { dst, src } => format!("vmulpd v{dst}, v{dst}, {}", operand_str(src)),
        Instr::PrefetchL1(a) => format!("vprefetch0 {}", addr_str(a)),
        Instr::PrefetchL2(a) => format!("vprefetch1 {}", addr_str(a)),
        Instr::ScalarOp => "add r13, 1".to_string(),
    }
}

/// Renders a whole program with issue-slot annotations: `U` for vector
/// (U-pipe) instructions, `V` for co-issuable prefetch/scalar ones.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    for (idx, i) in p.body.iter().enumerate() {
        let pipe = if i.is_vector() { 'U' } else { 'V' };
        out.push_str(&format!("{idx:>3} {pipe}  {}\n", instr_str(i)));
    }
    out
}

/// A static program defect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Register index ≥ 32.
    BadRegister {
        /// Offending instruction index.
        at: usize,
        /// Register number.
        reg: u8,
    },
    /// Swizzle lane selector ≥ 4 (Fig. 1b: lanes are 4-wide).
    BadSwizzleLane {
        /// Offending instruction index.
        at: usize,
        /// Lane selector.
        lane: u8,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BadRegister { at, reg } => {
                write!(f, "instruction {at}: register v{reg} out of range")
            }
            ValidationError::BadSwizzleLane { at, lane } => {
                write!(f, "instruction {at}: swizzle lane {lane} out of range")
            }
        }
    }
}

fn check_reg(at: usize, r: u8, errs: &mut Vec<ValidationError>) {
    if r as usize >= NUM_VREGS {
        errs.push(ValidationError::BadRegister { at, reg: r });
    }
}

fn check_operand(at: usize, op: &Operand, errs: &mut Vec<ValidationError>) {
    match op {
        Operand::Reg(r) => check_reg(at, *r, errs),
        Operand::Swizzle(r, lane) => {
            check_reg(at, *r, errs);
            if *lane >= 4 {
                errs.push(ValidationError::BadSwizzleLane { at, lane: *lane });
            }
        }
        _ => {}
    }
}

/// Checks every instruction against the machine constraints. Returns all
/// defects found (empty = valid).
pub fn validate(p: &Program) -> Vec<ValidationError> {
    let mut errs = Vec::new();
    for (at, i) in p.body.iter().enumerate() {
        match i {
            Instr::Fmadd { acc, src, b } => {
                check_reg(at, *acc, &mut errs);
                check_reg(at, *b, &mut errs);
                check_operand(at, src, &mut errs);
            }
            Instr::Load { dst, .. } | Instr::Broadcast { dst, .. } => {
                check_reg(at, *dst, &mut errs)
            }
            Instr::Store { src, .. } => check_reg(at, *src, &mut errs),
            Instr::Add { dst, src } | Instr::Mul { dst, src } => {
                check_reg(at, *dst, &mut errs);
                check_operand(at, src, &mut errs);
            }
            Instr::PrefetchL1(_) | Instr::PrefetchL2(_) | Instr::ScalarOp => {}
        }
    }
    errs
}

/// Why a line of kernel assembly failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The mnemonic is not part of the emulated subset.
    UnknownMnemonic {
        /// 1-based source line (0 from [`parse_instr`]).
        line: usize,
        /// The offending mnemonic.
        found: String,
    },
    /// An operand, address, or operand count is wrong.
    Malformed {
        /// 1-based source line (0 from [`parse_instr`]).
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownMnemonic { line, found } => {
                write!(f, "line {line}: unknown mnemonic `{found}`")
            }
            ParseError::Malformed { line, detail } => write!(f, "line {line}: {detail}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn malformed(detail: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line: 0,
        detail: detail.into(),
    }
}

fn parse_reg(tok: &str) -> Result<u8, ParseError> {
    tok.strip_prefix('v')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| malformed(format!("expected register `vN`, found `{tok}`")))
}

/// Parses `[rA + i*S + t*T + O]` — every term after the stream optional,
/// in any order (the renderer omits zero terms).
fn parse_addr(tok: &str) -> Result<Addr, ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| malformed(format!("expected `[...]` address, found `{tok}`")))?;
    let mut terms = inner.split('+').map(str::trim);
    let stream = match terms.next() {
        Some("rA") => StreamId::A,
        Some("rB") => StreamId::B,
        Some("rC") => StreamId::C,
        other => {
            return Err(malformed(format!(
                "address must start with a stream rA/rB/rC, found `{}`",
                other.unwrap_or("")
            )))
        }
    };
    let mut addr = Addr::new(stream, 0, 0);
    for term in terms {
        let (field, num): (&mut usize, &str) = if let Some(n) = term.strip_prefix("i*") {
            (&mut addr.scale_iter, n)
        } else if let Some(n) = term.strip_prefix("t*") {
            (&mut addr.scale_thread, n)
        } else {
            (&mut addr.offset, term)
        };
        *field = num
            .parse()
            .map_err(|_| malformed(format!("bad address term `{term}` in `{tok}`")))?;
    }
    Ok(addr)
}

fn parse_operand(tok: &str) -> Result<Operand, ParseError> {
    if let Some(mem) = tok.strip_suffix("{1to8}") {
        return Ok(Operand::MemBcast(parse_addr(mem)?, BcastMode::OneToEight));
    }
    if let Some(mem) = tok.strip_suffix("{4to8}") {
        return Ok(Operand::MemBcast(parse_addr(mem)?, BcastMode::FourToEight));
    }
    if tok.starts_with('[') {
        return Ok(Operand::Mem(parse_addr(tok)?));
    }
    if let Some((reg, lane)) = tok.split_once("{dddd}[") {
        let lane = lane
            .strip_suffix(']')
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| malformed(format!("bad swizzle lane in `{tok}`")))?;
        return Ok(Operand::Swizzle(parse_reg(reg)?, lane));
    }
    Ok(Operand::Reg(parse_reg(tok)?))
}

/// Parses one instruction in the exact syntax [`instr_str`] renders.
pub fn parse_instr(line: &str) -> Result<Instr, ParseError> {
    let line = line.trim();
    let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let ops: Vec<&str> = if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(malformed(format!(
                "`{mnemonic}` takes {n} operand(s), found {} in `{line}`",
                ops.len()
            )))
        }
    };
    match mnemonic {
        "vfmadd231pd" => {
            want(3)?;
            Ok(Instr::Fmadd {
                acc: parse_reg(ops[0])?,
                b: parse_reg(ops[1])?,
                src: parse_operand(ops[2])?,
            })
        }
        "vmovapd" => {
            want(2)?;
            if ops[0].starts_with('[') {
                Ok(Instr::Store {
                    src: parse_reg(ops[1])?,
                    addr: parse_addr(ops[0])?,
                })
            } else {
                Ok(Instr::Load {
                    dst: parse_reg(ops[0])?,
                    addr: parse_addr(ops[1])?,
                })
            }
        }
        "vbroadcastsd" | "vbroadcastf64x4" => {
            want(2)?;
            Ok(Instr::Broadcast {
                dst: parse_reg(ops[0])?,
                addr: parse_addr(ops[1])?,
                mode: if mnemonic == "vbroadcastsd" {
                    BcastMode::OneToEight
                } else {
                    BcastMode::FourToEight
                },
            })
        }
        "vaddpd" | "vmulpd" => {
            want(3)?;
            let dst = parse_reg(ops[0])?;
            if parse_reg(ops[1])? != dst {
                return Err(malformed(format!(
                    "`{mnemonic}` is destructive: first two operands must match in `{line}`"
                )));
            }
            let src = parse_operand(ops[2])?;
            Ok(if mnemonic == "vaddpd" {
                Instr::Add { dst, src }
            } else {
                Instr::Mul { dst, src }
            })
        }
        "vprefetch0" => {
            want(1)?;
            Ok(Instr::PrefetchL1(parse_addr(ops[0])?))
        }
        "vprefetch1" => {
            want(1)?;
            Ok(Instr::PrefetchL2(parse_addr(ops[0])?))
        }
        "add" => {
            if ops == ["r13", "1"] {
                Ok(Instr::ScalarOp)
            } else {
                Err(malformed(format!(
                    "the only scalar form is `add r13, 1`, found `{line}`"
                )))
            }
        }
        other => Err(ParseError::UnknownMnemonic {
            line: 0,
            found: other.to_string(),
        }),
    }
}

/// Strips the `NNN U  ` index/pipe prefix [`disassemble`] emits, if
/// present, so its output parses back directly.
fn strip_listing_prefix(line: &str) -> &str {
    let digits = line.len() - line.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return line;
    }
    let rest = &line[digits..];
    let trimmed = rest.trim_start();
    if trimmed.len() == rest.len() {
        return line; // no whitespace after the digits: not a listing prefix
    }
    if let Some(r) = trimmed.strip_prefix(['U', 'V']) {
        if r.starts_with(char::is_whitespace) {
            return r.trim_start();
        }
    }
    line
}

/// Parses a whole program, one instruction per line. Blank lines and
/// `;`/`#` comments are skipped; [`disassemble`]'s index/pipe prefix is
/// accepted, so `parse_program(&disassemble(p))` round-trips. Errors
/// carry 1-based line numbers.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut p = Program::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') || line.starts_with('#') {
            continue;
        }
        let instr = parse_instr(strip_listing_prefix(line)).map_err(|e| match e {
            ParseError::UnknownMnemonic { found, .. } => ParseError::UnknownMnemonic {
                line: idx + 1,
                found,
            },
            ParseError::Malformed { detail, .. } => ParseError::Malformed {
                line: idx + 1,
                detail,
            },
        })?;
        p.push(instr);
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::build_basic_kernel;
    use phi_blas::gemm::MicroKernelKind;

    #[test]
    fn kernels_disassemble_like_the_paper() {
        let (k2, epi) = build_basic_kernel(MicroKernelKind::Kernel2);
        let text = disassemble(&k2);
        // The salient features of Fig. 2c appear:
        assert!(text.contains("vbroadcastf64x4"), "4to8 broadcast:\n{text}");
        assert!(text.contains("{dddd}[0]"), "swizzled FMA:\n{text}");
        assert!(text.contains("{1to8}"), "memory-broadcast FMAs:\n{text}");
        assert!(text.contains("vprefetch0"), "L1 prefetch:\n{text}");
        assert!(text.contains("vprefetch1"), "L2 prefetch:\n{text}");
        // Dual-issue annotation: both pipes present.
        assert!(text.contains(" U  ") && text.contains(" V  "));
        // The epilogue stores the accumulators.
        let etext = disassemble(&epi);
        assert!(etext.contains("vmovapd [rC"), "C update:\n{etext}");
    }

    #[test]
    fn kernel1_shows_only_memory_broadcasts() {
        let (k1, _) = build_basic_kernel(MicroKernelKind::Kernel1);
        let text = disassemble(&k1);
        assert!(!text.contains("{dddd}"), "Kernel 1 has no swizzles");
        assert_eq!(text.matches("{1to8}").count(), 31);
    }

    #[test]
    fn built_kernels_validate_clean() {
        for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
            let (body, epi) = build_basic_kernel(kind);
            assert!(validate(&body).is_empty());
            assert!(validate(&epi).is_empty());
        }
    }

    #[test]
    fn bad_register_reported_for_every_operand_position() {
        use crate::isa::{Addr, StreamId};
        let mem = Addr::new(StreamId::B, 8, 0);
        let cases: Vec<Instr> = vec![
            Instr::Fmadd {
                acc: 32,
                src: Operand::Reg(0),
                b: 0,
            },
            Instr::Fmadd {
                acc: 0,
                src: Operand::Reg(99),
                b: 0,
            },
            Instr::Fmadd {
                acc: 0,
                src: Operand::Swizzle(40, 0),
                b: 0,
            },
            Instr::Fmadd {
                acc: 0,
                src: Operand::Reg(0),
                b: 32,
            },
            Instr::Load { dst: 32, addr: mem },
            Instr::Store { src: 32, addr: mem },
            Instr::Broadcast {
                dst: 32,
                addr: mem,
                mode: BcastMode::OneToEight,
            },
            Instr::Add {
                dst: 32,
                src: Operand::Reg(0),
            },
            Instr::Mul {
                dst: 0,
                src: Operand::Reg(32),
            },
        ];
        for instr in cases {
            let mut p = Program::new();
            p.push(instr);
            let errs = validate(&p);
            assert!(
                errs.iter()
                    .any(|e| matches!(e, ValidationError::BadRegister { at: 0, .. })),
                "{instr:?}: {errs:?}"
            );
        }
    }

    #[test]
    fn bad_swizzle_lane_reported_at_the_boundary() {
        for lane in [4u8, 5, 255] {
            let mut p = Program::new();
            p.push(Instr::Fmadd {
                acc: 0,
                src: Operand::Swizzle(30, lane),
                b: 31,
            });
            let errs = validate(&p);
            assert_eq!(
                errs,
                vec![ValidationError::BadSwizzleLane { at: 0, lane }],
                "lane {lane}"
            );
        }
        // Lane 3 is the last legal selector.
        let mut p = Program::new();
        p.push(Instr::Fmadd {
            acc: 0,
            src: Operand::Swizzle(30, 3),
            b: 31,
        });
        assert!(validate(&p).is_empty());
    }

    #[test]
    fn instr_str_round_trips_the_fig2_listing_forms() {
        use crate::isa::{Addr, StreamId};
        // Every rendered form, spelled exactly as the Fig. 2b/2c
        // listings (and the README excerpts) expect them.
        let cases: Vec<(Instr, &str)> = vec![
            (
                Instr::Fmadd {
                    acc: 0,
                    src: Operand::MemBcast(Addr::new(StreamId::A, 32, 5), BcastMode::OneToEight),
                    b: 31,
                },
                "vfmadd231pd v0, v31, [rA + i*32 + 5]{1to8}",
            ),
            (
                Instr::Fmadd {
                    acc: 2,
                    src: Operand::Swizzle(30, 2),
                    b: 31,
                },
                "vfmadd231pd v2, v31, v30{dddd}[2]",
            ),
            (
                Instr::Broadcast {
                    dst: 30,
                    addr: Addr::new(StreamId::A, 32, 0),
                    mode: BcastMode::FourToEight,
                },
                "vbroadcastf64x4 v30, [rA + i*32]",
            ),
            (
                Instr::Broadcast {
                    dst: 29,
                    addr: Addr::new(StreamId::A, 0, 3),
                    mode: BcastMode::OneToEight,
                },
                "vbroadcastsd v29, [rA + 3]",
            ),
            (
                Instr::Load {
                    dst: 31,
                    addr: Addr::new(StreamId::B, 8, 0),
                },
                "vmovapd v31, [rB + i*8]",
            ),
            (
                Instr::Store {
                    src: 0,
                    addr: Addr::new(StreamId::C, 0, 8),
                },
                "vmovapd [rC + 8], v0",
            ),
            (
                Instr::Add {
                    dst: 0,
                    src: Operand::Mem(Addr::new(StreamId::C, 0, 0)),
                },
                "vaddpd v0, v0, [rC]",
            ),
            (
                Instr::Mul {
                    dst: 1,
                    src: Operand::Reg(7),
                },
                "vmulpd v1, v1, v7",
            ),
            (
                Instr::PrefetchL1(Addr::new(StreamId::A, 32, 32).with_thread_scale(8)),
                "vprefetch0 [rA + i*32 + t*8 + 32]",
            ),
            (
                Instr::PrefetchL2(Addr::new(StreamId::B, 8, 16)),
                "vprefetch1 [rB + i*8 + 16]",
            ),
            (Instr::ScalarOp, "add r13, 1"),
        ];
        for (instr, expect) in cases {
            assert_eq!(instr_str(&instr), expect);
        }
    }

    #[test]
    fn disassemble_lines_carry_index_and_pipe_columns() {
        let (k1, _) = build_basic_kernel(MicroKernelKind::Kernel1);
        let text = disassemble(&k1);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), k1.body.len());
        assert_eq!(lines[0], "  0 V  vprefetch0 [rB + i*8 + 8]");
        assert_eq!(lines[1], "  1 U  vmovapd v31, [rB + i*8]");
        assert_eq!(lines[2], "  2 V  vprefetch0 [rA + i*32 + t*8 + 32]");
        assert_eq!(lines[3], "  3 U  vfmadd231pd v0, v31, [rA + i*32]{1to8}");
    }

    #[test]
    fn parse_inverts_instr_str_on_every_form() {
        use crate::isa::{Addr, StreamId};
        let cases: Vec<Instr> = vec![
            Instr::Fmadd {
                acc: 0,
                src: Operand::MemBcast(Addr::new(StreamId::A, 32, 5), BcastMode::OneToEight),
                b: 31,
            },
            Instr::Fmadd {
                acc: 2,
                src: Operand::Swizzle(30, 2),
                b: 31,
            },
            Instr::Fmadd {
                acc: 7,
                src: Operand::Reg(12),
                b: 29,
            },
            Instr::Broadcast {
                dst: 30,
                addr: Addr::new(StreamId::A, 32, 0),
                mode: BcastMode::FourToEight,
            },
            Instr::Broadcast {
                dst: 29,
                addr: Addr::new(StreamId::A, 0, 3),
                mode: BcastMode::OneToEight,
            },
            Instr::Load {
                dst: 31,
                addr: Addr::new(StreamId::B, 8, 0),
            },
            Instr::Store {
                src: 0,
                addr: Addr::new(StreamId::C, 0, 8),
            },
            Instr::Add {
                dst: 0,
                src: Operand::Mem(Addr::new(StreamId::C, 0, 0)),
            },
            Instr::Mul {
                dst: 1,
                src: Operand::Reg(7),
            },
            Instr::PrefetchL1(Addr::new(StreamId::A, 32, 32).with_thread_scale(8)),
            Instr::PrefetchL2(Addr::new(StreamId::B, 8, 16)),
            Instr::ScalarOp,
        ];
        for instr in cases {
            let text = instr_str(&instr);
            assert_eq!(parse_instr(&text), Ok(instr), "round trip of `{text}`");
        }
    }

    #[test]
    fn parse_program_round_trips_both_kernels() {
        for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
            let (body, epi) = build_basic_kernel(kind);
            // Via the annotated listing (index/pipe prefix stripped)...
            let p = parse_program(&disassemble(&body)).expect("listing parses");
            assert_eq!(p.body, body.body, "{kind:?} body");
            // ...and via bare instr_str lines with comments interleaved.
            let mut text = String::from("; epilogue\n\n");
            for i in &epi.body {
                text.push_str(&instr_str(i));
                text.push('\n');
            }
            let e = parse_program(&text).expect("bare lines parse");
            assert_eq!(e.body, epi.body, "{kind:?} epilogue");
        }
    }

    #[test]
    fn parse_accepts_address_terms_in_any_order() {
        use crate::isa::{Addr, StreamId};
        let a = parse_instr("vprefetch0 [rA + 32 + t*8 + i*32]").unwrap();
        assert_eq!(
            a,
            Instr::PrefetchL1(Addr::new(StreamId::A, 32, 32).with_thread_scale(8))
        );
    }

    #[test]
    fn parse_rejects_defective_lines_with_reasons() {
        // Unknown mnemonic.
        assert!(matches!(
            parse_instr("vsubpd v0, v0, v1"),
            Err(ParseError::UnknownMnemonic { found, .. }) if found == "vsubpd"
        ));
        // Operand-count mismatch.
        assert!(parse_instr("vfmadd231pd v0, v1").is_err());
        // Non-destructive vaddpd spelling.
        assert!(parse_instr("vaddpd v0, v1, v2").is_err());
        // Bad stream register.
        assert!(parse_instr("vmovapd v0, [rD + i*8]").is_err());
        // Bad address term.
        assert!(parse_instr("vmovapd v0, [rB + i*x]").is_err());
        // Bad swizzle suffix.
        assert!(parse_instr("vfmadd231pd v0, v1, v2{dddd}[x]").is_err());
        // Non-canonical scalar op.
        assert!(parse_instr("add r12, 1").is_err());
        // parse_program reports 1-based line numbers.
        let err = parse_program("vmulpd v1, v1, v7\nbogus v0\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::UnknownMnemonic { line: 2, ref found } if found == "bogus"
        ));
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn validator_catches_defects() {
        use crate::isa::{Addr, StreamId};
        let mut p = Program::new();
        p.push(Instr::Fmadd {
            acc: 40, // out of range
            src: Operand::Swizzle(2, 7),
            b: 1,
        });
        p.push(Instr::Load {
            dst: 33,
            addr: Addr::new(StreamId::A, 0, 0),
        });
        let errs = validate(&p);
        assert_eq!(errs.len(), 3);
        assert!(matches!(
            errs[0],
            ValidationError::BadRegister { at: 0, reg: 40 }
        ));
        assert!(matches!(
            errs[1],
            ValidationError::BadSwizzleLane { at: 0, lane: 7 }
        ));
        assert!(errs[2].to_string().contains("v33"));
    }
}
