//! Disassembly and static validation of kernel programs.
//!
//! [`disassemble`] renders a [`Program`] in an Intel-ish syntax close to
//! the listings of Fig. 2b/2c, so the kernel regenerators can print what
//! the paper printed. [`validate`] statically checks a program against
//! the machine constraints (register indices, lane selectors, address
//! sanity) before it reaches the emulator.

use crate::isa::{Addr, BcastMode, Instr, Operand, Program, StreamId, NUM_VREGS};

fn stream_name(s: StreamId) -> &'static str {
    match s {
        StreamId::A => "rA",
        StreamId::B => "rB",
        StreamId::C => "rC",
    }
}

fn addr_str(a: &Addr) -> String {
    let mut s = format!("[{}", stream_name(a.stream));
    if a.scale_iter != 0 {
        s.push_str(&format!(" + i*{}", a.scale_iter));
    }
    if a.scale_thread != 0 {
        s.push_str(&format!(" + t*{}", a.scale_thread));
    }
    if a.offset != 0 {
        s.push_str(&format!(" + {}", a.offset));
    }
    s.push(']');
    s
}

fn operand_str(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => format!("v{r}"),
        Operand::Mem(a) => addr_str(a),
        Operand::MemBcast(a, BcastMode::OneToEight) => format!("{}{{1to8}}", addr_str(a)),
        Operand::MemBcast(a, BcastMode::FourToEight) => format!("{}{{4to8}}", addr_str(a)),
        Operand::Swizzle(r, i) => format!("v{r}{{dddd}}[{i}]"),
    }
}

/// Renders one instruction.
pub fn instr_str(i: &Instr) -> String {
    match i {
        Instr::Fmadd { acc, src, b } => {
            format!("vfmadd231pd v{acc}, v{b}, {}", operand_str(src))
        }
        Instr::Load { dst, addr } => format!("vmovapd v{dst}, {}", addr_str(addr)),
        Instr::Store { src, addr } => format!("vmovapd {}, v{src}", addr_str(addr)),
        Instr::Broadcast {
            dst,
            addr,
            mode: BcastMode::OneToEight,
        } => format!("vbroadcastsd v{dst}, {}", addr_str(addr)),
        Instr::Broadcast {
            dst,
            addr,
            mode: BcastMode::FourToEight,
        } => format!("vbroadcastf64x4 v{dst}, {}", addr_str(addr)),
        Instr::Add { dst, src } => format!("vaddpd v{dst}, v{dst}, {}", operand_str(src)),
        Instr::Mul { dst, src } => format!("vmulpd v{dst}, v{dst}, {}", operand_str(src)),
        Instr::PrefetchL1(a) => format!("vprefetch0 {}", addr_str(a)),
        Instr::PrefetchL2(a) => format!("vprefetch1 {}", addr_str(a)),
        Instr::ScalarOp => "add r13, 1".to_string(),
    }
}

/// Renders a whole program with issue-slot annotations: `U` for vector
/// (U-pipe) instructions, `V` for co-issuable prefetch/scalar ones.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    for (idx, i) in p.body.iter().enumerate() {
        let pipe = if i.is_vector() { 'U' } else { 'V' };
        out.push_str(&format!("{idx:>3} {pipe}  {}\n", instr_str(i)));
    }
    out
}

/// A static program defect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Register index ≥ 32.
    BadRegister {
        /// Offending instruction index.
        at: usize,
        /// Register number.
        reg: u8,
    },
    /// Swizzle lane selector ≥ 4 (Fig. 1b: lanes are 4-wide).
    BadSwizzleLane {
        /// Offending instruction index.
        at: usize,
        /// Lane selector.
        lane: u8,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BadRegister { at, reg } => {
                write!(f, "instruction {at}: register v{reg} out of range")
            }
            ValidationError::BadSwizzleLane { at, lane } => {
                write!(f, "instruction {at}: swizzle lane {lane} out of range")
            }
        }
    }
}

fn check_reg(at: usize, r: u8, errs: &mut Vec<ValidationError>) {
    if r as usize >= NUM_VREGS {
        errs.push(ValidationError::BadRegister { at, reg: r });
    }
}

fn check_operand(at: usize, op: &Operand, errs: &mut Vec<ValidationError>) {
    match op {
        Operand::Reg(r) => check_reg(at, *r, errs),
        Operand::Swizzle(r, lane) => {
            check_reg(at, *r, errs);
            if *lane >= 4 {
                errs.push(ValidationError::BadSwizzleLane { at, lane: *lane });
            }
        }
        _ => {}
    }
}

/// Checks every instruction against the machine constraints. Returns all
/// defects found (empty = valid).
pub fn validate(p: &Program) -> Vec<ValidationError> {
    let mut errs = Vec::new();
    for (at, i) in p.body.iter().enumerate() {
        match i {
            Instr::Fmadd { acc, src, b } => {
                check_reg(at, *acc, &mut errs);
                check_reg(at, *b, &mut errs);
                check_operand(at, src, &mut errs);
            }
            Instr::Load { dst, .. } | Instr::Broadcast { dst, .. } => {
                check_reg(at, *dst, &mut errs)
            }
            Instr::Store { src, .. } => check_reg(at, *src, &mut errs),
            Instr::Add { dst, src } | Instr::Mul { dst, src } => {
                check_reg(at, *dst, &mut errs);
                check_operand(at, src, &mut errs);
            }
            Instr::PrefetchL1(_) | Instr::PrefetchL2(_) | Instr::ScalarOp => {}
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::build_basic_kernel;
    use phi_blas::gemm::MicroKernelKind;

    #[test]
    fn kernels_disassemble_like_the_paper() {
        let (k2, epi) = build_basic_kernel(MicroKernelKind::Kernel2);
        let text = disassemble(&k2);
        // The salient features of Fig. 2c appear:
        assert!(text.contains("vbroadcastf64x4"), "4to8 broadcast:\n{text}");
        assert!(text.contains("{dddd}[0]"), "swizzled FMA:\n{text}");
        assert!(text.contains("{1to8}"), "memory-broadcast FMAs:\n{text}");
        assert!(text.contains("vprefetch0"), "L1 prefetch:\n{text}");
        assert!(text.contains("vprefetch1"), "L2 prefetch:\n{text}");
        // Dual-issue annotation: both pipes present.
        assert!(text.contains(" U  ") && text.contains(" V  "));
        // The epilogue stores the accumulators.
        let etext = disassemble(&epi);
        assert!(etext.contains("vmovapd [rC"), "C update:\n{etext}");
    }

    #[test]
    fn kernel1_shows_only_memory_broadcasts() {
        let (k1, _) = build_basic_kernel(MicroKernelKind::Kernel1);
        let text = disassemble(&k1);
        assert!(!text.contains("{dddd}"), "Kernel 1 has no swizzles");
        assert_eq!(text.matches("{1to8}").count(), 31);
    }

    #[test]
    fn built_kernels_validate_clean() {
        for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
            let (body, epi) = build_basic_kernel(kind);
            assert!(validate(&body).is_empty());
            assert!(validate(&epi).is_empty());
        }
    }

    #[test]
    fn bad_register_reported_for_every_operand_position() {
        use crate::isa::{Addr, StreamId};
        let mem = Addr::new(StreamId::B, 8, 0);
        let cases: Vec<Instr> = vec![
            Instr::Fmadd {
                acc: 32,
                src: Operand::Reg(0),
                b: 0,
            },
            Instr::Fmadd {
                acc: 0,
                src: Operand::Reg(99),
                b: 0,
            },
            Instr::Fmadd {
                acc: 0,
                src: Operand::Swizzle(40, 0),
                b: 0,
            },
            Instr::Fmadd {
                acc: 0,
                src: Operand::Reg(0),
                b: 32,
            },
            Instr::Load { dst: 32, addr: mem },
            Instr::Store { src: 32, addr: mem },
            Instr::Broadcast {
                dst: 32,
                addr: mem,
                mode: BcastMode::OneToEight,
            },
            Instr::Add {
                dst: 32,
                src: Operand::Reg(0),
            },
            Instr::Mul {
                dst: 0,
                src: Operand::Reg(32),
            },
        ];
        for instr in cases {
            let mut p = Program::new();
            p.push(instr);
            let errs = validate(&p);
            assert!(
                errs.iter()
                    .any(|e| matches!(e, ValidationError::BadRegister { at: 0, .. })),
                "{instr:?}: {errs:?}"
            );
        }
    }

    #[test]
    fn bad_swizzle_lane_reported_at_the_boundary() {
        for lane in [4u8, 5, 255] {
            let mut p = Program::new();
            p.push(Instr::Fmadd {
                acc: 0,
                src: Operand::Swizzle(30, lane),
                b: 31,
            });
            let errs = validate(&p);
            assert_eq!(
                errs,
                vec![ValidationError::BadSwizzleLane { at: 0, lane }],
                "lane {lane}"
            );
        }
        // Lane 3 is the last legal selector.
        let mut p = Program::new();
        p.push(Instr::Fmadd {
            acc: 0,
            src: Operand::Swizzle(30, 3),
            b: 31,
        });
        assert!(validate(&p).is_empty());
    }

    #[test]
    fn instr_str_round_trips_the_fig2_listing_forms() {
        use crate::isa::{Addr, StreamId};
        // Every rendered form, spelled exactly as the Fig. 2b/2c
        // listings (and the README excerpts) expect them.
        let cases: Vec<(Instr, &str)> = vec![
            (
                Instr::Fmadd {
                    acc: 0,
                    src: Operand::MemBcast(Addr::new(StreamId::A, 32, 5), BcastMode::OneToEight),
                    b: 31,
                },
                "vfmadd231pd v0, v31, [rA + i*32 + 5]{1to8}",
            ),
            (
                Instr::Fmadd {
                    acc: 2,
                    src: Operand::Swizzle(30, 2),
                    b: 31,
                },
                "vfmadd231pd v2, v31, v30{dddd}[2]",
            ),
            (
                Instr::Broadcast {
                    dst: 30,
                    addr: Addr::new(StreamId::A, 32, 0),
                    mode: BcastMode::FourToEight,
                },
                "vbroadcastf64x4 v30, [rA + i*32]",
            ),
            (
                Instr::Broadcast {
                    dst: 29,
                    addr: Addr::new(StreamId::A, 0, 3),
                    mode: BcastMode::OneToEight,
                },
                "vbroadcastsd v29, [rA + 3]",
            ),
            (
                Instr::Load {
                    dst: 31,
                    addr: Addr::new(StreamId::B, 8, 0),
                },
                "vmovapd v31, [rB + i*8]",
            ),
            (
                Instr::Store {
                    src: 0,
                    addr: Addr::new(StreamId::C, 0, 8),
                },
                "vmovapd [rC + 8], v0",
            ),
            (
                Instr::Add {
                    dst: 0,
                    src: Operand::Mem(Addr::new(StreamId::C, 0, 0)),
                },
                "vaddpd v0, v0, [rC]",
            ),
            (
                Instr::Mul {
                    dst: 1,
                    src: Operand::Reg(7),
                },
                "vmulpd v1, v1, v7",
            ),
            (
                Instr::PrefetchL1(Addr::new(StreamId::A, 32, 32).with_thread_scale(8)),
                "vprefetch0 [rA + i*32 + t*8 + 32]",
            ),
            (
                Instr::PrefetchL2(Addr::new(StreamId::B, 8, 16)),
                "vprefetch1 [rB + i*8 + 16]",
            ),
            (Instr::ScalarOp, "add r13, 1"),
        ];
        for (instr, expect) in cases {
            assert_eq!(instr_str(&instr), expect);
        }
    }

    #[test]
    fn disassemble_lines_carry_index_and_pipe_columns() {
        let (k1, _) = build_basic_kernel(MicroKernelKind::Kernel1);
        let text = disassemble(&k1);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), k1.body.len());
        assert_eq!(lines[0], "  0 V  vprefetch0 [rB + i*8 + 8]");
        assert_eq!(lines[1], "  1 U  vmovapd v31, [rB + i*8]");
        assert_eq!(lines[2], "  2 V  vprefetch0 [rA + i*32 + t*8 + 32]");
        assert_eq!(lines[3], "  3 U  vfmadd231pd v0, v31, [rA + i*32]{1to8}");
    }

    #[test]
    fn validator_catches_defects() {
        use crate::isa::{Addr, StreamId};
        let mut p = Program::new();
        p.push(Instr::Fmadd {
            acc: 40, // out of range
            src: Operand::Swizzle(2, 7),
            b: 1,
        });
        p.push(Instr::Load {
            dst: 33,
            addr: Addr::new(StreamId::A, 0, 0),
        });
        let errs = validate(&p);
        assert_eq!(errs.len(), 3);
        assert!(matches!(
            errs[0],
            ValidationError::BadRegister { at: 0, reg: 40 }
        ));
        assert!(matches!(
            errs[1],
            ValidationError::BadSwizzleLane { at: 0, lane: 7 }
        ));
        assert!(errs[2].to_string().contains("v33"));
    }
}
