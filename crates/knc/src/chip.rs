//! Chip-level performance model of Knights Corner.
//!
//! The emulator ([`crate::kernels`]) establishes the per-iteration cycle
//! cost of the inner kernels from first principles; this module scales
//! those constants to full-chip, paper-scale problems. Every calibration
//! constant is documented with the paper statement that pins it, and
//! `EXPERIMENTS.md` records model-vs-paper numbers for each table/figure.
//!
//! * [`KncChip`] — the Table I hardware constants.
//! * [`GemmModel`] — DGEMM/SGEMM efficiency as a function of the inner
//!   blocking `k` and the matrix size (Table II, Fig. 4): kernel issue
//!   efficiency × C-update/loop overhead × L2-spill penalty × scalar
//!   drive factor × tile-quantization × packing overhead.
//! * [`LuTaskModel`] — durations of the LU task types (panel
//!   factorization, row swap, DTRSM, trailing GEMM) used by the
//!   discrete-event native-Linpack simulation (Fig. 6/7).

use phi_blas::gemm::MicroKernelKind;

/// Element precision for the GEMM models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// 32-bit floats (SGEMM): 16 lanes per vector, 4 bytes/element.
    F32,
    /// 64-bit floats (DGEMM): 8 lanes per vector, 8 bytes/element.
    F64,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    /// FLOPs per core per cycle (FMA counts as 2 × lanes).
    pub fn flops_per_cycle(self) -> f64 {
        match self {
            Precision::F32 => 32.0,
            Precision::F64 => 16.0,
        }
    }
}

/// Knights Corner hardware constants (Table I of the paper).
#[derive(Clone, Copy, Debug)]
pub struct KncChip {
    /// Physical cores on the die (61; the last is reserved for the OS).
    pub cores_total: usize,
    /// Cores used for computation in native mode (60).
    pub cores_compute: usize,
    /// Core clock in GHz (1.1).
    pub freq_ghz: f64,
    /// Achievable STREAM bandwidth in GB/s (150).
    pub stream_bw_gbs: f64,
    /// GDDR capacity in GiB (8) — the limit that motivates hybrid HPL.
    pub memory_gib: f64,
    /// Per-core L2 in bytes (512 KB).
    pub l2_bytes: usize,
}

impl Default for KncChip {
    fn default() -> Self {
        Self {
            cores_total: 61,
            cores_compute: 60,
            freq_ghz: 1.1,
            stream_bw_gbs: 150.0,
            memory_gib: 8.0,
            l2_bytes: 512 * 1024,
        }
    }
}

impl KncChip {
    /// Peak GFLOPS over `cores` cores.
    pub fn peak_gflops(&self, prec: Precision, cores: usize) -> f64 {
        cores as f64 * self.freq_ghz * prec.flops_per_cycle()
    }

    /// Native peak (60 compute cores): 1056 DP GFLOPS — the denominator of
    /// the paper's native efficiency numbers (footnote 2).
    pub fn native_peak_gflops(&self, prec: Precision) -> f64 {
        self.peak_gflops(prec, self.cores_compute)
    }

    /// Full-chip peak (61 cores): 1074 DP GFLOPS, the Table I entry and
    /// the denominator for offload/hybrid efficiency.
    pub fn full_peak_gflops(&self, prec: Precision) -> f64 {
        self.peak_gflops(prec, self.cores_total)
    }

    /// Largest N whose `N × N` f64 matrix fits in GDDR (with ~10% slack
    /// for buffers) — the paper factors up to N = 30K on the 8 GB card.
    pub fn max_native_n(&self) -> usize {
        let bytes = self.memory_gib * 1024.0 * 1024.0 * 1024.0 * 0.9;
        (bytes / 8.0).sqrt() as usize
    }

    /// The chip with `core_fraction` of its cores throttled to run
    /// `slowdown`× slower — a straggler card running hot and clocking
    /// down part of the die. Barrier-synchronized LU kernels run at the
    /// pace of the slowest group, but work stealing rebalances most of
    /// the gap, so the model charges the *aggregate throughput* drag
    /// `1 - f + f·k` against the clock. With `core_fraction = 0` or
    /// `slowdown = 1` the returned chip is bit-identical to `self`.
    pub fn with_straggler(&self, core_fraction: f64, slowdown: f64) -> Self {
        assert!((0.0..=1.0).contains(&core_fraction) && slowdown >= 1.0);
        let drag = 1.0 - core_fraction + core_fraction * slowdown;
        Self {
            freq_ghz: self.freq_ghz / drag,
            ..*self
        }
    }
}

/// Calibrated GEMM performance model (Table II / Fig. 4).
#[derive(Clone, Copy, Debug)]
pub struct GemmModel {
    /// Hardware constants.
    pub chip: KncChip,
    /// Steady-state cycles per inner-loop iteration for Basic Kernel 2,
    /// cross-checked against the emulator (32.0: stall-free).
    pub kernel2_cycles_per_iter: f64,
    /// Ditto for Basic Kernel 1 (≈34: two fill stalls per iteration,
    /// Section III-A2's "91% = 31/(32+2)").
    pub kernel1_cycles_per_iter: f64,
    /// Fixed overhead cycles per `k`-loop pass: C-tile update (the ~2
    /// instructions × 30 rows of the epilogue) plus loop setup/drain.
    /// Divided by `32k` this reproduces the "less than 0.5% for k = 240"
    /// statement for the update share.
    pub per_pass_overhead_cycles: f64,
    /// Multiplicative efficiency factor for "scalar instructions overhead
    /// required to drive DGEMM parallel distribution of work" (the paper's
    /// third unaccounted overhead). Calibrated so DGEMM(k=300) = 89.4%.
    pub drive_factor_dp: f64,
    /// Same for SGEMM; calibrated so SGEMM(k=400) = 90.8%.
    pub drive_factor_sp: f64,
    /// Effective L2 capacity before spill effects begin (associativity
    /// and sharing leave less than the nominal 512 KB usable).
    pub l2_effective_bytes: f64,
    /// Spill penalty slope: fractional slowdown per fractional overflow.
    /// Calibrated to Table II's DGEMM droop at k = 340/400.
    pub spill_gamma: f64,
    /// `mc` of the chip-wide blocking (120, Section III-A1 example).
    pub mc: usize,
    /// `nc` per core (32).
    pub nc: usize,
    /// Fixed per-call overhead of one chip-wide outer product: thread
    /// wake-up/barrier across 240 threads (seconds). Governs the small-
    /// size droop of Fig. 4's kernel curve.
    pub call_overhead_s: f64,
    /// Packing overhead coefficients: `c1/S + c2/S²` with `S` in units of
    /// 1000 (matrix dimension). Fit to Fig. 4's quoted points: 15% at 1K,
    /// <2% from 5K, ~0.4% at 17K.
    pub pack_c1: f64,
    /// See `pack_c1`.
    pub pack_c2: f64,
}

impl Default for GemmModel {
    fn default() -> Self {
        Self {
            chip: KncChip::default(),
            kernel2_cycles_per_iter: 32.0,
            kernel1_cycles_per_iter: 34.0,
            per_pass_overhead_cycles: 175.0,
            drive_factor_dp: 0.971,
            drive_factor_sp: 0.982,
            l2_effective_bytes: 400.0 * 1024.0,
            spill_gamma: 0.034,
            mc: 120,
            nc: 32,
            call_overhead_s: 100e-6,
            pack_c1: 0.0629,
            pack_c2: 0.0871,
        }
    }
}

/// Steady-state kernel costs re-measured on the cycle-level emulator
/// ([`crate::kernels`]) with the block-trace fast path enabled — the
/// calibration experiment behind [`GemmModel`]'s two kernel constants.
#[derive(Clone, Copy, Debug)]
pub struct KernelCalibration {
    /// Measured per-thread steady cycles per iteration of Basic Kernel 1.
    pub kernel1_cycles_per_iter: f64,
    /// Measured per-thread steady cycles per iteration of Basic Kernel 2.
    pub kernel2_cycles_per_iter: f64,
    /// Trace-replay coverage speedup of the Kernel 1 measurement run
    /// (total cycles over interpreter-executed cycles).
    pub kernel1_replay_speedup: f64,
    /// Trace-replay coverage speedup of the Kernel 2 measurement run.
    pub kernel2_replay_speedup: f64,
}

impl KernelCalibration {
    /// Runs both basic kernels on the emulator at inner depth `depth`
    /// and measures their steady per-thread cycle costs. The emulator is
    /// the ground truth the hand-written [`GemmModel`] constants must
    /// reproduce: Kernel 2 at exactly 32 cycles per 30-FMA iteration
    /// (stall-free holes absorb every prefetch fill), Kernel 1 dragged
    /// above 32 by fill stalls toward the paper's worst case of 34.
    ///
    /// The measurement runs with the trace fast path on; its bit-identity
    /// guarantee (`crates/knc/src/trace.rs`) means the numbers are the
    /// interpreter's own.
    pub fn measure(depth: usize) -> Self {
        use crate::kernels::{kernel_mr, run_tile_product_traced, NR};
        use crate::pipeline::PipelineConfig;
        let run = |kind: MicroKernelKind| {
            let mr = kernel_mr(kind);
            // Operand values cannot affect timing (data-independent
            // pipeline); any deterministic fill works.
            let a: Vec<f64> = (0..mr * depth)
                .map(|i| ((i * 7 + 3) % 23) as f64 - 11.0)
                .collect();
            let bs: [Vec<f64>; 4] = std::array::from_fn(|t| {
                (0..depth * NR)
                    .map(|i| ((i * 5 + t) % 17) as f64 - 8.0)
                    .collect()
            });
            let (rep, _, speedup) =
                run_tile_product_traced(kind, depth, &a, &bs, PipelineConfig::default());
            // steady_cycles_per_iter counts all four SMT threads; the
            // model's constant is per thread.
            (rep.steady_cycles_per_iter / 4.0, speedup)
        };
        let (k1, s1) = run(MicroKernelKind::Kernel1);
        let (k2, s2) = run(MicroKernelKind::Kernel2);
        Self {
            kernel1_cycles_per_iter: k1,
            kernel2_cycles_per_iter: k2,
            kernel1_replay_speedup: s1,
            kernel2_replay_speedup: s2,
        }
    }
}

impl GemmModel {
    /// Issue-limited kernel efficiency for a variant: FMAs per cycle in
    /// steady state (Kernel 2: 30/32; Kernel 1: 31/34).
    pub fn kernel_efficiency(&self, kind: MicroKernelKind) -> f64 {
        match kind {
            MicroKernelKind::Kernel1 => 31.0 / self.kernel1_cycles_per_iter,
            MicroKernelKind::Kernel2 => 30.0 / self.kernel2_cycles_per_iter,
        }
    }

    /// A model whose two kernel constants come from an emulator
    /// measurement ([`KernelCalibration::measure`]) instead of the
    /// hand-written defaults. Everything else keeps the default
    /// calibration.
    pub fn calibrated_from_emulator(depth: usize) -> Self {
        let cal = KernelCalibration::measure(depth);
        Self {
            kernel1_cycles_per_iter: cal.kernel1_cycles_per_iter,
            kernel2_cycles_per_iter: cal.kernel2_cycles_per_iter,
            ..Self::default()
        }
    }

    /// L2 footprint of the blocking at inner dimension `k` (Section
    /// III-A1 inequality, left side).
    fn footprint_bytes(&self, k: usize, prec: Precision) -> f64 {
        (prec.bytes() * (self.mc * self.nc + self.mc * k + k * self.nc)) as f64
    }

    /// Spill penalty ≥ 1: grows once the block triple overflows the
    /// effective L2 ("as k increases, L2 block sizes also increase and
    /// eventually fall out of L2 cache").
    fn spill_penalty(&self, k: usize, prec: Precision) -> f64 {
        let fp = self.footprint_bytes(k, prec);
        let over = (fp - self.l2_effective_bytes).max(0.0) / self.l2_effective_bytes;
        1.0 + self.spill_gamma * over
    }

    /// Chip-wide GEMM efficiency as a function of the inner blocking `k`
    /// for asymptotically large matrices — the Table II model.
    pub fn efficiency_vs_k(&self, k: usize, prec: Precision) -> f64 {
        assert!(k > 0);
        let kern = self.kernel_efficiency(MicroKernelKind::Kernel2);
        let pass = 32.0 * k as f64;
        let pass_eff = pass / (pass + self.per_pass_overhead_cycles);
        let drive = match prec {
            Precision::F64 => self.drive_factor_dp,
            Precision::F32 => self.drive_factor_sp,
        };
        kern * pass_eff * drive / self.spill_penalty(k, prec)
    }

    /// GFLOPS corresponding to [`Self::efficiency_vs_k`] on the native
    /// 60-core peak.
    pub fn gflops_vs_k(&self, k: usize, prec: Precision) -> f64 {
        self.efficiency_vs_k(k, prec) * self.chip.native_peak_gflops(prec)
    }

    /// Tile-quantization and load-imbalance factor for an `m × n` output:
    /// rows round up to 30-row register tiles, columns to the 32-wide
    /// per-core strip, and whole tiles round-robin over 60 cores.
    pub fn quantization_factor(&self, m: usize, n: usize) -> f64 {
        if m == 0 || n == 0 {
            return 1.0;
        }
        let row_tiles = m.div_ceil(30);
        let col_tiles = n.div_ceil(self.nc);
        let q_rows = m as f64 / (row_tiles * 30) as f64;
        let q_cols = n as f64 / (col_tiles * self.nc) as f64;
        let tasks = row_tiles * col_tiles;
        let cores = self.chip.cores_compute;
        let waves = tasks.div_ceil(cores);
        let balance = tasks as f64 / (waves * cores) as f64;
        q_rows * q_cols * balance
    }

    /// Efficiency of one `m × n × k` outer-product kernel call (Fig. 4
    /// middle curve: no packing overhead).
    pub fn outer_product_efficiency(&self, m: usize, n: usize, k: usize, prec: Precision) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let base = self.efficiency_vs_k(k, prec) * self.quantization_factor(m, n);
        let peak = self.chip.native_peak_gflops(prec) * 1e9;
        let compute_s = (2.0 * m as f64 * n as f64 * k as f64) / (base * peak);
        compute_s / (compute_s + self.call_overhead_s) * base
    }

    /// Fractional packing overhead for an `S × S` DGEMM (Fig. 4 top vs
    /// middle curve): `c1/S + c2/S²` with `S` in thousands.
    pub fn packing_overhead(&self, s: usize) -> f64 {
        if s == 0 {
            return 0.0;
        }
        let sk = s as f64 / 1000.0;
        self.pack_c1 / sk + self.pack_c2 / (sk * sk)
    }

    /// Efficiency of a full square `S × S` DGEMM including packing — the
    /// top curve of Fig. 4 (and, for `S = 28000`, the Table II row).
    pub fn dgemm_efficiency(&self, s: usize, k: usize, prec: Precision) -> f64 {
        self.outer_product_efficiency(s, s, k, prec) / (1.0 + self.packing_overhead(s))
    }

    /// Time in seconds of one `m × n × k` outer product on `cores` cores
    /// (native DGEMM path). Used by the DES backends.
    pub fn gemm_time_s(&self, m: usize, n: usize, k: usize, cores: f64, prec: Precision) -> f64 {
        if m == 0 || n == 0 || k == 0 || cores <= 0.0 {
            return 0.0;
        }
        let eff = self.efficiency_vs_k(k.max(1), prec) * self.quantization_factor(m, n);
        let peak_per_core = self.chip.freq_ghz * prec.flops_per_cycle() * 1e9;
        (2.0 * m as f64 * n as f64 * k as f64) / (eff.max(1e-3) * peak_per_core * cores)
    }
}

/// Durations of native-LU task types for the discrete-event simulation
/// (Fig. 6/7). Units: seconds; `cores` is the (possibly fractional) number
/// of KNC cores assigned to the task's thread group.
#[derive(Clone, Copy, Debug)]
pub struct LuTaskModel {
    /// The GEMM model supplying trailing-update throughput.
    pub gemm: GemmModel,
    /// Panel factorization efficiency relative to peak: DGETRF on a tall
    /// panel is latency/bandwidth bound on the in-order KNC cores; the
    /// Gantt profile of Fig. 7a shows the panel dominating small problems.
    pub panel_efficiency: f64,
    /// Serial per-column latency of panel factorization at a 4-core
    /// group (pivot-search reduction + broadcast), seconds. The cost
    /// grows with the group size — synchronizing more cores per column
    /// is exactly why panels do not scale to the whole chip and thread
    /// groups exist at all (Section IV-A).
    pub panel_col_latency_s: f64,
    /// Fraction of STREAM bandwidth achievable by row swapping (DLASWP is
    /// a gather/scatter pattern, well below STREAM).
    pub swap_bw_fraction: f64,
    /// DTRSM efficiency relative to peak (small triangular solves run at
    /// a fraction of GEMM speed).
    pub trsm_efficiency: f64,
    /// Global-barrier cost across the whole chip, seconds (static
    /// look-ahead pays this once per stage, Fig. 7a's white regions).
    pub barrier_s: f64,
    /// Scheduling efficiency of group-executed GEMM tasks relative to the
    /// raw DGEMM model: intra-group task barriers, tile edges within the
    /// group's split, and scheduler overhead. Calibrated so native HPL at
    /// 30K lands at the paper's 832 GFLOPS — i.e. it carries the bulk of
    /// the "within 12% of native DGEMM" gap of Section IV-B.
    pub sched_efficiency: f64,
    /// Additional per-core intra-task synchronization drag: executing one
    /// task cooperatively across `c` cores loses a `1/(1 + c·this)`
    /// factor (keeping 240 threads coherent on one small task is how the
    /// degenerate single-group schedule loses to real groups).
    pub group_sync_per_core: f64,
    /// Panel throughput degradation for short panels (latency-bound
    /// pivot chains): effective efficiency is
    /// `panel_efficiency · m/(m + this)`. Zero (the default) disables the
    /// knee; the per-column latency term already carries the small-panel
    /// floor.
    pub panel_m_knee: f64,
}

impl Default for LuTaskModel {
    fn default() -> Self {
        Self {
            gemm: GemmModel::default(),
            panel_efficiency: 0.20,
            panel_col_latency_s: 1.2e-6,
            swap_bw_fraction: 0.35,
            trsm_efficiency: 0.45,
            barrier_s: 12e-6,
            sched_efficiency: 1.0,
            group_sync_per_core: 0.002,
            panel_m_knee: 0.0,
        }
    }
}

impl LuTaskModel {
    /// Peak GFLOPS of `cores` cores in f64.
    fn peak(&self, cores: f64) -> f64 {
        cores * self.gemm.chip.freq_ghz * 16.0 * 1e9
    }

    /// Panel factorization (DGETRF) of an `m × nb` panel on a group of
    /// `cores` cores: compute term at panel efficiency plus the serial
    /// per-column latency chain.
    pub fn panel_time_s(&self, m: usize, nb: usize, cores: f64) -> f64 {
        if m == 0 || nb == 0 {
            return 0.0;
        }
        let m = m as f64;
        let nbf = nb as f64;
        let flops = m * nbf * nbf - nbf * nbf * nbf / 3.0;
        let sync_scale = 1.0 + cores.max(0.25) / 8.0;
        let eff = self.panel_efficiency * m / (m + self.panel_m_knee);
        flops.max(0.0) / (eff * self.peak(cores.max(0.25)))
            + nbf * self.panel_col_latency_s * sync_scale
    }

    /// Row swap (DLASWP) over an `nb`-deep pivot window of a row block
    /// `cols` wide: bandwidth bound.
    pub fn swap_time_s(&self, nb: usize, cols: usize, cores: f64) -> f64 {
        let traffic = 2.0 * 8.0 * nb as f64 * cols as f64; // read + write
        let chip_cores = self.gemm.chip.cores_compute as f64;
        let bw_share = self.gemm.chip.stream_bw_gbs
            * 1e9
            * self.swap_bw_fraction
            * (cores / chip_cores).min(1.0);
        traffic / bw_share.max(1.0)
    }

    /// Forward solve (DTRSM) of the `nb × cols` row panel.
    pub fn trsm_time_s(&self, nb: usize, cols: usize, cores: f64) -> f64 {
        let flops = nb as f64 * nb as f64 * cols as f64;
        flops / (self.trsm_efficiency * self.peak(cores.max(0.25)))
    }

    /// Trailing-matrix GEMM update of an `m × n` block with depth `nb` on
    /// a *group* of `cores` cores. Unlike [`GemmModel::gemm_time_s`], the
    /// chip-wide load-balance factor is omitted — in the DAG-scheduled LU,
    /// balance across groups emerges from the scheduler itself, and only
    /// the register-tile quantization of the block applies.
    pub fn update_time_s(&self, m: usize, n: usize, nb: usize, cores: f64) -> f64 {
        if m == 0 || n == 0 || nb == 0 || cores <= 0.0 {
            return 0.0;
        }
        let g = &self.gemm;
        let row_tiles = m.div_ceil(30);
        let q_rows = m as f64 / (row_tiles * 30) as f64;
        let col_tiles = n.div_ceil(8);
        let q_cols = n as f64 / (col_tiles * 8) as f64;
        let sync = 1.0 / (1.0 + cores * self.group_sync_per_core);
        let eff = g.efficiency_vs_k(nb.max(1), Precision::F64)
            * q_rows
            * q_cols
            * self.sched_efficiency
            * sync;
        let peak_per_core = g.chip.freq_ghz * 16.0 * 1e9;
        2.0 * m as f64 * n as f64 * nb as f64 / (eff.max(1e-3) * peak_per_core * cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE2_K: [usize; 6] = [120, 180, 240, 300, 340, 400];
    const TABLE2_DP_EFF: [f64; 6] = [0.867, 0.886, 0.891, 0.894, 0.893, 0.889];
    const TABLE2_SP_EFF: [f64; 6] = [0.883, 0.893, 0.901, 0.904, 0.906, 0.908];

    #[test]
    fn straggler_throttling_drags_the_clock() {
        let chip = KncChip::default();
        // Identity case is bit-exact: a healthy chip is untouched.
        let same = chip.with_straggler(0.0, 1.0);
        assert_eq!(same.freq_ghz.to_bits(), chip.freq_ghz.to_bits());
        // Half the cores at 2x slower → 1.5x aggregate drag.
        let hot = chip.with_straggler(0.5, 2.0);
        assert!((hot.freq_ghz - chip.freq_ghz / 1.5).abs() < 1e-12);
        assert!(hot.native_peak_gflops(Precision::F64) < chip.native_peak_gflops(Precision::F64));
    }

    #[test]
    fn peaks_match_table1() {
        let chip = KncChip::default();
        // Table I: 1074 DP / 2148 SP GFLOPS for 61 cores.
        assert!((chip.full_peak_gflops(Precision::F64) - 1073.6).abs() < 1.0);
        assert!((chip.full_peak_gflops(Precision::F32) - 2147.2).abs() < 2.0);
        assert!((chip.native_peak_gflops(Precision::F64) - 1056.0).abs() < 1.0);
    }

    #[test]
    fn native_memory_limits_problem_size() {
        // "30K, which is the largest problem that fits into 8 GB".
        let n = KncChip::default().max_native_n();
        assert!((30_000..34_000).contains(&n), "max native N = {n}");
    }

    #[test]
    fn table2_dgemm_efficiencies_within_half_point() {
        let model = GemmModel::default();
        for (&k, &paper) in TABLE2_K.iter().zip(&TABLE2_DP_EFF) {
            let ours = model.efficiency_vs_k(k, Precision::F64);
            assert!(
                (ours - paper).abs() < 0.005,
                "DGEMM k={k}: model {ours:.4} vs paper {paper:.4}"
            );
        }
        // The best k is 300, matching the paper's choice.
        let best = TABLE2_K
            .iter()
            .copied()
            .max_by(|&a, &b| {
                model
                    .efficiency_vs_k(a, Precision::F64)
                    .total_cmp(&model.efficiency_vs_k(b, Precision::F64))
            })
            .unwrap();
        assert_eq!(best, 300);
    }

    #[test]
    fn table2_sgemm_efficiencies_within_half_point() {
        let model = GemmModel::default();
        for (&k, &paper) in TABLE2_K.iter().zip(&TABLE2_SP_EFF) {
            let ours = model.efficiency_vs_k(k, Precision::F32);
            assert!(
                (ours - paper).abs() < 0.005,
                "SGEMM k={k}: model {ours:.4} vs paper {paper:.4}"
            );
        }
        // SGEMM keeps improving to k = 400 (its blocks are half the size).
        let e340 = model.efficiency_vs_k(340, Precision::F32);
        let e400 = model.efficiency_vs_k(400, Precision::F32);
        assert!(e400 > e340);
    }

    #[test]
    fn headline_944_gflops() {
        let model = GemmModel::default();
        let gf = model.gflops_vs_k(300, Precision::F64);
        assert!(
            (gf - 944.0).abs() < 5.0,
            "DGEMM k=300 must be ≈944 GFLOPS, got {gf:.0}"
        );
    }

    #[test]
    fn fig4_kernel_curve_shape() {
        let model = GemmModel::default();
        // "kernel performance is high even for sizes as small as 5K for
        // which it reaches 88% efficiency".
        let e5k = model.outer_product_efficiency(5000, 5000, 300, Precision::F64);
        assert!((e5k - 0.88).abs() < 0.01, "5K kernel eff {e5k:.3}");
        // Monotone growth toward the asymptote at 28K.
        let e1k = model.outer_product_efficiency(1000, 1000, 300, Precision::F64);
        let e28k = model.outer_product_efficiency(28000, 28000, 300, Precision::F64);
        assert!(e1k < e5k && e5k < e28k);
        assert!((e28k - 0.894).abs() < 0.005, "28K eff {e28k:.3}");
    }

    #[test]
    fn fig4_packing_overhead_points() {
        let model = GemmModel::default();
        // "this overhead decreases from 15% for 1K matrices down to less
        // than 0.4% for matrices larger than 17K. The packing overhead is
        // under 2% starting from 5K matrices."
        assert!((model.packing_overhead(1000) - 0.15).abs() < 0.01);
        assert!(model.packing_overhead(5000) < 0.02);
        assert!(model.packing_overhead(17000) < 0.005);
        // Monotone decreasing.
        assert!(model.packing_overhead(2000) > model.packing_overhead(4000));
    }

    #[test]
    fn kernel_efficiencies_match_emulator_story() {
        let model = GemmModel::default();
        let k1 = model.kernel_efficiency(MicroKernelKind::Kernel1);
        let k2 = model.kernel_efficiency(MicroKernelKind::Kernel2);
        assert!((k1 - 31.0 / 34.0).abs() < 1e-12);
        assert!((k2 - 30.0 / 32.0).abs() < 1e-12);
        assert!(k2 > k1, "Kernel 2 wins in practice");
    }

    #[test]
    fn emulator_calibration_confirms_model_constants() {
        let cal = KernelCalibration::measure(256);
        // Kernel 2 is stall-free: exactly 32 cycles per iteration.
        assert!(
            (cal.kernel2_cycles_per_iter - 32.0).abs() < 0.5,
            "kernel2 measured {:.3} cycles/iter",
            cal.kernel2_cycles_per_iter
        );
        // Kernel 1 lands between the issue bound (32) and the paper's
        // stall-bound worst case (34): stall holes absorb part of the
        // fill backlog.
        assert!(
            cal.kernel1_cycles_per_iter > 32.0 && cal.kernel1_cycles_per_iter < 34.5,
            "kernel1 measured {:.3} cycles/iter",
            cal.kernel1_cycles_per_iter
        );
        // The measurement itself ran mostly on the trace fast path.
        assert!(
            cal.kernel1_replay_speedup > 2.0 && cal.kernel2_replay_speedup > 2.0,
            "replay speedups {:.2} / {:.2}",
            cal.kernel1_replay_speedup,
            cal.kernel2_replay_speedup
        );
        // A model built from the measurement stays close to the default
        // calibration and preserves the Kernel 2 > Kernel 1 ordering.
        let model = GemmModel::calibrated_from_emulator(256);
        let k2 = model.kernel_efficiency(MicroKernelKind::Kernel2);
        let k1 = model.kernel_efficiency(MicroKernelKind::Kernel1);
        assert!((k2 - 30.0 / 32.0).abs() < 0.02, "calibrated k2 eff {k2:.4}");
        assert!(k1 < k2, "calibrated ordering: k1 {k1:.4} vs k2 {k2:.4}");
    }

    #[test]
    fn gemm_time_scales_inversely_with_cores() {
        let model = GemmModel::default();
        let t60 = model.gemm_time_s(3000, 3000, 300, 60.0, Precision::F64);
        let t30 = model.gemm_time_s(3000, 3000, 300, 30.0, Precision::F64);
        assert!((t30 / t60 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lu_task_times_are_sane() {
        let m = LuTaskModel::default();
        // A 30K × 256 panel on a couple of cores takes a sizable fraction
        // of a second — exactly why look-ahead must hide it.
        let p = m.panel_time_s(30_000, 256, 8.0);
        assert!(p > 1e-4 && p < 5.0, "panel time {p}");
        // On an 8-core group the panel still fits under the full trailing
        // update, so early stages can hide it (Section IV-A).
        let u = m.update_time_s(30_000, 30_000, 256, 60.0);
        assert!(u > p, "update {u} vs panel {p}");
        // Swap is bandwidth-bound and cheap relative to the update.
        let s = m.swap_time_s(256, 30_000, 60.0);
        assert!(s < u);
        assert!(m.trsm_time_s(256, 30_000, 60.0) < u);
    }
}
