//! Core pipeline parameters for the cycle-level model.
//!
//! The values mirror Section II of the paper and Intel's published KNC
//! microarchitecture details:
//!
//! * in-order core, **one vector instruction per cycle** (U-pipe);
//! * **dual-issue**: a prefetch or scalar instruction can co-issue with a
//!   vector instruction in the same cycle (V-pipe), which "removes these
//!   instructions from the critical path" — essential in loops with
//!   limited unrolling like the DGEMM inner loop;
//! * **4-way SMT round-robin**: a thread cannot issue in back-to-back
//!   cycles, so four hardware threads per core are used to keep the
//!   vector unit saturated (the paper's Fig. 2a decomposition);
//! * L1 hit latency 1 cycle, **local L2 hit latency under 25 cycles**
//!   (Section III-A2 — "we prefetch for the next iteration of the loop");
//! * prefetch fills need both L1 ports; if a port is busy the fill defers,
//!   and past a threshold the pipeline stalls a few cycles (Fig. 1c).

/// Tunable parameters of the simulated KNC core.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Hardware threads per core (KNC: 4).
    pub threads_per_core: usize,
    /// Cycles from L1-prefetch issue until the line arrives from a local
    /// L2 hit and the fill becomes attemptable (paper: "under 25 cycles").
    pub l2_hit_latency: u64,
    /// Cycles for a line absent from L2 (GDDR access).
    pub mem_latency: u64,
    /// Deferral cycles after which a blocked fill forces a pipeline stall
    /// (Fig. 1c "threshold cycles").
    pub fill_defer_threshold: u32,
    /// Pipeline stall length used to push a blocked fill through.
    pub fill_stall_cycles: u64,
    /// Stall charged when a *demand* access misses L1 but hits L2
    /// (mis-scheduled prefetching; the tuned kernels avoid this).
    pub demand_l2_penalty: u64,
    /// Stall charged when a demand access misses both levels.
    pub demand_mem_penalty: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            threads_per_core: 4,
            l2_hit_latency: 12,
            mem_latency: 230,
            fill_defer_threshold: 8,
            fill_stall_cycles: 2,
            demand_l2_penalty: 12,
            demand_mem_penalty: 230,
        }
    }
}

/// Knobs of the block-trace fast path ([`crate::trace`]). Kept separate
/// from [`PipelineConfig`] — they change *how fast the simulator runs*,
/// never what it computes.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Largest steady-state period, in macro-iterations, the template
    /// detector recognizes (software-pipelined kernels can alternate
    /// between a small cycle of distinct segment shapes).
    pub max_period: usize,
    /// Recorded segments retained for period detection; must exceed
    /// `2 * max_period` so a full double period fits.
    pub ring_cap: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            max_period: 4,
            ring_cap: 9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_defaults_are_consistent() {
        let t = TraceConfig::default();
        assert!(t.ring_cap > 2 * t.max_period);
    }

    #[test]
    fn defaults_match_paper_bounds() {
        let c = PipelineConfig::default();
        assert_eq!(c.threads_per_core, 4);
        assert!(c.l2_hit_latency < 25, "paper: local L2 hit under 25 cycles");
        assert!(c.mem_latency > c.l2_hit_latency);
    }
}
