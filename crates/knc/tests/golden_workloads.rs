//! Golden architectural-state snapshots of the performance-lab kernels
//! (SpMV and stencil), mirroring `golden_state.rs` for the DGEMM
//! kernels: fixed deterministic inputs, every public counter, and a
//! checksum of the results, compared line-by-line against a checked-in
//! fixture. The SpMV snapshot is taken on *both* emulator paths, which
//! must agree bit-for-bit, and pins the trace engine's replay coverage.
//!
//! To regenerate after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p phi-knc --test golden_workloads
//! ```

use phi_knc::emu::RunStats;
use phi_knc::spmv::{run_spmv, run_spmv_traced, uniform_rect_csr};
use phi_knc::stencil::{run_stencil, StarStencil};
use phi_knc::PipelineConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv_bits(vals: &[f64]) -> u64 {
    vals.iter()
        .fold(FNV_OFFSET, |h, v| (h ^ v.to_bits()).wrapping_mul(FNV_PRIME))
}

fn stat_lines(tag: &str, cycles: u64, s: &RunStats, checksum: u64) -> Vec<String> {
    vec![
        format!("{tag} cycles={cycles}"),
        format!(
            "{tag} issue vector={} fmadds={} vpipe={}",
            s.vector_issued, s.fmadds, s.vpipe_issued
        ),
        format!(
            "{tag} stalls fill={} demand={} fills_in_holes={} fills_completed={}",
            s.fill_stall_cycles, s.demand_stall_cycles, s.fills_in_holes, s.fills_completed
        ),
        format!("{tag} result={checksum:#018x}"),
    ]
}

fn spmv_snapshot() -> Vec<String> {
    let a = uniform_rect_csr(96, 160, 0x5EED);
    let x: Vec<f64> = (0..a.cols)
        .map(|i| ((i * 3 + 1) % 11) as f64 - 5.0)
        .collect();
    let slow = run_spmv(&a, &x, PipelineConfig::default());
    let (fast, ts, _) = run_spmv_traced(&a, &x, PipelineConfig::default());
    assert_eq!(
        fast.cycles_total, slow.cycles_total,
        "spmv: trace fast path must be cycle-identical"
    );
    assert_eq!(fast.stats, slow.stats, "spmv: counters must be identical");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&fast.y),
        bits(&slow.y),
        "spmv: y must be bit-identical"
    );
    let mut lines = stat_lines("spmv", slow.cycles_total, &slow.stats, fnv_bits(&slow.y));
    lines.insert(
        1,
        format!(
            "spmv shape rows={} nnz={} padded={} replayed_segments={}",
            slow.rows, slow.nnz, slow.padded_nnz, ts.replayed_segments
        ),
    );
    lines
}

fn stencil_snapshot() -> Vec<String> {
    let st = StarStencil::seven_point(-6.0, 1.0);
    let dims = (16, 12, 2);
    let grid: Vec<f64> = (0..dims.0 * dims.1 * 8 * dims.2)
        .map(|i| ((i * 7 + 1) % 13) as f64 - 6.0)
        .collect();
    let rep = run_stencil(&st, dims, &grid, PipelineConfig::default());
    let mut lines = stat_lines("stencil", rep.cycles_total, &rep.stats, fnv_bits(&rep.out));
    lines.insert(
        1,
        format!(
            "stencil dims={}x{}x{} taps={}",
            dims.0,
            dims.1,
            8 * dims.2,
            rep.taps
        ),
    );
    lines
}

#[test]
fn workload_state_matches_golden() {
    let mut lines = spmv_snapshot();
    lines.extend(stencil_snapshot());
    let rendered = lines.join("\n") + "\n";
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/workload_state.txt"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &rendered).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden fixture missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "workload architectural state drifted from the golden snapshot; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
