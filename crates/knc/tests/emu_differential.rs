//! Differential-equivalence harness: the block-trace fast path versus
//! the per-instruction interpreter.
//!
//! Every test runs the *same* workload twice — once with tracing off,
//! once with tracing on — and demands bit-identical outcomes: the full
//! architectural + micro-architectural state digest (registers, memory,
//! cycle, stalls, cache/TLB tag state, pending fills) plus every public
//! counter. The sweeps cover both paper kernels across blocking depths
//! and pipeline-latency variants, and fault-perturbed schedules (TLB
//! shootdowns, data edits, self-modifying program edits, mid-block
//! marks) at seeded points, so a divergence anywhere in the record /
//! replay / deopt machinery fails loudly.

use phi_blas::gemm::MicroKernelKind;
use phi_knc::emu::{CoreSim, StreamBases};
use phi_knc::isa::{Addr, Instr, Operand, Program, StreamId};
use phi_knc::kernels::{run_tile_product, run_tile_product_traced};
use phi_knc::PipelineConfig;
use phi_matrix::HplRng;

const MEM_ELEMS: usize = 4096;

/// Deterministic tile inputs shared by every kernel sweep.
fn tile_inputs(kind: MicroKernelKind, depth: usize) -> (Vec<f64>, [Vec<f64>; 4]) {
    let mr = match kind {
        MicroKernelKind::Kernel1 => 31,
        MicroKernelKind::Kernel2 => 30,
    };
    let a: Vec<f64> = (0..mr * depth)
        .map(|i| ((i * 7 + 3) % 23) as f64 - 11.0)
        .collect();
    let bs: [Vec<f64>; 4] = std::array::from_fn(|t| {
        (0..depth * 8)
            .map(|i| ((i * 5 + t) % 17) as f64 - 8.0)
            .collect()
    });
    (a, bs)
}

/// Pipeline variants for the sweep: the KNC defaults, a low-latency
/// part, and a hostile part (slow memory, touchy fill threshold).
fn pipeline_variants() -> [PipelineConfig; 3] {
    let base = PipelineConfig::default();
    [
        base,
        PipelineConfig {
            l2_hit_latency: 6,
            mem_latency: 110,
            demand_l2_penalty: 6,
            demand_mem_penalty: 110,
            ..base
        },
        PipelineConfig {
            mem_latency: 340,
            demand_mem_penalty: 340,
            fill_defer_threshold: 4,
            fill_stall_cycles: 3,
            ..base
        },
    ]
}

/// Kernel 1 and Kernel 2, three blocking depths, three pipeline
/// variants: the traced run reproduces the interpreter bit-for-bit —
/// cycles, all counters, steady-state measurement, and the C tiles.
#[test]
fn kernel_sweep_fast_equals_slow() {
    let mut replayed_total = 0u64;
    for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
        for depth in [48usize, 112, 256] {
            for (ci, cfg) in pipeline_variants().into_iter().enumerate() {
                let (a, bs) = tile_inputs(kind, depth);
                let slow = run_tile_product(kind, depth, &a, &bs, cfg);
                let (fast, ts, speedup) = run_tile_product_traced(kind, depth, &a, &bs, cfg);
                let tag = format!("{kind:?} depth={depth} cfg#{ci}");
                assert_eq!(fast.cycles_total, slow.cycles_total, "{tag}: cycles");
                assert_eq!(fast.stats, slow.stats, "{tag}: counters");
                assert_eq!(
                    fast.steady_cycles_per_iter.to_bits(),
                    slow.steady_cycles_per_iter.to_bits(),
                    "{tag}: steady-state measurement"
                );
                assert_eq!(
                    fast.steady_efficiency.to_bits(),
                    slow.steady_efficiency.to_bits(),
                    "{tag}: efficiency"
                );
                for t in 0..4 {
                    let fb: Vec<u64> = fast.c_tiles[t].iter().map(|v| v.to_bits()).collect();
                    let sb: Vec<u64> = slow.c_tiles[t].iter().map(|v| v.to_bits()).collect();
                    assert_eq!(fb, sb, "{tag}: C tile of thread {t}");
                }
                assert!(speedup >= 1.0, "{tag}: speedup {speedup}");
                replayed_total += ts.replayed_segments;
            }
        }
    }
    assert!(
        replayed_total > 0,
        "the fast path never engaged across the whole sweep"
    );
}

/// A steady FMA/prefetch stream long enough for the template detector
/// to settle; the anchor workload of the perturbation tests below.
fn steady_body() -> Program {
    Program {
        body: vec![
            Instr::Fmadd {
                acc: 0,
                src: Operand::Mem(Addr::new(StreamId::A, 8, 0)),
                b: 1,
            },
            Instr::PrefetchL1(Addr::new(StreamId::A, 8, 64)),
            Instr::Load {
                dst: 2,
                addr: Addr::new(StreamId::B, 8, 0),
            },
            Instr::ScalarOp,
        ],
    }
}

fn fresh_pair(init: &[f64]) -> (CoreSim, CoreSim) {
    let slow = CoreSim::new(PipelineConfig::default(), init.to_vec());
    let mut fast = CoreSim::new(PipelineConfig::default(), init.to_vec());
    fast.enable_trace();
    (slow, fast)
}

fn four_threads() -> [StreamBases; 4] {
    std::array::from_fn(|t| StreamBases {
        a: t * 8,
        b: 2048 + t * 8,
        c: 3584 + t * 64,
    })
}

/// Seeded fault-perturbed schedules: random-length run chunks broken up
/// by TLB shootdowns and direct memory edits at seeded points. Both
/// perturbations invalidate trace state; the fast path must fall back
/// and stay bit-identical to the interpreter after every chunk.
#[test]
fn fault_perturbed_schedules_stay_bit_identical() {
    let body = steady_body();
    let epi = Program::new();
    let threads = four_threads();
    for seed in [0x0D1F_u64, 0x0D2F, 0x0D3F, 0x0D4F] {
        let mut rng = HplRng::new(seed);
        let init: Vec<f64> = (0..MEM_ELEMS).map(|_| rng.next_value()).collect();
        let (mut slow, mut fast) = fresh_pair(&init);
        for chunk in 0..8 {
            let iters = 8 + (rng.next_u64() % 56) as usize;
            slow.run(&body, &epi, iters, &threads);
            fast.run(&body, &epi, iters, &threads);
            match rng.next_u64() % 3 {
                0 => {
                    slow.tlb_shootdown();
                    fast.tlb_shootdown();
                }
                1 => {
                    let idx = (rng.next_u64() as usize) % MEM_ELEMS;
                    let val = rng.next_value();
                    slow.mem_mut()[idx] = val;
                    fast.mem_mut()[idx] = val;
                }
                _ => {}
            }
            assert_eq!(
                fast.state_digest(),
                slow.state_digest(),
                "seed {seed:#x}, chunk {chunk}: state diverged"
            );
        }
        let ts = fast.trace_stats().expect("tracing enabled");
        assert!(
            ts.replayed_segments > 0,
            "seed {seed:#x}: fast path never engaged"
        );
    }
}

/// Regression lock for a template-formation soundness hole: chunked
/// `run()` calls used to leave stale segments in the period-detection
/// ring, so recordings from *different* runs could pattern-match as
/// "periodic" and form a template whose phases never executed
/// back-to-back. Replaying it teleported thread PCs to the wrong
/// phase's entry and silently re-executed instructions (every per-event
/// cache check still passed). This chunk sequence reproduced the
/// divergence deterministically before the fix.
#[test]
fn chunked_runs_cannot_fuse_stale_ring_segments() {
    let body = steady_body();
    let epi = Program::new();
    let threads = four_threads();
    let init: Vec<f64> = (0..MEM_ELEMS).map(|i| i as f64).collect();
    let (mut slow, mut fast) = fresh_pair(&init);
    for (i, &iters) in [61usize, 57, 27, 53, 25].iter().enumerate() {
        let cs = slow.run(&body, &epi, iters, &threads);
        let cf = fast.run(&body, &epi, iters, &threads);
        assert_eq!(cf, cs, "chunk {i} cycle count");
        assert_eq!(fast.state_digest(), slow.state_digest(), "chunk {i} state");
    }
    let ts = fast.trace_stats().expect("tracing enabled");
    assert!(ts.replayed_segments > 0, "fast path never engaged: {ts:?}");
}

/// Self-modifying listing: between chunks the program body is edited at
/// seeded points (an address offset nudged, keeping accesses in
/// bounds). The fingerprint change must invalidate templates and the
/// edited program must execute bit-identically on both paths.
#[test]
fn self_modifying_program_edits_deoptimize_cleanly() {
    let epi = Program::new();
    let threads = four_threads();
    for seed in [0x5E1F_u64, 0x5E2F, 0x5E3F] {
        let mut rng = HplRng::new(seed);
        let init: Vec<f64> = (0..MEM_ELEMS).map(|_| rng.next_value()).collect();
        let (mut slow, mut fast) = fresh_pair(&init);
        let mut body = steady_body();
        for _ in 0..5 {
            let iters = 32 + (rng.next_u64() % 32) as usize;
            slow.run(&body, &epi, iters, &threads);
            fast.run(&body, &epi, iters, &threads);
            assert_eq!(fast.state_digest(), slow.state_digest(), "seed {seed:#x}");
            // Edit the prefetch target — a new program fingerprint.
            let off = 8 * (1 + (rng.next_u64() % 16) as usize);
            body.body[1] = Instr::PrefetchL1(Addr::new(StreamId::A, 8, off));
        }
        let ts = fast.trace_stats().expect("tracing enabled");
        assert!(ts.replayed_segments > 0, "seed {seed:#x}: never engaged");
        assert!(
            ts.invalidations > 0,
            "seed {seed:#x}: program edits never invalidated templates"
        );
    }
}

/// Mid-block marks: `run_with_marks` checkpoints placed at seeded
/// in-loop iterations must not perturb the simulation on either path,
/// and the two paths must agree on the reported mark cycles (replay
/// reconstructs mark crossings from segment reach records).
#[test]
fn mid_block_marks_agree_and_do_not_perturb() {
    let body = steady_body();
    let epi = Program::new();
    let threads = four_threads();
    let iters = 96usize;
    for seed in [0x3A11_u64, 0x3A22, 0x3A33] {
        let mut rng = HplRng::new(seed);
        let init: Vec<f64> = (0..MEM_ELEMS).map(|_| rng.next_value()).collect();
        let m1 = 1 + (rng.next_u64() % 40) as usize;
        let m2 = m1 + 1 + (rng.next_u64() % (iters as u64 - m1 as u64 - 1)) as usize;

        let (mut slow, mut fast) = fresh_pair(&init);
        let s = slow.run_with_marks(&body, &epi, iters, &threads, m1, m2);
        let f = fast.run_with_marks(&body, &epi, iters, &threads, m1, m2);
        assert_eq!(f, s, "seed {seed:#x}: (total, mark1, mark2) cycles");
        assert_eq!(fast.state_digest(), slow.state_digest(), "seed {seed:#x}");

        // Marks are observers only: an unmarked traced run of the same
        // workload lands in the same final state.
        let mut unmarked = CoreSim::new(PipelineConfig::default(), init.clone());
        unmarked.enable_trace();
        unmarked.run(&body, &epi, iters, &threads);
        assert_eq!(
            unmarked.state_digest(),
            fast.state_digest(),
            "seed {seed:#x}: marks perturbed the run"
        );
    }
}

/// The ISSUE acceptance bar: at a production blocking depth the fast
/// path covers enough of the run for a deterministic >= 5x coverage
/// speedup (total cycles over interpreter-executed cycles), on both
/// kernels, while staying bit-identical (checked by the sweep above).
#[test]
fn steady_state_replay_speedup_exceeds_five_x() {
    for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
        let depth = 1024;
        let (a, bs) = tile_inputs(kind, depth);
        let (_, ts, speedup) =
            run_tile_product_traced(kind, depth, &a, &bs, PipelineConfig::default());
        assert!(
            speedup >= 5.0,
            "{kind:?}: replay speedup {speedup:.2} < 5x (stats: {ts:?})"
        );
    }
}

/// Long-horizon soak: a single traced core interleaving kernel-shaped
/// chunks with every perturbation class, digest-checked against the
/// interpreter at each step. This is the schedule sweep the CI
/// `emu-equivalence` job leans on.
#[test]
fn interleaved_perturbation_soak() {
    let epi = Program::new();
    let threads = four_threads();
    let mut rng = HplRng::new(0x50AC);
    let init: Vec<f64> = (0..MEM_ELEMS).map(|_| rng.next_value()).collect();
    let (mut slow, mut fast) = fresh_pair(&init);
    let mut body = steady_body();
    for step in 0..24 {
        let iters = 4 + (rng.next_u64() % 48) as usize;
        let m1 = 1.min(iters);
        let m2 = (iters / 2).max(m1);
        let s = slow.run_with_marks(&body, &epi, iters, &threads, m1, m2);
        let f = fast.run_with_marks(&body, &epi, iters, &threads, m1, m2);
        assert_eq!(f, s, "step {step}: mark cycles");
        match rng.next_u64() % 4 {
            0 => {
                slow.tlb_shootdown();
                fast.tlb_shootdown();
            }
            1 => {
                let idx = (rng.next_u64() as usize) % MEM_ELEMS;
                slow.mem_mut()[idx] = 1.25;
                fast.mem_mut()[idx] = 1.25;
            }
            2 => {
                let off = 8 * (rng.next_u64() % 24) as usize;
                body.body[2] = Instr::Load {
                    dst: 2,
                    addr: Addr::new(StreamId::B, 8, off),
                };
            }
            _ => {}
        }
        assert_eq!(
            fast.state_digest(),
            slow.state_digest(),
            "step {step}: state diverged"
        );
    }
    let ts = fast.trace_stats().expect("tracing enabled");
    assert!(ts.replayed_segments > 0, "soak never hit the fast path");
}
