//! Property tests for the KNC substrate.
//!
//! The heavy hammer: generate random straight-line vector programs and
//! check that the cycle-level emulator computes exactly what a plain
//! functional interpreter computes — the timing machinery (ports, fills,
//! stalls, SMT interleaving) must never change the arithmetic. Plus
//! cache-model invariants and timing sanity bounds.

use phi_knc::emu::{CoreSim, StreamBases};
use phi_knc::isa::{broadcast, swizzle, Addr, BcastMode, Instr, Operand, Program, StreamId, VLEN};
use phi_knc::PipelineConfig;
use proptest::prelude::*;

const MEM_ELEMS: usize = 512;

/// Strategy for a random (aligned, in-bounds) address within stream A.
/// All programs use only stream A with base 0 and iterate at stride 8,
/// so `iter * 8 + offset` must stay inside memory for every iteration.
fn addr_strategy(iters: usize) -> impl Strategy<Value = Addr> {
    let max_off = MEM_ELEMS - VLEN - (iters - 1) * 8;
    (0..max_off / 8).prop_map(|o| Addr::new(StreamId::A, 8, o * 8))
}

fn operand_strategy(iters: usize) -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..30).prop_map(Operand::Reg),
        addr_strategy(iters).prop_map(Operand::Mem),
        addr_strategy(iters).prop_map(|a| Operand::MemBcast(a, BcastMode::OneToEight)),
        addr_strategy(iters).prop_map(|a| Operand::MemBcast(a, BcastMode::FourToEight)),
        ((0u8..30), (0u8..4)).prop_map(|(r, i)| Operand::Swizzle(r, i)),
    ]
}

fn instr_strategy(iters: usize) -> impl Strategy<Value = Instr> {
    prop_oneof![
        ((0u8..30), operand_strategy(iters), (0u8..30))
            .prop_map(|(acc, src, b)| Instr::Fmadd { acc, src, b }),
        ((0u8..30), addr_strategy(iters)).prop_map(|(dst, addr)| Instr::Load { dst, addr }),
        ((0u8..30), addr_strategy(iters)).prop_map(|(src, addr)| Instr::Store { src, addr }),
        ((0u8..30), addr_strategy(iters)).prop_map(|(dst, addr)| Instr::Broadcast {
            dst,
            addr,
            mode: BcastMode::OneToEight,
        }),
        ((0u8..30), operand_strategy(iters)).prop_map(|(dst, src)| Instr::Add { dst, src }),
        ((0u8..30), operand_strategy(iters)).prop_map(|(dst, src)| Instr::Mul { dst, src }),
        addr_strategy(iters).prop_map(Instr::PrefetchL1),
        addr_strategy(iters).prop_map(Instr::PrefetchL2),
        Just(Instr::ScalarOp),
    ]
}

/// Plain functional interpreter: single thread, no timing.
fn reference_run(body: &[Instr], iters: usize, mem: &mut [f64]) {
    let mut regs = [[0.0f64; VLEN]; 32];
    let read_op = |op: &Operand, iter: usize, regs: &[[f64; VLEN]; 32], mem: &[f64]| -> [f64; VLEN] {
        match op {
            Operand::Reg(r) => regs[*r as usize],
            Operand::Swizzle(r, i) => swizzle(&regs[*r as usize], *i),
            Operand::Mem(a) => {
                let idx = a.resolve(iter, 0, 0);
                let mut v = [0.0; VLEN];
                v.copy_from_slice(&mem[idx..idx + VLEN]);
                v
            }
            Operand::MemBcast(a, mode) => broadcast(mem, a.resolve(iter, 0, 0), *mode),
        }
    };
    for iter in 0..iters {
        for instr in body {
            match *instr {
                Instr::Fmadd { acc, src, b } => {
                    let sv = read_op(&src, iter, &regs, mem);
                    let bv = regs[b as usize];
                    for l in 0..VLEN {
                        regs[acc as usize][l] = sv[l].mul_add(bv[l], regs[acc as usize][l]);
                    }
                }
                Instr::Load { dst, addr } => {
                    let idx = addr.resolve(iter, 0, 0);
                    regs[dst as usize].copy_from_slice(&mem[idx..idx + VLEN]);
                }
                Instr::Store { src, addr } => {
                    let idx = addr.resolve(iter, 0, 0);
                    mem[idx..idx + VLEN].copy_from_slice(&regs[src as usize]);
                }
                Instr::Broadcast { dst, addr, mode } => {
                    regs[dst as usize] = broadcast(mem, addr.resolve(iter, 0, 0), mode);
                }
                Instr::Add { dst, src } => {
                    let sv = read_op(&src, iter, &regs, mem);
                    for l in 0..VLEN {
                        regs[dst as usize][l] += sv[l];
                    }
                }
                Instr::Mul { dst, src } => {
                    let sv = read_op(&src, iter, &regs, mem);
                    for l in 0..VLEN {
                        regs[dst as usize][l] *= sv[l];
                    }
                }
                Instr::PrefetchL1(_) | Instr::PrefetchL2(_) | Instr::ScalarOp => {}
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cycle-level emulator and the functional interpreter agree
    /// bit-for-bit on final memory, for any single-threaded program.
    #[test]
    fn emulator_matches_reference(
        iters in 1usize..8,
        seed in 0u64..10_000,
        prog in prop::collection::vec(instr_strategy(8), 1..24),
    ) {
        let mut rng = phi_matrix::HplRng::new(seed);
        let init: Vec<f64> = (0..MEM_ELEMS).map(|_| rng.next_value()).collect();

        let mut sim = CoreSim::new(PipelineConfig::default(), init.clone());
        let body = Program { body: prog.clone() };
        sim.run(&body, &Program::new(), iters, &[StreamBases::default()]);

        let mut expect = init;
        reference_run(&prog, iters, &mut expect);

        prop_assert_eq!(sim.mem(), &expect[..], "memory diverged");
    }

    /// Timing sanity: cycles are at least the number of vector
    /// instructions issued (one U-pipe per cycle) and at most a generous
    /// bound including stalls.
    #[test]
    fn cycle_bounds_hold(
        iters in 1usize..8,
        prog in prop::collection::vec(instr_strategy(8), 1..24),
    ) {
        let body = Program { body: prog };
        let vec_count = body.vector_count() as u64;
        let total_instrs = body.body.len() as u64;
        let mut sim = CoreSim::new(PipelineConfig::default(), vec![0.0; MEM_ELEMS]);
        let cycles = sim.run(&body, &Program::new(), iters, &[StreamBases::default()]);
        let it = iters as u64;
        // One thread on a 4-way SMT core issues at most every cycle (it
        // is the only ready thread) but at least one instruction slot per
        // 1 cycle; stalls are bounded by every access missing to memory.
        prop_assert!(cycles >= vec_count * it, "{cycles} < {vec_count}*{it}");
        let worst = (total_instrs * it + 1) * (2 * 230 + 8);
        prop_assert!(cycles <= worst, "{cycles} > {worst}");
    }

    /// With four threads running the same program, every thread's FMA
    /// count is included (4x the single-thread count) and the cycle count
    /// at most ~doubles relative to one thread (the pipe was 1/4 utilized
    /// before).
    #[test]
    fn smt_scales_throughput(
        prog in prop::collection::vec(instr_strategy(4), 4..16),
    ) {
        let body = Program { body: prog };
        let iters = 4;
        let mut one = CoreSim::new(PipelineConfig::default(), vec![0.0; MEM_ELEMS]);
        let c1 = one.run(&body, &Program::new(), iters, &[StreamBases::default()]);
        let f1 = one.stats().fmadds;

        let mut four = CoreSim::new(PipelineConfig::default(), vec![0.0; MEM_ELEMS]);
        let threads = [StreamBases::default(); 4];
        let c4 = four.run(&body, &Program::new(), iters, &threads);
        let f4 = four.stats().fmadds;

        prop_assert_eq!(f4, 4 * f1);
        // Four threads share one pipe: never faster than one thread's
        // wall-clock divided by... (they can't be faster than the work)
        // and never worse than 4x plus stall noise.
        prop_assert!(c4 >= c1, "more work cannot take fewer cycles: {c4} vs {c1}");
        prop_assert!(c4 <= 4 * c1 + 2000, "c4={c4} c1={c1}");
    }
}

mod cache_props {
    use super::*;
    use phi_knc::cache::{Cache, CacheConfig};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Immediately re-accessing any address hits; the hit/miss
        /// counters account for every access.
        #[test]
        fn rehit_and_accounting(accesses in prop::collection::vec(0usize..100_000, 1..200)) {
            let mut c = Cache::new(CacheConfig::knc_l1());
            let mut total = 0u64;
            for &a in &accesses {
                c.access(a);
                prop_assert!(c.access(a), "immediate re-access must hit");
                total += 2;
            }
            let (h, m) = c.stats();
            prop_assert_eq!(h + m, total);
            prop_assert!(m as usize <= accesses.len());
        }

        /// A working set no larger than one set's associativity never
        /// thrashes: after a warm pass, everything hits.
        #[test]
        fn small_working_set_stays_resident(lines in prop::collection::hash_set(0usize..8, 1..8)) {
            let mut c = Cache::new(CacheConfig::knc_l1());
            let addrs: Vec<usize> = lines.iter().map(|&l| l * 64 * 64).collect(); // same set
            for &a in &addrs { c.access(a); }
            for &a in &addrs {
                prop_assert!(c.contains(a), "addr {a} evicted from its set");
            }
        }
    }
}
