//! Property tests for the KNC substrate.
//!
//! The heavy hammer: generate random straight-line vector programs and
//! check that the cycle-level emulator computes exactly what a plain
//! functional interpreter computes — the timing machinery (ports, fills,
//! stalls, SMT interleaving) must never change the arithmetic. Plus
//! cache-model invariants and timing sanity bounds.
//!
//! Program generation is driven by the in-repo deterministic
//! [`phi_matrix::HplRng`] (no external proptest dependency), so every
//! sweep is reproducible bit-identically.

use phi_knc::emu::{CoreSim, StreamBases};
use phi_knc::isa::{broadcast, swizzle, Addr, BcastMode, Instr, Operand, Program, StreamId, VLEN};
use phi_knc::PipelineConfig;
use phi_matrix::HplRng;

const MEM_ELEMS: usize = 512;

/// Deterministic generator of random (aligned, in-bounds) programs.
/// All programs use only stream A with base 0 and iterate at stride 8,
/// so `iter * 8 + offset` must stay inside memory for every iteration.
struct Gen(HplRng);

impl Gen {
    fn new(seed: u64) -> Self {
        Self(HplRng::new(seed))
    }

    fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.0.next_u64() % (hi - lo) as u64) as usize
    }

    fn reg(&mut self) -> u8 {
        self.index(0, 30) as u8
    }

    fn addr(&mut self, iters: usize) -> Addr {
        let max_off = MEM_ELEMS - VLEN - (iters - 1) * 8;
        Addr::new(StreamId::A, 8, self.index(0, max_off / 8) * 8)
    }

    fn operand(&mut self, iters: usize) -> Operand {
        match self.index(0, 5) {
            0 => Operand::Reg(self.reg()),
            1 => Operand::Mem(self.addr(iters)),
            2 => Operand::MemBcast(self.addr(iters), BcastMode::OneToEight),
            3 => Operand::MemBcast(self.addr(iters), BcastMode::FourToEight),
            _ => Operand::Swizzle(self.reg(), self.index(0, 4) as u8),
        }
    }

    fn instr(&mut self, iters: usize) -> Instr {
        match self.index(0, 9) {
            0 => Instr::Fmadd {
                acc: self.reg(),
                src: self.operand(iters),
                b: self.reg(),
            },
            1 => Instr::Load {
                dst: self.reg(),
                addr: self.addr(iters),
            },
            2 => Instr::Store {
                src: self.reg(),
                addr: self.addr(iters),
            },
            3 => Instr::Broadcast {
                dst: self.reg(),
                addr: self.addr(iters),
                mode: BcastMode::OneToEight,
            },
            4 => Instr::Add {
                dst: self.reg(),
                src: self.operand(iters),
            },
            5 => Instr::Mul {
                dst: self.reg(),
                src: self.operand(iters),
            },
            6 => Instr::PrefetchL1(self.addr(iters)),
            7 => Instr::PrefetchL2(self.addr(iters)),
            _ => Instr::ScalarOp,
        }
    }

    fn program(&mut self, iters: usize, lo: usize, hi: usize) -> Vec<Instr> {
        let len = self.index(lo, hi);
        (0..len).map(|_| self.instr(iters)).collect()
    }
}

/// Plain functional interpreter: single thread, no timing.
fn reference_run(body: &[Instr], iters: usize, mem: &mut [f64]) {
    let mut regs = [[0.0f64; VLEN]; 32];
    let read_op =
        |op: &Operand, iter: usize, regs: &[[f64; VLEN]; 32], mem: &[f64]| -> [f64; VLEN] {
            match op {
                Operand::Reg(r) => regs[*r as usize],
                Operand::Swizzle(r, i) => swizzle(&regs[*r as usize], *i),
                Operand::Mem(a) => {
                    let idx = a.resolve(iter, 0, 0);
                    let mut v = [0.0; VLEN];
                    v.copy_from_slice(&mem[idx..idx + VLEN]);
                    v
                }
                Operand::MemBcast(a, mode) => broadcast(mem, a.resolve(iter, 0, 0), *mode),
            }
        };
    for iter in 0..iters {
        for instr in body {
            match *instr {
                Instr::Fmadd { acc, src, b } => {
                    let sv = read_op(&src, iter, &regs, mem);
                    let bv = regs[b as usize];
                    for l in 0..VLEN {
                        regs[acc as usize][l] = sv[l].mul_add(bv[l], regs[acc as usize][l]);
                    }
                }
                Instr::Load { dst, addr } => {
                    let idx = addr.resolve(iter, 0, 0);
                    regs[dst as usize].copy_from_slice(&mem[idx..idx + VLEN]);
                }
                Instr::Store { src, addr } => {
                    let idx = addr.resolve(iter, 0, 0);
                    mem[idx..idx + VLEN].copy_from_slice(&regs[src as usize]);
                }
                Instr::Broadcast { dst, addr, mode } => {
                    regs[dst as usize] = broadcast(mem, addr.resolve(iter, 0, 0), mode);
                }
                Instr::Add { dst, src } => {
                    let sv = read_op(&src, iter, &regs, mem);
                    for l in 0..VLEN {
                        regs[dst as usize][l] += sv[l];
                    }
                }
                Instr::Mul { dst, src } => {
                    let sv = read_op(&src, iter, &regs, mem);
                    for l in 0..VLEN {
                        regs[dst as usize][l] *= sv[l];
                    }
                }
                Instr::PrefetchL1(_) | Instr::PrefetchL2(_) | Instr::ScalarOp => {}
            }
        }
    }
}

/// The cycle-level emulator and the functional interpreter agree
/// bit-for-bit on final memory, for any single-threaded program.
#[test]
fn emulator_matches_reference() {
    let mut gen = Gen::new(0xE500);
    for _ in 0..48 {
        let iters = gen.index(1, 8);
        let seed = gen.index(0, 10_000) as u64;
        let prog = gen.program(8, 1, 24);
        let mut rng = HplRng::new(seed);
        let init: Vec<f64> = (0..MEM_ELEMS).map(|_| rng.next_value()).collect();

        let mut sim = CoreSim::new(PipelineConfig::default(), init.clone());
        let body = Program { body: prog.clone() };
        sim.run(&body, &Program::new(), iters, &[StreamBases::default()]);

        let mut expect = init;
        reference_run(&prog, iters, &mut expect);

        assert_eq!(sim.mem(), &expect[..], "memory diverged");
    }
}

/// Timing sanity: cycles are at least the number of vector
/// instructions issued (one U-pipe per cycle) and at most a generous
/// bound including stalls.
#[test]
fn cycle_bounds_hold() {
    let mut gen = Gen::new(0xC1C1);
    for _ in 0..48 {
        let iters = gen.index(1, 8);
        let prog = gen.program(8, 1, 24);
        let body = Program { body: prog };
        let vec_count = body.vector_count() as u64;
        let total_instrs = body.body.len() as u64;
        let mut sim = CoreSim::new(PipelineConfig::default(), vec![0.0; MEM_ELEMS]);
        let cycles = sim.run(&body, &Program::new(), iters, &[StreamBases::default()]);
        let it = iters as u64;
        // One thread on a 4-way SMT core issues at most every cycle (it
        // is the only ready thread) but at least one instruction slot per
        // 1 cycle; stalls are bounded by every access missing to memory.
        assert!(cycles >= vec_count * it, "{cycles} < {vec_count}*{it}");
        let worst = (total_instrs * it + 1) * (2 * 230 + 8);
        assert!(cycles <= worst, "{cycles} > {worst}");
    }
}

/// With four threads running the same program, every thread's FMA
/// count is included (4x the single-thread count) and the cycle count
/// at most ~doubles relative to one thread (the pipe was 1/4 utilized
/// before).
#[test]
fn smt_scales_throughput() {
    let mut gen = Gen::new(0x5111);
    for _ in 0..48 {
        let prog = gen.program(4, 4, 16);
        let body = Program { body: prog };
        let iters = 4;
        let mut one = CoreSim::new(PipelineConfig::default(), vec![0.0; MEM_ELEMS]);
        let c1 = one.run(&body, &Program::new(), iters, &[StreamBases::default()]);
        let f1 = one.stats().fmadds;

        let mut four = CoreSim::new(PipelineConfig::default(), vec![0.0; MEM_ELEMS]);
        let threads = [StreamBases::default(); 4];
        let c4 = four.run(&body, &Program::new(), iters, &threads);
        let f4 = four.stats().fmadds;

        assert_eq!(f4, 4 * f1);
        // Four threads share one pipe: never faster than one thread's
        // wall-clock divided by... (they can't be faster than the work)
        // and never worse than 4x plus stall noise.
        assert!(c4 >= c1, "more work cannot take fewer cycles: {c4} vs {c1}");
        assert!(c4 <= 4 * c1 + 2000, "c4={c4} c1={c1}");
    }
}

mod cache_props {
    use super::Gen;
    use phi_knc::cache::{Cache, CacheConfig};

    /// Immediately re-accessing any address hits; the hit/miss
    /// counters account for every access.
    #[test]
    fn rehit_and_accounting() {
        let mut gen = Gen::new(0xCAC4E);
        for _ in 0..64 {
            let n = gen.index(1, 200);
            let accesses: Vec<usize> = (0..n).map(|_| gen.index(0, 100_000)).collect();
            let mut c = Cache::new(CacheConfig::knc_l1());
            let mut total = 0u64;
            for &a in &accesses {
                c.access(a);
                assert!(c.access(a), "immediate re-access must hit");
                total += 2;
            }
            let (h, m) = c.stats();
            assert_eq!(h + m, total);
            assert!(m as usize <= accesses.len());
        }
    }

    /// A working set no larger than one set's associativity never
    /// thrashes: after a warm pass, everything hits.
    #[test]
    fn small_working_set_stays_resident() {
        let mut gen = Gen::new(0x9E51D);
        for _ in 0..64 {
            let nlines = gen.index(1, 8);
            let lines: std::collections::HashSet<usize> =
                (0..nlines).map(|_| gen.index(0, 8)).collect();
            let mut c = Cache::new(CacheConfig::knc_l1());
            let addrs: Vec<usize> = lines.iter().map(|&l| l * 64 * 64).collect(); // same set
            for &a in &addrs {
                c.access(a);
            }
            for &a in &addrs {
                assert!(c.contains(a), "addr {a} evicted from its set");
            }
        }
    }
}

/// Decode round-trip: every randomly generated instruction renders to
/// listing syntax and parses back to itself, and whole programs survive
/// `parse_program(disassemble(p))` — so the conformance tables, the
/// lint fixtures and the emulator all speak one syntax.
#[test]
fn disassembly_round_trips_through_the_parser() {
    use phi_knc::disasm::{disassemble, instr_str, parse_instr, parse_program};
    for seed in [0xD15A_u64, 0xD25A, 0xD35A, 0xD45A] {
        let mut gen = Gen::new(seed);
        for _ in 0..256 {
            let i = gen.instr(4);
            let s = instr_str(&i);
            assert_eq!(parse_instr(&s).ok(), Some(i), "seed {seed:#x}: `{s}`");
        }
        let body = gen.program(4, 1, 40);
        let p = Program { body };
        let reparsed = parse_program(&disassemble(&p)).expect("listing reparses");
        assert_eq!(reparsed.body, p.body, "seed {seed:#x}: program round-trip");
    }
}

/// CSR construction round-trips: for any seeded set of duplicate-free
/// triplets, `to_triplets ∘ from_triplets` is the identity up to (row,
/// col) sorting, a second round-trip is a fixed point, the row pointer
/// partitions the nonzeros, and duplicate triplets accumulate into the
/// existing entry rather than widening the matrix.
#[test]
fn csr_round_trips_through_triplets() {
    use phi_knc::spmv::Csr;
    use std::collections::BTreeMap;
    let mut gen = Gen::new(0xC5A_0001);
    for case in 0..64 {
        let rows = gen.index(1, 40);
        let cols = gen.index(1, 40);
        let want = gen.index(0, rows * cols / 2 + 1);
        let mut entries: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for _ in 0..want {
            let r = gen.index(0, rows);
            let c = gen.index(0, cols);
            entries.insert((r, c), gen.index(1, 1000) as f64 - 500.0);
        }
        let sorted: Vec<(usize, usize, f64)> =
            entries.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
        // Feed the triplets in a scrambled order; CSR must sort them.
        let mut scrambled = sorted.clone();
        for i in (1..scrambled.len()).rev() {
            scrambled.swap(i, gen.index(0, i + 1));
        }
        let a = Csr::from_triplets(rows, cols, &scrambled);
        assert_eq!(a.to_triplets(), sorted, "case {case}: triplet identity");
        assert_eq!(a.nnz(), sorted.len());
        let b = Csr::from_triplets(rows, cols, &a.to_triplets());
        assert_eq!(b.to_triplets(), a.to_triplets(), "case {case}: fixed point");
        let len_sum: usize = (0..rows).map(|r| a.row_len(r)).sum();
        assert_eq!(len_sum, a.nnz(), "case {case}: row_ptr partitions nnz");
        // A duplicate accumulates instead of growing the structure.
        if let Some(&(r, c, v)) = sorted.first() {
            let mut dup = scrambled.clone();
            dup.push((r, c, 3.0));
            let d = Csr::from_triplets(rows, cols, &dup);
            assert_eq!(d.nnz(), a.nnz(), "case {case}: duplicate widened CSR");
            assert_eq!(
                d.to_triplets()[0],
                (r, c, v + 3.0),
                "case {case}: duplicate must accumulate"
            );
        }
    }
}
