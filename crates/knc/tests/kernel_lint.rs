//! Every kernel this crate generates must pass the `phi-lint` static
//! analyzer with zero errors — the self-check half of the satellite to
//! the in-crate `debug_assertions` `validate` call (which cannot invoke
//! `phi-lint` directly: the analyzer depends on this crate, so the full
//! passes run here as a dev-dependency gate instead).

use phi_blas::gemm::MicroKernelKind;
use phi_knc::kernels::build_basic_kernel;

#[test]
fn generated_kernels_pass_the_static_analyzer() {
    for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
        let (body, epi) = build_basic_kernel(kind);
        let report = phi_lint::analyze(&body, &epi);
        assert!(
            !report.has_errors(),
            "{kind:?} failed phi-lint:\n{}",
            report.render()
        );
    }
}

#[test]
fn kernel2_is_warning_free_kernel1_warns_once() {
    // Kernel 2 is the paper's fixed point: nothing to flag. Kernel 1 is
    // legal but port-bound, and the analyzer must say exactly that.
    let (b2, e2) = build_basic_kernel(MicroKernelKind::Kernel2);
    assert!(phi_lint::analyze(&b2, &e2).diags.is_empty());
    let (b1, e1) = build_basic_kernel(MicroKernelKind::Kernel1);
    let diags = phi_lint::analyze(&b1, &e1).diags;
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].kind.name(), "fill-conflict");
}
