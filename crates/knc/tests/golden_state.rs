//! Golden architectural-state snapshots of the paper kernels.
//!
//! Each kernel variant runs for a fixed number of inner-loop iterations
//! on deterministic inputs; the resulting architectural +
//! micro-architectural state (full state digest, every public counter,
//! cache/TLB hit/miss tallies, and a checksum of the C tiles) is
//! compared line-by-line against a checked-in fixture. Both emulator
//! paths must produce the *same* snapshot, so any drift in the
//! interpreter, the trace fast path, or the digest itself shows up as a
//! readable diff.
//!
//! To regenerate after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p phi-knc --test golden_state
//! ```

use phi_blas::gemm::MicroKernelKind;
use phi_knc::emu::{CoreSim, StreamBases};
use phi_knc::kernels::{build_basic_kernel, kernel_mr, A_COL_STRIDE, NR};
use phi_knc::PipelineConfig;

const DEPTH: usize = 96;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv(h: u64, x: u64) -> u64 {
    let mut h = h ^ x;
    h = h.wrapping_mul(FNV_PRIME);
    h
}

/// Packs deterministic `a`/`b` tiles into a fresh memory image and
/// returns the sim plus per-thread bases (mirrors the layout the kernel
/// driver uses: padded 32-element `a` columns, per-thread `b`/`c`).
fn build_sim(kind: MicroKernelKind, traced: bool) -> (CoreSim, [StreamBases; 4], usize) {
    let mr = kernel_mr(kind);
    let a_len = A_COL_STRIDE * DEPTH;
    let b_len = NR * DEPTH;
    let c_len = A_COL_STRIDE * NR;
    let total = a_len + 4 * (b_len + c_len) + 64;
    let mut mem = vec![0.0; total];
    for p in 0..DEPTH {
        for r in 0..mr {
            mem[p * A_COL_STRIDE + r] = ((p * mr + r) * 7 % 23) as f64 - 11.0;
        }
    }
    let mut bases = [StreamBases::default(); 4];
    let mut cursor = a_len;
    for (t, b) in bases.iter_mut().enumerate() {
        b.a = 0;
        b.b = cursor;
        for i in 0..b_len {
            mem[cursor + i] = ((i * 5 + t) % 17) as f64 - 8.0;
        }
        cursor += b_len;
    }
    let c_base = cursor;
    for (t, b) in bases.iter_mut().enumerate() {
        b.c = c_base + t * c_len;
    }
    let mut sim = CoreSim::new(PipelineConfig::default(), mem);
    if traced {
        sim.enable_trace();
    }
    (sim, bases, c_base)
}

fn snapshot(kind: MicroKernelKind, traced: bool) -> Vec<String> {
    let (body, epi) = build_basic_kernel(kind);
    let (mut sim, bases, c_base) = build_sim(kind, traced);
    let cycles = sim.run(&body, &epi, DEPTH, &bases);
    let s = sim.stats();
    let (l1h, l1m) = sim.l1_stats();
    let (l2h, l2m) = sim.l2_stats();
    let (tlbh, tlbm) = sim.tlb_stats();
    let c_sum = sim.mem()[c_base..]
        .iter()
        .fold(FNV_OFFSET, |h, v| fnv(h, v.to_bits()));
    let tag = format!("{kind:?}").to_lowercase();
    vec![
        format!(
            "{tag} depth={DEPTH} cycles={cycles} digest={:#018x}",
            sim.state_digest()
        ),
        format!(
            "{tag} issue vector={} fmadds={} vpipe={}",
            s.vector_issued, s.fmadds, s.vpipe_issued
        ),
        format!(
            "{tag} stalls fill={} demand={} fills_in_holes={} fills_completed={}",
            s.fill_stall_cycles, s.demand_stall_cycles, s.fills_in_holes, s.fills_completed
        ),
        format!("{tag} l1={l1h}/{l1m} l2={l2h}/{l2m} tlb={tlbh}/{tlbm}"),
        format!("{tag} c_tiles={c_sum:#018x}"),
    ]
}

#[test]
fn kernel_state_matches_golden() {
    let mut lines = Vec::new();
    for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
        let slow = snapshot(kind, false);
        let fast = snapshot(kind, true);
        assert_eq!(
            fast, slow,
            "{kind:?}: the traced path's snapshot must be bit-identical"
        );
        lines.extend(slow);
    }
    let rendered = lines.join("\n") + "\n";
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/kernel_state.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &rendered).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden fixture missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "architectural state drifted from the golden snapshot; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
