//! ISA conformance suite: executable behavior tables.
//!
//! Every `tests/isa/*.md` file documents one instruction family with a
//! markdown table whose rows are *runnable test cases*: a program in the
//! Fig. 2 listing syntax (parsed by `phi_knc::disasm::parse_instr`), an
//! iteration count, and concrete architectural expectations. This
//! harness parses the tables and executes every case on **both**
//! emulator paths — the per-instruction interpreter and the block-trace
//! fast path — asserting
//!
//! 1. the two paths agree on the complete state digest (bit-identity),
//! 2. the documented expectations hold on both.
//!
//! Standard environment for every case: a 1024-double memory image with
//! `mem[i] = i`, one hardware thread, stream bases `rA = 0`, `rB = 256`,
//! `rC = 512`, and the default pipeline configuration. Check syntax (the
//! `checks` column, whitespace-separated):
//!
//! * `m[IDX]=V` — memory cell `IDX` equals `V` after the run;
//! * `m[LO..HI]=V` — every cell in the half-open range equals `V`;
//! * `cycles=N` — total cycles of the run;
//! * `fmas=N`, `vector=N`, `vpipe=N` — instruction-mix counters;
//! * `l1_hits=N`, `l1_misses=N`, `l2_hits=N`, `l2_misses=N`,
//!   `tlb_misses=N`, `fill_stalls=N`, `demand_stalls=N` — memory-system
//!   counters.
//!
//! Add a case by adding a row — no Rust required. The `probe_` test
//! (ignored by default) prints every case's measured counters to make
//! authoring timing expectations easy:
//! `cargo test -p phi-knc --test isa_conformance -- --ignored --nocapture`.

use phi_knc::disasm::parse_instr;
use phi_knc::emu::StreamBases;
use phi_knc::{CoreSim, PipelineConfig, Program};

const MEM_WORDS: usize = 1024;
const BASES: StreamBases = StreamBases {
    a: 0,
    b: 256,
    c: 512,
};

#[derive(Debug)]
enum Check {
    Mem { lo: usize, hi: usize, val: f64 },
    Counter { name: String, want: u64 },
}

struct Case {
    file: String,
    name: String,
    body: Program,
    epilogue: Program,
    iters: usize,
    checks: Vec<Check>,
}

fn strip_ticks(s: &str) -> &str {
    s.trim().trim_matches('`').trim()
}

/// Parses a semicolon-separated instruction list (`-` = empty program).
fn parse_listing(cell: &str, ctx: &str) -> Program {
    let mut p = Program::new();
    let cell = strip_ticks(cell);
    if cell == "-" || cell.is_empty() {
        return p;
    }
    for part in cell.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        p.push(parse_instr(part).unwrap_or_else(|e| panic!("{ctx}: bad instruction: {e}")));
    }
    p
}

fn parse_checks(cell: &str, ctx: &str) -> Vec<Check> {
    let mut out = Vec::new();
    for tok in strip_ticks(cell).split_whitespace() {
        let (lhs, rhs) = tok
            .split_once('=')
            .unwrap_or_else(|| panic!("{ctx}: check `{tok}` has no `=`"));
        if let Some(range) = lhs.strip_prefix("m[").and_then(|s| s.strip_suffix(']')) {
            let (lo, hi) = match range.split_once("..") {
                Some((l, h)) => (
                    l.parse()
                        .unwrap_or_else(|_| panic!("{ctx}: bad index in `{tok}`")),
                    h.parse()
                        .unwrap_or_else(|_| panic!("{ctx}: bad index in `{tok}`")),
                ),
                None => {
                    let i: usize = range
                        .parse()
                        .unwrap_or_else(|_| panic!("{ctx}: bad index in `{tok}`"));
                    (i, i + 1)
                }
            };
            let val: f64 = rhs
                .parse()
                .unwrap_or_else(|_| panic!("{ctx}: bad value in `{tok}`"));
            assert!(
                lo < hi && hi <= MEM_WORDS,
                "{ctx}: range out of bounds in `{tok}`"
            );
            out.push(Check::Mem { lo, hi, val });
        } else {
            let want: u64 = rhs
                .parse()
                .unwrap_or_else(|_| panic!("{ctx}: bad counter value in `{tok}`"));
            out.push(Check::Counter {
                name: lhs.to_string(),
                want,
            });
        }
    }
    out
}

/// Loads every case from every `tests/isa/*.md` table.
fn load_cases() -> Vec<Case> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/isa");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/isa directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no behavior tables found in {dir}");

    let mut cases = Vec::new();
    for path in files {
        let file = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable table");
        for line in text.lines() {
            let line = line.trim();
            if !line.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            if cells.len() != 5 || cells[0] == "case" || cells[0].starts_with('-') {
                continue;
            }
            let name = cells[0].to_string();
            let ctx = format!("{file}/{name}");
            cases.push(Case {
                body: parse_listing(cells[1], &ctx),
                epilogue: parse_listing(cells[2], &ctx),
                iters: strip_ticks(cells[3])
                    .parse()
                    .unwrap_or_else(|_| panic!("{ctx}: bad iteration count")),
                checks: parse_checks(cells[4], &ctx),
                file: file.clone(),
                name,
            });
        }
    }
    assert!(cases.len() >= 12, "suspiciously few cases: {}", cases.len());
    cases
}

fn fresh_sim(traced: bool) -> CoreSim {
    let mem: Vec<f64> = (0..MEM_WORDS).map(|i| i as f64).collect();
    let mut sim = CoreSim::new(PipelineConfig::default(), mem);
    if traced {
        sim.enable_trace();
    }
    sim
}

fn run_case(case: &Case, traced: bool) -> CoreSim {
    let mut sim = fresh_sim(traced);
    sim.run(&case.body, &case.epilogue, case.iters, &[BASES]);
    sim
}

fn counter(sim: &CoreSim, name: &str) -> Option<u64> {
    let s = sim.stats();
    Some(match name {
        "cycles" => s.cycles,
        "fmas" => s.fmadds,
        "vector" => s.vector_issued,
        "vpipe" => s.vpipe_issued,
        "fill_stalls" => s.fill_stall_cycles,
        "demand_stalls" => s.demand_stall_cycles,
        "l1_hits" => sim.l1_stats().0,
        "l1_misses" => sim.l1_stats().1,
        "l2_hits" => sim.l2_stats().0,
        "l2_misses" => sim.l2_stats().1,
        "tlb_misses" => sim.tlb_stats().1,
        _ => return None,
    })
}

fn apply_checks(case: &Case, sim: &CoreSim, path: &str) {
    let ctx = format!("{}/{} [{path}]", case.file, case.name);
    for check in &case.checks {
        match check {
            Check::Mem { lo, hi, val } => {
                for i in *lo..*hi {
                    assert_eq!(
                        sim.mem()[i].to_bits(),
                        val.to_bits(),
                        "{ctx}: m[{i}] = {} (want {val})",
                        sim.mem()[i]
                    );
                }
            }
            Check::Counter { name, want } => {
                let got =
                    counter(sim, name).unwrap_or_else(|| panic!("{ctx}: unknown counter `{name}`"));
                assert_eq!(got, *want, "{ctx}: {name} = {got} (want {want})");
            }
        }
    }
}

#[test]
fn behavior_tables_hold_on_both_emulator_paths() {
    let cases = load_cases();
    let mut replayed_total = 0u64;
    for case in &cases {
        let slow = run_case(case, false);
        let fast = run_case(case, true);
        assert_eq!(
            slow.state_digest(),
            fast.state_digest(),
            "{}/{}: interpreter and trace fast path diverged",
            case.file,
            case.name
        );
        apply_checks(case, &slow, "interpreter");
        apply_checks(case, &fast, "trace");
        replayed_total += fast.trace_stats().expect("tracing on").replayed_segments;
    }
    // The suite must actually exercise the fast path, not just tolerate
    // it: at least the long steady-state cases replay.
    assert!(
        replayed_total > 0,
        "no case engaged the trace fast path — the suite is not testing it"
    );
}

#[test]
fn every_family_has_a_table_and_every_table_has_cases() {
    let cases = load_cases();
    for family in [
        "fmadd.md",
        "loadstore.md",
        "broadcast.md",
        "arith.md",
        "prefetch.md",
        "scalar_issue.md",
        "spmv.md",
        "stencil.md",
    ] {
        assert!(
            cases.iter().any(|c| c.file == family),
            "no cases found for {family}"
        );
    }
}

/// Authoring aid: prints measured counters for every case so timing
/// expectations can be transcribed into the tables. Ignored by default.
#[test]
#[ignore = "authoring aid"]
fn probe_counters() {
    for case in &load_cases() {
        let sim = run_case(case, false);
        let s = sim.stats();
        println!(
            "{}/{}: cycles={} fmas={} vector={} vpipe={} l1={:?} l2={:?} tlb={:?} fill_stalls={} demand_stalls={}",
            case.file,
            case.name,
            s.cycles,
            s.fmadds,
            s.vector_issued,
            s.vpipe_issued,
            sim.l1_stats(),
            sim.l2_stats(),
            sim.tlb_stats(),
            s.fill_stall_cycles,
            s.demand_stall_cycles,
        );
    }
}
