//! `phi-serve` — simulation-as-a-service for the Linpack stack.
//!
//! Every scenario in this workspace used to be a one-shot bench binary:
//! the paper's Table II/III sweeps and the fleet-scale Monte Carlo
//! campaigns re-ran identical `(configuration → result)` work on every
//! invocation. This crate turns the simulators into a *service*:
//!
//! * [`CampaignSpec`] is a declarative description of one campaign —
//!   process grid × `NB` × broadcast scheme × look-ahead × work
//!   division × fault plan × recovery remap — canonicalized and
//!   FNV-hashed into a content-addressed key ([`CampaignSpec::key`]);
//! * [`store::ResultStore`] is the system-wide content-addressed store
//!   grown out of `phi-tune`'s `TuneCache`: the same FNV keying and
//!   hex-bit `f64` text serialization, the same corrupt-entry recovery
//!   semantics, generalized over a [`store::Record`] trait so tuning
//!   outcomes, campaign rows and fleet seeds all share one layer;
//! * [`CampaignService`] executes misses on a bounded worker pool
//!   (std threads + an mpsc channel — the workspace stays offline and
//!   dependency-free) with **single-flight dedup**: any number of
//!   concurrent identical requests run the simulation exactly once,
//!   and every result is persisted so later processes start warm;
//! * [`ResultTable`] is a queryable in-memory table over persisted
//!   campaign rows — `filter` / `project` / `aggregate` over GFLOPS,
//!   completion time, faults and recovery cost.
//!
//! Determinism is inherited from the simulators: a spec's outcome is a
//! pure function of its canonical key, so results are byte-identical at
//! any worker-pool size and a warm store can only ever serve the bytes
//! a cold run would have computed.
//!
//! ```
//! use phi_serve::{CampaignService, CampaignSpec};
//!
//! let service = CampaignService::in_memory(2);
//! let spec = CampaignSpec::single_node(20_000, 1200);
//! let first = service.get(&spec).unwrap();
//! let second = service.get(&spec).unwrap();
//! assert_eq!(first.fingerprint, second.fingerprint);
//! let stats = service.stats();
//! assert_eq!(stats.executed, 1, "identical requests simulate once");
//! assert_eq!(stats.mem_hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod error;
pub mod service;
pub mod spec;
pub mod store;
pub mod table;

pub use campaign::{run_campaign, CampaignOutcome};
pub use error::ServeError;
pub use service::{CampaignService, ServiceStats};
pub use spec::{CampaignSpec, FaultSpec};
pub use store::{Record, ResultStore, StoreReadError};
pub use table::{Agg, Column, Filter, FilterOp, ResultTable};

/// FNV-1a, the workspace's standard fingerprint hash (identical
/// constants to the `phi-faults` replay fingerprints and the `phi-tune`
/// cache keys).
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// The offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    /// Folds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// Folds a `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv::new().finish(), 0xcbf29ce484222325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut u = Fnv::new();
        u.write_u64(0x61); // 'a' then seven zero bytes
        let mut b = Fnv::new();
        b.write(&[0x61, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(u.finish(), b.finish());
    }
}
