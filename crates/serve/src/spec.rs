//! Declarative campaign specifications and their content-addressed
//! keys.
//!
//! A [`CampaignSpec`] names everything a campaign's result depends on —
//! machine shape, process grid, `NB`, look-ahead, work division,
//! broadcast scheme, the seeded fault plan, and the recovery remap —
//! and nothing else. Specs are **canonicalized** before keying
//! ([`CampaignSpec::canonical`]): fields that provably cannot affect
//! the outcome (a fault plan with zero events, a remap strategy with no
//! faults to recover from) are normalized away, so two requests that
//! denote the same simulation hash to the same key and dedup into one
//! execution.

use crate::error::ServeError;
use crate::Fnv;
use phi_fabric::{BcastScheme, ProcessGrid, RemapStrategy};
use phi_faults::CampaignScope;
use phi_hpl::hybrid::{HybridConfig, Lookahead, WorkDivision};

/// Bumped whenever spec canonicalization or the executed simulation
/// changes meaning, so stale store entries can never be served.
pub const SPEC_VERSION: u64 = 1;

/// Most fault events one campaign may schedule (cascade fan-out adds
/// more at resolution time; this bounds the *root* draws).
pub const MAX_EVENTS: usize = 64;

/// The seeded fault plan a campaign runs under.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// No faults: the healthy run of the configuration.
    None,
    /// A seeded [`phi_faults::FaultPlan::fleet_campaign`] draw.
    Campaign {
        /// Campaign seed (replay identity).
        seed: u64,
        /// Root events drawn over the horizon.
        events: usize,
        /// Failure-mode family the draw comes from.
        scope: CampaignScope,
        /// Fault horizon as a multiple of the healthy completion time
        /// (the fleet campaigns use `1.2`).
        horizon_scale: f64,
    },
}

impl FaultSpec {
    /// The fleet campaigns' default draw: 3 mixed events over 1.2× the
    /// healthy run.
    pub fn default_campaign(seed: u64) -> Self {
        FaultSpec::Campaign {
            seed,
            events: 3,
            scope: CampaignScope::Mixed,
            horizon_scale: 1.2,
        }
    }
}

fn scope_code(s: CampaignScope) -> u64 {
    match s {
        CampaignScope::Mixed => 0,
        CampaignScope::Rack => 1,
        CampaignScope::Storm => 2,
    }
}

fn la_code(la: Lookahead) -> u64 {
    match la {
        Lookahead::None => 0,
        Lookahead::Basic => 1,
        Lookahead::Pipelined => 2,
    }
}

fn bc_code(b: BcastScheme) -> u64 {
    match b {
        BcastScheme::Ring => 0,
        BcastScheme::TwoRing => 1,
        BcastScheme::Binomial => 2,
    }
}

/// One campaign, declaratively: the full product the ROADMAP names —
/// grid × NB × broadcast × look-ahead × work division × fault plan ×
/// remap × fleet scope. Everything the simulated outcome depends on is
/// a field here; everything else (worker threads, store paths, wall
/// clock) is deliberately absent, so the key is a pure content address.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Process grid `(p, q)`; the machine has `p · q` nodes.
    pub grid: (usize, usize),
    /// Coprocessors per node.
    pub cards_per_node: usize,
    /// Host memory per node, GiB.
    pub host_mem_gib: f64,
    /// Problem size.
    pub n: usize,
    /// Panel width (`Kt` is tied to it, as the paper runs).
    pub nb: usize,
    /// Look-ahead scheme.
    pub lookahead: Lookahead,
    /// Host/card work division.
    pub division: WorkDivision,
    /// Panel-broadcast scheme.
    pub bcast: BcastScheme,
    /// The fault plan.
    pub faults: FaultSpec,
    /// Recovery remap strategy (only meaningful with faults).
    pub remap: RemapStrategy,
    /// Patch death budget override; `None` keeps the simulator's
    /// `size / 8` default.
    pub death_budget: Option<usize>,
}

impl CampaignSpec {
    /// A healthy single-node spec at the paper's defaults: pipelined
    /// look-ahead, dynamic stealing, ring broadcast, one card, 64 GiB.
    pub fn single_node(n: usize, nb: usize) -> Self {
        Self {
            grid: (1, 1),
            cards_per_node: 1,
            host_mem_gib: 64.0,
            n,
            nb,
            lookahead: Lookahead::Pipelined,
            division: WorkDivision::Dynamic,
            bcast: BcastScheme::Ring,
            faults: FaultSpec::None,
            remap: RemapStrategy::Patch,
            death_budget: None,
        }
    }

    /// The paper's Table III 100-node system (N = 825K on 10 × 10) with
    /// a seeded mixed fault campaign — the fleet campaigns' per-seed
    /// hybrid run.
    pub fn paper_cluster_campaign(seed: u64) -> Self {
        Self {
            grid: (10, 10),
            n: 825_000,
            faults: FaultSpec::default_campaign(seed),
            ..Self::single_node(825_000, 1200)
        }
    }

    /// The simulator configuration this spec denotes.
    pub fn hybrid_config(&self) -> HybridConfig {
        let mut cfg = HybridConfig::new(
            self.n,
            ProcessGrid::new(self.grid.0, self.grid.1),
            self.cards_per_node,
        );
        cfg.nb = self.nb;
        cfg.offload.kt = self.nb;
        cfg.lookahead = self.lookahead;
        cfg.division = self.division;
        cfg.bcast = self.bcast;
        cfg.host_mem_gib = self.host_mem_gib;
        cfg
    }

    /// Validates every rule the executor relies on, so the request path
    /// can never hit a simulator assertion. Returns the violated rule.
    pub fn validate(&self) -> Result<(), ServeError> {
        let (p, q) = self.grid;
        if p == 0 || q == 0 {
            return Err(ServeError::invalid(format!("grid {p}x{q} has no ranks")));
        }
        if self.cards_per_node == 0 {
            return Err(ServeError::invalid("at least one coprocessor per node"));
        }
        if self.n == 0 {
            return Err(ServeError::invalid("problem size N must be positive"));
        }
        if self.nb == 0 || self.nb > self.n {
            return Err(ServeError::invalid(format!(
                "panel width NB = {} outside 1..=N (N = {})",
                self.nb, self.n
            )));
        }
        if !self.host_mem_gib.is_finite() || self.host_mem_gib <= 0.0 {
            return Err(ServeError::invalid(
                "host memory must be finite and positive",
            ));
        }
        if let WorkDivision::Static { card_fraction } = self.division {
            if !card_fraction.is_finite() || !(0.0..=1.0).contains(&card_fraction) {
                return Err(ServeError::invalid(format!(
                    "static card fraction {card_fraction} outside [0, 1]"
                )));
            }
        }
        if let FaultSpec::Campaign {
            events,
            horizon_scale,
            ..
        } = self.faults
        {
            if events > MAX_EVENTS {
                return Err(ServeError::invalid(format!(
                    "{events} fault events exceeds the {MAX_EVENTS}-event bound"
                )));
            }
            if !horizon_scale.is_finite() || horizon_scale <= 0.0 || horizon_scale > 100.0 {
                return Err(ServeError::invalid(format!(
                    "fault horizon scale {horizon_scale} outside (0, 100]"
                )));
            }
        }
        // The same memory gate `simulate_cluster` asserts — checked
        // here so an infeasible spec is a typed error, not a panic.
        let cfg = self.hybrid_config();
        if cfg.bytes_per_node() > self.host_mem_gib * 1.073741824e9 * 0.95 {
            return Err(ServeError::invalid(format!(
                "N = {} does not fit {} GiB/node on a {p}x{q} grid",
                self.n, self.host_mem_gib
            )));
        }
        Ok(())
    }

    /// The canonical form: equal simulations, equal specs. A fault plan
    /// with zero events *is* the healthy plan regardless of its seed or
    /// scope, and without faults the recovery remap and death budget
    /// cannot influence the run — both normalize to their defaults so
    /// every spelling of the same simulation shares one key.
    pub fn canonical(&self) -> Self {
        let mut c = *self;
        if let FaultSpec::Campaign { events: 0, .. } = c.faults {
            c.faults = FaultSpec::None;
        }
        if c.faults == FaultSpec::None {
            c.remap = RemapStrategy::Patch;
            c.death_budget = None;
        }
        c
    }

    /// The content-addressed key: FNV-1a over [`SPEC_VERSION`] and
    /// every canonical field, `f64`s as exact bit patterns.
    pub fn key(&self) -> u64 {
        let c = self.canonical();
        let mut h = Fnv::new();
        h.write_u64(SPEC_VERSION);
        h.write_u64(c.grid.0 as u64);
        h.write_u64(c.grid.1 as u64);
        h.write_u64(c.cards_per_node as u64);
        h.write_u64(c.host_mem_gib.to_bits());
        h.write_u64(c.n as u64);
        h.write_u64(c.nb as u64);
        h.write_u64(la_code(c.lookahead));
        match c.division {
            WorkDivision::Dynamic => h.write_u64(0),
            WorkDivision::Static { card_fraction } => {
                h.write_u64(1);
                h.write_u64(card_fraction.to_bits());
            }
        }
        h.write_u64(bc_code(c.bcast));
        match c.faults {
            FaultSpec::None => h.write_u64(0),
            FaultSpec::Campaign {
                seed,
                events,
                scope,
                horizon_scale,
            } => {
                h.write_u64(1);
                h.write_u64(seed);
                h.write_u64(events as u64);
                h.write_u64(scope_code(scope));
                h.write_u64(horizon_scale.to_bits());
            }
        }
        h.write_u64(match c.remap {
            RemapStrategy::Patch => 0,
            RemapStrategy::Wholesale => 1,
        });
        match c.death_budget {
            None => h.write_u64(0),
            Some(b) => {
                h.write_u64(1);
                h.write_u64(b as u64);
            }
        }
        h.finish()
    }

    /// One-line human-readable form for reports and logs.
    pub fn describe(&self) -> String {
        let faults = match self.faults {
            FaultSpec::None => "healthy".to_string(),
            FaultSpec::Campaign {
                seed,
                events,
                scope,
                ..
            } => format!("{} x{events} seed={seed:#x}", scope.name()),
        };
        format!(
            "grid={}x{} N={} NB={} bcast={} {faults}",
            self.grid.0,
            self.grid.1,
            self.n,
            self.nb,
            self.bcast.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_names_each_violated_rule() {
        let ok = CampaignSpec::single_node(20_000, 1200);
        assert!(ok.validate().is_ok());
        let cases: Vec<(CampaignSpec, &str)> = vec![
            (CampaignSpec { grid: (0, 3), ..ok }, "no ranks"),
            (
                CampaignSpec {
                    cards_per_node: 0,
                    ..ok
                },
                "coprocessor",
            ),
            (CampaignSpec { nb: 0, ..ok }, "panel width"),
            (CampaignSpec { nb: ok.n + 1, ..ok }, "panel width"),
            (
                CampaignSpec {
                    host_mem_gib: f64::NAN,
                    ..ok
                },
                "host memory",
            ),
            (
                CampaignSpec {
                    division: WorkDivision::Static { card_fraction: 1.5 },
                    ..ok
                },
                "card fraction",
            ),
            (
                CampaignSpec {
                    faults: FaultSpec::Campaign {
                        seed: 1,
                        events: MAX_EVENTS + 1,
                        scope: CampaignScope::Mixed,
                        horizon_scale: 1.2,
                    },
                    ..ok
                },
                "event",
            ),
            (
                CampaignSpec {
                    faults: FaultSpec::Campaign {
                        seed: 1,
                        events: 2,
                        scope: CampaignScope::Mixed,
                        horizon_scale: 0.0,
                    },
                    ..ok
                },
                "horizon",
            ),
            (CampaignSpec { n: 200_000, ..ok }, "does not fit"),
        ];
        for (bad, needle) in cases {
            match bad.validate() {
                Err(ServeError::InvalidSpec { reason }) => {
                    assert!(reason.contains(needle), "`{reason}` lacks `{needle}`")
                }
                other => panic!("expected InvalidSpec({needle}), got {other:?}"),
            }
        }
    }

    #[test]
    fn canonicalization_collapses_equivalent_spellings() {
        let base = CampaignSpec::single_node(20_000, 1200);
        // A zero-event campaign is the healthy plan, whatever its seed.
        let zero_events = CampaignSpec {
            faults: FaultSpec::Campaign {
                seed: 0xABCD,
                events: 0,
                scope: CampaignScope::Rack,
                horizon_scale: 7.0,
            },
            ..base
        };
        assert_eq!(zero_events.key(), base.key());
        // Without faults the remap and budget cannot matter.
        let whsl = CampaignSpec {
            remap: RemapStrategy::Wholesale,
            death_budget: Some(3),
            ..base
        };
        assert_eq!(whsl.key(), base.key());
        // With faults they do.
        let faulty = CampaignSpec {
            faults: FaultSpec::default_campaign(9),
            ..base
        };
        let faulty_whsl = CampaignSpec {
            remap: RemapStrategy::Wholesale,
            ..faulty
        };
        assert_ne!(faulty.key(), faulty_whsl.key());
    }

    #[test]
    fn distinct_specs_key_distinctly() {
        let base = CampaignSpec::paper_cluster_campaign(1);
        let mut keys = vec![base.key()];
        for variant in [
            CampaignSpec { nb: 960, ..base },
            CampaignSpec {
                bcast: BcastScheme::Binomial,
                ..base
            },
            CampaignSpec {
                lookahead: Lookahead::Basic,
                ..base
            },
            CampaignSpec {
                grid: (5, 20),
                ..base
            },
            CampaignSpec::paper_cluster_campaign(2),
            CampaignSpec {
                division: WorkDivision::Static {
                    card_fraction: 0.85,
                },
                ..base
            },
            CampaignSpec {
                death_budget: Some(2),
                ..base
            },
        ] {
            keys.push(variant.key());
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 8, "spec variants must key apart");
        // Keys are stable across calls.
        assert_eq!(base.key(), CampaignSpec::paper_cluster_campaign(1).key());
    }

    #[test]
    fn describe_names_the_campaign() {
        let s = CampaignSpec::paper_cluster_campaign(0xF00);
        let d = s.describe();
        assert!(
            d.contains("10x10") && d.contains("mixed") && d.contains("0xf00"),
            "{d}"
        );
        assert!(CampaignSpec::single_node(20_000, 1200)
            .describe()
            .contains("healthy"));
    }
}
