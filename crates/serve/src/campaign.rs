//! Campaign execution and the persisted outcome row.
//!
//! [`run_campaign`] is the pure function behind the service: spec in,
//! [`CampaignOutcome`] out, deterministic bit-for-bit (the simulators
//! replay from the spec's seed). The outcome implements
//! [`Record`], so the service persists every
//! result in the content-addressed store and a warm process serves the
//! exact bytes a cold one computed.

use crate::spec::{CampaignSpec, FaultSpec};
use crate::store::Record;
use phi_faults::FaultPlan;
use phi_hpl::hybrid::simulate_cluster;
use phi_hpl::{simulate_cluster_faulty, FtPolicy};

/// One executed campaign, reduced to the queryable row the result
/// table serves: throughput, completion time, fault counts and
/// recovery cost, plus the replay fingerprint witnessing the run.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignOutcome {
    /// The canonical spec key this outcome answers.
    pub key: u64,
    /// Completion time, seconds.
    pub time_s: f64,
    /// Delivered GFLOPS.
    pub gflops: f64,
    /// Completion time of the identical configuration with no faults.
    pub healthy_time_s: f64,
    /// GFLOPS of the identical configuration with no faults.
    pub healthy_gflops: f64,
    /// Scheduled fault events (after cascade resolution).
    pub events: usize,
    /// Coprocessors permanently lost.
    pub cards_lost: usize,
    /// Host ranks permanently lost.
    pub hosts_lost: usize,
    /// Trailing `nb × nb` blocks redistributed across host deaths.
    pub blocks_moved: usize,
    /// Panel-checkpoint time paid, seconds.
    pub checkpoint_s: f64,
    /// Recovery (restore + re-division) time, seconds.
    pub recovery_s: f64,
    /// Replay fingerprint of the run.
    pub fingerprint: u64,
}

impl CampaignOutcome {
    /// Fractional slowdown versus the healthy run.
    pub fn overhead(&self) -> f64 {
        if self.healthy_time_s > 0.0 {
            self.time_s / self.healthy_time_s - 1.0
        } else {
            0.0
        }
    }
}

/// Executes one validated, canonicalized spec. Pure and deterministic:
/// two calls with the same spec return bit-identical outcomes, which is
/// what makes the content-addressed store sound.
///
/// A healthy spec ([`FaultSpec::None`]) runs under [`FtPolicy::none`]
/// (no checkpoint insurance — it *is* the healthy reference run);
/// a fault campaign runs under the default checkpointing policy with
/// the spec's remap strategy and death budget applied.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignOutcome {
    let spec = spec.canonical();
    let cfg = spec.hybrid_config();
    let healthy = simulate_cluster(&cfg, false).report;
    let (plan, policy) = match spec.faults {
        FaultSpec::None => (FaultPlan::none(), FtPolicy::none()),
        FaultSpec::Campaign {
            seed,
            events,
            scope,
            horizon_scale,
        } => {
            let plan = FaultPlan::fleet_campaign(
                seed,
                healthy.time_s * horizon_scale,
                events,
                cfg.grid.size(),
                spec.cards_per_node,
                scope,
            );
            let mut policy = FtPolicy::default().with_remap(spec.remap);
            if let Some(b) = spec.death_budget {
                policy = policy.with_death_budget(b);
            }
            (plan, policy)
        }
    };
    let out = simulate_cluster_faulty(&cfg, &plan, &policy, false);
    let report = &out.result.report;
    let f = report
        .faults
        .as_ref()
        .expect("fault-tolerant runs always carry accounting");
    CampaignOutcome {
        key: spec.key(),
        time_s: report.time_s,
        gflops: report.gflops,
        healthy_time_s: healthy.time_s,
        healthy_gflops: healthy.gflops,
        events: f.events,
        cards_lost: f.cards_lost,
        hosts_lost: f.hosts_lost,
        blocks_moved: f.blocks_moved,
        checkpoint_s: f.checkpoint_s,
        recovery_s: f.recovery_s,
        fingerprint: out.run_fingerprint(),
    }
}

impl Record for CampaignOutcome {
    const NAMESPACE: &'static str = "campaign";
    const HEADER: &'static str = "phi-serve campaign v1";

    fn write_fields(&self, out: &mut String) {
        out.push_str(&format!("key {:016x}\n", self.key));
        out.push_str(&format!(
            "times t={:016x} g={:016x} ht={:016x} hg={:016x}\n",
            self.time_s.to_bits(),
            self.gflops.to_bits(),
            self.healthy_time_s.to_bits(),
            self.healthy_gflops.to_bits(),
        ));
        out.push_str(&format!(
            "faults ev={} cards={} hosts={} blocks={} ck={:016x} rec={:016x}\n",
            self.events,
            self.cards_lost,
            self.hosts_lost,
            self.blocks_moved,
            self.checkpoint_s.to_bits(),
            self.recovery_s.to_bits(),
        ));
        out.push_str(&format!("fp {:016x}\n", self.fingerprint));
    }

    fn parse_fields(fields: &str) -> Option<Self> {
        fn field<'a>(tokens: &'a [&str], name: &str) -> Option<&'a str> {
            tokens
                .iter()
                .find_map(|t| t.strip_prefix(name)?.strip_prefix('='))
        }
        fn bits(s: &str) -> Option<f64> {
            Some(f64::from_bits(u64::from_str_radix(s, 16).ok()?))
        }
        let mut lines = fields.lines();
        let key = u64::from_str_radix(lines.next()?.strip_prefix("key ")?, 16).ok()?;
        let t: Vec<&str> = lines.next()?.strip_prefix("times ")?.split(' ').collect();
        let f: Vec<&str> = lines.next()?.strip_prefix("faults ")?.split(' ').collect();
        let fp = u64::from_str_radix(lines.next()?.strip_prefix("fp ")?, 16).ok()?;
        if lines.next().is_some() {
            return None;
        }
        Some(Self {
            key,
            time_s: bits(field(&t, "t")?)?,
            gflops: bits(field(&t, "g")?)?,
            healthy_time_s: bits(field(&t, "ht")?)?,
            healthy_gflops: bits(field(&t, "hg")?)?,
            events: field(&f, "ev")?.parse().ok()?,
            cards_lost: field(&f, "cards")?.parse().ok()?,
            hosts_lost: field(&f, "hosts")?.parse().ok()?,
            blocks_moved: field(&f, "blocks")?.parse().ok()?,
            checkpoint_s: bits(field(&f, "ck")?)?,
            recovery_s: bits(field(&f, "rec")?)?,
            fingerprint: fp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{parse_record, serialize_record};

    fn eq_bits(a: &CampaignOutcome, b: &CampaignOutcome) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
        assert_eq!(a.gflops.to_bits(), b.gflops.to_bits());
        assert_eq!(a.healthy_time_s.to_bits(), b.healthy_time_s.to_bits());
        assert_eq!(a.healthy_gflops.to_bits(), b.healthy_gflops.to_bits());
        assert_eq!(a.checkpoint_s.to_bits(), b.checkpoint_s.to_bits());
        assert_eq!(a.recovery_s.to_bits(), b.recovery_s.to_bits());
        assert_eq!(
            (a.events, a.cards_lost, a.hosts_lost, a.blocks_moved),
            (b.events, b.cards_lost, b.hosts_lost, b.blocks_moved)
        );
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn execution_is_deterministic_bit_for_bit() {
        let spec = CampaignSpec::paper_cluster_campaign(0xC0DE);
        let a = run_campaign(&spec);
        let b = run_campaign(&spec);
        eq_bits(&a, &b);
        assert!(a.events > 0, "a seeded campaign draws events");
        assert!(a.time_s >= a.healthy_time_s);
    }

    #[test]
    fn healthy_spec_reproduces_the_healthy_simulation() {
        let spec = CampaignSpec::single_node(20_000, 1200);
        let out = run_campaign(&spec);
        let healthy = simulate_cluster(&spec.hybrid_config(), false).report;
        assert_eq!(out.time_s.to_bits(), healthy.time_s.to_bits());
        assert_eq!(out.gflops.to_bits(), healthy.gflops.to_bits());
        assert_eq!(out.events, 0);
        assert_eq!(out.overhead(), 0.0);
    }

    #[test]
    fn outcome_record_round_trips_byte_identically() {
        let out = run_campaign(&CampaignSpec::paper_cluster_campaign(7));
        let text = serialize_record(&out);
        let back: CampaignOutcome = parse_record(&text).expect("own serialization parses");
        eq_bits(&back, &out);
        assert_eq!(serialize_record(&back), text, "re-serialization drifts");
        // Negative-zero and subnormal bit patterns survive too.
        let odd = CampaignOutcome {
            time_s: -0.0,
            recovery_s: f64::MIN_POSITIVE / 2.0,
            ..out
        };
        let round: CampaignOutcome = parse_record(&serialize_record(&odd)).unwrap();
        assert_eq!(round.time_s.to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            round.recovery_s.to_bits(),
            (f64::MIN_POSITIVE / 2.0).to_bits()
        );
    }
}
