//! The campaign service: a bounded std-only worker pool with
//! single-flight dedup over the content-addressed store.
//!
//! Request flow for [`CampaignService::get`]:
//!
//! 1. **validate + canonicalize** the spec and compute its key;
//! 2. **memory hit** — the in-process result map already holds the
//!    outcome: return it;
//! 3. **coalesce** — another request for the same key is in flight:
//!    wait on it (this is the single-flight guarantee — N concurrent
//!    identical requests run the simulation exactly once);
//! 4. **store hit** — the first requester for a key probes the
//!    persistent store; a valid record is published without running
//!    anything, a *corrupt* record is counted and recomputed (the
//!    `TuneCache` recovery semantics), a hard read error degrades to
//!    recompute so availability never hinges on the disk;
//! 5. **miss** — the job goes over an mpsc channel to the bounded
//!    worker pool; the result is persisted and published to every
//!    waiter.
//!
//! Results are pure functions of the canonical key, so the map's
//! contents — and anything rendered from them — are byte-identical at
//! any pool size.

use crate::campaign::{run_campaign, CampaignOutcome};
use crate::error::ServeError;
use crate::spec::CampaignSpec;
use crate::store::{ResultStore, StoreReadError};
use crate::table::ResultTable;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Serving counters, all monotone. `requests` splits exactly into
/// `mem_hits + store_hits + coalesced + executed`: every request is a
/// memory hit, a wait on an in-flight duplicate, a store hit, or the
/// one request that executed its key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted (past validation).
    pub requests: usize,
    /// Served from the in-process result map.
    pub mem_hits: usize,
    /// Served from the persistent store without executing.
    pub store_hits: usize,
    /// Waited on an identical in-flight request (single-flight dedup).
    pub coalesced: usize,
    /// Simulations actually executed by the pool.
    pub executed: usize,
    /// Corrupt store records recovered by recomputing and overwriting.
    pub store_corrupt_recovered: usize,
    /// Store reads that failed hard (I/O) and degraded to recompute.
    pub store_read_errors: usize,
    /// Store writes that failed; the result was still served.
    pub store_write_errors: usize,
}

impl ServiceStats {
    /// Requests that did not run a simulation.
    pub fn hits(&self) -> usize {
        self.requests - self.executed
    }

    /// Fraction of requests served without executing; `0` when idle.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits() as f64 / self.requests as f64
        }
    }
}

enum Entry {
    InFlight,
    Done(Arc<CampaignOutcome>),
}

struct State {
    entries: BTreeMap<u64, Entry>,
    stats: ServiceStats,
}

struct Inner {
    store: Option<ResultStore>,
    state: Mutex<State>,
    done: Condvar,
}

struct Job {
    key: u64,
    spec: CampaignSpec,
}

/// The campaign service. Construct with [`CampaignService::open`] (a
/// persistent store directory) or [`CampaignService::in_memory`];
/// every clone of the handle shares the pool — use [`Arc`] to share
/// across request threads.
pub struct CampaignService {
    inner: Arc<Inner>,
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

fn worker_count(workers: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    if workers == 0 { auto } else { workers }.max(1)
}

impl CampaignService {
    /// A service backed by a persistent store directory: results
    /// survive the process and later services start warm.
    /// `workers = 0` picks `available_parallelism` (capped at 8).
    pub fn open(dir: impl Into<std::path::PathBuf>, workers: usize) -> Result<Self, ServeError> {
        Ok(Self::build(Some(ResultStore::open(dir)?), workers))
    }

    /// A service over an existing store handle.
    pub fn with_store(store: ResultStore, workers: usize) -> Self {
        Self::build(Some(store), workers)
    }

    /// A purely in-process service: no persistence, same dedup.
    pub fn in_memory(workers: usize) -> Self {
        Self::build(None, workers)
    }

    fn build(store: Option<ResultStore>, workers: usize) -> Self {
        let inner = Arc::new(Inner {
            store,
            state: Mutex::new(State {
                entries: BTreeMap::new(),
                stats: ServiceStats::default(),
            }),
            done: Condvar::new(),
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..worker_count(workers))
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&inner, &rx))
            })
            .collect();
        Self {
            inner,
            tx: Some(tx),
            workers,
        }
    }

    fn lock(&self) -> Result<MutexGuard<'_, State>, ServeError> {
        // A poisoned lock means a worker panicked mid-publish: the pool
        // is no longer trustworthy, which is exactly `PoolShutdown`.
        self.inner
            .state
            .lock()
            .map_err(|_| ServeError::PoolShutdown)
    }

    /// Serves one campaign request. Blocks until the result is
    /// available; identical concurrent requests execute exactly once.
    pub fn get(&self, spec: &CampaignSpec) -> Result<Arc<CampaignOutcome>, ServeError> {
        spec.validate()?;
        let spec = spec.canonical();
        let key = spec.key();

        enum Claim {
            Hit(Arc<CampaignOutcome>),
            Wait,
            Probe,
        }
        let claim = {
            let mut st = self.lock()?;
            st.stats.requests += 1;
            match st.entries.get(&key) {
                Some(Entry::Done(out)) => {
                    let out = Arc::clone(out);
                    st.stats.mem_hits += 1;
                    Claim::Hit(out)
                }
                Some(Entry::InFlight) => {
                    st.stats.coalesced += 1;
                    Claim::Wait
                }
                None => {
                    st.entries.insert(key, Entry::InFlight);
                    Claim::Probe
                }
            }
        };
        match claim {
            Claim::Hit(out) => Ok(out),
            Claim::Wait => self.wait_done(key),
            Claim::Probe => self.probe_then_enqueue(key, spec),
        }
    }

    /// First requester for a key: probe the store, else hand the job to
    /// the pool. Runs outside the state lock — the `InFlight` entry
    /// makes this thread the key's only prober.
    fn probe_then_enqueue(
        &self,
        key: u64,
        spec: CampaignSpec,
    ) -> Result<Arc<CampaignOutcome>, ServeError> {
        if let Some(store) = &self.inner.store {
            match store.load_checked::<CampaignOutcome>(key) {
                Ok(Some(out)) => {
                    let out = Arc::new(out);
                    let mut st = self.lock()?;
                    st.stats.store_hits += 1;
                    st.entries.insert(key, Entry::Done(Arc::clone(&out)));
                    self.inner.done.notify_all();
                    return Ok(out);
                }
                Ok(None) => {}
                Err(StoreReadError::Corrupt { .. }) => {
                    self.lock()?.stats.store_corrupt_recovered += 1;
                }
                Err(StoreReadError::Io(_)) => {
                    self.lock()?.stats.store_read_errors += 1;
                }
            }
        }
        let sent = self
            .tx
            .as_ref()
            .map(|tx| tx.send(Job { key, spec }).is_ok())
            .unwrap_or(false);
        if !sent {
            // Unclaim so later requests fail fast instead of hanging.
            if let Ok(mut st) = self.inner.state.lock() {
                st.entries.remove(&key);
            }
            self.inner.done.notify_all();
            return Err(ServeError::PoolShutdown);
        }
        self.wait_done(key)
    }

    /// Blocks until `key` is published (or its claim vanished, which
    /// only happens when the pool died under it).
    fn wait_done(&self, key: u64) -> Result<Arc<CampaignOutcome>, ServeError> {
        let mut st = self.lock()?;
        loop {
            match st.entries.get(&key) {
                Some(Entry::Done(out)) => return Ok(Arc::clone(out)),
                Some(Entry::InFlight) => {
                    st = self
                        .inner
                        .done
                        .wait(st)
                        .map_err(|_| ServeError::PoolShutdown)?;
                }
                None => return Err(ServeError::PoolShutdown),
            }
        }
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner
            .state
            .lock()
            .map(|st| st.stats)
            .unwrap_or_default()
    }

    /// A queryable snapshot of every completed campaign, in key order
    /// (deterministic at any pool size).
    pub fn table(&self) -> ResultTable {
        let rows = match self.inner.state.lock() {
            Ok(st) => st
                .entries
                .values()
                .filter_map(|e| match e {
                    Entry::Done(out) => Some((**out).clone()),
                    Entry::InFlight => None,
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        ResultTable::new(rows)
    }

    /// The persistent store, when the service has one.
    pub fn store(&self) -> Option<&ResultStore> {
        self.inner.store.as_ref()
    }

    /// Drains queued work and stops the pool. Requests after shutdown
    /// return [`ServeError::PoolShutdown`]. Called implicitly on drop.
    pub fn shutdown(&mut self) {
        drop(self.tx.take()); // closes the channel; workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Wake anything still waiting on an entry that will never come
        // (possible only if a worker died mid-job).
        let mut orphaned = VecDeque::new();
        if let Ok(mut st) = self.inner.state.lock() {
            for (k, e) in &st.entries {
                if matches!(e, Entry::InFlight) {
                    orphaned.push_back(*k);
                }
            }
            for k in orphaned {
                st.entries.remove(&k);
            }
        }
        self.inner.done.notify_all();
    }
}

impl Drop for CampaignService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner, rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        let job = match rx.lock() {
            Ok(rx) => match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // channel closed and drained
            },
            Err(_) => return,
        };
        let out = Arc::new(run_campaign(&job.spec));
        let wrote = match &inner.store {
            Some(store) => store.put(job.key, &*out).is_ok(),
            None => true,
        };
        if let Ok(mut st) = inner.state.lock() {
            st.stats.executed += 1;
            if !wrote {
                st.stats.store_write_errors += 1;
            }
            st.entries.insert(job.key, Entry::Done(out));
        }
        inner.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::serialize_record;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("phi-serve-svc-{}-{tag}", std::process::id()))
    }

    fn small_spec(seed: u64) -> CampaignSpec {
        CampaignSpec {
            faults: crate::spec::FaultSpec::default_campaign(seed),
            ..CampaignSpec::single_node(20_000, 1200)
        }
    }

    #[test]
    fn single_flight_concurrent_identical_specs_execute_once() {
        const CLIENTS: usize = 16;
        let service = Arc::new(CampaignService::in_memory(4));
        let spec = small_spec(0xAA);
        let outs: Vec<Arc<CampaignOutcome>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let service = Arc::clone(&service);
                    s.spawn(move || service.get(&spec).expect("request served"))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for o in &outs {
            assert_eq!(o.fingerprint, outs[0].fingerprint);
            assert_eq!(o.time_s.to_bits(), outs[0].time_s.to_bits());
        }
        let stats = service.stats();
        assert_eq!(stats.requests, CLIENTS);
        assert_eq!(stats.executed, 1, "single-flight must dedup to one run");
        assert_eq!(
            stats.mem_hits + stats.store_hits + stats.coalesced,
            CLIENTS - 1,
            "{stats:?}"
        );
    }

    #[test]
    fn second_process_is_a_pure_store_hit() {
        let dir = tmp_dir("warm");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec(0xBB);
        let first = {
            let cold = CampaignService::open(&dir, 2).unwrap();
            let out = cold.get(&spec).unwrap();
            assert_eq!(cold.stats().executed, 1);
            out
        };
        let warm = CampaignService::open(&dir, 2).unwrap();
        let again = warm.get(&spec).unwrap();
        let stats = warm.stats();
        assert_eq!(stats.executed, 0, "warm service must not re-simulate");
        assert_eq!(stats.store_hits, 1);
        assert_eq!(again.fingerprint, first.fingerprint);
        assert_eq!(again.time_s.to_bits(), first.time_s.to_bits());
        // And the bytes on disk are exactly the cold run's record.
        let store = warm.store().unwrap();
        let bytes = std::fs::read(store.record_path::<CampaignOutcome>(spec.key())).unwrap();
        assert_eq!(bytes, serialize_record(&*first).into_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_entry_is_recovered_not_served() {
        let dir = tmp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec(0xCC);
        let good = {
            let svc = CampaignService::open(&dir, 1).unwrap();
            svc.get(&spec).unwrap()
        };
        let store = ResultStore::open(&dir).unwrap();
        std::fs::write(
            store.record_path::<CampaignOutcome>(spec.key()),
            "phi-serve campaign v1\ngarbage\n",
        )
        .unwrap();
        let svc = CampaignService::open(&dir, 1).unwrap();
        let out = svc.get(&spec).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.store_corrupt_recovered, 1);
        assert_eq!(stats.executed, 1, "corrupt entry must recompute");
        assert_eq!(out.fingerprint, good.fingerprint);
        // The bad bytes were overwritten with a valid record.
        let bytes = std::fs::read(store.record_path::<CampaignOutcome>(spec.key())).unwrap();
        assert_eq!(bytes, serialize_record(&*good).into_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_specs_and_shutdown_are_typed_errors() {
        let mut service = CampaignService::in_memory(1);
        let bad = CampaignSpec {
            nb: 0,
            ..CampaignSpec::single_node(20_000, 1200)
        };
        assert!(matches!(
            service.get(&bad),
            Err(ServeError::InvalidSpec { .. })
        ));
        assert_eq!(service.stats().requests, 0, "rejected before counting");
        service.shutdown();
        assert!(matches!(
            service.get(&small_spec(1)),
            Err(ServeError::PoolShutdown)
        ));
    }

    #[test]
    fn distinct_specs_shard_across_the_pool_and_all_complete() {
        let service = Arc::new(CampaignService::in_memory(4));
        let outs: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..12u64)
                .map(|i| {
                    let service = Arc::clone(&service);
                    s.spawn(move || service.get(&small_spec(i % 6)).expect("served"))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(outs.len(), 12);
        let stats = service.stats();
        assert_eq!(stats.executed, 6, "one execution per unique spec");
        assert_eq!(stats.requests, 12);
        assert_eq!(stats.hits(), 6);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // The result table snapshot holds one row per unique spec.
        assert_eq!(service.table().len(), 6);
    }
}
