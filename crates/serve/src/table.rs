//! A queryable in-memory table over persisted campaign outcomes.
//!
//! The table is a deliberately small relational surface — filter,
//! project, aggregate — over [`CampaignOutcome`] rows, either
//! snapshotted live from a [`crate::CampaignService`] or loaded from a
//! [`ResultStore`] directory. Rows are kept in key order so every
//! query result is deterministic regardless of how many workers
//! produced the rows.

use crate::campaign::CampaignOutcome;
use crate::error::ServeError;
use crate::store::ResultStore;

/// A numeric column of the campaign table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Column {
    /// Completion time, seconds.
    TimeS,
    /// Delivered GFLOPS.
    Gflops,
    /// Healthy (fault-free) completion time, seconds.
    HealthyTimeS,
    /// Healthy (fault-free) GFLOPS.
    HealthyGflops,
    /// Scheduled fault events.
    Events,
    /// Coprocessors lost.
    CardsLost,
    /// Host ranks lost.
    HostsLost,
    /// Blocks redistributed by host recovery.
    BlocksMoved,
    /// Checkpoint time paid, seconds.
    CheckpointS,
    /// Recovery time paid, seconds.
    RecoveryS,
    /// Fractional slowdown vs healthy (derived).
    Overhead,
}

impl Column {
    /// Every column, in display order.
    pub const ALL: [Column; 11] = [
        Column::TimeS,
        Column::Gflops,
        Column::HealthyTimeS,
        Column::HealthyGflops,
        Column::Events,
        Column::CardsLost,
        Column::HostsLost,
        Column::BlocksMoved,
        Column::CheckpointS,
        Column::RecoveryS,
        Column::Overhead,
    ];

    /// Short machine-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            Column::TimeS => "time_s",
            Column::Gflops => "gflops",
            Column::HealthyTimeS => "healthy_time_s",
            Column::HealthyGflops => "healthy_gflops",
            Column::Events => "events",
            Column::CardsLost => "cards_lost",
            Column::HostsLost => "hosts_lost",
            Column::BlocksMoved => "blocks_moved",
            Column::CheckpointS => "checkpoint_s",
            Column::RecoveryS => "recovery_s",
            Column::Overhead => "overhead",
        }
    }

    /// The column's value in one row (counts widen to `f64`).
    pub fn value(self, row: &CampaignOutcome) -> f64 {
        match self {
            Column::TimeS => row.time_s,
            Column::Gflops => row.gflops,
            Column::HealthyTimeS => row.healthy_time_s,
            Column::HealthyGflops => row.healthy_gflops,
            Column::Events => row.events as f64,
            Column::CardsLost => row.cards_lost as f64,
            Column::HostsLost => row.hosts_lost as f64,
            Column::BlocksMoved => row.blocks_moved as f64,
            Column::CheckpointS => row.checkpoint_s,
            Column::RecoveryS => row.recovery_s,
            Column::Overhead => row.overhead(),
        }
    }
}

/// Comparison operator of a [`Filter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterOp {
    /// `column < value`
    Lt,
    /// `column <= value`
    Le,
    /// `column == value` (exact; meant for count columns)
    Eq,
    /// `column != value`
    Ne,
    /// `column >= value`
    Ge,
    /// `column > value`
    Gt,
}

/// One predicate over a column.
#[derive(Clone, Copy, Debug)]
pub struct Filter {
    /// Column the predicate reads.
    pub column: Column,
    /// Comparison to apply.
    pub op: FilterOp,
    /// Right-hand value.
    pub value: f64,
}

impl Filter {
    /// Builds a predicate.
    pub fn new(column: Column, op: FilterOp, value: f64) -> Self {
        Filter { column, op, value }
    }

    /// Whether `row` satisfies the predicate.
    pub fn matches(&self, row: &CampaignOutcome) -> bool {
        let v = self.column.value(row);
        match self.op {
            FilterOp::Lt => v < self.value,
            FilterOp::Le => v <= self.value,
            FilterOp::Eq => v == self.value,
            FilterOp::Ne => v != self.value,
            FilterOp::Ge => v >= self.value,
            FilterOp::Gt => v > self.value,
        }
    }
}

/// Aggregate function over a projected column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Agg {
    /// Row count (ignores the column's values).
    Count,
    /// Sum of the column.
    Sum,
    /// Arithmetic mean; `None` over an empty table.
    Mean,
    /// Minimum; `None` over an empty table.
    Min,
    /// Maximum; `None` over an empty table.
    Max,
}

/// An immutable, key-ordered set of campaign rows.
#[derive(Clone, Debug, Default)]
pub struct ResultTable {
    rows: Vec<CampaignOutcome>,
}

impl ResultTable {
    /// Builds a table from rows, sorting by key and dropping duplicate
    /// keys (last write wins) so the contents are canonical.
    pub fn new(mut rows: Vec<CampaignOutcome>) -> Self {
        rows.sort_by_key(|r| r.key);
        rows.dedup_by_key(|r| r.key);
        ResultTable { rows }
    }

    /// Loads every persisted campaign record in a store directory.
    /// Corrupt records are skipped (they will be recomputed on their
    /// next request); hard I/O errors surface as [`ServeError::Store`].
    pub fn load(store: &ResultStore) -> Result<Self, ServeError> {
        let mut rows = Vec::new();
        for key in store.keys::<CampaignOutcome>()? {
            if let Some(row) = store.load::<CampaignOutcome>(key)? {
                rows.push(row);
            }
        }
        Ok(ResultTable::new(rows))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in key order.
    pub fn rows(&self) -> &[CampaignOutcome] {
        &self.rows
    }

    /// Rows satisfying every predicate (conjunction), as a new table.
    pub fn filter(&self, predicates: &[Filter]) -> ResultTable {
        ResultTable {
            rows: self
                .rows
                .iter()
                .filter(|r| predicates.iter().all(|p| p.matches(r)))
                .cloned()
                .collect(),
        }
    }

    /// One column across every row, in key order.
    pub fn project(&self, column: Column) -> Vec<f64> {
        self.rows.iter().map(|r| column.value(r)).collect()
    }

    /// Aggregates a column. `Count` is `Some` even when empty; the
    /// value-dependent aggregates are `None` over an empty table.
    pub fn aggregate(&self, column: Column, agg: Agg) -> Option<f64> {
        let values = self.project(column);
        match agg {
            Agg::Count => Some(values.len() as f64),
            Agg::Sum => Some(values.iter().fold(0.0, |a, v| a + v)),
            Agg::Mean => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().fold(0.0, |a, v| a + v) / values.len() as f64)
                }
            }
            Agg::Min => values.iter().copied().reduce(f64::min),
            Agg::Max => values.iter().copied().reduce(f64::max),
        }
    }

    /// A fixed-width text rendering of selected columns (diagnostics
    /// and the load-generator report).
    pub fn render(&self, columns: &[Column]) -> String {
        let mut out = String::new();
        out.push_str("key             ");
        for c in columns {
            out.push_str(&format!(" {:>14}", c.name()));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:016x}", r.key));
            for c in columns {
                out.push_str(&format!(" {:>14.4}", c.value(r)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-written fixture rows with easily summed values.
    fn fixture() -> ResultTable {
        let base = CampaignOutcome {
            key: 0,
            time_s: 0.0,
            gflops: 0.0,
            healthy_time_s: 100.0,
            healthy_gflops: 500.0,
            events: 0,
            cards_lost: 0,
            hosts_lost: 0,
            blocks_moved: 0,
            checkpoint_s: 0.0,
            recovery_s: 0.0,
            fingerprint: 0,
        };
        ResultTable::new(vec![
            CampaignOutcome {
                key: 3,
                time_s: 110.0,
                gflops: 400.0,
                events: 2,
                hosts_lost: 1,
                ..base.clone()
            },
            CampaignOutcome {
                key: 1,
                time_s: 100.0,
                gflops: 500.0,
                ..base.clone()
            },
            CampaignOutcome {
                key: 2,
                time_s: 150.0,
                gflops: 300.0,
                events: 4,
                cards_lost: 2,
                ..base.clone()
            },
        ])
    }

    #[test]
    fn rows_are_key_ordered_and_deduped() {
        let t = fixture();
        let keys: Vec<u64> = t.rows().iter().map(|r| r.key).collect();
        assert_eq!(keys, [1, 2, 3]);
        let dup = ResultTable::new([t.rows().to_vec(), t.rows().to_vec()].concat());
        assert_eq!(dup.len(), 3, "duplicate keys collapse");
    }

    #[test]
    fn aggregates_match_hand_computed_values() {
        let t = fixture();
        assert_eq!(t.aggregate(Column::TimeS, Agg::Count), Some(3.0));
        assert_eq!(t.aggregate(Column::TimeS, Agg::Sum), Some(360.0));
        assert_eq!(t.aggregate(Column::TimeS, Agg::Mean), Some(120.0));
        assert_eq!(t.aggregate(Column::TimeS, Agg::Min), Some(100.0));
        assert_eq!(t.aggregate(Column::TimeS, Agg::Max), Some(150.0));
        assert_eq!(t.aggregate(Column::Gflops, Agg::Mean), Some(400.0));
        assert_eq!(t.aggregate(Column::Events, Agg::Sum), Some(6.0));
        // Overhead is derived: (110/100 - 1) etc., mean of {0.1, 0, 0.5}.
        let mean = t.aggregate(Column::Overhead, Agg::Mean).unwrap();
        assert!((mean - 0.2).abs() < 1e-12, "{mean}");
        // Value-dependent aggregates over an empty table are None.
        let empty = ResultTable::default();
        assert_eq!(empty.aggregate(Column::TimeS, Agg::Count), Some(0.0));
        assert_eq!(empty.aggregate(Column::TimeS, Agg::Mean), None);
        assert_eq!(empty.aggregate(Column::TimeS, Agg::Min), None);
    }

    #[test]
    fn filter_is_a_conjunction_and_projection_keeps_key_order() {
        let t = fixture();
        let faulty = t.filter(&[Filter::new(Column::Events, FilterOp::Gt, 0.0)]);
        assert_eq!(faulty.len(), 2);
        let slow_and_faulty = t.filter(&[
            Filter::new(Column::Events, FilterOp::Gt, 0.0),
            Filter::new(Column::TimeS, FilterOp::Ge, 150.0),
        ]);
        assert_eq!(slow_and_faulty.len(), 1);
        assert_eq!(slow_and_faulty.rows()[0].key, 2);
        assert_eq!(t.project(Column::TimeS), vec![100.0, 150.0, 110.0]);
        let none = t.filter(&[Filter::new(Column::HostsLost, FilterOp::Eq, 9.0)]);
        assert!(none.is_empty());
    }

    #[test]
    fn store_round_trip_reloads_the_same_table() {
        let dir = std::env::temp_dir().join(format!("phi-serve-table-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let t = fixture();
        for r in t.rows() {
            store.put(r.key, r).unwrap();
        }
        let back = ResultTable::load(&store).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in back.rows().iter().zip(t.rows()) {
            assert_eq!(a, b);
        }
        // A corrupt record is skipped, not fatal.
        std::fs::write(store.record_path::<CampaignOutcome>(2), "junk\n").unwrap();
        let partial = ResultTable::load(&store).unwrap();
        assert_eq!(partial.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_lists_every_requested_column() {
        let t = fixture();
        let text = t.render(&[Column::TimeS, Column::Gflops, Column::Overhead]);
        assert!(text.contains("time_s"));
        assert!(text.contains("overhead"));
        assert_eq!(text.lines().count(), 4, "header + 3 rows");
        for c in Column::ALL {
            assert!(!c.name().is_empty());
        }
    }
}
