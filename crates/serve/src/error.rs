//! Typed errors of the service layer. Nothing on the request path
//! unwraps: spec validation, pool shutdown and store I/O all surface as
//! [`ServeError`] values, and corrupt store entries inherit the
//! recompute-and-overwrite recovery of [`crate::store::StoreReadError`].

use crate::store::StoreReadError;
use std::fmt;

/// Why a campaign request could not be served.
#[derive(Debug)]
pub enum ServeError {
    /// The spec fails validation (infeasible grid, panel, memory or
    /// fault-plan bounds); the reason says which rule.
    InvalidSpec {
        /// The violated rule, human-readable.
        reason: String,
    },
    /// The service's worker pool has shut down (or died); no new work
    /// can be executed.
    PoolShutdown,
    /// Reading the persistent result store failed. Corrupt entries are
    /// recovered transparently on the request path and never surface
    /// here; this is for hard I/O failures on explicit store accesses
    /// (e.g. loading a [`crate::ResultTable`]).
    Store(StoreReadError),
}

impl ServeError {
    /// Shorthand for an [`ServeError::InvalidSpec`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        ServeError::InvalidSpec {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidSpec { reason } => write!(f, "invalid campaign spec: {reason}"),
            ServeError::PoolShutdown => write!(f, "campaign service worker pool is shut down"),
            ServeError::Store(e) => write!(f, "campaign store: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreReadError> for ServeError {
    fn from(e: StoreReadError) -> Self {
        ServeError::Store(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Store(StoreReadError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        let e = ServeError::invalid("grid 0x3 has no ranks");
        assert!(e.to_string().contains("grid 0x3"));
        assert!(ServeError::PoolShutdown.to_string().contains("shut down"));
        let io = ServeError::from(std::io::Error::other("disk gone"));
        assert!(io.to_string().contains("disk gone"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
