//! The content-addressed result store.
//!
//! Grown out of `phi-tune`'s `TuneCache` (which is now a client of this
//! module): one file per content-addressed key, a deterministic text
//! serialization with `f64` values as exact hex bit patterns, and an
//! FNV-1a `end <fnv>` integrity trailer so truncations and bit flips
//! are detectably corrupt rather than silently parseable. Two stores of
//! the same record are byte-identical, and a loaded record is
//! bit-identical to the stored one.
//!
//! The store is generic over a [`Record`]: each record type names its
//! file-name namespace and header line and (de)serializes its own field
//! lines, while this module owns the framing — header, trailer, file
//! naming and the corrupt-entry recovery semantics every client
//! inherits (`Corrupt` means "recompute and overwrite", never a panic).

use crate::Fnv;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why a stored record could not be read. `Io` is the environment's
/// fault (permissions, disk); `Corrupt` means the file exists but its
/// bytes are not a valid record — truncated write, bit flip, wrong
/// format. Callers treat `Corrupt` as "recompute and overwrite", never
/// as a panic.
#[derive(Debug)]
pub enum StoreReadError {
    /// The underlying read failed (other than not-found).
    Io(io::Error),
    /// The file exists but does not parse as a record.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What the parser tripped over.
        reason: &'static str,
    },
}

impl fmt::Display for StoreReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store read failed: {e}"),
            Self::Corrupt { path, reason } => {
                write!(f, "corrupt store record {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StoreReadError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// A record type the store can persist. The store frames every record
/// as `HEADER\n<fields>end <fnv>\n` in a file named
/// `<NAMESPACE>-<key:016x>.txt`; implementations serialize and parse
/// only the field lines in between.
///
/// The contract every implementation must keep:
///
/// * `write_fields` is **deterministic** — same record, same bytes —
///   and every `f64` is emitted as its exact bit pattern (`to_bits`
///   hex), so a parsed record re-serializes byte-identically;
/// * `parse_fields(body)` accepts exactly what `write_fields` emits
///   and returns `None` on anything else (it never panics on damaged
///   input — the framing layer has already verified the integrity
///   trailer, but the body may still be semantically stale).
pub trait Record: Sized {
    /// File-name prefix, e.g. `tune` for `tune-<key>.txt`.
    const NAMESPACE: &'static str;
    /// First line of every record; bump it whenever the field layout
    /// changes meaning so old entries can never be mistaken for
    /// current ones.
    const HEADER: &'static str;

    /// Appends the record's field lines (everything between the header
    /// and the trailer).
    fn write_fields(&self, out: &mut String);

    /// Parses the field lines back. `None` on any mismatch.
    fn parse_fields(fields: &str) -> Option<Self>;
}

/// The full byte serialization of a record: header, fields and the
/// `end <fnv>` trailer over every preceding byte.
pub fn serialize_record<R: Record>(r: &R) -> String {
    let mut s = String::with_capacity(256);
    s.push_str(R::HEADER);
    s.push('\n');
    r.write_fields(&mut s);
    let mut h = Fnv::new();
    h.write(s.as_bytes());
    s.push_str(&format!("end {:016x}\n", h.finish()));
    s
}

/// Splits off and verifies the `end <fnv>` trailer, returning the body
/// it covers. Any truncation or bit flip fails here.
pub fn verify_trailer(text: &str) -> Option<&str> {
    let (_, last) = text.strip_suffix('\n')?.rsplit_once('\n')?;
    let stored = u64::from_str_radix(last.strip_prefix("end ")?, 16).ok()?;
    let body = &text[..text.len() - last.len() - 1];
    let mut h = Fnv::new();
    h.write(body.as_bytes());
    (h.finish() == stored).then_some(body)
}

/// Parses a full serialized record: trailer first, then the header
/// line, then the record's own fields.
pub fn parse_record<R: Record>(text: &str) -> Option<R> {
    let body = verify_trailer(text)?;
    let fields = body.strip_prefix(R::HEADER)?.strip_prefix('\n')?;
    R::parse_fields(fields)
}

/// A human-readable first guess at what is wrong with an unparseable
/// record, for the `Corrupt` error message.
pub fn diagnose<R: Record>(text: &str) -> &'static str {
    if text.is_empty() {
        "empty file"
    } else if !text.starts_with(R::HEADER) {
        "unrecognized header (wrong format or stale version)"
    } else if verify_trailer(text).is_none() {
        "integrity trailer missing or mismatched (truncated or bit-flipped)"
    } else {
        "corrupted record body"
    }
}

/// A directory of content-addressed records, one file per key. Multiple
/// record types share one directory without collision — the namespace
/// prefixes the file name.
#[derive(Clone, Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The file a key is stored under for record type `R`.
    pub fn record_path<R: Record>(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}-{key:016x}.txt", R::NAMESPACE))
    }

    /// Loads the record stored under `key`, if any. A corrupt or
    /// truncated file counts as a miss, not an error — the caller
    /// simply recomputes and overwrites it.
    pub fn load<R: Record>(&self, key: u64) -> io::Result<Option<R>> {
        match self.load_checked(key) {
            Ok(out) => Ok(out),
            Err(StoreReadError::Corrupt { .. }) => Ok(None),
            Err(StoreReadError::Io(e)) => Err(e),
        }
    }

    /// Like [`load`](Self::load), but a damaged file surfaces as a
    /// typed [`StoreReadError::Corrupt`] instead of a silent miss, so
    /// callers can log or count the fallback. Never panics on
    /// truncated, bit-flipped or empty files.
    pub fn load_checked<R: Record>(&self, key: u64) -> Result<Option<R>, StoreReadError> {
        let path = self.record_path::<R>(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreReadError::Io(e)),
        };
        match parse_record::<R>(&text) {
            Some(out) => Ok(Some(out)),
            None => Err(StoreReadError::Corrupt {
                path,
                reason: diagnose::<R>(&text),
            }),
        }
    }

    /// Stores a record under `key`, overwriting any previous entry.
    pub fn put<R: Record>(&self, key: u64, r: &R) -> io::Result<()> {
        std::fs::write(self.record_path::<R>(key), serialize_record(r))
    }

    /// Every key with a record of type `R` in the store, ascending.
    /// Files of other namespaces (or with mangled names) are ignored.
    pub fn keys<R: Record>(&self) -> io::Result<Vec<u64>> {
        let prefix = format!("{}-", R::NAMESPACE);
        let mut keys = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name
                .strip_prefix(&prefix)
                .and_then(|s| s.strip_suffix(".txt"))
            else {
                continue;
            };
            if hex.len() == 16 {
                if let Ok(key) = u64::from_str_radix(hex, 16) {
                    keys.push(key);
                }
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal record exercising both integer and hex-bit f64 fields.
    #[derive(Clone, Debug, PartialEq)]
    struct Probe {
        id: u64,
        value: f64,
    }

    impl Record for Probe {
        const NAMESPACE: &'static str = "probe";
        const HEADER: &'static str = "phi-serve probe v1";

        fn write_fields(&self, out: &mut String) {
            out.push_str(&format!("id {:016x}\n", self.id));
            out.push_str(&format!("value {:016x}\n", self.value.to_bits()));
        }

        fn parse_fields(fields: &str) -> Option<Self> {
            let mut lines = fields.lines();
            let id = u64::from_str_radix(lines.next()?.strip_prefix("id ")?, 16).ok()?;
            let value = f64::from_bits(
                u64::from_str_radix(lines.next()?.strip_prefix("value ")?, 16).ok()?,
            );
            lines.next().is_none().then_some(Self { id, value })
        }
    }

    /// Second namespace sharing the directory.
    #[derive(Clone, Debug, PartialEq)]
    struct Other(u64);

    impl Record for Other {
        const NAMESPACE: &'static str = "other";
        const HEADER: &'static str = "phi-serve other v1";

        fn write_fields(&self, out: &mut String) {
            out.push_str(&format!("x {:016x}\n", self.0));
        }

        fn parse_fields(fields: &str) -> Option<Self> {
            let mut lines = fields.lines();
            let x = u64::from_str_radix(lines.next()?.strip_prefix("x ")?, 16).ok()?;
            lines.next().is_none().then_some(Self(x))
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("phi-serve-store-{}-{tag}", std::process::id()))
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let p = Probe {
            id: 0xDEAD_BEEF,
            value: -0.123_456_789_012_345_68,
        };
        let text = serialize_record(&p);
        let back: Probe = parse_record(&text).expect("own serialization parses");
        assert_eq!(back, p);
        assert_eq!(back.value.to_bits(), p.value.to_bits());
        assert_eq!(serialize_record(&back), text);
    }

    #[test]
    fn store_round_trips_and_lists_keys() {
        let dir = tmp_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.load::<Probe>(7).unwrap().is_none());
        let p = Probe {
            id: 7,
            value: 1.5e-300,
        };
        store.put(7, &p).unwrap();
        store.put(3, &Probe { id: 3, value: 0.0 }).unwrap();
        assert_eq!(store.load::<Probe>(7).unwrap().unwrap(), p);
        assert_eq!(store.keys::<Probe>().unwrap(), vec![3, 7]);
        // The bytes on disk are exactly the serialization.
        let bytes = std::fs::read(store.record_path::<Probe>(7)).unwrap();
        assert_eq!(bytes, serialize_record(&p).into_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn namespaces_share_a_directory_without_collision() {
        let dir = tmp_dir("ns");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        store.put(1, &Probe { id: 1, value: 2.0 }).unwrap();
        store.put(1, &Other(42)).unwrap();
        assert_eq!(store.load::<Probe>(1).unwrap().unwrap().id, 1);
        assert_eq!(store.load::<Other>(1).unwrap().unwrap(), Other(42));
        assert_eq!(store.keys::<Probe>().unwrap(), vec![1]);
        assert_eq!(store.keys::<Other>().unwrap(), vec![1]);
        assert_ne!(store.record_path::<Probe>(1), store.record_path::<Other>(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_is_typed_corrupt_and_lenient_load_is_a_miss() {
        let dir = tmp_dir("damage");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let p = Probe { id: 9, value: 3.25 };
        let bytes = serialize_record(&p).into_bytes();

        // Empty file.
        std::fs::write(store.record_path::<Probe>(9), b"").unwrap();
        match store.load_checked::<Probe>(9) {
            Err(StoreReadError::Corrupt { reason, .. }) => assert_eq!(reason, "empty file"),
            other => panic!("expected Corrupt(empty), got {other:?}"),
        }

        // Wrong header.
        std::fs::write(store.record_path::<Probe>(9), b"something else\n").unwrap();
        match store.load_checked::<Probe>(9) {
            Err(StoreReadError::Corrupt { reason, .. }) => {
                assert!(reason.contains("header"), "{reason}")
            }
            other => panic!("expected Corrupt(header), got {other:?}"),
        }

        // Every truncation parse-fails (only the full record is valid).
        for cut in 0..bytes.len() {
            std::fs::write(store.record_path::<Probe>(9), &bytes[..cut]).unwrap();
            assert!(
                store.load::<Probe>(9).unwrap().is_none(),
                "truncation at {cut} produced a record"
            );
        }

        // A bit flip anywhere is caught by the trailer.
        for pos in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x10;
            std::fs::write(store.record_path::<Probe>(9), &flipped).unwrap();
            match store.load_checked::<Probe>(9) {
                Err(StoreReadError::Corrupt { .. }) => {}
                Ok(Some(back)) => panic!("bit flip at {pos} parsed as {back:?}"),
                other => panic!("bit flip at {pos} not caught: {other:?}"),
            }
        }

        // Recovery: overwrite with a valid record, hits resume.
        store.put(9, &p).unwrap();
        assert_eq!(store.load::<Probe>(9).unwrap().unwrap(), p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_ignore_foreign_and_mangled_files() {
        let dir = tmp_dir("foreign");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        std::fs::write(dir.join("probe-zzzz.txt"), "junk").unwrap();
        std::fs::write(dir.join("probe-00ff.txt"), "short hex").unwrap();
        std::fs::write(dir.join("README"), "not a record").unwrap();
        store.put(5, &Probe { id: 5, value: 1.0 }).unwrap();
        assert_eq!(store.keys::<Probe>().unwrap(), vec![5]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
