//! Diagnostics: what a lint pass reports and how it is rendered.
//!
//! Every finding carries a severity, the index of the offending
//! instruction (body or epilogue), and a disassembly excerpt around it so
//! a report reads like the annotated listings of Fig. 2b/2c.

use phi_knc::disasm::instr_str;
use phi_knc::{Program, StreamId};

/// How bad a finding is.
///
/// The paper kernels must be free of [`Severity::Error`]; warnings encode
/// performance hazards (Kernel 1's fill conflict is *the* example — it is
/// correct code that the paper shows losing cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Performance hazard or suspicious-but-executable construct.
    Warning,
    /// The program is wrong: it computes garbage or violates a machine
    /// constraint the emulator does not forgive.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which program region a diagnostic points into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The loop body (executed once per iteration).
    Body,
    /// The C-update epilogue (executed once after the loop).
    Epilogue,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Body => write!(f, "body"),
            Region::Epilogue => write!(f, "epilogue"),
        }
    }
}

/// The closed set of findings the analyzer can produce. Each variant is
/// demonstrated by a fixture program in [`crate::fixtures`].
#[derive(Clone, Debug, PartialEq)]
pub enum LintKind {
    /// A register is read (as a pure source) before any instruction
    /// defines it — iteration 0 consumes the zeroed live-in value, which
    /// is only legitimate for accumulators (read-modify-write).
    UninitializedRead {
        /// The register read too early.
        reg: u8,
    },
    /// A full register define whose value is overwritten before any use —
    /// a wasted U-pipe slot every iteration.
    DeadStore {
        /// The register written in vain.
        reg: u8,
    },
    /// A register holding loop-carried partial sums (an FMA accumulator)
    /// is fully overwritten inside the loop, destroying the accumulation.
    AccumulatorClobber {
        /// The clobbered accumulator.
        reg: u8,
    },
    /// A V-pipe instruction that cannot co-issue: its issue turn contains
    /// no vector instruction, so it burns a whole cycle (the dual-issue
    /// pairing the paper relies on is broken at this point).
    UnpairedVpipe,
    /// More L1 prefetch fills arrive per iteration than there are
    /// port-free holes to absorb them — the Fig. 1c conflict. Fills defer
    /// and eventually stall the pipe (Basic Kernel 1's fate).
    FillConflict {
        /// L1 lines filled per aggregate iteration (all threads).
        fills: usize,
        /// Port-free issue cycles per aggregate iteration.
        holes: usize,
    },
    /// A streaming demand access whose cache line is not covered by any
    /// in-window `vprefetch0` from an earlier iteration: every line is a
    /// demand miss in the emulator.
    UnprefetchedStream {
        /// The stream read without prefetch cover.
        stream: StreamId,
    },
    /// A store in the steady-state loop body: it occupies the L1 write
    /// port every iteration, stealing the holes prefetch fills need. The
    /// paper keeps C in registers and stores only in the epilogue.
    WritePortPressure,
    /// A vector memory access whose symbolic address is not aligned to
    /// the operand size for every (iteration, thread) pair.
    Misaligned {
        /// Required element alignment (8 for full vectors, 4 for `4to8`).
        align: usize,
    },
    /// An L1 prefetch stepping by a non-multiple of the cache line:
    /// successive iterations re-prefetch overlapping lines.
    PartialLinePrefetch {
        /// The per-iteration element stride.
        scale: usize,
    },
    /// A thread-split access on the shared `A` stream whose per-thread
    /// stride is not line-sized: threads own overlapping cache lines, so
    /// the cooperative split of Section III-A2 double-fetches.
    ThreadOverlap {
        /// The offending per-thread element stride.
        scale_thread: usize,
    },
    /// A prefetch of the shared `A` stream with no per-thread stride: all
    /// four hardware threads request the same line instead of splitting
    /// the four lines of a column among themselves.
    DuplicateSharedPrefetch,
}

impl LintKind {
    /// Stable kebab-case name, used by fixtures and gate tooling.
    pub fn name(&self) -> &'static str {
        match self {
            LintKind::UninitializedRead { .. } => "uninitialized-read",
            LintKind::DeadStore { .. } => "dead-store",
            LintKind::AccumulatorClobber { .. } => "accumulator-clobber",
            LintKind::UnpairedVpipe => "unpaired-vpipe",
            LintKind::FillConflict { .. } => "fill-conflict",
            LintKind::UnprefetchedStream { .. } => "unprefetched-stream",
            LintKind::WritePortPressure => "write-port-pressure",
            LintKind::Misaligned { .. } => "misaligned",
            LintKind::PartialLinePrefetch { .. } => "partial-line-prefetch",
            LintKind::ThreadOverlap { .. } => "thread-overlap",
            LintKind::DuplicateSharedPrefetch => "duplicate-shared-prefetch",
        }
    }

    /// The severity this kind always carries.
    pub fn severity(&self) -> Severity {
        match self {
            LintKind::UninitializedRead { .. }
            | LintKind::AccumulatorClobber { .. }
            | LintKind::Misaligned { .. }
            | LintKind::ThreadOverlap { .. } => Severity::Error,
            LintKind::DeadStore { .. }
            | LintKind::UnpairedVpipe
            | LintKind::FillConflict { .. }
            | LintKind::UnprefetchedStream { .. }
            | LintKind::WritePortPressure
            | LintKind::PartialLinePrefetch { .. }
            | LintKind::DuplicateSharedPrefetch => Severity::Warning,
        }
    }

    /// Every kind the analyzer can emit, for exhaustiveness checks.
    pub fn all_names() -> &'static [&'static str] {
        &[
            "uninitialized-read",
            "dead-store",
            "accumulator-clobber",
            "unpaired-vpipe",
            "fill-conflict",
            "unprefetched-stream",
            "write-port-pressure",
            "misaligned",
            "partial-line-prefetch",
            "thread-overlap",
            "duplicate-shared-prefetch",
        ]
    }
}

/// One finding: kind + location + rendered context.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// What was found.
    pub kind: LintKind,
    /// Error or warning (always `kind.severity()`).
    pub severity: Severity,
    /// Body or epilogue.
    pub region: Region,
    /// Instruction index within the region.
    pub at: usize,
    /// Human explanation of this occurrence.
    pub message: String,
    /// Disassembly excerpt around the instruction (±1 line, the offender
    /// marked with `>`).
    pub excerpt: String,
}

impl Diagnostic {
    /// Builds a diagnostic, rendering the excerpt from `program`.
    pub fn new(
        kind: LintKind,
        region: Region,
        at: usize,
        program: &Program,
        message: String,
    ) -> Self {
        Self {
            severity: kind.severity(),
            excerpt: excerpt(program, at),
            kind,
            region,
            at,
            message,
        }
    }

    /// Renders as a compiler-style multi-line message.
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {} ({} instruction {})\n{}",
            self.severity,
            self.kind.name(),
            self.message,
            self.region,
            self.at,
            self.excerpt
        )
    }
}

/// Disassembly excerpt around `at` with the offender marked.
fn excerpt(p: &Program, at: usize) -> String {
    let lo = at.saturating_sub(1);
    let hi = (at + 2).min(p.body.len());
    let mut out = String::new();
    for idx in lo..hi {
        let marker = if idx == at { '>' } else { ' ' };
        let pipe = if p.body[idx].is_vector() { 'U' } else { 'V' };
        out.push_str(&format!(
            "  {marker} {idx:>3} {pipe}  {}\n",
            instr_str(&p.body[idx])
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_knc::{Addr, Instr, Operand};

    #[test]
    fn diagnostic_renders_severity_kind_index_and_excerpt() {
        let mut p = Program::new();
        p.push(Instr::Load {
            dst: 31,
            addr: Addr::new(StreamId::B, 8, 0),
        });
        p.push(Instr::Fmadd {
            acc: 0,
            src: Operand::Reg(5),
            b: 31,
        });
        let d = Diagnostic::new(
            LintKind::UninitializedRead { reg: 5 },
            Region::Body,
            1,
            &p,
            "v5 read before any define".into(),
        );
        assert_eq!(d.severity, Severity::Error);
        let r = d.render();
        assert!(r.contains("error[uninitialized-read]"), "{r}");
        assert!(r.contains("body instruction 1"), "{r}");
        assert!(r.contains(">   1 U  vfmadd231pd v0, v31, v5"), "{r}");
        assert!(r.contains("    0 U  vmovapd v31"), "{r}");
    }

    #[test]
    fn severity_is_total_over_kinds() {
        assert_eq!(LintKind::all_names().len(), 11);
        assert!(LintKind::FillConflict { fills: 8, holes: 0 }.severity() == Severity::Warning);
        assert!(LintKind::Misaligned { align: 8 }.severity() == Severity::Error);
    }
}
