//! Diagnostics: what a lint pass reports and how it is rendered.
//!
//! Every finding carries a severity, the index of the offending
//! instruction (body or epilogue), and a disassembly excerpt around it so
//! a report reads like the annotated listings of Fig. 2b/2c.

use phi_knc::disasm::instr_str;
use phi_knc::{Program, StreamId};

/// How bad a finding is.
///
/// The paper kernels must be free of [`Severity::Error`]; warnings encode
/// performance hazards (Kernel 1's fill conflict is *the* example — it is
/// correct code that the paper shows losing cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Performance hazard or suspicious-but-executable construct.
    Warning,
    /// The program is wrong: it computes garbage or violates a machine
    /// constraint the emulator does not forgive.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which program region a diagnostic points into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The loop body (executed once per iteration).
    Body,
    /// The C-update epilogue (executed once after the loop).
    Epilogue,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Body => write!(f, "body"),
            Region::Epilogue => write!(f, "epilogue"),
        }
    }
}

/// The closed set of findings the analyzer can produce. Each variant is
/// demonstrated by a fixture program in [`crate::fixtures`].
#[derive(Clone, Debug, PartialEq)]
pub enum LintKind {
    /// A register is read (as a pure source) before any instruction
    /// defines it — iteration 0 consumes the zeroed live-in value, which
    /// is only legitimate for accumulators (read-modify-write).
    UninitializedRead {
        /// The register read too early.
        reg: u8,
    },
    /// A full register define whose value is overwritten before any use —
    /// a wasted U-pipe slot every iteration.
    DeadStore {
        /// The register written in vain.
        reg: u8,
    },
    /// A register holding loop-carried partial sums (an FMA accumulator)
    /// is fully overwritten inside the loop, destroying the accumulation.
    AccumulatorClobber {
        /// The clobbered accumulator.
        reg: u8,
    },
    /// A V-pipe instruction that cannot co-issue: its issue turn contains
    /// no vector instruction, so it burns a whole cycle (the dual-issue
    /// pairing the paper relies on is broken at this point).
    UnpairedVpipe,
    /// More L1 prefetch fills arrive per iteration than there are
    /// port-free holes to absorb them — the Fig. 1c conflict. Fills defer
    /// and eventually stall the pipe (Basic Kernel 1's fate).
    FillConflict {
        /// L1 lines filled per aggregate iteration (all threads).
        fills: usize,
        /// Port-free issue cycles per aggregate iteration.
        holes: usize,
    },
    /// A streaming demand access whose cache line is not covered by any
    /// in-window `vprefetch0` from an earlier iteration: every line is a
    /// demand miss in the emulator.
    UnprefetchedStream {
        /// The stream read without prefetch cover.
        stream: StreamId,
    },
    /// A store in the steady-state loop body: it occupies the L1 write
    /// port every iteration, stealing the holes prefetch fills need. The
    /// paper keeps C in registers and stores only in the epilogue.
    WritePortPressure,
    /// A vector memory access whose symbolic address is not aligned to
    /// the operand size for every (iteration, thread) pair.
    Misaligned {
        /// Required element alignment (8 for full vectors, 4 for `4to8`).
        align: usize,
    },
    /// An L1 prefetch stepping by a non-multiple of the cache line:
    /// successive iterations re-prefetch overlapping lines.
    PartialLinePrefetch {
        /// The per-iteration element stride.
        scale: usize,
    },
    /// A thread-split access on the shared `A` stream whose per-thread
    /// stride is not line-sized: threads own overlapping cache lines, so
    /// the cooperative split of Section III-A2 double-fetches.
    ThreadOverlap {
        /// The offending per-thread element stride.
        scale_thread: usize,
    },
    /// A prefetch of the shared `A` stream with no per-thread stride: all
    /// four hardware threads request the same line instead of splitting
    /// the four lines of a column among themselves.
    DuplicateSharedPrefetch,
}

impl LintKind {
    /// Stable diagnostic code (`K###` — kernel-pass family). Codes are
    /// append-only: a kind keeps its code forever, so machine consumers
    /// of the `--json` gate output can match on them across releases.
    pub fn code(&self) -> &'static str {
        match self {
            LintKind::UninitializedRead { .. } => "K001",
            LintKind::DeadStore { .. } => "K002",
            LintKind::AccumulatorClobber { .. } => "K003",
            LintKind::UnpairedVpipe => "K004",
            LintKind::FillConflict { .. } => "K005",
            LintKind::UnprefetchedStream { .. } => "K006",
            LintKind::WritePortPressure => "K007",
            LintKind::Misaligned { .. } => "K008",
            LintKind::PartialLinePrefetch { .. } => "K009",
            LintKind::ThreadOverlap { .. } => "K010",
            LintKind::DuplicateSharedPrefetch => "K011",
        }
    }

    /// Stable kebab-case name, used by fixtures and gate tooling.
    pub fn name(&self) -> &'static str {
        match self {
            LintKind::UninitializedRead { .. } => "uninitialized-read",
            LintKind::DeadStore { .. } => "dead-store",
            LintKind::AccumulatorClobber { .. } => "accumulator-clobber",
            LintKind::UnpairedVpipe => "unpaired-vpipe",
            LintKind::FillConflict { .. } => "fill-conflict",
            LintKind::UnprefetchedStream { .. } => "unprefetched-stream",
            LintKind::WritePortPressure => "write-port-pressure",
            LintKind::Misaligned { .. } => "misaligned",
            LintKind::PartialLinePrefetch { .. } => "partial-line-prefetch",
            LintKind::ThreadOverlap { .. } => "thread-overlap",
            LintKind::DuplicateSharedPrefetch => "duplicate-shared-prefetch",
        }
    }

    /// The severity this kind always carries.
    pub fn severity(&self) -> Severity {
        match self {
            LintKind::UninitializedRead { .. }
            | LintKind::AccumulatorClobber { .. }
            | LintKind::Misaligned { .. }
            | LintKind::ThreadOverlap { .. } => Severity::Error,
            LintKind::DeadStore { .. }
            | LintKind::UnpairedVpipe
            | LintKind::FillConflict { .. }
            | LintKind::UnprefetchedStream { .. }
            | LintKind::WritePortPressure
            | LintKind::PartialLinePrefetch { .. }
            | LintKind::DuplicateSharedPrefetch => Severity::Warning,
        }
    }

    /// Every kind the analyzer can emit, for exhaustiveness checks.
    pub fn all_names() -> &'static [&'static str] {
        &[
            "uninitialized-read",
            "dead-store",
            "accumulator-clobber",
            "unpaired-vpipe",
            "fill-conflict",
            "unprefetched-stream",
            "write-port-pressure",
            "misaligned",
            "partial-line-prefetch",
            "thread-overlap",
            "duplicate-shared-prefetch",
        ]
    }
}

/// One finding: kind + location + rendered context.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// What was found.
    pub kind: LintKind,
    /// Error or warning (always `kind.severity()`).
    pub severity: Severity,
    /// Body or epilogue.
    pub region: Region,
    /// Instruction index within the region.
    pub at: usize,
    /// Human explanation of this occurrence.
    pub message: String,
    /// Disassembly excerpt around the instruction (±1 line, the offender
    /// marked with `>`).
    pub excerpt: String,
}

impl Diagnostic {
    /// Builds a diagnostic, rendering the excerpt from `program`.
    pub fn new(
        kind: LintKind,
        region: Region,
        at: usize,
        program: &Program,
        message: String,
    ) -> Self {
        Self {
            severity: kind.severity(),
            excerpt: excerpt(program, at),
            kind,
            region,
            at,
            message,
        }
    }

    /// Renders as a compiler-style multi-line message.
    pub fn render(&self) -> String {
        render_finding(
            self.severity,
            self.kind.code(),
            self.kind.name(),
            &self.message,
            &format!("{} instruction {}", self.region, self.at),
            &self.excerpt,
        )
    }
}

/// The one compiler-style rendering every lint family shares:
/// `severity[CODE:name]: message (site)` followed by the excerpt.
/// Kernel diagnostics ([`Diagnostic`]) and schedule diagnostics
/// (`phi_lint::schedule`) both route through here so reports from the
/// two gate binaries read identically.
pub fn render_finding(
    severity: Severity,
    code: &str,
    name: &str,
    message: &str,
    site: &str,
    excerpt: &str,
) -> String {
    format!("{severity}[{code}:{name}]: {message} ({site})\n{excerpt}")
}

/// Escapes a string for inclusion in the hand-rolled JSON the lint
/// binaries emit under `--json` (the workspace carries no JSON
/// dependency; the emitters guarantee flat string/number fields).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The closed set of findings the schedule-analysis pass family can
/// produce: channel-graph checks ([`crate::schedule`]), block-cyclic
/// ownership proofs ([`crate::ownership`]) and determinism hazards
/// ([`crate::determinism`]). Every kind has a broken fixture in its
/// module and a stable `S###` code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// A cycle in the rendezvous wait-for graph: every rank on the
    /// cycle is blocked on the next — the schedule deadlocks.
    WaitCycle {
        /// The ranks on the cycle, in wait order.
        ranks: Vec<usize>,
    },
    /// A posted receive whose matching send exists nowhere in the
    /// remaining schedule: the receiver starves forever.
    OrphanReceiver {
        /// The starving rank.
        rank: usize,
    },
    /// A send no receiver ever consumes: under rendezvous semantics
    /// the sender blocks forever (and under buffering it leaks).
    UnmatchedSend {
        /// The blocked sender.
        rank: usize,
    },
    /// An operation executed by, or addressed to, a rank outside the
    /// live set — a schedule still routing through a dead rank after a
    /// patch remap, the exact hazard mid-run remapping introduces.
    DeadRankOp {
        /// The rank executing or addressed by the op.
        rank: usize,
    },
    /// A (block-row, block-col) of the trailing matrix that no live
    /// rank owns: its updates are silently dropped.
    OwnershipGap {
        /// Block row.
        i: usize,
        /// Block column.
        j: usize,
    },
    /// A block owned by more than one rank: both apply the update and
    /// the factorization diverges between owners.
    OwnershipOverlap {
        /// Block row.
        i: usize,
        /// Block column.
        j: usize,
    },
    /// A remap whose declared transfer volume disagrees with the
    /// ownership delta it actually performs — bytes redistributed out
    /// of the dead ranks must equal bytes absorbed by survivors.
    ConservationMismatch,
    /// Schedule-assembly code drawing entropy from outside the plan
    /// seed (wall clock, ambient RNG): replays stop being bit-identical.
    SeedBypass,
    /// Iteration over a hash-ordered container in schedule-assembly
    /// code: the traversal order varies per process, so any derived
    /// schedule or float accumulation varies with it.
    UnstableIterationOrder,
    /// A floating-point reduction over an unordered iterator: the
    /// combine order, and therefore the rounded result, is not fixed.
    UnorderedReduction,
}

impl SchedKind {
    /// Stable diagnostic code (`S2##` channel graph, `S3##` ownership,
    /// `S4##` determinism). Append-only, like [`LintKind::code`].
    pub fn code(&self) -> &'static str {
        match self {
            SchedKind::WaitCycle { .. } => "S201",
            SchedKind::OrphanReceiver { .. } => "S202",
            SchedKind::UnmatchedSend { .. } => "S203",
            SchedKind::DeadRankOp { .. } => "S204",
            SchedKind::OwnershipGap { .. } => "S301",
            SchedKind::OwnershipOverlap { .. } => "S302",
            SchedKind::ConservationMismatch => "S303",
            SchedKind::SeedBypass => "S401",
            SchedKind::UnstableIterationOrder => "S402",
            SchedKind::UnorderedReduction => "S403",
        }
    }

    /// Stable kebab-case name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedKind::WaitCycle { .. } => "wait-cycle",
            SchedKind::OrphanReceiver { .. } => "orphan-receiver",
            SchedKind::UnmatchedSend { .. } => "unmatched-send",
            SchedKind::DeadRankOp { .. } => "dead-rank-op",
            SchedKind::OwnershipGap { .. } => "ownership-gap",
            SchedKind::OwnershipOverlap { .. } => "ownership-overlap",
            SchedKind::ConservationMismatch => "conservation-mismatch",
            SchedKind::SeedBypass => "seed-bypass",
            SchedKind::UnstableIterationOrder => "unstable-iteration-order",
            SchedKind::UnorderedReduction => "unordered-reduction",
        }
    }

    /// Every schedule-family kind is an error: a flagged schedule must
    /// not run. (Audited benign occurrences of the determinism lints
    /// are suppressed at the site with `lint:allow` markers, not
    /// downgraded globally.)
    pub fn severity(&self) -> Severity {
        Severity::Error
    }

    /// Every name, for exhaustiveness checks in the gates.
    pub fn all_names() -> &'static [&'static str] {
        &[
            "wait-cycle",
            "orphan-receiver",
            "unmatched-send",
            "dead-rank-op",
            "ownership-gap",
            "ownership-overlap",
            "conservation-mismatch",
            "seed-bypass",
            "unstable-iteration-order",
            "unordered-reduction",
        ]
    }
}

/// One schedule-family finding: kind + site + context, rendered through
/// the same [`render_finding`] pipeline as kernel diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedDiagnostic {
    /// What was found.
    pub kind: SchedKind,
    /// Always `kind.severity()`.
    pub severity: Severity,
    /// Where: a schedule label + rank/op, an ownership cell, or a
    /// `file:line` for source-scan findings.
    pub site: String,
    /// Human explanation of this occurrence.
    pub message: String,
    /// Context excerpt: the offending op window, ownership neighborhood
    /// or source line, `>`-marked like the disasm excerpts.
    pub excerpt: String,
}

impl SchedDiagnostic {
    /// Builds a finding.
    pub fn new(
        kind: SchedKind,
        site: impl Into<String>,
        message: impl Into<String>,
        excerpt: impl Into<String>,
    ) -> Self {
        Self {
            severity: kind.severity(),
            kind,
            site: site.into(),
            message: message.into(),
            excerpt: excerpt.into(),
        }
    }

    /// Renders as a compiler-style multi-line message.
    pub fn render(&self) -> String {
        render_finding(
            self.severity,
            self.kind.code(),
            self.kind.name(),
            &self.message,
            &self.site,
            &self.excerpt,
        )
    }

    /// Renders as one flat JSON object for the `--json` gate output.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"kind\":\"{}\",\"severity\":\"{}\",\"site\":\"{}\",\"message\":\"{}\"}}",
            self.kind.code(),
            self.kind.name(),
            self.severity,
            json_escape(&self.site),
            json_escape(&self.message)
        )
    }
}

/// Disassembly excerpt around `at` with the offender marked.
fn excerpt(p: &Program, at: usize) -> String {
    let lo = at.saturating_sub(1);
    let hi = (at + 2).min(p.body.len());
    let mut out = String::new();
    for idx in lo..hi {
        let marker = if idx == at { '>' } else { ' ' };
        let pipe = if p.body[idx].is_vector() { 'U' } else { 'V' };
        out.push_str(&format!(
            "  {marker} {idx:>3} {pipe}  {}\n",
            instr_str(&p.body[idx])
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_knc::{Addr, Instr, Operand};

    #[test]
    fn diagnostic_renders_severity_kind_index_and_excerpt() {
        let mut p = Program::new();
        p.push(Instr::Load {
            dst: 31,
            addr: Addr::new(StreamId::B, 8, 0),
        });
        p.push(Instr::Fmadd {
            acc: 0,
            src: Operand::Reg(5),
            b: 31,
        });
        let d = Diagnostic::new(
            LintKind::UninitializedRead { reg: 5 },
            Region::Body,
            1,
            &p,
            "v5 read before any define".into(),
        );
        assert_eq!(d.severity, Severity::Error);
        let r = d.render();
        assert!(r.contains("error[K001:uninitialized-read]"), "{r}");
        assert!(r.contains("body instruction 1"), "{r}");
        assert!(r.contains(">   1 U  vfmadd231pd v0, v31, v5"), "{r}");
        assert!(r.contains("    0 U  vmovapd v31"), "{r}");
    }

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let kinds = [
            LintKind::UninitializedRead { reg: 0 },
            LintKind::DeadStore { reg: 0 },
            LintKind::AccumulatorClobber { reg: 0 },
            LintKind::UnpairedVpipe,
            LintKind::FillConflict { fills: 0, holes: 0 },
            LintKind::UnprefetchedStream {
                stream: StreamId::B,
            },
            LintKind::WritePortPressure,
            LintKind::Misaligned { align: 8 },
            LintKind::PartialLinePrefetch { scale: 1 },
            LintKind::ThreadOverlap { scale_thread: 1 },
            LintKind::DuplicateSharedPrefetch,
        ];
        let codes: Vec<&str> = kinds.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), LintKind::all_names().len());
        for (i, c) in codes.iter().enumerate() {
            assert!(c.starts_with('K'), "{c}");
            assert!(!codes[..i].contains(c), "duplicate code {c}");
        }
        assert_eq!(LintKind::UninitializedRead { reg: 0 }.code(), "K001");
    }

    #[test]
    fn severity_is_total_over_kinds() {
        assert_eq!(LintKind::all_names().len(), 11);
        assert!(LintKind::FillConflict { fills: 8, holes: 0 }.severity() == Severity::Warning);
        assert!(LintKind::Misaligned { align: 8 }.severity() == Severity::Error);
    }
}
