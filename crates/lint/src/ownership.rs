//! Block-cyclic ownership prover: exactly-once coverage and
//! conservation across recovery remaps.
//!
//! The simulators never materialize who owns which block — they use the
//! closed-form trailing counts on [`ProcessGrid`]. This pass builds the
//! explicit owner map those formulas summarize and proves, for every
//! grid shape a run can pass through:
//!
//! * **exactly-once** — each trailing block has one live owner: no
//!   gaps ([`SchedKind::OwnershipGap`], a lost block) and no overlaps
//!   ([`SchedKind::OwnershipOverlap`], two ranks updating the same
//!   panel);
//! * **conservation** — a patch remap moves exactly the dead rank's
//!   blocks and nothing else, and the element total matches the closed
//!   form [`PatchRemap::moved_trailing_elements`] the simulators charge
//!   for ([`SchedKind::ConservationMismatch`] otherwise).

use crate::diag::{SchedDiagnostic, SchedKind};
use phi_fabric::{PatchRemap, ProcessGrid};

/// Element extent of global block index `b` of an `n`-element dimension
/// tiled in `nb`-element blocks (the last block may be partial).
pub fn block_elems(b: usize, nb: usize, n: usize) -> f64 {
    nb.min(n.saturating_sub(b * nb)) as f64
}

/// Materialized owner map of an `nblocks × nblocks` block grid. Each
/// cell lists the ranks claiming it — exactly one for a correct
/// distribution; the checks below prove it.
#[derive(Clone, Debug)]
pub struct OwnershipMap {
    /// Blocks per dimension.
    pub nblocks: usize,
    /// Claimants of cell `(i, j)` at `i * nblocks + j`.
    pub owners: Vec<Vec<usize>>,
}

impl OwnershipMap {
    /// The HPL block-cyclic distribution: cell `(i, j)` belongs to the
    /// rank at grid coordinate `(i mod P, j mod Q)`.
    pub fn block_cyclic(grid: &ProcessGrid, nblocks: usize) -> Self {
        let mut owners = Vec::with_capacity(nblocks * nblocks);
        for i in 0..nblocks {
            for j in 0..nblocks {
                let p = grid.owner_row(i);
                let q = grid.owner_col(j);
                owners.push(vec![p * grid.q + q]);
            }
        }
        Self { nblocks, owners }
    }

    /// Claimants of cell `(i, j)`.
    pub fn owners(&self, i: usize, j: usize) -> &[usize] {
        &self.owners[i * self.nblocks + j]
    }

    /// Mutable claimant list of cell `(i, j)`.
    pub fn owners_mut(&mut self, i: usize, j: usize) -> &mut Vec<usize> {
        let n = self.nblocks;
        &mut self.owners[i * n + j]
    }

    /// Locality-preserving patch: every trailing cell
    /// (`first..nblocks` in both dimensions) owned by `dead_rank` is
    /// dealt to the `survivors` round-robin in row-major cell order.
    /// Cells outside the trailing window are already factored and stay
    /// put. Returns the number of cells moved.
    pub fn apply_patch(&mut self, dead_rank: usize, survivors: &[usize], first: usize) -> usize {
        assert!(!survivors.is_empty(), "no survivors to patch onto");
        let mut dealt = 0usize;
        for i in first..self.nblocks {
            for j in first..self.nblocks {
                let cell = self.owners_mut(i, j);
                if cell.contains(&dead_rank) {
                    cell.retain(|&r| r != dead_rank);
                    cell.push(survivors[dealt % survivors.len()]);
                    dealt += 1;
                }
            }
        }
        dealt
    }
}

/// Proves exactly-once live coverage of the trailing window
/// `first..nblocks` (both dimensions): each cell must have exactly one
/// owner, and that owner must be live (`live[rank]`, out-of-range ranks
/// are never live).
pub fn check_exactly_once(
    map: &OwnershipMap,
    first: usize,
    live: &[bool],
    label: &str,
) -> Vec<SchedDiagnostic> {
    let mut diags = Vec::new();
    for i in first..map.nblocks {
        for j in first..map.nblocks {
            let owners = map.owners(i, j);
            let site = format!("{label} block ({i},{j})");
            let excerpt = format!("  > owners of block ({i},{j}): {owners:?}\n");
            match owners {
                [] => diags.push(SchedDiagnostic::new(
                    SchedKind::OwnershipGap { i, j },
                    site,
                    format!("trailing block ({i},{j}) has no owner: its panel updates are lost"),
                    excerpt,
                )),
                [one] if live.get(*one) != Some(&true) => diags.push(SchedDiagnostic::new(
                    SchedKind::OwnershipGap { i, j },
                    site,
                    format!(
                        "trailing block ({i},{j}) is owned by rank {one}, which is not \
                         live: the remap left data on a dead rank"
                    ),
                    excerpt,
                )),
                [_] => {}
                many => diags.push(SchedDiagnostic::new(
                    SchedKind::OwnershipOverlap { i, j },
                    site,
                    format!(
                        "trailing block ({i},{j}) is claimed by {} ranks {many:?}: \
                         concurrent owners race on the trailing update",
                        many.len()
                    ),
                    excerpt,
                )),
            }
        }
    }
    diags
}

/// Proves a patch transition `before → after` conserves ownership: only
/// the dead rank's trailing cells change hands, and the element total
/// of the moved cells equals the closed form the simulators charge,
/// [`PatchRemap::moved_trailing_elements`]`(first, nblocks, nb, n)`.
pub fn check_patch_conservation(
    before: &OwnershipMap,
    after: &OwnershipMap,
    remap: &PatchRemap,
    first: usize,
    nb: usize,
    n: usize,
    label: &str,
) -> Vec<SchedDiagnostic> {
    let mut diags = Vec::new();
    let nblocks = before.nblocks;
    let dead_rank = remap.grid.rank(remap.dead);
    let mut moved_elems = 0.0f64;
    for i in first..nblocks {
        for j in first..nblocks {
            let (b, a) = (before.owners(i, j), after.owners(i, j));
            if b == a {
                continue;
            }
            if !b.contains(&dead_rank) {
                diags.push(SchedDiagnostic::new(
                    SchedKind::ConservationMismatch,
                    format!("{label} block ({i},{j})"),
                    format!(
                        "block ({i},{j}) moved from {b:?} to {a:?} although rank \
                         {dead_rank} is the only casualty: a patch must leave \
                         survivor blocks in place"
                    ),
                    format!("  > before {b:?}  after {a:?}\n"),
                ));
            }
            moved_elems += block_elems(i, nb, n) * block_elems(j, nb, n);
        }
    }
    let declared = remap.moved_trailing_elements(first, nblocks, nb, n);
    if (moved_elems - declared).abs() > 1e-6 * declared.max(1.0) {
        diags.push(SchedDiagnostic::new(
            SchedKind::ConservationMismatch,
            format!("{label} trailing window {first}..{nblocks}"),
            format!(
                "the remap moved {moved_elems:.0} elements but the closed form the \
                 simulators charge for declares {declared:.0}: recovery traffic is \
                 mispriced"
            ),
            format!("  > moved {moved_elems:.0} vs declared {declared:.0}\n"),
        ));
    }
    diags
}

/// A deliberately broken ownership scenario and its expected kind.
#[derive(Clone, Debug)]
pub struct BrokenOwnership {
    /// Short human name of the defect scenario.
    pub name: &'static str,
    /// `SchedKind::name()` of the expected diagnostic.
    pub expect: &'static str,
    /// Findings from running the checks on the broken map.
    pub diags: Vec<SchedDiagnostic>,
}

/// One broken fixture per ownership diagnostic kind, for the gate's
/// must-fail self-test.
pub fn broken_fixtures() -> Vec<BrokenOwnership> {
    let grid = ProcessGrid::new(2, 3);
    let live = vec![true; grid.size()];
    let nblocks = 6;

    // A dropped cell: some recovery forgot to re-home one block.
    let mut gap = OwnershipMap::block_cyclic(&grid, nblocks);
    gap.owners_mut(3, 4).clear();
    let gap_diags = check_exactly_once(&gap, 2, &live, "fixture: dropped block");

    // A double claim: two ranks both believe they own (2,2).
    let mut overlap = OwnershipMap::block_cyclic(&grid, nblocks);
    overlap.owners_mut(2, 2).push(5);
    let overlap_diags = check_exactly_once(&overlap, 2, &live, "fixture: double claim");

    // A sloppy patch that also moves a survivor's block: conservation
    // breaks both ways (a non-casualty cell changed hands, and the
    // element total no longer matches the closed form).
    let before = OwnershipMap::block_cyclic(&grid, nblocks);
    let remap = grid.patch_remap(1);
    let survivors: Vec<usize> = (0..grid.size()).filter(|&r| r != 1).collect();
    let mut after = before.clone();
    after.apply_patch(1, &survivors, 2);
    // Block (4,5) belongs to rank 2 — a survivor — yet moves anyway.
    let moved_cell = after.owners_mut(4, 5);
    moved_cell.clear();
    moved_cell.push(0);
    let cons_diags =
        check_patch_conservation(&before, &after, &remap, 2, 8, 44, "fixture: sloppy patch");

    vec![
        BrokenOwnership {
            name: "trailing block with no owner",
            expect: "ownership-gap",
            diags: gap_diags,
        },
        BrokenOwnership {
            name: "trailing block claimed twice",
            expect: "ownership-overlap",
            diags: overlap_diags,
        },
        BrokenOwnership {
            name: "patch that moves a survivor block",
            expect: "conservation-mismatch",
            diags: cons_diags,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_cyclic_is_exactly_once_on_any_grid() {
        for (p, q) in [(1usize, 1usize), (2, 3), (4, 8), (9, 11)] {
            let grid = ProcessGrid::new(p, q);
            let map = OwnershipMap::block_cyclic(&grid, 13);
            let live = vec![true; grid.size()];
            assert!(check_exactly_once(&map, 0, &live, "test").is_empty());
        }
    }

    #[test]
    fn patch_conserves_and_matches_the_closed_form() {
        let grid = ProcessGrid::new(4, 8);
        let (nblocks, nb, n) = (11usize, 1200usize, 12800usize);
        for dead in [0usize, 13, 31] {
            for first in [0usize, 3, 10] {
                let before = OwnershipMap::block_cyclic(&grid, nblocks);
                let remap = grid.patch_remap(dead);
                let survivors: Vec<usize> = (0..grid.size()).filter(|&r| r != dead).collect();
                let mut after = before.clone();
                after.apply_patch(dead, &survivors, first);
                let mut live = vec![true; grid.size()];
                live[dead] = false;
                assert!(check_exactly_once(&after, first, &live, "t").is_empty());
                let diags = check_patch_conservation(&before, &after, &remap, first, nb, n, "t");
                assert!(
                    diags.is_empty(),
                    "dead={dead} first={first}: {}",
                    diags[0].render()
                );
            }
        }
    }

    #[test]
    fn partial_edge_blocks_are_priced_element_exactly() {
        // n not a multiple of nb: the last block row/col is clipped.
        let grid = ProcessGrid::new(2, 3);
        let (nblocks, nb, n) = (5usize, 100usize, 460usize);
        let dead = 4; // owns the clipped last block row (4 % 2 == 0)? p=1,q=1.
        let before = OwnershipMap::block_cyclic(&grid, nblocks);
        let remap = grid.patch_remap(dead);
        let survivors: Vec<usize> = (0..grid.size()).filter(|&r| r != dead).collect();
        let mut after = before.clone();
        after.apply_patch(dead, &survivors, 1);
        assert!(check_patch_conservation(&before, &after, &remap, 1, nb, n, "t").is_empty());
    }

    #[test]
    fn every_broken_fixture_trips_its_expected_kind() {
        for f in broken_fixtures() {
            assert!(
                f.diags.iter().any(|d| d.kind.name() == f.expect),
                "{}: expected {}, got {:?}",
                f.name,
                f.expect,
                f.diags.iter().map(|d| d.kind.name()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn dead_owner_counts_as_a_gap() {
        let grid = ProcessGrid::new(2, 2);
        let map = OwnershipMap::block_cyclic(&grid, 4);
        let mut live = vec![true; 4];
        live[3] = false;
        let diags = check_exactly_once(&map, 0, &live, "t");
        assert!(!diags.is_empty());
        assert!(diags
            .iter()
            .all(|d| matches!(d.kind, SchedKind::OwnershipGap { .. })));
        assert!(diags[0].render().contains("error[S301:ownership-gap]"));
    }
}
