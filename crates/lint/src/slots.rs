//! Pass 2 — static issue-slot scheduling.
//!
//! Replays the emulator's issue rule symbolically: each *turn* (one cycle
//! of one hardware thread) walks the cyclic loop body issuing at most one
//! U-pipe (vector) and one V-pipe (prefetch/scalar) instruction, stopping
//! before a second of an already-issued kind. Because the body is
//! straight-line and cyclic, the turn sequence is eventually periodic in
//! the program counter; detecting that period yields exact steady-state
//! turns-per-iteration and the number of L1-port-free *holes* per
//! iteration — the two quantities the paper's Fig. 1c argument (and our
//! static cycle bound) is built on.

use crate::diag::{Diagnostic, LintKind, Region};
use phi_knc::Program;

/// Steady-state issue facts for one thread executing the loop body.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlotSummary {
    /// Issue turns (= cycles granted to this thread) per period.
    pub turns: usize,
    /// Loop iterations per period.
    pub iters: usize,
    /// Turns in the period whose issued instructions leave both L1 ports
    /// free — the holes prefetch fills can complete in.
    pub holes: usize,
}

impl SlotSummary {
    /// Turns (thread-cycles) per loop iteration.
    pub fn turns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.turns as f64 / self.iters as f64
        }
    }

    /// Port-free turns per loop iteration.
    pub fn holes_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.holes as f64 / self.iters as f64
        }
    }
}

/// Runs the issue-slot pass: returns the steady-state summary plus
/// [`LintKind::UnpairedVpipe`] diagnostics for V-pipe instructions that
/// start a turn no vector instruction joins.
pub fn analyze(body: &Program) -> (SlotSummary, Vec<Diagnostic>) {
    let n = body.body.len();
    if n == 0 {
        return (SlotSummary::default(), Vec::new());
    }
    let mut diags = Vec::new();
    let mut solo_reported = vec![false; n];

    // seen[pc] = (turn index, iterations completed, holes so far) at the
    // moment a turn started at `pc`.
    let mut seen: Vec<Option<(usize, usize, usize)>> = vec![None; n];
    let mut pc = 0usize;
    let mut iters = 0usize;
    let mut holes = 0usize;
    let mut summary = SlotSummary::default();

    // A turn starts at each pc at most once before the state repeats, so
    // n + 1 turns always suffice to find the period.
    for turn in 0..=n {
        if let Some((t0, i0, h0)) = seen[pc] {
            summary = SlotSummary {
                turns: turn - t0,
                iters: iters - i0,
                holes: holes - h0,
            };
            break;
        }
        seen[pc] = Some((turn, iters, holes));

        let turn_start = pc;
        let mut issued_u = false;
        let mut issued_v = false;
        let mut read = false;
        let mut write = false;
        loop {
            let instr = &body.body[pc];
            if instr.is_vector() {
                if issued_u {
                    break;
                }
                issued_u = true;
            } else {
                if issued_v {
                    break;
                }
                issued_v = true;
            }
            read |= instr.uses_l1_read_port();
            write |= instr.uses_l1_write_port();
            pc += 1;
            if pc == n {
                pc = 0;
                iters += 1;
            }
            if issued_u && issued_v {
                break;
            }
        }
        if !read && !write {
            holes += 1;
        }
        if issued_v && !issued_u && !solo_reported[turn_start] {
            solo_reported[turn_start] = true;
            diags.push(Diagnostic::new(
                LintKind::UnpairedVpipe,
                Region::Body,
                turn_start,
                body,
                "V-pipe instruction issues alone: no vector instruction shares its cycle, \
                 so the dual-issue slot is wasted"
                    .into(),
            ));
        }
    }
    (summary, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_blas::gemm::MicroKernelKind;
    use phi_knc::kernels::build_basic_kernel;
    use phi_knc::{Addr, Instr, StreamId};

    #[test]
    fn kernel1_takes_32_turns_with_no_holes() {
        let (body, _) = build_basic_kernel(MicroKernelKind::Kernel1);
        let (s, diags) = analyze(&body);
        assert!(diags.is_empty(), "{diags:?}");
        assert!((s.turns_per_iter() - 32.0).abs() < 1e-12, "{s:?}");
        assert_eq!(s.holes, 0, "{s:?}");
    }

    #[test]
    fn kernel2_takes_32_turns_with_4_holes() {
        let (body, _) = build_basic_kernel(MicroKernelKind::Kernel2);
        let (s, diags) = analyze(&body);
        assert!(diags.is_empty(), "{diags:?}");
        assert!((s.turns_per_iter() - 32.0).abs() < 1e-12, "{s:?}");
        assert!((s.holes_per_iter() - 4.0).abs() < 1e-12, "{s:?}");
    }

    #[test]
    fn adjacent_prefetches_cannot_pair() {
        let mut body = Program::new();
        body.push(Instr::PrefetchL1(Addr::new(StreamId::B, 8, 8)));
        body.push(Instr::PrefetchL1(Addr::new(StreamId::B, 8, 16)));
        body.push(Instr::Load {
            dst: 31,
            addr: Addr::new(StreamId::B, 8, 0),
        });
        let (s, diags) = analyze(&body);
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, LintKind::UnpairedVpipe)));
        // Turn 1: pf (solo, second pf blocks). Turn 2: pf + load.
        assert!((s.turns_per_iter() - 2.0).abs() < 1e-12, "{s:?}");
    }
}
