//! Deliberately-broken kernel programs, one per diagnostic kind.
//!
//! The gate (`tests/gate.rs` and the `lint` binary in `phi-bench`) runs
//! the analyzer over each fixture and requires the expected diagnostic to
//! fire — proving every lint is live, not just defined.

use phi_blas::gemm::MicroKernelKind;
use phi_knc::kernels::build_basic_kernel;
use phi_knc::{Addr, BcastMode, Instr, Operand, Program, StreamId};

/// One broken program and the diagnostic it must trip.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Short human name of the defect scenario.
    pub name: &'static str,
    /// `LintKind::name()` of the expected diagnostic.
    pub expect: &'static str,
    /// Loop body.
    pub body: Program,
    /// C-update epilogue.
    pub epilogue: Program,
}

fn b_load(dst: u8) -> Instr {
    Instr::Load {
        dst,
        addr: Addr::new(StreamId::B, 8, 0),
    }
}

fn a_fma(acc: u8, b: u8) -> Instr {
    Instr::Fmadd {
        acc,
        src: Operand::MemBcast(Addr::new(StreamId::A, 32, 0), BcastMode::OneToEight),
        b,
    }
}

fn pf_b() -> Instr {
    Instr::PrefetchL1(Addr::new(StreamId::B, 8, 8))
}

fn pf_a_split() -> Instr {
    Instr::PrefetchL1(Addr::new(StreamId::A, 32, 32).with_thread_scale(8))
}

fn prog(instrs: Vec<Instr>) -> Program {
    let mut p = Program::new();
    for i in instrs {
        p.push(i);
    }
    p
}

/// All fixtures: exactly one per [`crate::LintKind`] variant.
pub fn all() -> Vec<Fixture> {
    let mut out = vec![Fixture {
        name: "fma reads a register nothing defines",
        expect: "uninitialized-read",
        body: prog(vec![
            pf_b(),
            pf_a_split(),
            b_load(31),
            Instr::Fmadd {
                acc: 0,
                src: Operand::Reg(5),
                b: 31,
            },
        ]),
        epilogue: Program::new(),
    }];

    out.push(Fixture {
        name: "b row loaded twice before use",
        expect: "dead-store",
        body: prog(vec![
            pf_b(),
            pf_a_split(),
            b_load(31),
            b_load(31),
            a_fma(0, 31),
        ]),
        epilogue: prog(vec![Instr::Store {
            src: 0,
            addr: Addr::new(StreamId::C, 0, 0),
        }]),
    });

    out.push(Fixture {
        name: "stray load overwrites a live accumulator",
        expect: "accumulator-clobber",
        body: prog(vec![
            pf_b(),
            pf_a_split(),
            b_load(31),
            a_fma(0, 31),
            Instr::Load {
                dst: 0,
                addr: Addr::new(StreamId::B, 8, 0),
            },
        ]),
        epilogue: Program::new(),
    });

    out.push(Fixture {
        name: "back-to-back prefetches cannot co-issue",
        expect: "unpaired-vpipe",
        body: prog(vec![
            pf_b(),
            pf_a_split(),
            Instr::PrefetchL2(Addr::new(StreamId::B, 8, 16)),
            b_load(31),
            a_fma(0, 31),
        ]),
        epilogue: Program::new(),
    });

    out.push(Fixture {
        name: "Basic Kernel 1: every slot reads, fills have no holes",
        expect: "fill-conflict",
        body: build_basic_kernel(MicroKernelKind::Kernel1).0,
        epilogue: build_basic_kernel(MicroKernelKind::Kernel1).1,
    });

    out.push(Fixture {
        name: "a stream read with no vprefetch0 cover",
        expect: "unprefetched-stream",
        body: prog(vec![pf_b(), b_load(31), a_fma(0, 31)]),
        epilogue: Program::new(),
    });

    out.push(Fixture {
        name: "store inside the steady-state loop",
        expect: "write-port-pressure",
        body: prog(vec![
            pf_b(),
            pf_a_split(),
            b_load(31),
            a_fma(0, 31),
            Instr::Store {
                src: 0,
                addr: Addr::new(StreamId::C, 0, 0),
            },
        ]),
        epilogue: Program::new(),
    });

    out.push(Fixture {
        name: "vector load with a half-vector iteration stride",
        expect: "misaligned",
        body: prog(vec![
            pf_b(),
            pf_a_split(),
            Instr::Load {
                dst: 31,
                addr: Addr::new(StreamId::B, 4, 0),
            },
            a_fma(0, 31),
        ]),
        epilogue: Program::new(),
    });

    out.push(Fixture {
        name: "prefetch stepping by half a cache line",
        expect: "partial-line-prefetch",
        body: prog(vec![
            Instr::PrefetchL1(Addr::new(StreamId::B, 4, 8)),
            pf_a_split(),
            b_load(31),
            a_fma(0, 31),
        ]),
        epilogue: Program::new(),
    });

    out.push(Fixture {
        name: "thread split of the shared a tile by half a line",
        expect: "thread-overlap",
        body: prog(vec![
            pf_b(),
            Instr::PrefetchL1(Addr::new(StreamId::A, 32, 32).with_thread_scale(4)),
            b_load(31),
            a_fma(0, 31),
        ]),
        epilogue: Program::new(),
    });

    out.push(Fixture {
        name: "all four threads prefetch the same shared a line",
        expect: "duplicate-shared-prefetch",
        body: prog(vec![
            pf_b(),
            Instr::PrefetchL1(Addr::new(StreamId::A, 32, 32)),
            b_load(31),
            a_fma(0, 31),
        ]),
        epilogue: Program::new(),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintKind;

    #[test]
    fn fixtures_cover_every_kind_exactly_once() {
        let fixtures = all();
        let mut names: Vec<&str> = fixtures.iter().map(|f| f.expect).collect();
        names.sort_unstable();
        let mut expected: Vec<&str> = LintKind::all_names().to_vec();
        expected.sort_unstable();
        assert_eq!(names, expected);
    }

    #[test]
    fn every_fixture_trips_its_diagnostic() {
        for f in all() {
            let report = crate::analyze(&f.body, &f.epilogue);
            assert!(
                report.diags.iter().any(|d| d.kind.name() == f.expect),
                "fixture `{}` did not trip `{}`:\n{}",
                f.name,
                f.expect,
                report.render()
            );
        }
    }
}
