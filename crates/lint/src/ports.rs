//! Pass 3 — L1 port pressure and prefetch coverage.
//!
//! Resolves every symbolic address over a concrete window of loop
//! iterations (all hardware threads, stream bases at zero) and checks the
//! streaming discipline of Section III-A2: every demand-read cache line
//! must have been `vprefetch0`-ed in an *earlier* iteration, the shared
//! `A` stream must be prefetched cooperatively (split among threads, not
//! requested four times), and stores must stay out of the steady-state
//! body where they would occupy the L1 write port every cycle. The same
//! walk counts how many distinct L1 lines are filled per aggregate
//! iteration — the demand side of the Fig. 1c fills-vs-holes balance.

use std::collections::{HashMap, HashSet};

use crate::diag::{Diagnostic, LintKind, Region};
use phi_knc::isa::LINE_ELEMS;
use phi_knc::{Instr, Program, StreamId};

/// Iterations discarded before measuring (cold-start prefetch distance).
const WARMUP: usize = 8;
/// Steady-state iterations measured.
const WINDOW: usize = 24;

/// Steady-state L1 traffic facts.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortSummary {
    /// Distinct L1 lines filled by `vprefetch0` per aggregate iteration
    /// (all threads together).
    pub fills_per_iter: f64,
}

/// A cache line owned by one logical stream instance. The `A` stream is
/// shared by all threads (one base); `B`/`C` are private, so the thread
/// index is part of the key and equal element indices on different
/// threads do not collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct LineKey {
    stream: StreamId,
    thread: usize,
    line: usize,
}

fn key(stream: StreamId, thread: usize, elem: usize) -> LineKey {
    let thread = if stream == StreamId::A { 0 } else { thread };
    LineKey {
        stream,
        thread,
        line: elem / LINE_ELEMS,
    }
}

/// Demand-read addresses of one instruction.
fn demand_addrs(i: &Instr) -> Vec<phi_knc::Addr> {
    match i {
        Instr::Load { addr, .. } | Instr::Broadcast { addr, .. } => vec![*addr],
        Instr::Fmadd { src, .. } | Instr::Add { src, .. } | Instr::Mul { src, .. } => {
            src.addr().into_iter().collect()
        }
        _ => Vec::new(),
    }
}

/// Runs the port/prefetch pass over the loop body.
pub fn analyze(body: &Program, threads: usize) -> (PortSummary, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let total_iters = WARMUP + WINDOW;

    // --- Stores in the body steal the write port every iteration.
    for (at, i) in body.body.iter().enumerate() {
        if matches!(i, Instr::Store { .. }) {
            diags.push(Diagnostic::new(
                LintKind::WritePortPressure,
                Region::Body,
                at,
                body,
                "store in the loop body occupies the L1 write port every iteration; \
                 keep C in registers and store in the epilogue"
                    .into(),
            ));
        }
    }

    // --- Shared-stream prefetches must be split among threads.
    for (at, i) in body.body.iter().enumerate() {
        if let Instr::PrefetchL1(a) = i {
            if a.stream == StreamId::A && a.scale_thread == 0 && threads > 1 {
                diags.push(Diagnostic::new(
                    LintKind::DuplicateSharedPrefetch,
                    Region::Body,
                    at,
                    body,
                    format!(
                        "all {threads} threads prefetch the same shared-`a` line; \
                         add a per-thread stride so each thread brings in one of the \
                         column's lines"
                    ),
                ));
            }
        }
    }

    // --- Concrete walk: earliest prefetch iteration per line, then demand
    // coverage inside the steady window.
    let mut first_pf: HashMap<LineKey, usize> = HashMap::new();
    for iter in 0..total_iters {
        for t in 0..threads {
            for i in &body.body {
                if let Instr::PrefetchL1(a) = i {
                    let k = key(a.stream, t, a.resolve(iter, t, 0));
                    first_pf.entry(k).or_insert(iter);
                }
            }
        }
    }

    let fills_in_window = first_pf
        .values()
        .filter(|&&it| (WARMUP..total_iters).contains(&it))
        .count();
    let summary = PortSummary {
        fills_per_iter: fills_in_window as f64 / WINDOW as f64,
    };

    let mut uncovered_reported: HashSet<usize> = HashSet::new();
    for iter in WARMUP..total_iters {
        for t in 0..threads {
            for (at, i) in body.body.iter().enumerate() {
                for a in demand_addrs(i) {
                    let k = key(a.stream, t, a.resolve(iter, t, 0));
                    let covered = first_pf.get(&k).is_some_and(|&pf_iter| pf_iter < iter);
                    if !covered && uncovered_reported.insert(at) {
                        diags.push(Diagnostic::new(
                            LintKind::UnprefetchedStream { stream: a.stream },
                            Region::Body,
                            at,
                            body,
                            format!(
                                "steady-state read of stream {:?} (iteration {iter}, thread {t}) \
                                 hits a line no earlier `vprefetch0` covers: every such line is \
                                 a demand miss",
                                a.stream
                            ),
                        ));
                    }
                }
            }
        }
    }

    (summary, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_blas::gemm::MicroKernelKind;
    use phi_knc::kernels::build_basic_kernel;
    use phi_knc::{Addr, BcastMode, Operand};

    #[test]
    fn paper_kernels_are_fully_prefetched_with_8_fills() {
        for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
            let (body, _) = build_basic_kernel(kind);
            let (s, diags) = analyze(&body, 4);
            assert!(diags.is_empty(), "{kind:?}: {diags:?}");
            // 4 threads × 1 private b line + 4 cooperative a lines = 8.
            assert!((s.fills_per_iter - 8.0).abs() < 1e-9, "{kind:?}: {s:?}");
        }
    }

    #[test]
    fn missing_a_prefetch_is_reported() {
        let mut body = Program::new();
        body.push(Instr::PrefetchL1(Addr::new(StreamId::B, 8, 8)));
        body.push(Instr::Load {
            dst: 31,
            addr: Addr::new(StreamId::B, 8, 0),
        });
        body.push(Instr::Fmadd {
            acc: 0,
            src: Operand::MemBcast(Addr::new(StreamId::A, 32, 0), BcastMode::OneToEight),
            b: 31,
        });
        let (_, diags) = analyze(&body, 4);
        assert!(diags.iter().any(|d| matches!(
            d.kind,
            LintKind::UnprefetchedStream {
                stream: StreamId::A
            }
        )));
        assert!(!diags.iter().any(|d| matches!(
            d.kind,
            LintKind::UnprefetchedStream {
                stream: StreamId::B
            }
        )));
    }

    #[test]
    fn unsplit_shared_prefetch_is_reported() {
        let mut body = Program::new();
        body.push(Instr::PrefetchL1(Addr::new(StreamId::A, 32, 32)));
        body.push(Instr::Load {
            dst: 31,
            addr: Addr::new(StreamId::B, 8, 0),
        });
        let (_, diags) = analyze(&body, 4);
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, LintKind::DuplicateSharedPrefetch)));
    }

    #[test]
    fn body_store_is_reported() {
        let mut body = Program::new();
        body.push(Instr::Store {
            src: 0,
            addr: Addr::new(StreamId::C, 0, 0),
        });
        let (_, diags) = analyze(&body, 4);
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, LintKind::WritePortPressure)));
    }
}
