//! `phi-lint` — static kernel verifier and issue-slot analyzer.
//!
//! The paper's single-core argument (§III-A, Fig. 1–2) is *static*: Basic
//! Kernel 1 vs Kernel 2 are compared by counting issue slots, L1 port
//! occupancy, and prefetch-fill conflicts before a single cycle runs.
//! This crate turns that reasoning into four checked passes over a kernel
//! [`Program`]:
//!
//! 1. [`dataflow`] — def-use over the 32 vregs (uninitialized reads, dead
//!    stores, accumulator clobbers);
//! 2. [`slots`] — a static U/V-pipe pairing model yielding steady-state
//!    turns per iteration and port-free holes;
//! 3. [`ports`] — prefetch coverage, cooperative-split, and write-port
//!    lints plus the fills-per-iteration count;
//! 4. [`addrs`] — alignment, stride-vs-line, thread-overlap checks.
//!
//! [`analyze`] combines them into a [`Report`]: a diagnostic list plus a
//! [`StaticModel`] whose cycle lower bound is cross-checked against the
//! cycle-accurate emulator by the gate tests (`tests/gate.rs` and the
//! `lint` binary in `phi-bench`) — the static↔dynamic consistency gate.
//!
//! A second pass family verifies the *cluster* side of the paper — the
//! communication plans and data distributions of Section V — instead of
//! the kernel:
//!
//! 5. [`schedule`] — rendezvous-semantics execution of materialized
//!    send/recv programs ([`phi_fabric::schedule::CommSchedule`]):
//!    wait-cycle deadlocks, orphaned receivers, unmatched sends, and
//!    ops routed through dead ranks;
//! 6. [`ownership`] — a block-cyclic ownership prover: exactly-once
//!    live coverage and conservation across patch remaps,
//!    cross-checked against the closed forms the simulators charge;
//! 7. [`determinism`] — a source scan of the simulator/fault crates for
//!    seed bypasses, hash-order iteration, and unordered float
//!    reductions.
//!
//! Kernel findings carry stable `K###` codes, schedule findings `S###`
//! ([`diag::SchedKind::code`]); both render through the same
//! [`diag::render_finding`] shape and serialize to JSON for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addrs;
pub mod dataflow;
pub mod determinism;
pub mod diag;
pub mod fixtures;
pub mod ownership;
pub mod ports;
pub mod schedule;
pub mod slots;

pub use diag::{Diagnostic, LintKind, Region, SchedDiagnostic, SchedKind, Severity};
pub use ownership::OwnershipMap;

use phi_knc::pipeline::PipelineConfig;
use phi_knc::{Instr, Program};

pub use phi_knc::RooflineClass;

/// Analysis parameters (defaults mirror the emulator's machine model).
#[derive(Clone, Copy, Debug)]
pub struct LintConfig {
    /// Hardware threads sharing the core (the paper's kernels use 4).
    pub threads: usize,
    /// Pipeline timings the stall estimate is calibrated against.
    pub pipeline: PipelineConfig,
    /// Declared roofline class of the listing under analysis.
    ///
    /// The default, [`RooflineClass::ComputeBound`], keeps the historical
    /// behaviour: every wasted dual-issue slot and every unabsorbed
    /// prefetch fill is a finding, because a compute-bound kernel could
    /// have scheduled around them. Declaring
    /// [`RooflineClass::BandwidthBound`] tells the analyzer the kernel
    /// has zero register reuse by construction — every vector slot must
    /// read memory, so lone-`vprefetch` hole turns (K004) and the
    /// fills-vs-holes balance (K005) are the listing's *operating point*.
    /// Both stay priced in the [`StaticModel`]; they just stop being
    /// diagnostics.
    pub class: RooflineClass,
}

impl Default for LintConfig {
    fn default() -> Self {
        let pipeline = PipelineConfig::default();
        Self {
            threads: pipeline.threads_per_core,
            pipeline,
            class: RooflineClass::default(),
        }
    }
}

/// The analyzer's closed-form performance model of one kernel: everything
/// the paper derives from the listing alone, in one place.
#[derive(Clone, Copy, Debug)]
pub struct StaticModel {
    /// Vector (U-pipe) instructions per iteration.
    pub u_slots: usize,
    /// Vector multiply-adds among them.
    pub fmadds: usize,
    /// Hardware threads sharing the core.
    pub threads: usize,
    /// Issue turns per `iters` loop iterations (one thread).
    pub turns: usize,
    /// Loop iterations covered by `turns`.
    pub iters: usize,
    /// L1-port-free turns per `iters` iterations (one thread).
    pub holes: usize,
    /// Distinct L1 lines filled by `vprefetch0` per aggregate iteration
    /// (all threads).
    pub fills_per_iter: f64,
    /// Stall charged when a deferred fill is forced through (Fig. 1c).
    pub fill_stall_cycles: u64,
}

impl StaticModel {
    /// Instruction-mix bound: FMAs / vector slots — exactly 31/32 for
    /// Basic Kernel 1 and 30/32 for Basic Kernel 2.
    pub fn theoretical_efficiency(&self) -> f64 {
        if self.u_slots == 0 {
            0.0
        } else {
            self.fmadds as f64 / self.u_slots as f64
        }
    }

    /// Issue turns per iteration for one thread.
    pub fn turns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.turns as f64 / self.iters as f64
        }
    }

    /// Port-free cycles per aggregate iteration (all threads).
    pub fn holes_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.threads as f64 * self.holes as f64 / self.iters as f64
        }
    }

    /// Fills that cannot land in holes, per aggregate iteration.
    fn fill_deficit(&self) -> f64 {
        (self.fills_per_iter - self.holes_per_iter()).max(0.0)
    }

    /// Extra cycles per aggregate iteration lost to forced fill stalls.
    ///
    /// Each forced stall costs `fill_stall_cycles` but also opens that
    /// many port-free cycles, so one stall event retires `1 +
    /// fill_stall_cycles` deferred fills from the backlog.
    pub fn stall_cycles_per_iter(&self) -> f64 {
        let events = self.fill_deficit() / (1.0 + self.fill_stall_cycles as f64);
        events * self.fill_stall_cycles as f64
    }

    /// Static lower bound on steady-state cycles per aggregate iteration:
    /// every thread's turns, plus the fill-stall tax.
    pub fn cycles_per_iter_lower_bound(&self) -> f64 {
        self.threads as f64 * self.turns_per_iter() + self.stall_cycles_per_iter()
    }

    /// Steady-state FMA-efficiency bound implied by the cycle bound.
    pub fn steady_efficiency_bound(&self) -> f64 {
        let c = self.cycles_per_iter_lower_bound();
        if c == 0.0 {
            0.0
        } else {
            (self.threads * self.fmadds) as f64 / c
        }
    }
}

/// Result of analyzing one kernel.
#[derive(Clone, Debug)]
pub struct Report {
    /// All findings, in pass order.
    pub diags: Vec<Diagnostic>,
    /// The static performance model.
    pub model: StaticModel,
}

impl Report {
    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// True when any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Renders the model summary followed by every diagnostic.
    pub fn render(&self) -> String {
        let m = &self.model;
        let mut out = format!(
            "slots: {}/{} fmadd ({:.1}% theoretical) | turns/iter {:.2} | \
             holes/iter {:.1} | fills/iter {:.1} | cycle LB {:.2}/iter \
             ({:.1}% steady bound)\n",
            m.fmadds,
            m.u_slots,
            100.0 * m.theoretical_efficiency(),
            m.turns_per_iter(),
            m.holes_per_iter(),
            m.fills_per_iter,
            m.cycles_per_iter_lower_bound(),
            100.0 * m.steady_efficiency_bound(),
        );
        if self.diags.is_empty() {
            out.push_str("clean: no findings\n");
        }
        for d in &self.diags {
            out.push_str(&d.render());
        }
        out
    }
}

/// Analyzes a kernel with the default machine model.
pub fn analyze(body: &Program, epilogue: &Program) -> Report {
    analyze_with(&LintConfig::default(), body, epilogue)
}

/// Analyzes a kernel: runs all four passes and assembles the static
/// performance model.
pub fn analyze_with(cfg: &LintConfig, body: &Program, epilogue: &Program) -> Report {
    let mut diags = dataflow::check(body, epilogue);
    let (slot, slot_diags) = slots::analyze(body);
    diags.extend(slot_diags);
    let (port, port_diags) = ports::analyze(body, cfg.threads);
    diags.extend(port_diags);
    diags.extend(addrs::check(body, epilogue));

    // A declared bandwidth-bound listing reserves lone-`vprefetch` turns
    // as deliberate fill holes — with zero register reuse there is no
    // vector instruction free of the L1 port to pair them with. The
    // wasted slot is the class's operating point, not a finding.
    if cfg.class == RooflineClass::BandwidthBound {
        diags.retain(|d| {
            !(matches!(d.kind, LintKind::UnpairedVpipe)
                && d.region == Region::Body
                && matches!(
                    body.body.get(d.at),
                    Some(Instr::PrefetchL1(_) | Instr::PrefetchL2(_))
                ))
        });
    }

    let model = StaticModel {
        u_slots: body.vector_count(),
        fmadds: body.fmadd_count(),
        threads: cfg.threads,
        turns: slot.turns,
        iters: slot.iters,
        holes: slot.holes,
        fills_per_iter: port.fills_per_iter,
        fill_stall_cycles: cfg.pipeline.fill_stall_cycles,
    };

    // The Fig. 1c conflict: more fills arrive per iteration than there
    // are port-free holes to absorb them — Basic Kernel 1's fate. For a
    // bandwidth-bound listing the deficit is priced into the cycle bound
    // instead of flagged: the memory system pacing the loop is the
    // declared design, not a scheduling defect.
    if cfg.class == RooflineClass::ComputeBound && model.fill_deficit() > 1e-9 {
        let at = body
            .body
            .iter()
            .position(|i| matches!(i, Instr::PrefetchL1(_)))
            .unwrap_or(0);
        diags.push(Diagnostic::new(
            LintKind::FillConflict {
                fills: model.fills_per_iter.round() as usize,
                holes: model.holes_per_iter().round() as usize,
            },
            Region::Body,
            at,
            body,
            format!(
                "{:.0} prefetch fills arrive per iteration but only {:.0} port-free \
                 holes exist to absorb them: deferred fills will force ~{:.2} stall \
                 cycles per iteration",
                model.fills_per_iter,
                model.holes_per_iter(),
                model.stall_cycles_per_iter()
            ),
        ));
    }

    Report { diags, model }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_blas::gemm::MicroKernelKind;
    use phi_knc::kernels::build_basic_kernel;

    #[test]
    fn kernel1_model_reproduces_the_paper() {
        let (body, epi) = build_basic_kernel(MicroKernelKind::Kernel1);
        let r = analyze(&body, &epi);
        assert!(!r.has_errors(), "{}", r.render());
        assert!((r.model.theoretical_efficiency() - 31.0 / 32.0).abs() < 1e-12);
        // Port-bound: the fill conflict is flagged and priced in.
        assert!(r
            .diags
            .iter()
            .any(|d| matches!(d.kind, LintKind::FillConflict { fills: 8, holes: 0 })));
        assert!(r.model.cycles_per_iter_lower_bound() > 128.0);
    }

    #[test]
    fn kernel2_model_is_conflict_free() {
        let (body, epi) = build_basic_kernel(MicroKernelKind::Kernel2);
        let r = analyze(&body, &epi);
        assert!(r.diags.is_empty(), "{}", r.render());
        assert!((r.model.theoretical_efficiency() - 30.0 / 32.0).abs() < 1e-12);
        assert!((r.model.cycles_per_iter_lower_bound() - 128.0).abs() < 1e-9);
        assert!((r.model.steady_efficiency_bound() - 30.0 / 32.0).abs() < 1e-9);
    }

    fn bandwidth_cfg() -> LintConfig {
        LintConfig {
            class: RooflineClass::BandwidthBound,
            ..LintConfig::default()
        }
    }

    #[test]
    fn spmv_listing_is_clean_and_bandwidth_shaped() {
        // The performance-lab SpMV body balances its two L1 fills against
        // two lone-vprefetch1 holes. Under its declared class the
        // analyzer finds nothing, and fills match holes exactly.
        let (body, epi) = phi_knc::spmv::spmv_listing();
        let r = analyze_with(&bandwidth_cfg(), &body, &epi);
        assert!(r.diags.is_empty(), "{}", r.render());
        assert!((r.model.fills_per_iter - r.model.holes_per_iter()).abs() < 1e-9);
    }

    #[test]
    fn stencil_listing_is_clean_and_bandwidth_shaped() {
        let (body, epi) = phi_knc::stencil::stencil_listing();
        let r = analyze_with(&bandwidth_cfg(), &body, &epi);
        assert!(r.diags.is_empty(), "{}", r.render());
        assert!(r.model.fills_per_iter <= r.model.holes_per_iter() + 1e-9);
    }

    #[test]
    fn default_class_still_flags_hole_turns_as_unpaired() {
        // The class knob only relaxes what is *declared*: under the
        // compute-bound default the same SpMV listing keeps its two K004
        // findings, so existing kernels see bit-identical analysis.
        let (body, epi) = phi_knc::spmv::spmv_listing();
        let r = analyze(&body, &epi);
        let k004 = r
            .diags
            .iter()
            .filter(|d| matches!(d.kind, LintKind::UnpairedVpipe))
            .count();
        assert_eq!(k004, 2, "{}", r.render());
    }

    #[test]
    fn bandwidth_class_does_not_suppress_real_findings() {
        // A bandwidth-bound declaration must not blanket-silence K004:
        // only lone *prefetches* are the hole idiom. A lone scalar op
        // still wastes its dual-issue slot for real.
        let mut body = Program::new();
        body.push(Instr::ScalarOp);
        body.push(Instr::ScalarOp);
        let epi = Program::new();
        let r = analyze_with(&bandwidth_cfg(), &body, &epi);
        assert!(
            r.diags
                .iter()
                .any(|d| matches!(d.kind, LintKind::UnpairedVpipe)),
            "{}",
            r.render()
        );
    }

    #[test]
    fn kernel2_bound_beats_kernel1_bound() {
        // The heart of the paper, derived statically: Kernel 1's higher
        // instruction-mix efficiency loses once stalls are priced in.
        let (b1, e1) = build_basic_kernel(MicroKernelKind::Kernel1);
        let (b2, e2) = build_basic_kernel(MicroKernelKind::Kernel2);
        let r1 = analyze(&b1, &e1);
        let r2 = analyze(&b2, &e2);
        assert!(r1.model.theoretical_efficiency() > r2.model.theoretical_efficiency());
        assert!(r2.model.steady_efficiency_bound() > r1.model.steady_efficiency_bound());
    }

    #[test]
    fn report_renders_model_line_and_diags() {
        let (body, epi) = build_basic_kernel(MicroKernelKind::Kernel1);
        let r = analyze(&body, &epi);
        let text = r.render();
        assert!(text.contains("31/32"), "{text}");
        assert!(text.contains("warning[K005:fill-conflict]"), "{text}");
    }
}
