//! Pass 1 — def-use dataflow over the 32 vector registers.
//!
//! The kernel convention (Fig. 2): accumulators live across iterations
//! (read-modify-write FMAs against the zeroed live-in register file),
//! every other register must be fully defined before a pure read, and a
//! full define must reach a reader. Three diagnostics fall out:
//!
//! * [`LintKind::UninitializedRead`] — a pure source read before any
//!   define in first-iteration order;
//! * [`LintKind::DeadStore`] — a full define overwritten (cyclically,
//!   because the body loops) before any use;
//! * [`LintKind::AccumulatorClobber`] — a full define of a register that
//!   carries partial sums across iterations.

use crate::diag::{Diagnostic, LintKind, Region};
use phi_knc::isa::NUM_VREGS;
use phi_knc::{Instr, Operand, Program};

/// Register effects of one instruction.
#[derive(Clone, Copy, Debug, Default)]
struct Effects {
    /// Pure source reads (up to two: `b` and a register/swizzle operand).
    uses: [Option<u8>; 2],
    /// Read-modify-write target (FMA accumulator, `Add`/`Mul` dst).
    rmw: Option<u8>,
    /// Full define (load / broadcast destination).
    def: Option<u8>,
}

fn operand_reg(op: &Operand) -> Option<u8> {
    match op {
        Operand::Reg(r) | Operand::Swizzle(r, _) => Some(*r),
        Operand::Mem(_) | Operand::MemBcast(_, _) => None,
    }
}

fn effects(i: &Instr) -> Effects {
    let mut e = Effects::default();
    match i {
        Instr::Fmadd { acc, src, b } => {
            e.uses = [Some(*b), operand_reg(src)];
            e.rmw = Some(*acc);
        }
        Instr::Load { dst, .. } | Instr::Broadcast { dst, .. } => e.def = Some(*dst),
        Instr::Store { src, .. } => e.uses[0] = Some(*src),
        Instr::Add { dst, src } | Instr::Mul { dst, src } => {
            e.uses[0] = operand_reg(src);
            e.rmw = Some(*dst);
        }
        Instr::PrefetchL1(_) | Instr::PrefetchL2(_) | Instr::ScalarOp => {}
    }
    e
}

fn reads(e: &Effects, r: u8) -> bool {
    e.uses.iter().flatten().any(|&u| u == r) || e.rmw == Some(r)
}

/// Runs the dataflow pass over `body` + `epilogue`.
pub fn check(body: &Program, epilogue: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let body_fx: Vec<Effects> = body.body.iter().map(effects).collect();
    let epi_fx: Vec<Effects> = epilogue.body.iter().map(effects).collect();

    // --- Uninitialized reads: first-iteration order through body, then
    // epilogue. RMW targets count as defined afterwards (the zeroed
    // live-in accumulator convention).
    let mut defined = [false; NUM_VREGS];
    let ever_defined: Vec<u8> = (0..NUM_VREGS as u8)
        .filter(|&r| {
            body_fx
                .iter()
                .chain(&epi_fx)
                .any(|e| e.def == Some(r) || e.rmw == Some(r))
        })
        .collect();
    for (region, prog, fx) in [
        (Region::Body, body, &body_fx),
        (Region::Epilogue, epilogue, &epi_fx),
    ] {
        for (at, e) in fx.iter().enumerate() {
            for &r in e.uses.iter().flatten() {
                if !defined[r as usize] {
                    let later = ever_defined.contains(&r);
                    let why = if later {
                        "defined only later in the loop, so iteration 0 reads the zeroed live-in"
                    } else {
                        "never defined anywhere in the program"
                    };
                    diags.push(Diagnostic::new(
                        LintKind::UninitializedRead { reg: r },
                        region,
                        at,
                        prog,
                        format!("v{r} is read as a pure source but {why}"),
                    ));
                    defined[r as usize] = true; // report each register once
                }
            }
            if let Some(r) = e.rmw {
                defined[r as usize] = true;
            }
            if let Some(r) = e.def {
                defined[r as usize] = true;
            }
        }
    }

    // --- Accumulator clobbers: a register RMW'd anywhere in the body
    // carries sums across iterations; a full define of it in the body
    // resets those sums every iteration.
    let acc: Vec<u8> = (0..NUM_VREGS as u8)
        .filter(|&r| body_fx.iter().any(|e| e.rmw == Some(r)))
        .collect();
    for (at, e) in body_fx.iter().enumerate() {
        if let Some(r) = e.def {
            if acc.contains(&r) {
                diags.push(Diagnostic::new(
                    LintKind::AccumulatorClobber { reg: r },
                    Region::Body,
                    at,
                    body,
                    format!("v{r} accumulates across iterations but is fully overwritten here"),
                ));
            }
        }
    }

    // --- Dead stores in the body (cyclic: the next iteration's
    // instructions follow the current one's).
    let n = body_fx.len();
    for (at, e) in body_fx.iter().enumerate() {
        let Some(r) = e.def else { continue };
        let mut verdict = None; // None = no event in a full cycle
        for step in 1..=n.max(1) {
            let j = (at + step) % n.max(1);
            if step < n && reads(&body_fx[j], r) {
                verdict = Some(true);
                break;
            }
            if step < n && body_fx[j].def == Some(r) {
                verdict = Some(false);
                break;
            }
            if step == n {
                // Wrapped all the way: the define at `at` itself is next.
                verdict = Some(false);
            }
        }
        let live = verdict.unwrap_or(true);
        // A value only the epilogue consumes is live-out of the loop.
        let epi_live = epi_fx.iter().any(|e| reads(e, r));
        if !live && !epi_live {
            diags.push(Diagnostic::new(
                LintKind::DeadStore { reg: r },
                Region::Body,
                at,
                body,
                format!("v{r} is overwritten before any instruction reads it"),
            ));
        }
    }
    // --- Dead stores in the epilogue (straight-line).
    for (at, e) in epi_fx.iter().enumerate() {
        let Some(r) = e.def else { continue };
        let mut dead = false;
        for later in &epi_fx[at + 1..] {
            if reads(later, r) {
                break;
            }
            if later.def == Some(r) {
                dead = true;
                break;
            }
        }
        if dead {
            diags.push(Diagnostic::new(
                LintKind::DeadStore { reg: r },
                Region::Epilogue,
                at,
                epilogue,
                format!("v{r} is overwritten before any instruction reads it"),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_knc::{Addr, BcastMode, StreamId};

    fn b_load(dst: u8) -> Instr {
        Instr::Load {
            dst,
            addr: Addr::new(StreamId::B, 8, 0),
        }
    }

    fn a_fma(acc: u8, b: u8) -> Instr {
        Instr::Fmadd {
            acc,
            src: Operand::MemBcast(Addr::new(StreamId::A, 32, 0), BcastMode::OneToEight),
            b,
        }
    }

    #[test]
    fn clean_accumulator_loop_has_no_findings() {
        let mut body = Program::new();
        body.push(b_load(31));
        body.push(a_fma(0, 31));
        let mut epi = Program::new();
        epi.push(Instr::Store {
            src: 0,
            addr: Addr::new(StreamId::C, 0, 0),
        });
        assert!(check(&body, &epi).is_empty());
    }

    #[test]
    fn use_before_loop_carried_def_is_reported() {
        // The b row is loaded *after* the FMA that consumes it: iteration
        // 0 multiplies by the zeroed live-in register.
        let mut body = Program::new();
        body.push(a_fma(0, 31));
        body.push(b_load(31));
        let ds = check(&body, &Program::new());
        assert!(ds.iter().any(
            |d| matches!(d.kind, LintKind::UninitializedRead { reg: 31 })
                && d.message.contains("later in the loop")
        ));
    }

    #[test]
    fn never_defined_read_is_reported_once() {
        let mut body = Program::new();
        body.push(a_fma(0, 29));
        body.push(a_fma(1, 29));
        let ds = check(&body, &Program::new());
        let hits: Vec<_> = ds
            .iter()
            .filter(|d| matches!(d.kind, LintKind::UninitializedRead { reg: 29 }))
            .collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("never defined"));
    }

    #[test]
    fn double_load_is_a_dead_store() {
        let mut body = Program::new();
        body.push(b_load(31));
        body.push(b_load(31));
        body.push(a_fma(0, 31));
        let ds = check(&body, &Program::new());
        let dead: Vec<_> = ds
            .iter()
            .filter(|d| matches!(d.kind, LintKind::DeadStore { reg: 31 }))
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].at, 0, "the first load is the dead one");
    }

    #[test]
    fn loop_carried_value_consumed_only_by_epilogue_is_live() {
        let mut body = Program::new();
        body.push(b_load(31));
        body.push(a_fma(0, 31));
        body.push(b_load(29)); // never read in the body...
        let mut epi = Program::new();
        epi.push(Instr::Store {
            src: 29, // ...but stored by the epilogue
            addr: Addr::new(StreamId::C, 0, 0),
        });
        assert!(check(&body, &epi).is_empty());
    }

    #[test]
    fn accumulator_clobber_is_reported() {
        let mut body = Program::new();
        body.push(b_load(31));
        body.push(a_fma(0, 31));
        body.push(b_load(0)); // clobbers the partial sums in v0
        let ds = check(&body, &Program::new());
        assert!(ds
            .iter()
            .any(|d| matches!(d.kind, LintKind::AccumulatorClobber { reg: 0 }) && d.at == 2));
    }
}
