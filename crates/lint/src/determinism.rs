//! Determinism lint over the simulator and fault-injection sources.
//!
//! Every run in this workspace must replay bit-for-bit from its seed —
//! the perf gate, the Monte Carlo campaigns, and the fault cascades all
//! depend on it. This pass scans source text for the three constructs
//! that silently break that contract:
//!
//! * **seed bypass** ([`SchedKind::SeedBypass`]) — entropy or wall
//!   clock flowing into results (`Instant::now`, `SystemTime::now`,
//!   `thread_rng`, `RandomState`, …) instead of the seeded generator;
//! * **unstable iteration order** ([`SchedKind::UnstableIterationOrder`])
//!   — `HashMap`/`HashSet`, whose iteration order varies per process
//!   and so reorders any computation folded over them;
//! * **unordered reduction** ([`SchedKind::UnorderedReduction`]) — a
//!   float sum/fold driven directly from an unordered source, where
//!   reassociation changes the rounded result.
//!
//! Findings are suppressed with a `lint:allow(<kind>)` marker on the
//! same or the preceding line — the reviewed escape hatch for benign
//! uses (membership-only sets, wall clock in progress reporting).
//! Scanning stops at `#[cfg(test)]`: tests may use whatever they like.

use crate::diag::{SchedDiagnostic, SchedKind};

/// Substrings whose presence on a live source line means entropy or
/// wall clock can reach results.
const SEED_BYPASS: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "rand::random",
    "from_entropy",
    "RandomState",
];

/// Hash-order containers: iteration order is per-process arbitrary.
const UNSTABLE_ORDER: &[&str] = &["HashMap", "HashSet"];

/// Unordered sources feeding a reduction on the same line.
const UNORDERED_SOURCES: &[&str] = &[".values()", ".keys()", ".par_iter(", ".par_bridge("];
/// Reduction shapes whose float result depends on operand order.
const REDUCTIONS: &[&str] = &[
    ".sum::<f64>",
    ".sum::<f32>",
    ".sum()",
    ".product(",
    ".fold(",
];

/// True when `line` (or the previous line) carries an allow marker for
/// `kind_name`.
fn allowed(kind_name: &str, line: &str, prev: Option<&str>) -> bool {
    let marker = format!("lint:allow({kind_name})");
    line.contains(&marker) || prev.is_some_and(|p| p.contains(&marker))
}

/// True for comment-only lines, which never execute.
fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
}

/// Scans one source file's text. `name` labels the findings' sites
/// (`name:line`). Scanning stops at the first `#[cfg(test)]` line —
/// in this workspace tests sit at the bottom of each file.
pub fn scan_source(name: &str, text: &str) -> Vec<SchedDiagnostic> {
    let mut diags = Vec::new();
    let mut prev: Option<&str> = None;
    for (idx, line) in text.lines().enumerate() {
        if line.trim() == "#[cfg(test)]" {
            break;
        }
        if is_comment(line) {
            prev = Some(line);
            continue;
        }
        let lineno = idx + 1;
        let site = format!("{name}:{lineno}");
        let excerpt = format!("  > {lineno:>4}  {}\n", line.trim());

        if let Some(tok) = SEED_BYPASS.iter().find(|t| line.contains(**t)) {
            if !allowed("seed-bypass", line, prev) {
                diags.push(SchedDiagnostic::new(
                    SchedKind::SeedBypass,
                    site.clone(),
                    format!(
                        "`{tok}` injects entropy or wall clock outside the seeded \
                         generator: runs stop replaying bit-for-bit"
                    ),
                    excerpt.clone(),
                ));
            }
        }
        if let Some(tok) = UNSTABLE_ORDER.iter().find(|t| line.contains(**t)) {
            if !allowed("unstable-iteration-order", line, prev) {
                diags.push(SchedDiagnostic::new(
                    SchedKind::UnstableIterationOrder,
                    site.clone(),
                    format!(
                        "`{tok}` iterates in per-process arbitrary order: any fold \
                         over it is nondeterministic — use BTreeMap/BTreeSet or a \
                         sorted Vec, or mark membership-only uses with \
                         lint:allow(unstable-iteration-order)"
                    ),
                    excerpt.clone(),
                ));
            }
        }
        let unordered = UNORDERED_SOURCES.iter().find(|t| line.contains(**t));
        let reduces = REDUCTIONS.iter().any(|t| line.contains(*t));
        if let (Some(src), true) = (unordered, reduces) {
            if !allowed("unordered-reduction", line, prev) {
                diags.push(SchedDiagnostic::new(
                    SchedKind::UnorderedReduction,
                    site,
                    format!(
                        "float reduction driven from `{src}`: summation order is \
                         unspecified and reassociation changes the rounded result"
                    ),
                    excerpt,
                ));
            }
        }
        prev = Some(line);
    }
    diags
}

/// The simulator/fault crates this pass guards, relative to the
/// workspace root. `phi-lint` and `phi-bench` themselves are exempt
/// (they are the measuring devices, not the experiment).
pub const SCAN_ROOTS: &[&str] = &[
    "crates/faults/src",
    "crates/core/src",
    "crates/sched/src",
    "crates/des/src",
    "crates/fabric/src",
    "crates/tune/src",
    "crates/serve/src",
];

/// Recursively scans every `.rs` file under `root` (a directory), in
/// sorted path order for stable output. Returns `(files_scanned,
/// findings)`.
pub fn scan_dir(root: &std::path::Path) -> std::io::Result<(usize, Vec<SchedDiagnostic>)> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        let name = path.to_string_lossy().into_owned();
        diags.extend(scan_source(&name, &text));
    }
    Ok((files.len(), diags))
}

fn collect_rs_files(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A deliberately hazardous source snippet and its expected kind.
#[derive(Clone, Debug)]
pub struct BrokenSource {
    /// Short human name of the defect scenario.
    pub name: &'static str,
    /// `SchedKind::name()` of the expected diagnostic.
    pub expect: &'static str,
    /// Findings from scanning the snippet.
    pub diags: Vec<SchedDiagnostic>,
}

/// One hazardous snippet per determinism diagnostic kind, for the
/// gate's must-fail self-test.
pub fn broken_fixtures() -> Vec<BrokenSource> {
    let bypass = "fn jitter() -> u64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n";
    let order = "fn tally(m: &std::collections::HashMap<u32, f64>) {\n    for (k, v) in m.iter() { record(*k, *v); }\n}\n";
    let reduce = "fn total(m: &Map) -> f64 {\n    m.values().sum::<f64>()\n}\n";
    vec![
        BrokenSource {
            name: "wall clock feeding a result",
            expect: "seed-bypass",
            diags: scan_source("fixture/jitter.rs", bypass),
        },
        BrokenSource {
            name: "iteration over a hash map",
            expect: "unstable-iteration-order",
            diags: scan_source("fixture/tally.rs", order),
        },
        BrokenSource {
            name: "float sum over unordered values",
            expect: "unordered-reduction",
            diags: scan_source("fixture/total.rs", reduce),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_broken_fixture_trips_its_expected_kind() {
        for f in broken_fixtures() {
            assert!(
                f.diags.iter().any(|d| d.kind.name() == f.expect),
                "{}: expected {}, got {:?}",
                f.name,
                f.expect,
                f.diags.iter().map(|d| d.kind.name()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn allow_markers_suppress_on_same_or_previous_line() {
        let same = "let t = Instant::now(); // lint:allow(seed-bypass): progress only\n";
        assert!(scan_source("t.rs", same).is_empty());
        let prev = "// lint:allow(seed-bypass): progress only\nlet t = Instant::now();\n";
        assert!(scan_source("t.rs", prev).is_empty());
        let wrong = "// lint:allow(unstable-iteration-order)\nlet t = Instant::now();\n";
        assert_eq!(scan_source("t.rs", wrong).len(), 1);
    }

    #[test]
    fn comments_and_test_modules_are_skipped() {
        let comment = "// Instant::now() would be wrong here\nlet x = 1;\n";
        assert!(scan_source("t.rs", comment).is_empty());
        let test_mod =
            "let x = 1;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(scan_source("t.rs", test_mod).is_empty());
    }

    #[test]
    fn sites_carry_file_and_line() {
        let d = &scan_source(
            "crates/x/src/y.rs",
            "let h: HashSet<u32> = HashSet::new();\n",
        )[0];
        assert_eq!(d.site, "crates/x/src/y.rs:1");
        assert!(d.render().contains("error[S402:unstable-iteration-order]"));
    }

    #[test]
    fn reduction_needs_both_source_and_fold() {
        assert!(scan_source("t.rs", "let s: f64 = v.iter().sum();\n").is_empty());
        assert_eq!(
            scan_source("t.rs", "let s: f64 = m.values().sum();\n").len(),
            1
        );
    }
}
