//! Pass 4 — address lints: alignment, stride-vs-line-size, and
//! thread-offset overlap.
//!
//! All checks are purely symbolic on [`Addr`]: an address is aligned for
//! *every* (iteration, thread) pair iff its offset and both strides are
//! multiples of the required alignment (stream bases are line-aligned by
//! construction).

use crate::diag::{Diagnostic, LintKind, Region};
use phi_knc::isa::LINE_ELEMS;
use phi_knc::{Addr, BcastMode, Instr, Operand, Program, StreamId};

/// Alignment (in elements) a memory access requires.
fn required_align(op: Option<&Operand>, mode: Option<BcastMode>) -> usize {
    match (op, mode) {
        // Full-vector load/store.
        (None, None) => 8,
        (None, Some(BcastMode::OneToEight)) => 1,
        (None, Some(BcastMode::FourToEight)) => 4,
        (Some(Operand::Mem(_)), _) => 8,
        (Some(Operand::MemBcast(_, BcastMode::OneToEight)), _) => 1,
        (Some(Operand::MemBcast(_, BcastMode::FourToEight)), _) => 4,
        _ => 1,
    }
}

fn aligned_for_all(a: &Addr, align: usize) -> bool {
    a.offset.is_multiple_of(align)
        && a.scale_iter.is_multiple_of(align)
        && a.scale_thread.is_multiple_of(align)
}

/// Every (address, required alignment) pair an instruction touches.
fn accesses(i: &Instr) -> Vec<(Addr, usize)> {
    match i {
        Instr::Load { addr, .. } | Instr::Store { addr, .. } => vec![(*addr, 8)],
        Instr::Broadcast { addr, mode, .. } => vec![(*addr, required_align(None, Some(*mode)))],
        Instr::Fmadd { src, .. } | Instr::Add { src, .. } | Instr::Mul { src, .. } => src
            .addr()
            .map(|a| (a, required_align(Some(src), None)))
            .into_iter()
            .collect(),
        Instr::PrefetchL1(a) | Instr::PrefetchL2(a) => vec![(*a, 1)],
        Instr::ScalarOp => Vec::new(),
    }
}

fn check_program(region: Region, p: &Program, diags: &mut Vec<Diagnostic>) {
    for (at, i) in p.body.iter().enumerate() {
        for (a, align) in accesses(i) {
            if align > 1 && !aligned_for_all(&a, align) {
                diags.push(Diagnostic::new(
                    LintKind::Misaligned { align },
                    region,
                    at,
                    p,
                    format!(
                        "address (offset {}, iter stride {}, thread stride {}) is not \
                         {align}-element aligned for every iteration and thread",
                        a.offset, a.scale_iter, a.scale_thread
                    ),
                ));
            }
            // Thread-split accesses to the shared `a` tile must step by
            // whole cache lines, or threads fetch overlapping lines and
            // the cooperative split of Section III-A2 double-fetches.
            if a.stream == StreamId::A && a.scale_thread != 0 && a.scale_thread % LINE_ELEMS != 0 {
                diags.push(Diagnostic::new(
                    LintKind::ThreadOverlap {
                        scale_thread: a.scale_thread,
                    },
                    region,
                    at,
                    p,
                    format!(
                        "per-thread stride {} on the shared `a` stream is not a multiple \
                         of the {LINE_ELEMS}-element cache line: threads touch overlapping lines",
                        a.scale_thread
                    ),
                ));
            }
        }
        // Streaming L1 prefetches should advance by whole lines.
        if let Instr::PrefetchL1(a) = i {
            if a.scale_iter > 0 && a.scale_iter % LINE_ELEMS != 0 {
                diags.push(Diagnostic::new(
                    LintKind::PartialLinePrefetch {
                        scale: a.scale_iter,
                    },
                    region,
                    at,
                    p,
                    format!(
                        "`vprefetch0` advances {} elements per iteration — not a whole \
                         {LINE_ELEMS}-element line, so successive iterations re-request \
                         overlapping lines",
                        a.scale_iter
                    ),
                ));
            }
        }
    }
}

/// Runs the address pass over body and epilogue.
pub fn check(body: &Program, epilogue: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_program(Region::Body, body, &mut diags);
    check_program(Region::Epilogue, epilogue, &mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_kernels_are_clean() {
        use phi_blas::gemm::MicroKernelKind;
        for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
            let (body, epi) = phi_knc::kernels::build_basic_kernel(kind);
            assert!(check(&body, &epi).is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn misaligned_vector_load_is_an_error() {
        let mut body = Program::new();
        body.push(Instr::Load {
            dst: 31,
            addr: Addr::new(StreamId::B, 4, 0), // iter stride 4: odd half-vectors
        });
        let ds = check(&body, &Program::new());
        assert!(ds
            .iter()
            .any(|d| matches!(d.kind, LintKind::Misaligned { align: 8 })));
    }

    #[test]
    fn broadcasts_tolerate_element_offsets() {
        let mut body = Program::new();
        body.push(Instr::Fmadd {
            acc: 0,
            src: Operand::MemBcast(Addr::new(StreamId::A, 32, 7), BcastMode::OneToEight),
            b: 31,
        });
        // 1to8 needs only element alignment; off-by-7 is legal.
        assert!(check(&body, &Program::new()).is_empty());
    }

    #[test]
    fn sub_line_thread_split_overlaps() {
        let mut body = Program::new();
        body.push(Instr::PrefetchL1(
            Addr::new(StreamId::A, 32, 32).with_thread_scale(4),
        ));
        let ds = check(&body, &Program::new());
        assert!(ds
            .iter()
            .any(|d| matches!(d.kind, LintKind::ThreadOverlap { scale_thread: 4 })));
    }

    #[test]
    fn sub_line_prefetch_stride_warns() {
        let mut body = Program::new();
        body.push(Instr::PrefetchL1(Addr::new(StreamId::B, 4, 8)));
        let ds = check(&body, &Program::new());
        assert!(ds
            .iter()
            .any(|d| matches!(d.kind, LintKind::PartialLinePrefetch { scale: 4 })));
    }
}
