//! Channel-graph analysis of communication schedules: deadlock,
//! starvation and dead-rank routing.
//!
//! The cluster simulators charge analytic durations for their
//! collectives; [`phi_fabric::schedule`] materializes the same
//! collectives as per-rank send/recv programs. This pass executes the
//! materialized plan under **rendezvous semantics** — a send completes
//! only when its matching receive is posted, the strictest (zero
//! buffering) interpretation, so a schedule proved safe here is safe
//! under any MPI eager/rendezvous threshold:
//!
//! * a schedule that runs to completion is **deadlock-free**;
//! * a stuck operation whose counterpart exists later is part of a
//!   **wait cycle** ([`SchedKind::WaitCycle`]) — the cycle is extracted
//!   and reported rank-by-rank;
//! * a stuck receive with no matching send anywhere in the remaining
//!   plan is an **orphaned receiver** ([`SchedKind::OrphanReceiver`]),
//!   the signature of a broadcast whose root died; a stuck send with no
//!   consumer is an **unmatched send** ([`SchedKind::UnmatchedSend`]);
//! * any op executed by or addressed to a rank outside the live set is
//!   a **dead-rank op** ([`SchedKind::DeadRankOp`]) — the hazard
//!   mid-run patch remaps introduce when a ring is not re-routed.

use crate::diag::{SchedDiagnostic, SchedKind};
use phi_fabric::schedule::{CommOp, CommSchedule};

/// Renders rank `r`'s program around op `at`, offender marked.
fn excerpt(s: &CommSchedule, r: usize, at: usize) -> String {
    let prog = &s.programs[r];
    let lo = at.saturating_sub(1);
    let hi = (at + 2).min(prog.len());
    let mut out = String::new();
    for (idx, op) in prog.iter().enumerate().take(hi).skip(lo) {
        let marker = if idx == at { '>' } else { ' ' };
        let line = match *op {
            CommOp::Send { to, tag, bytes } => {
                format!("rank {r} send -> {to} tag {tag:#x} ({bytes} B)")
            }
            CommOp::Recv { from, tag } => format!("rank {r} recv <- {from} tag {tag:#x}"),
        };
        out.push_str(&format!("  {marker} {idx:>3}  {line}\n"));
    }
    out
}

/// True when `op`'s rendezvous counterpart (matching peer/tag in the
/// opposite direction) exists in `peer`'s program at or after its pc.
fn counterpart_remains(s: &CommSchedule, r: usize, op: &CommOp, pc: &[usize]) -> bool {
    let peer = op.peer();
    if peer >= s.nranks {
        return false;
    }
    s.programs[peer][pc[peer]..]
        .iter()
        .any(|cand| match (op, cand) {
            (CommOp::Send { to, tag, .. }, CommOp::Recv { from, tag: t2 }) => {
                *to == peer && *from == r && tag == t2
            }
            (CommOp::Recv { from, tag }, CommOp::Send { to, tag: t2, .. }) => {
                *from == peer && *to == r && tag == t2
            }
            _ => false,
        })
}

/// Checks `s` and returns every finding. Clean schedules return an
/// empty vector — the proof the gate requires.
///
/// Dead-rank routing errors are structural: when any are present the
/// rendezvous execution is skipped (its verdicts would describe a plan
/// that cannot exist) and only the routing findings are returned.
pub fn check(s: &CommSchedule) -> Vec<SchedDiagnostic> {
    let mut diags = Vec::new();

    // Structural pass: dead or out-of-range participants.
    for (r, prog) in s.programs.iter().enumerate() {
        if !s.live[r] && !prog.is_empty() {
            diags.push(SchedDiagnostic::new(
                SchedKind::DeadRankOp { rank: r },
                format!("{} rank {r} op 0", s.label),
                format!("dead rank {r} still has {} scheduled op(s)", prog.len()),
                excerpt(s, r, 0),
            ));
            continue;
        }
        for (at, op) in prog.iter().enumerate() {
            let peer = op.peer();
            if peer >= s.nranks || !s.live[peer] {
                diags.push(SchedDiagnostic::new(
                    SchedKind::DeadRankOp { rank: peer },
                    format!("{} rank {r} op {at}", s.label),
                    format!("rank {r} addresses rank {peer}, which is not live"),
                    excerpt(s, r, at),
                ));
            }
        }
    }
    if !diags.is_empty() {
        return diags;
    }

    // Rendezvous execution: advance matched send/recv pairs until the
    // plan completes or wedges.
    let mut pc = vec![0usize; s.nranks];
    loop {
        let mut progressed = false;
        for r in 0..s.nranks {
            let Some(op) = s.programs[r].get(pc[r]) else {
                continue;
            };
            if let CommOp::Send { to, tag, .. } = *op {
                let matches = matches!(
                    s.programs[to].get(pc[to]),
                    Some(CommOp::Recv { from, tag: t2 }) if *from == r && *t2 == tag
                );
                if matches {
                    pc[r] += 1;
                    pc[to] += 1;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }

    let stuck: Vec<usize> = (0..s.nranks)
        .filter(|&r| pc[r] < s.programs[r].len())
        .collect();
    if stuck.is_empty() {
        return diags;
    }

    // Starvation: stuck ops whose counterpart no longer exists.
    let mut starved = false;
    for &r in &stuck {
        let op = &s.programs[r][pc[r]];
        if !counterpart_remains(s, r, op, &pc) {
            starved = true;
            let site = format!("{} rank {r} op {}", s.label, pc[r]);
            diags.push(match op {
                CommOp::Recv { from, tag } => SchedDiagnostic::new(
                    SchedKind::OrphanReceiver { rank: r },
                    site,
                    format!(
                        "rank {r} waits on a receive from {from} (tag {tag:#x}) that no \
                         remaining send will ever satisfy"
                    ),
                    excerpt(s, r, pc[r]),
                ),
                CommOp::Send { to, tag, .. } => SchedDiagnostic::new(
                    SchedKind::UnmatchedSend { rank: r },
                    site,
                    format!(
                        "rank {r}'s send to {to} (tag {tag:#x}) is never received: the \
                         sender blocks forever under rendezvous"
                    ),
                    excerpt(s, r, pc[r]),
                ),
            });
        }
    }
    if starved {
        return diags;
    }

    // Every stuck op's counterpart still exists, yet nothing moves:
    // a genuine wait cycle. Follow waits-on edges until a rank repeats.
    let mut path = vec![stuck[0]];
    loop {
        let cur = *path.last().unwrap();
        let next = s.programs[cur][pc[cur]].peer();
        if let Some(pos) = path.iter().position(|&r| r == next) {
            let cycle: Vec<usize> = path[pos..].to_vec();
            let desc: Vec<String> = cycle
                .iter()
                .map(|&r| format!("{r}\u{2192}{}", s.programs[r][pc[r]].peer()))
                .collect();
            let head = cycle[0];
            diags.push(SchedDiagnostic::new(
                SchedKind::WaitCycle { ranks: cycle },
                format!("{} rank {head} op {}", s.label, pc[head]),
                format!(
                    "rendezvous wait cycle: {} — every rank on the cycle is blocked \
                     on the next; the schedule deadlocks",
                    desc.join(", ")
                ),
                excerpt(s, head, pc[head]),
            ));
            return diags;
        }
        path.push(next);
    }
}

/// A deliberately broken schedule and the diagnostic it must trip.
#[derive(Clone, Debug)]
pub struct BrokenSchedule {
    /// Short human name of the defect scenario.
    pub name: &'static str,
    /// `SchedKind::name()` of the expected diagnostic.
    pub expect: &'static str,
    /// The broken plan.
    pub schedule: CommSchedule,
}

/// One broken fixture per channel-graph diagnostic kind, for the gate's
/// must-fail self-test.
pub fn broken_fixtures() -> Vec<BrokenSchedule> {
    // Head-to-head rendezvous sends: the classic exchange deadlock.
    let mut cycle = CommSchedule::empty("fixture: head-to-head exchange", 2);
    cycle.push(
        0,
        CommOp::Send {
            to: 1,
            tag: 1,
            bytes: 64,
        },
    );
    cycle.push(0, CommOp::Recv { from: 1, tag: 1 });
    cycle.push(
        1,
        CommOp::Send {
            to: 0,
            tag: 1,
            bytes: 64,
        },
    );
    cycle.push(1, CommOp::Recv { from: 0, tag: 1 });

    // A ring broadcast whose root died without re-rooting: the first
    // survivor still waits on the dead root's send.
    let mut orphan = CommSchedule::empty("fixture: bcast from a dead root", 3);
    orphan.push(1, CommOp::Recv { from: 0, tag: 2 });
    orphan.push(
        1,
        CommOp::Send {
            to: 2,
            tag: 2,
            bytes: 64,
        },
    );
    orphan.push(2, CommOp::Recv { from: 1, tag: 2 });

    // A send into the void: the planned receiver posts nothing.
    let mut unmatched = CommSchedule::empty("fixture: send never consumed", 2);
    unmatched.push(
        0,
        CommOp::Send {
            to: 1,
            tag: 3,
            bytes: 64,
        },
    );

    // A ring built before the death and never re-routed: ops still
    // address (and are held by) the dead rank.
    let mut stale = CommSchedule::empty("fixture: stale ring through a dead rank", 3);
    stale.push(
        0,
        CommOp::Send {
            to: 1,
            tag: 4,
            bytes: 64,
        },
    );
    stale.push(1, CommOp::Recv { from: 0, tag: 4 });
    stale.push(
        1,
        CommOp::Send {
            to: 2,
            tag: 4,
            bytes: 64,
        },
    );
    stale.push(2, CommOp::Recv { from: 1, tag: 4 });
    stale.live[1] = false;

    vec![
        BrokenSchedule {
            name: "head-to-head rendezvous exchange",
            expect: "wait-cycle",
            schedule: cycle,
        },
        BrokenSchedule {
            name: "broadcast rooted at a dead rank",
            expect: "orphan-receiver",
            schedule: orphan,
        },
        BrokenSchedule {
            name: "send with no posted receiver",
            expect: "unmatched-send",
            schedule: unmatched,
        },
        BrokenSchedule {
            name: "ring not re-routed around a death",
            expect: "dead-rank-op",
            schedule: stale,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_fabric::{BcastScheme, ProcessGrid, ScheduleBuilder};

    #[test]
    fn healthy_collectives_verify_clean_on_every_scheme() {
        for (p, q) in [(1usize, 5usize), (4, 8), (10, 10), (9, 11), (2, 2)] {
            let b = ScheduleBuilder::new(ProcessGrid::new(p, q));
            for scheme in BcastScheme::ALL {
                for strips in [1usize, 12] {
                    let s = b.stage_schedule(scheme, 0, 0, 9600, 4800, strips);
                    let diags = check(&s);
                    assert!(
                        diags.is_empty(),
                        "{}x{} {} strips={}: {}",
                        p,
                        q,
                        scheme.name(),
                        strips,
                        diags[0].render()
                    );
                }
            }
        }
    }

    #[test]
    fn patched_grid_routes_around_the_dead_rank() {
        let g = ProcessGrid::new(4, 8);
        for dead in [0usize, 5, 31] {
            let b = ScheduleBuilder::new(g).kill(dead);
            for scheme in BcastScheme::ALL {
                let s = b.stage_schedule(scheme, dead % 8, dead / 8, 9600, 4800, 4);
                assert!(check(&s).is_empty(), "dead={dead} {}", scheme.name());
            }
        }
    }

    #[test]
    fn every_broken_fixture_trips_its_expected_kind() {
        for f in broken_fixtures() {
            let diags = check(&f.schedule);
            assert!(
                diags.iter().any(|d| d.kind.name() == f.expect),
                "{}: expected {}, got {:?}",
                f.name,
                f.expect,
                diags.iter().map(|d| d.kind.name()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn wait_cycle_reports_the_cycle_members() {
        let fx = &broken_fixtures()[0];
        let diags = check(&fx.schedule);
        let d = &diags[0];
        assert!(matches!(&d.kind, SchedKind::WaitCycle { ranks } if ranks.len() == 2));
        let r = d.render();
        assert!(r.contains("error[S201:wait-cycle]"), "{r}");
        assert!(r.contains("deadlocks"), "{r}");
    }

    #[test]
    fn json_rendering_is_flat_and_coded() {
        let fx = &broken_fixtures()[1];
        let d = &check(&fx.schedule)[0];
        let j = d.render_json();
        assert!(j.starts_with("{\"code\":\"S202\""), "{j}");
        assert!(j.contains("\"kind\":\"orphan-receiver\""), "{j}");
    }
}
