//! Property tests for the schedule-analysis pass family: the ownership
//! prover and the channel-graph checker over randomized grids, remap
//! strategies and dead-rank sets.
//!
//! Seeded and deterministic — every case derives from a splitmix64
//! stream, so a failure replays exactly and the suite stays noise-free.

use phi_fabric::{BcastScheme, ProcessGrid, ScheduleBuilder, ScheduleShape};
use phi_lint::{ownership, schedule, OwnershipMap};

/// splitmix64: the canonical 64-bit mixer, plenty for case generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A random grid with at least two ranks, and a random non-total set of
/// distinct dead ranks on it.
fn random_case(rng: &mut Rng) -> (ProcessGrid, Vec<usize>) {
    let (p, q) = loop {
        let p = 1 + rng.below(6);
        let q = 1 + rng.below(8);
        if p * q > 1 {
            break (p, q);
        }
    };
    let grid = ProcessGrid::new(p, q);
    let max_dead = (grid.size() - 1).min(5);
    let mut dead = Vec::new();
    for _ in 0..1 + rng.below(max_dead) {
        let r = rng.below(grid.size());
        if !dead.contains(&r) {
            dead.push(r);
        }
    }
    (grid, dead)
}

#[test]
fn patch_remaps_prove_exactly_once_and_conserving_on_random_grids() {
    let mut rng = Rng(0x0175_0C0D_E001);
    for case in 0..120 {
        let (grid, dead_set) = random_case(&mut rng);
        let nblocks = 4 + rng.below(12);
        let nb = 64 + 32 * rng.below(8);
        // A clipped final block about one case in two.
        let n = nblocks * nb - rng.below(2) * (nb / 3).max(1);
        let first = rng.below(nblocks);

        let pristine = OwnershipMap::block_cyclic(&grid, nblocks);
        let mut map = pristine.clone();
        let mut live = vec![true; grid.size()];
        for &dead in &dead_set {
            live[dead] = false;
            let survivors: Vec<usize> = (0..grid.size()).filter(|&r| live[r]).collect();
            let remap = grid.patch_remap(dead);
            // Conservation of this rank's own share, against the closed
            // form the simulators charge.
            let mut single = pristine.clone();
            single.apply_patch(dead, &survivors, first);
            let diags =
                ownership::check_patch_conservation(&pristine, &single, &remap, first, nb, n, "p");
            assert!(
                diags.is_empty(),
                "case {case} ({}x{} dead={dead} first={first} nb={nb} n={n}): {}",
                grid.p,
                grid.q,
                diags[0].render()
            );
            map.apply_patch(dead, &survivors, first);
            // Coverage holds after every intermediate death too.
            let diags = ownership::check_exactly_once(&map, first, &live, "p");
            assert!(
                diags.is_empty(),
                "case {case} ({}x{} dead={dead_set:?}): {}",
                grid.p,
                grid.q,
                diags[0].render()
            );
        }
    }
}

#[test]
fn wholesale_reshapes_prove_exactly_once_on_random_survivor_counts() {
    let mut rng = Rng(0x0175_0C0D_E002);
    for case in 0..120 {
        let (grid, dead_set) = random_case(&mut rng);
        let survivors = grid.size() - dead_set.len();
        let fallback = ProcessGrid::fallback_grid(survivors);
        assert!(
            fallback.size() <= survivors,
            "case {case}: fallback grid larger than the survivor pool"
        );
        let nblocks = 4 + rng.below(12);
        let map = OwnershipMap::block_cyclic(&fallback, nblocks);
        let live = vec![true; fallback.size()];
        let first = rng.below(nblocks);
        let diags = ownership::check_exactly_once(&map, first, &live, "w");
        assert!(
            diags.is_empty(),
            "case {case} ({} survivors -> {}x{}): {}",
            survivors,
            fallback.p,
            fallback.q,
            diags[0].render()
        );
    }
}

#[test]
fn random_degraded_schedules_verify_deadlock_free() {
    let mut rng = Rng(0x0175_0C0D_E003);
    for case in 0..60 {
        let (grid, dead_set) = random_case(&mut rng);
        let shape = ScheduleShape {
            grid,
            dead_ranks: dead_set.clone(),
            reshaped: false,
        };
        let b = ScheduleBuilder::for_shape(&shape);
        let scheme = BcastScheme::ALL[rng.below(BcastScheme::ALL.len())];
        let root_col = rng.below(grid.q);
        let root_row = rng.below(grid.p);
        let strips = 1 + rng.below(6);
        let s = b.stage_schedule(scheme, root_col, root_row, 4096, 2048, strips);
        let diags = schedule::check(&s);
        assert!(
            diags.is_empty(),
            "case {case} ({}x{} dead={dead_set:?} {} strips={strips}): {}",
            grid.p,
            grid.q,
            scheme.name(),
            diags[0].render()
        );
    }
}

#[test]
fn corrupted_maps_never_prove_clean() {
    // Adversarial closure: drop or duplicate a random trailing cell and
    // the prover must object every time.
    let mut rng = Rng(0x0175_0C0D_E004);
    for _ in 0..60 {
        let (grid, _) = random_case(&mut rng);
        let nblocks = 4 + rng.below(8);
        let mut map = OwnershipMap::block_cyclic(&grid, nblocks);
        let live = vec![true; grid.size()];
        let (i, j) = (rng.below(nblocks), rng.below(nblocks));
        if rng.below(2) == 0 {
            map.owners_mut(i, j).clear();
        } else {
            map.owners_mut(i, j).push(rng.below(grid.size()));
        }
        assert!(
            !ownership::check_exactly_once(&map, 0, &live, "c").is_empty(),
            "corruption at ({i},{j}) on {}x{} went unnoticed",
            grid.p,
            grid.q
        );
    }
}
