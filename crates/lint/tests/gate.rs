//! The static↔dynamic consistency gate.
//!
//! The analyzer must (a) pass the paper kernels with zero errors while
//! reproducing their 31/32 vs 30/32 theoretical efficiencies exactly,
//! (b) predict steady-state cycles within 5% of the cycle-accurate
//! emulator, and (c) have every diagnostic kind demonstrated by a broken
//! fixture. CI runs this via `cargo test` and the `lint` binary.

use phi_blas::gemm::MicroKernelKind;
use phi_knc::kernels::{build_basic_kernel, kernel_mr, run_tile_product, NR};
use phi_knc::pipeline::PipelineConfig;
use phi_lint::{analyze, LintKind};

/// Deterministic pseudo-random tile data (no RNG dependency needed).
fn tiles(mr: usize, depth: usize, seed: u64) -> (Vec<f64>, [Vec<f64>; 4]) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let a: Vec<f64> = (0..mr * depth).map(|_| next()).collect();
    let bs = std::array::from_fn(|_| (0..depth * NR).map(|_| next()).collect());
    (a, bs)
}

#[test]
fn paper_kernels_have_zero_errors() {
    for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
        let (body, epi) = build_basic_kernel(kind);
        let report = analyze(&body, &epi);
        assert!(
            !report.has_errors(),
            "{kind:?} must be error-free:\n{}",
            report.render()
        );
    }
}

#[test]
fn theoretical_efficiencies_are_exact() {
    let (b1, e1) = build_basic_kernel(MicroKernelKind::Kernel1);
    let (b2, e2) = build_basic_kernel(MicroKernelKind::Kernel2);
    let m1 = analyze(&b1, &e1).model;
    let m2 = analyze(&b2, &e2).model;
    assert_eq!((m1.fmadds, m1.u_slots), (31, 32));
    assert_eq!((m2.fmadds, m2.u_slots), (30, 32));
    assert!((m1.theoretical_efficiency() - 31.0 / 32.0).abs() < 1e-15);
    assert!((m2.theoretical_efficiency() - 30.0 / 32.0).abs() < 1e-15);
}

#[test]
fn kernel1_flags_the_fill_conflict_kernel2_does_not() {
    let (b1, e1) = build_basic_kernel(MicroKernelKind::Kernel1);
    let r1 = analyze(&b1, &e1);
    assert!(
        r1.diags
            .iter()
            .any(|d| matches!(d.kind, LintKind::FillConflict { .. })),
        "{}",
        r1.render()
    );
    let (b2, e2) = build_basic_kernel(MicroKernelKind::Kernel2);
    let r2 = analyze(&b2, &e2);
    assert!(r2.diags.is_empty(), "{}", r2.render());
}

/// The headline check: the static cycle lower bound agrees with the
/// cycle-accurate emulator to within 5% for both Fig. 2 kernels.
#[test]
fn static_bound_matches_emulator_within_5_percent() {
    let depth = 300;
    for (kind, seed) in [(MicroKernelKind::Kernel1, 3), (MicroKernelKind::Kernel2, 4)] {
        let (body, epi) = build_basic_kernel(kind);
        let model = analyze(&body, &epi).model;
        let (a, bs) = tiles(kernel_mr(kind), depth, seed);
        let rep = run_tile_product(kind, depth, &a, &bs, PipelineConfig::default());

        let predicted = model.cycles_per_iter_lower_bound();
        let measured = rep.steady_cycles_per_iter;
        let rel = (measured - predicted).abs() / measured;
        assert!(
            rel < 0.05,
            "{kind:?}: static bound {predicted:.2} vs emulated {measured:.2} \
             cycles/iter ({:.1}% apart)",
            100.0 * rel
        );
        assert!(
            predicted <= measured * 1.005,
            "{kind:?}: a lower bound must not exceed the measurement \
             (static {predicted:.2}, emulated {measured:.2})"
        );
    }
}

#[test]
fn every_diagnostic_kind_fires_on_its_fixture() {
    let fixtures = phi_lint::fixtures::all();
    assert_eq!(fixtures.len(), LintKind::all_names().len());
    for f in fixtures {
        let report = analyze(&f.body, &f.epilogue);
        assert!(
            report.diags.iter().any(|d| d.kind.name() == f.expect),
            "fixture `{}` did not trip `{}`:\n{}",
            f.name,
            f.expect,
            report.render()
        );
    }
}
