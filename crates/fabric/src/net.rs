//! Inter-node network model: single-rail FDR InfiniBand.
//!
//! The cluster results (Table III, Fig. 9) run on "a single rail FDR
//! Infiniband network": ≈6.8 GB/s per direction sustained, ~1 µs MPI
//! latency. The hybrid HPL critical path sees the network through two
//! operations, both given analytic postal-model times here:
//!
//! * **panel broadcast** along a process row (the factored panel of
//!   `m × NB` doubles travels an increasing ring, pipelined);
//! * **swap + U broadcast** along a process column (partial rows are
//!   exchanged and the `NB × cols` U panel is spread — HPL's
//!   "spread-roll" long swap).
//!
//! These enter the per-stage simulation as durations, and the pipelined
//! look-ahead scheme (Fig. 8c) splits them into column strips.

/// Panel-broadcast algorithm along a process row.
///
/// HPL ships several broadcast variants and the paper's Fig. 8 tuning
/// picks among them per machine; the tuner enumerates these three:
///
/// * [`Ring`](BcastScheme::Ring) — HPL's `1ring` increasing ring,
///   pipelined (the default the rest of the repo has always used);
/// * [`TwoRing`](BcastScheme::TwoRing) — `2ring`: the root injects into
///   two half-rings, halving the hop count at the cost of sending the
///   message twice;
/// * [`Binomial`](BcastScheme::Binomial) — a binomial tree, `⌈log₂ q⌉`
///   full-message rounds; wins at small messages / large q, loses
///   pipelining for large panels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BcastScheme {
    /// Pipelined increasing one-ring (HPL `1ring`).
    Ring,
    /// Two half-rings from the root (HPL `2ring`).
    TwoRing,
    /// Binomial tree, `⌈log₂ q⌉` store-and-forward rounds.
    Binomial,
}

impl BcastScheme {
    /// All schemes, in the fixed order the tuner enumerates them.
    pub const ALL: [BcastScheme; 3] = [
        BcastScheme::Ring,
        BcastScheme::TwoRing,
        BcastScheme::Binomial,
    ];

    /// Stable lowercase name (used in score tables and cache bytes).
    pub fn name(&self) -> &'static str {
        match self {
            BcastScheme::Ring => "ring",
            BcastScheme::TwoRing => "2ring",
            BcastScheme::Binomial => "binomial",
        }
    }
}

/// A radius-`r` face-halo exchange over a 3-D grid of doubles,
/// block-decomposed on a `(p1, p2, p3)` rank grid with periodic
/// boundaries — the traffic pattern of the performance lab's stencil
/// workload, sitting beside the HPL panel broadcast and long swap.
///
/// Each rank owns a contiguous block (uneven remainders go to the
/// low-coordinate ranks, standard block distribution) and, per decomposed
/// axis, exchanges a `radius`-deep face with both neighbours. Faces are
/// whole cross-sections: axis-0 faces carry `radius × ly × lz` points of
/// the *sender's* local extents — which equal the receiver's, because
/// neighbours along one axis share their extents along the other two.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HaloSpec {
    /// Global grid points per axis.
    pub dims: (usize, usize, usize),
    /// Rank grid: how many ranks split each axis.
    pub ranks: (usize, usize, usize),
    /// Stencil radius: halo depth in grid points.
    pub radius: usize,
}

impl HaloSpec {
    /// Builds a spec, checking the decomposition is meaningful: every
    /// rank's block must be at least `radius` deep along decomposed axes
    /// (a halo deeper than its donor block would need multi-hop sourcing).
    pub fn new(dims: (usize, usize, usize), ranks: (usize, usize, usize), radius: usize) -> Self {
        let s = Self {
            dims,
            ranks,
            radius,
        };
        for a in 0..3 {
            let (n, p) = (s.dim(a), s.rank_dim(a));
            assert!(p >= 1 && n >= p, "axis {a}: {p} ranks over {n} points");
            if p > 1 {
                let min_extent = n / p;
                assert!(
                    min_extent >= radius,
                    "axis {a}: blocks of {min_extent} shallower than radius {radius}"
                );
            }
        }
        s
    }

    fn dim(&self, axis: usize) -> usize {
        [self.dims.0, self.dims.1, self.dims.2][axis]
    }

    fn rank_dim(&self, axis: usize) -> usize {
        [self.ranks.0, self.ranks.1, self.ranks.2][axis]
    }

    /// Total ranks in the decomposition.
    pub fn rank_count(&self) -> usize {
        self.ranks.0 * self.ranks.1 * self.ranks.2
    }

    /// Local extent along `axis` for a rank at `coord`: `n/p`, with the
    /// first `n mod p` coordinates absorbing the remainder.
    pub fn local_extent(&self, axis: usize, coord: usize) -> usize {
        let (n, p) = (self.dim(axis), self.rank_dim(axis));
        n / p + usize::from(coord < n % p)
    }

    fn rank_id(&self, c: [usize; 3]) -> usize {
        c[0] + self.ranks.0 * (c[1] + self.ranks.1 * c[2])
    }

    /// Every point-to-point message of one full exchange as
    /// `(from, to, bytes)` triples, in a fixed deterministic order:
    /// axis-major, then rank-id, then the `+`/`−` direction.
    pub fn messages(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for axis in 0..3 {
            let p = self.rank_dim(axis);
            if p <= 1 {
                continue;
            }
            for c2 in 0..self.ranks.2 {
                for c1 in 0..self.ranks.1 {
                    for c0 in 0..self.ranks.0 {
                        let c = [c0, c1, c2];
                        let bytes = self.face_bytes(axis, c);
                        for dir in [1usize, p - 1] {
                            let mut n = c;
                            n[axis] = (c[axis] + dir) % p;
                            out.push((self.rank_id(c), self.rank_id(n), bytes));
                        }
                    }
                }
            }
        }
        out
    }

    /// Bytes of one face a rank at `coord` sends along `axis`: a
    /// `radius`-deep slab of its own cross-section, 8 bytes per point.
    pub fn face_bytes(&self, axis: usize, coord: [usize; 3]) -> f64 {
        let mut area = 1.0;
        for (other, &c) in coord.iter().enumerate() {
            if other != axis {
                area *= self.local_extent(other, c) as f64;
            }
        }
        8.0 * self.radius as f64 * area
    }

    /// Bytes each rank sends in one exchange, indexed by rank id.
    pub fn sent_bytes(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.rank_count()];
        for (from, _, b) in self.messages() {
            v[from] += b;
        }
        v
    }

    /// Bytes each rank receives in one exchange, indexed by rank id.
    pub fn received_bytes(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.rank_count()];
        for (_, to, b) in self.messages() {
            v[to] += b;
        }
        v
    }

    /// Total bytes crossing the network in one exchange.
    pub fn total_bytes(&self) -> f64 {
        self.messages().iter().map(|m| m.2).sum()
    }
}

/// Analytic network model.
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// Per-direction link bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-message latency, seconds.
    pub latency: f64,
}

impl Default for NetModel {
    /// FDR InfiniBand 4x: 56 Gb/s signalling → ≈6.8 GB/s effective
    /// unidirectional; ~1.5 µs end-to-end MPI latency.
    fn default() -> Self {
        Self {
            bandwidth: 6.8e9,
            latency: 1.5e-6,
        }
    }
}

impl NetModel {
    /// Point-to-point message time (postal model).
    pub fn p2p(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }

    /// The same rail under injected degradation: bandwidth multiplied by
    /// `bw_factor` (≤ 1, e.g. a flapping link renegotiating width) and
    /// `extra_latency_s` added per message (switch buffer jitter). With
    /// `bw_factor = 1` and `extra_latency_s = 0` the returned model is
    /// bit-identical to `self` — the healthy path costs nothing.
    pub fn degraded(&self, bw_factor: f64, extra_latency_s: f64) -> NetModel {
        assert!(bw_factor > 0.0 && extra_latency_s >= 0.0);
        NetModel {
            bandwidth: self.bandwidth * bw_factor,
            latency: self.latency + extra_latency_s,
        }
    }

    /// Pipelined increasing-ring broadcast of `bytes` to `q - 1` peers:
    /// the message is chunked, so completion at the last peer is one full
    /// transmission plus per-hop pipeline fill. For `q = 1` this is free.
    pub fn ring_bcast(&self, bytes: f64, q: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        let hops = (q - 1) as f64;
        // One full message transmission + per-hop latency + a residual
        // chunk per extra hop (chunking at 1/8 of the message).
        self.latency * hops + bytes / self.bandwidth * (1.0 + 0.125 * (hops - 1.0).max(0.0))
    }

    /// Broadcast of `bytes` to `q - 1` peers under the given scheme.
    /// `Ring` delegates to [`ring_bcast`](Self::ring_bcast) and is
    /// bit-identical to it; the other two reuse the same postal constants
    /// so the schemes are comparable, not separately calibrated.
    pub fn bcast(&self, scheme: BcastScheme, bytes: f64, q: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        match scheme {
            BcastScheme::Ring => self.ring_bcast(bytes, q),
            BcastScheme::TwoRing => {
                // Root feeds two half-rings concurrently: half the hops,
                // but the root's link carries the message twice, so the
                // bandwidth term starts at 2× before pipeline residuals.
                let hops = (q - 1).div_ceil(2) as f64;
                self.latency * hops + bytes / self.bandwidth * (2.0 + 0.125 * (hops - 1.0).max(0.0))
            }
            BcastScheme::Binomial => {
                // ⌈log₂ q⌉ store-and-forward rounds, full message each.
                let rounds = (q as f64).log2().ceil().max(1.0);
                rounds * (self.latency + bytes / self.bandwidth)
            }
        }
    }

    /// HPL long-swap ("spread-roll") of an `NB`-deep row window `cols`
    /// wide over `p` process rows: every process sends/receives ≈
    /// `(p-1)/p` of its share twice (spread + roll), with `log2(p)`-ish
    /// latency stages.
    pub fn long_swap(&self, nb: usize, cols: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let bytes = 8.0 * nb as f64 * cols as f64;
        let share = bytes / p as f64;
        let stages = (p as f64).log2().ceil().max(1.0);
        2.0 * share * (p - 1) as f64 / p as f64 * p as f64 / self.bandwidth / p as f64
            + 2.0 * share / self.bandwidth
            + stages * self.latency
    }

    /// Broadcast of the solved `U` panel (`nb × cols` doubles) down a
    /// process column of `p` nodes.
    pub fn u_bcast(&self, nb: usize, cols: usize, p: usize) -> f64 {
        self.ring_bcast(8.0 * nb as f64 * cols as f64, p)
    }

    /// One full face-halo exchange: per decomposed axis, every rank
    /// shifts a face to each neighbour. The two directional shifts of an
    /// axis serialize on the single rail, axes proceed as separate
    /// phases, and the widest face paces each phase (the postal analogue
    /// of the bulk-synchronous `MPI_Sendrecv` ladder stencil codes use).
    /// Free when no axis is decomposed — the halo then wraps in memory.
    pub fn halo_exchange(&self, spec: &HaloSpec) -> f64 {
        let mut t = 0.0;
        for axis in 0..3 {
            let p = [spec.ranks.0, spec.ranks.1, spec.ranks.2][axis];
            if p <= 1 {
                continue;
            }
            let widest = (0..spec.ranks.2)
                .flat_map(|c2| {
                    (0..spec.ranks.1)
                        .flat_map(move |c1| (0..spec.ranks.0).map(move |c0| [c0, c1, c2]))
                })
                .map(|c| spec.face_bytes(axis, c))
                .fold(0.0f64, f64::max);
            t += 2.0 * self.p2p(widest);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_postal_model() {
        let n = NetModel::default();
        let t = n.p2p(6.8e9);
        assert!((t - (1.0 + 1.5e-6)).abs() < 1e-9);
    }

    #[test]
    fn bcast_degenerate_cases() {
        let n = NetModel::default();
        assert_eq!(n.ring_bcast(1e9, 1), 0.0);
        // Two processes: a single hop ≈ p2p.
        let two = n.ring_bcast(1e6, 2);
        assert!((two - n.p2p(1e6)).abs() < 1e-9);
    }

    #[test]
    fn bcast_grows_slowly_with_q() {
        // Pipelining keeps the ring broadcast well under q × p2p.
        let n = NetModel::default();
        let one = n.p2p(1e8);
        let ten = n.ring_bcast(1e8, 10);
        assert!(ten > one);
        assert!(ten < 3.0 * one, "pipelined: {ten} vs naive {}", 9.0 * one);
    }

    #[test]
    fn degraded_identity_is_bit_exact() {
        let n = NetModel::default();
        let same = n.degraded(1.0, 0.0);
        assert_eq!(same.bandwidth.to_bits(), n.bandwidth.to_bits());
        assert_eq!(same.latency.to_bits(), n.latency.to_bits());
        let worse = n.degraded(0.5, 10e-6);
        assert!(worse.p2p(1e8) > n.p2p(1e8));
        assert!(worse.ring_bcast(1e8, 4) > n.ring_bcast(1e8, 4));
    }

    #[test]
    fn ring_scheme_is_bit_identical_to_ring_bcast() {
        let n = NetModel::default();
        for q in 1..=16 {
            for bytes in [0.0, 1e3, 1e6, 1e9] {
                assert_eq!(
                    n.bcast(BcastScheme::Ring, bytes, q).to_bits(),
                    n.ring_bcast(bytes, q).to_bits()
                );
            }
        }
    }

    #[test]
    fn scheme_crossover_matches_intuition() {
        let n = NetModel::default();
        // Large panel, modest row: pipelined ring beats binomial.
        let big = 8.0 * 84_000.0 * 1200.0;
        assert!(n.bcast(BcastScheme::Ring, big, 10) < n.bcast(BcastScheme::Binomial, big, 10));
        // Tiny message, wide row: binomial's log rounds beat the ring's
        // linear latency chain.
        assert!(n.bcast(BcastScheme::Binomial, 64.0, 64) < n.bcast(BcastScheme::Ring, 64.0, 64));
        // All schemes free on a single column.
        for s in BcastScheme::ALL {
            assert_eq!(n.bcast(s, 1e9, 1), 0.0);
        }
    }

    #[test]
    fn long_swap_scales_with_volume() {
        let n = NetModel::default();
        let small = n.long_swap(1200, 10_000, 4);
        let large = n.long_swap(1200, 40_000, 4);
        assert!(large > 3.0 * small);
        assert_eq!(n.long_swap(1200, 40_000, 1), 0.0);
    }

    #[test]
    fn halo_volume_is_conserved_rank_by_rank() {
        // Uneven decomposition (remainder blocks differ in extent): every
        // byte sent must land somewhere, and with periodic faces each
        // rank's inflow matches its outflow pairwise.
        let spec = HaloSpec::new((37, 22, 9), (3, 2, 1), 2);
        let sent = spec.sent_bytes();
        let recv = spec.received_bytes();
        let (s, r): (f64, f64) = (sent.iter().sum(), recv.iter().sum());
        assert_eq!(s.to_bits(), r.to_bits(), "conservation: {s} vs {r}");
        assert!((s - spec.total_bytes()).abs() < 1e-9);
        // Neighbours along an axis share cross-sections, so per-rank
        // inflow equals outflow too.
        for (i, (a, b)) in sent.iter().zip(&recv).enumerate() {
            assert!((a - b).abs() < 1e-9, "rank {i}: sent {a} recv {b}");
        }
        // 2 messages per rank per decomposed axis.
        assert_eq!(spec.messages().len(), 2 * 2 * spec.rank_count());
    }

    #[test]
    fn halo_time_scales_with_radius_and_is_free_undivided() {
        let n = NetModel::default();
        let single = HaloSpec::new((512, 512, 512), (1, 1, 1), 4);
        assert_eq!(n.halo_exchange(&single), 0.0);
        assert!(single.messages().is_empty());

        let r1 = HaloSpec::new((512, 512, 512), (2, 2, 2), 1);
        let r4 = HaloSpec::new((512, 512, 512), (2, 2, 2), 4);
        let (t1, t4) = (n.halo_exchange(&r1), n.halo_exchange(&r4));
        assert!(t1 > 0.0);
        assert!(t4 > 2.0 * t1, "radius-4 halo {t4} vs radius-1 {t1}");
        // Three axis phases, two shifts each: at least 6 latencies.
        assert!(t1 >= 6.0 * n.latency);
    }

    #[test]
    #[should_panic(expected = "shallower than radius")]
    fn halo_rejects_blocks_thinner_than_the_radius() {
        HaloSpec::new((8, 8, 8), (4, 1, 1), 3);
    }

    #[test]
    fn swap_volume_sane_for_84k_case() {
        // Fig. 9's 2×2 grid at N = 84K, NB = 1200: per-column share is
        // 42K columns; the swap should take tens of milliseconds — the
        // "13% of iteration time" scale of exposed swap the paper reports.
        let n = NetModel::default();
        let t = n.long_swap(1200, 42_000, 2);
        assert!((0.01..0.3).contains(&t), "swap time {t}");
    }
}
