//! Inter-node network model: single-rail FDR InfiniBand.
//!
//! The cluster results (Table III, Fig. 9) run on "a single rail FDR
//! Infiniband network": ≈6.8 GB/s per direction sustained, ~1 µs MPI
//! latency. The hybrid HPL critical path sees the network through two
//! operations, both given analytic postal-model times here:
//!
//! * **panel broadcast** along a process row (the factored panel of
//!   `m × NB` doubles travels an increasing ring, pipelined);
//! * **swap + U broadcast** along a process column (partial rows are
//!   exchanged and the `NB × cols` U panel is spread — HPL's
//!   "spread-roll" long swap).
//!
//! These enter the per-stage simulation as durations, and the pipelined
//! look-ahead scheme (Fig. 8c) splits them into column strips.

/// Panel-broadcast algorithm along a process row.
///
/// HPL ships several broadcast variants and the paper's Fig. 8 tuning
/// picks among them per machine; the tuner enumerates these three:
///
/// * [`Ring`](BcastScheme::Ring) — HPL's `1ring` increasing ring,
///   pipelined (the default the rest of the repo has always used);
/// * [`TwoRing`](BcastScheme::TwoRing) — `2ring`: the root injects into
///   two half-rings, halving the hop count at the cost of sending the
///   message twice;
/// * [`Binomial`](BcastScheme::Binomial) — a binomial tree, `⌈log₂ q⌉`
///   full-message rounds; wins at small messages / large q, loses
///   pipelining for large panels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BcastScheme {
    /// Pipelined increasing one-ring (HPL `1ring`).
    Ring,
    /// Two half-rings from the root (HPL `2ring`).
    TwoRing,
    /// Binomial tree, `⌈log₂ q⌉` store-and-forward rounds.
    Binomial,
}

impl BcastScheme {
    /// All schemes, in the fixed order the tuner enumerates them.
    pub const ALL: [BcastScheme; 3] = [
        BcastScheme::Ring,
        BcastScheme::TwoRing,
        BcastScheme::Binomial,
    ];

    /// Stable lowercase name (used in score tables and cache bytes).
    pub fn name(&self) -> &'static str {
        match self {
            BcastScheme::Ring => "ring",
            BcastScheme::TwoRing => "2ring",
            BcastScheme::Binomial => "binomial",
        }
    }
}

/// Analytic network model.
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// Per-direction link bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-message latency, seconds.
    pub latency: f64,
}

impl Default for NetModel {
    /// FDR InfiniBand 4x: 56 Gb/s signalling → ≈6.8 GB/s effective
    /// unidirectional; ~1.5 µs end-to-end MPI latency.
    fn default() -> Self {
        Self {
            bandwidth: 6.8e9,
            latency: 1.5e-6,
        }
    }
}

impl NetModel {
    /// Point-to-point message time (postal model).
    pub fn p2p(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }

    /// The same rail under injected degradation: bandwidth multiplied by
    /// `bw_factor` (≤ 1, e.g. a flapping link renegotiating width) and
    /// `extra_latency_s` added per message (switch buffer jitter). With
    /// `bw_factor = 1` and `extra_latency_s = 0` the returned model is
    /// bit-identical to `self` — the healthy path costs nothing.
    pub fn degraded(&self, bw_factor: f64, extra_latency_s: f64) -> NetModel {
        assert!(bw_factor > 0.0 && extra_latency_s >= 0.0);
        NetModel {
            bandwidth: self.bandwidth * bw_factor,
            latency: self.latency + extra_latency_s,
        }
    }

    /// Pipelined increasing-ring broadcast of `bytes` to `q - 1` peers:
    /// the message is chunked, so completion at the last peer is one full
    /// transmission plus per-hop pipeline fill. For `q = 1` this is free.
    pub fn ring_bcast(&self, bytes: f64, q: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        let hops = (q - 1) as f64;
        // One full message transmission + per-hop latency + a residual
        // chunk per extra hop (chunking at 1/8 of the message).
        self.latency * hops + bytes / self.bandwidth * (1.0 + 0.125 * (hops - 1.0).max(0.0))
    }

    /// Broadcast of `bytes` to `q - 1` peers under the given scheme.
    /// `Ring` delegates to [`ring_bcast`](Self::ring_bcast) and is
    /// bit-identical to it; the other two reuse the same postal constants
    /// so the schemes are comparable, not separately calibrated.
    pub fn bcast(&self, scheme: BcastScheme, bytes: f64, q: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        match scheme {
            BcastScheme::Ring => self.ring_bcast(bytes, q),
            BcastScheme::TwoRing => {
                // Root feeds two half-rings concurrently: half the hops,
                // but the root's link carries the message twice, so the
                // bandwidth term starts at 2× before pipeline residuals.
                let hops = (q - 1).div_ceil(2) as f64;
                self.latency * hops + bytes / self.bandwidth * (2.0 + 0.125 * (hops - 1.0).max(0.0))
            }
            BcastScheme::Binomial => {
                // ⌈log₂ q⌉ store-and-forward rounds, full message each.
                let rounds = (q as f64).log2().ceil().max(1.0);
                rounds * (self.latency + bytes / self.bandwidth)
            }
        }
    }

    /// HPL long-swap ("spread-roll") of an `NB`-deep row window `cols`
    /// wide over `p` process rows: every process sends/receives ≈
    /// `(p-1)/p` of its share twice (spread + roll), with `log2(p)`-ish
    /// latency stages.
    pub fn long_swap(&self, nb: usize, cols: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let bytes = 8.0 * nb as f64 * cols as f64;
        let share = bytes / p as f64;
        let stages = (p as f64).log2().ceil().max(1.0);
        2.0 * share * (p - 1) as f64 / p as f64 * p as f64 / self.bandwidth / p as f64
            + 2.0 * share / self.bandwidth
            + stages * self.latency
    }

    /// Broadcast of the solved `U` panel (`nb × cols` doubles) down a
    /// process column of `p` nodes.
    pub fn u_bcast(&self, nb: usize, cols: usize, p: usize) -> f64 {
        self.ring_bcast(8.0 * nb as f64 * cols as f64, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_postal_model() {
        let n = NetModel::default();
        let t = n.p2p(6.8e9);
        assert!((t - (1.0 + 1.5e-6)).abs() < 1e-9);
    }

    #[test]
    fn bcast_degenerate_cases() {
        let n = NetModel::default();
        assert_eq!(n.ring_bcast(1e9, 1), 0.0);
        // Two processes: a single hop ≈ p2p.
        let two = n.ring_bcast(1e6, 2);
        assert!((two - n.p2p(1e6)).abs() < 1e-9);
    }

    #[test]
    fn bcast_grows_slowly_with_q() {
        // Pipelining keeps the ring broadcast well under q × p2p.
        let n = NetModel::default();
        let one = n.p2p(1e8);
        let ten = n.ring_bcast(1e8, 10);
        assert!(ten > one);
        assert!(ten < 3.0 * one, "pipelined: {ten} vs naive {}", 9.0 * one);
    }

    #[test]
    fn degraded_identity_is_bit_exact() {
        let n = NetModel::default();
        let same = n.degraded(1.0, 0.0);
        assert_eq!(same.bandwidth.to_bits(), n.bandwidth.to_bits());
        assert_eq!(same.latency.to_bits(), n.latency.to_bits());
        let worse = n.degraded(0.5, 10e-6);
        assert!(worse.p2p(1e8) > n.p2p(1e8));
        assert!(worse.ring_bcast(1e8, 4) > n.ring_bcast(1e8, 4));
    }

    #[test]
    fn ring_scheme_is_bit_identical_to_ring_bcast() {
        let n = NetModel::default();
        for q in 1..=16 {
            for bytes in [0.0, 1e3, 1e6, 1e9] {
                assert_eq!(
                    n.bcast(BcastScheme::Ring, bytes, q).to_bits(),
                    n.ring_bcast(bytes, q).to_bits()
                );
            }
        }
    }

    #[test]
    fn scheme_crossover_matches_intuition() {
        let n = NetModel::default();
        // Large panel, modest row: pipelined ring beats binomial.
        let big = 8.0 * 84_000.0 * 1200.0;
        assert!(n.bcast(BcastScheme::Ring, big, 10) < n.bcast(BcastScheme::Binomial, big, 10));
        // Tiny message, wide row: binomial's log rounds beat the ring's
        // linear latency chain.
        assert!(n.bcast(BcastScheme::Binomial, 64.0, 64) < n.bcast(BcastScheme::Ring, 64.0, 64));
        // All schemes free on a single column.
        for s in BcastScheme::ALL {
            assert_eq!(n.bcast(s, 1e9, 1), 0.0);
        }
    }

    #[test]
    fn long_swap_scales_with_volume() {
        let n = NetModel::default();
        let small = n.long_swap(1200, 10_000, 4);
        let large = n.long_swap(1200, 40_000, 4);
        assert!(large > 3.0 * small);
        assert_eq!(n.long_swap(1200, 40_000, 1), 0.0);
    }

    #[test]
    fn swap_volume_sane_for_84k_case() {
        // Fig. 9's 2×2 grid at N = 84K, NB = 1200: per-column share is
        // 42K columns; the swap should take tens of milliseconds — the
        // "13% of iteration time" scale of exposed swap the paper reports.
        let n = NetModel::default();
        let t = n.long_swap(1200, 42_000, 2);
        assert!((0.01..0.3).contains(&t), "swap time {t}");
    }
}
