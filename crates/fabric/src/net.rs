//! Inter-node network model: single-rail FDR InfiniBand.
//!
//! The cluster results (Table III, Fig. 9) run on "a single rail FDR
//! Infiniband network": ≈6.8 GB/s per direction sustained, ~1 µs MPI
//! latency. The hybrid HPL critical path sees the network through two
//! operations, both given analytic postal-model times here:
//!
//! * **panel broadcast** along a process row (the factored panel of
//!   `m × NB` doubles travels an increasing ring, pipelined);
//! * **swap + U broadcast** along a process column (partial rows are
//!   exchanged and the `NB × cols` U panel is spread — HPL's
//!   "spread-roll" long swap).
//!
//! These enter the per-stage simulation as durations, and the pipelined
//! look-ahead scheme (Fig. 8c) splits them into column strips.

/// Analytic network model.
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// Per-direction link bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-message latency, seconds.
    pub latency: f64,
}

impl Default for NetModel {
    /// FDR InfiniBand 4x: 56 Gb/s signalling → ≈6.8 GB/s effective
    /// unidirectional; ~1.5 µs end-to-end MPI latency.
    fn default() -> Self {
        Self {
            bandwidth: 6.8e9,
            latency: 1.5e-6,
        }
    }
}

impl NetModel {
    /// Point-to-point message time (postal model).
    pub fn p2p(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }

    /// The same rail under injected degradation: bandwidth multiplied by
    /// `bw_factor` (≤ 1, e.g. a flapping link renegotiating width) and
    /// `extra_latency_s` added per message (switch buffer jitter). With
    /// `bw_factor = 1` and `extra_latency_s = 0` the returned model is
    /// bit-identical to `self` — the healthy path costs nothing.
    pub fn degraded(&self, bw_factor: f64, extra_latency_s: f64) -> NetModel {
        assert!(bw_factor > 0.0 && extra_latency_s >= 0.0);
        NetModel {
            bandwidth: self.bandwidth * bw_factor,
            latency: self.latency + extra_latency_s,
        }
    }

    /// Pipelined increasing-ring broadcast of `bytes` to `q - 1` peers:
    /// the message is chunked, so completion at the last peer is one full
    /// transmission plus per-hop pipeline fill. For `q = 1` this is free.
    pub fn ring_bcast(&self, bytes: f64, q: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        let hops = (q - 1) as f64;
        // One full message transmission + per-hop latency + a residual
        // chunk per extra hop (chunking at 1/8 of the message).
        self.latency * hops + bytes / self.bandwidth * (1.0 + 0.125 * (hops - 1.0).max(0.0))
    }

    /// HPL long-swap ("spread-roll") of an `NB`-deep row window `cols`
    /// wide over `p` process rows: every process sends/receives ≈
    /// `(p-1)/p` of its share twice (spread + roll), with `log2(p)`-ish
    /// latency stages.
    pub fn long_swap(&self, nb: usize, cols: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let bytes = 8.0 * nb as f64 * cols as f64;
        let share = bytes / p as f64;
        let stages = (p as f64).log2().ceil().max(1.0);
        2.0 * share * (p - 1) as f64 / p as f64 * p as f64 / self.bandwidth / p as f64
            + 2.0 * share / self.bandwidth
            + stages * self.latency
    }

    /// Broadcast of the solved `U` panel (`nb × cols` doubles) down a
    /// process column of `p` nodes.
    pub fn u_bcast(&self, nb: usize, cols: usize, p: usize) -> f64 {
        self.ring_bcast(8.0 * nb as f64 * cols as f64, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_postal_model() {
        let n = NetModel::default();
        let t = n.p2p(6.8e9);
        assert!((t - (1.0 + 1.5e-6)).abs() < 1e-9);
    }

    #[test]
    fn bcast_degenerate_cases() {
        let n = NetModel::default();
        assert_eq!(n.ring_bcast(1e9, 1), 0.0);
        // Two processes: a single hop ≈ p2p.
        let two = n.ring_bcast(1e6, 2);
        assert!((two - n.p2p(1e6)).abs() < 1e-9);
    }

    #[test]
    fn bcast_grows_slowly_with_q() {
        // Pipelining keeps the ring broadcast well under q × p2p.
        let n = NetModel::default();
        let one = n.p2p(1e8);
        let ten = n.ring_bcast(1e8, 10);
        assert!(ten > one);
        assert!(ten < 3.0 * one, "pipelined: {ten} vs naive {}", 9.0 * one);
    }

    #[test]
    fn degraded_identity_is_bit_exact() {
        let n = NetModel::default();
        let same = n.degraded(1.0, 0.0);
        assert_eq!(same.bandwidth.to_bits(), n.bandwidth.to_bits());
        assert_eq!(same.latency.to_bits(), n.latency.to_bits());
        let worse = n.degraded(0.5, 10e-6);
        assert!(worse.p2p(1e8) > n.p2p(1e8));
        assert!(worse.ring_bcast(1e8, 4) > n.ring_bcast(1e8, 4));
    }

    #[test]
    fn long_swap_scales_with_volume() {
        let n = NetModel::default();
        let small = n.long_swap(1200, 10_000, 4);
        let large = n.long_swap(1200, 40_000, 4);
        assert!(large > 3.0 * small);
        assert_eq!(n.long_swap(1200, 40_000, 1), 0.0);
    }

    #[test]
    fn swap_volume_sane_for_84k_case() {
        // Fig. 9's 2×2 grid at N = 84K, NB = 1200: per-column share is
        // 42K columns; the swap should take tens of milliseconds — the
        // "13% of iteration time" scale of exposed swap the paper reports.
        let n = NetModel::default();
        let t = n.long_swap(1200, 42_000, 2);
        assert!((0.01..0.3).contains(&t), "swap time {t}");
    }
}
