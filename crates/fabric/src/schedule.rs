//! Message-level communication schedules — the typed send/recv plans
//! the cluster simulators' analytic collectives stand for.
//!
//! The per-stage loop of hybrid HPL prices three fabric operations
//! analytically ([`bcast`](crate::NetModel::bcast),
//! [`long_swap`](crate::NetModel::long_swap),
//! [`u_bcast`](crate::NetModel::u_bcast) on [`crate::NetModel`]):
//! closed-form durations with no message-level
//! structure. That is fine for timing, but PRs 4–6 made the *plan*
//! mutable at runtime — patch remaps, wholesale regrids, correlated
//! multi-rank recovery batches — and a plan mistake (a ring that still
//! routes through a dead rank, a receiver whose sender died) is
//! invisible to a duration formula. This module materializes each
//! collective as an explicit [`CommSchedule`]: one ordered program of
//! [`CommOp`]s per rank, matching the algorithm the duration formula
//! assumes, routed around any dead ranks. `phi-lint`'s schedule passes
//! prove the materialized plan deadlock-free and every receiver fed
//! before the simulators are allowed to charge its analytic time.
//!
//! Semantics are rendezvous (synchronous send): a send completes only
//! when its matching receive is posted, the worst case for deadlock —
//! a plan safe under rendezvous is safe under any buffering.

use crate::grid::ProcessGrid;
use crate::net::BcastScheme;

/// Tag space of the panel broadcast along a process row; strip `k` of a
/// pipelined broadcast uses `PANEL_TAG + k`.
pub const PANEL_TAG: u32 = 0x100;
/// Tag space of the long-swap exchange down a process column; doubling
/// round `d` uses `SWAP_TAG + d`.
pub const SWAP_TAG: u32 = 0x200;
/// Tag of the `U` broadcast down a process column.
pub const U_TAG: u32 = 0x300;

/// One typed point-to-point operation in a rank's program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommOp {
    /// Blocking (rendezvous) send of `bytes` to `to` under `tag`.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag (matching is FIFO per `(src, dst, tag)`).
        tag: u32,
        /// Payload size, for conservation accounting.
        bytes: u64,
    },
    /// Blocking receive from `from` under `tag`.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u32,
    },
}

impl CommOp {
    /// The peer rank this operation synchronizes with.
    pub fn peer(&self) -> usize {
        match *self {
            CommOp::Send { to, .. } => to,
            CommOp::Recv { from, .. } => from,
        }
    }

    /// The operation's tag.
    pub fn tag(&self) -> u32 {
        match *self {
            CommOp::Send { tag, .. } | CommOp::Recv { tag, .. } => tag,
        }
    }
}

/// A complete message-level schedule: one ordered op program per rank,
/// plus the liveness map the plan was built against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommSchedule {
    /// Human label (`"panel-bcast ring 10x10"`, …) used in diagnostics.
    pub label: String,
    /// Total ranks of the grid, dead ones included.
    pub nranks: usize,
    /// `live[r]` — whether rank `r` participates. Dead ranks must have
    /// empty programs and appear in nobody's ops.
    pub live: Vec<bool>,
    /// Per-rank op sequences, executed strictly in order.
    pub programs: Vec<Vec<CommOp>>,
}

impl CommSchedule {
    /// An empty schedule over `nranks` all-live ranks.
    pub fn empty(label: impl Into<String>, nranks: usize) -> Self {
        Self {
            label: label.into(),
            nranks,
            live: vec![true; nranks],
            programs: vec![Vec::new(); nranks],
        }
    }

    /// Appends `op` to rank `r`'s program.
    pub fn push(&mut self, r: usize, op: CommOp) {
        self.programs[r].push(op);
    }

    /// Total operations across all ranks.
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(Vec::len).sum()
    }

    /// Live rank count.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }
}

/// One communication regime of a (possibly fault-degraded) run: the
/// grid in force, which original ranks are dead, and whether the
/// survivors reshaped wholesale onto a fallback grid. The simulators
/// emit a sequence of these ([`crate::grid::RemapStrategy`] decides the
/// transitions) and the schedule lint verifies every one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleShape {
    /// The grid schedules are built on. After a wholesale reshape this
    /// is the fallback grid and `dead_ranks` is empty (the fallback
    /// grid renumbers survivors densely).
    pub grid: ProcessGrid,
    /// Ranks of `grid` that are dead and must be routed around
    /// (patch-remap regimes keep the original shape).
    pub dead_ranks: Vec<usize>,
    /// Whether this regime sits on a wholesale fallback grid.
    pub reshaped: bool,
}

impl ScheduleShape {
    /// A healthy shape: everyone lives.
    pub fn healthy(grid: ProcessGrid) -> Self {
        Self {
            grid,
            dead_ranks: Vec::new(),
            reshaped: false,
        }
    }

    /// Short description for gate tables.
    pub fn label(&self) -> String {
        if self.reshaped {
            format!("{}x{} reshaped", self.grid.p, self.grid.q)
        } else if self.dead_ranks.is_empty() {
            format!("{}x{}", self.grid.p, self.grid.q)
        } else {
            format!(
                "{}x{} -{} dead",
                self.grid.p,
                self.grid.q,
                self.dead_ranks.len()
            )
        }
    }
}

/// Builds message-level schedules on a grid, routing around dead ranks.
#[derive(Clone, Debug)]
pub struct ScheduleBuilder {
    grid: ProcessGrid,
    live: Vec<bool>,
}

impl ScheduleBuilder {
    /// A builder over a fully-live grid.
    pub fn new(grid: ProcessGrid) -> Self {
        Self {
            live: vec![true; grid.size()],
            grid,
        }
    }

    /// A builder for a shape: dead ranks are excluded from every
    /// collective's membership.
    pub fn for_shape(shape: &ScheduleShape) -> Self {
        let mut b = Self::new(shape.grid);
        for &r in &shape.dead_ranks {
            if r < b.live.len() {
                b.live[r] = false;
            }
        }
        b
    }

    /// Marks `rank` dead.
    pub fn kill(mut self, rank: usize) -> Self {
        self.live[rank] = false;
        self
    }

    fn fresh(&self, label: String) -> CommSchedule {
        CommSchedule {
            label,
            nranks: self.grid.size(),
            live: self.live.clone(),
            programs: vec![Vec::new(); self.grid.size()],
        }
    }

    /// Live ranks of process row `p`, in column order.
    fn live_row(&self, p: usize) -> Vec<usize> {
        (0..self.grid.q)
            .map(|q| p * self.grid.q + q)
            .filter(|&r| self.live[r])
            .collect()
    }

    /// Live ranks of process column `q`, in row order.
    fn live_col(&self, q: usize) -> Vec<usize> {
        (0..self.grid.p)
            .map(|p| p * self.grid.q + q)
            .filter(|&r| self.live[r])
            .collect()
    }

    /// Rotates `members` so the live member at-or-after column `root`
    /// leads (the broadcast root; a dead root's duty falls to the next
    /// live column, exactly as the ring order would visit it).
    fn rooted(grid: &ProcessGrid, members: &[usize], root_col: usize) -> Vec<usize> {
        if members.is_empty() {
            return Vec::new();
        }
        let pos = members
            .iter()
            .position(|&r| r % grid.q >= root_col)
            .unwrap_or(0);
        let mut out = Vec::with_capacity(members.len());
        out.extend_from_slice(&members[pos..]);
        out.extend_from_slice(&members[..pos]);
        out
    }

    /// Appends one broadcast of `bytes` from the member at the head of
    /// `ring` to the rest, under `scheme`, into `s`.
    fn bcast_into(s: &mut CommSchedule, scheme: BcastScheme, ring: &[usize], bytes: u64, tag: u32) {
        let m = ring.len();
        if m <= 1 {
            return;
        }
        match scheme {
            BcastScheme::Ring => {
                // Increasing ring: root sends to next; middles receive
                // then forward; the last member only receives.
                for i in 0..m {
                    if i > 0 {
                        s.push(
                            ring[i],
                            CommOp::Recv {
                                from: ring[i - 1],
                                tag,
                            },
                        );
                    }
                    if i + 1 < m {
                        s.push(
                            ring[i],
                            CommOp::Send {
                                to: ring[i + 1],
                                tag,
                                bytes,
                            },
                        );
                    }
                }
            }
            BcastScheme::TwoRing => {
                // Root feeds two chains: the first half forward, the
                // second half walked from the far end backward.
                let half = (m - 1).div_ceil(2);
                let fwd: Vec<usize> = ring[..=half].to_vec();
                let mut bwd: Vec<usize> = vec![ring[0]];
                bwd.extend(ring[half + 1..].iter().rev());
                for chain in [&fwd, &bwd] {
                    for i in 0..chain.len() {
                        if i > 0 {
                            s.push(
                                chain[i],
                                CommOp::Recv {
                                    from: chain[i - 1],
                                    tag,
                                },
                            );
                        }
                        if i + 1 < chain.len() {
                            s.push(
                                chain[i],
                                CommOp::Send {
                                    to: chain[i + 1],
                                    tag,
                                    bytes,
                                },
                            );
                        }
                    }
                }
            }
            BcastScheme::Binomial => {
                // Round k: members with index < 2^k send to index + 2^k.
                let mut dist = 1usize;
                while dist < m {
                    for i in 0..dist.min(m) {
                        if i + dist < m {
                            s.push(
                                ring[i],
                                CommOp::Send {
                                    to: ring[i + dist],
                                    tag,
                                    bytes,
                                },
                            );
                            s.push(ring[i + dist], CommOp::Recv { from: ring[i], tag });
                        }
                    }
                    dist *= 2;
                }
            }
        }
    }

    /// Panel broadcast along every process row: the live member of
    /// column `root_col` (or the next live column) roots a `scheme`
    /// broadcast of `bytes` to its row. `strips` splits the message
    /// into that many sequential per-strip broadcasts (the pipelined
    /// look-ahead shape); each strip uses `PANEL_TAG + strip`.
    pub fn panel_bcast(
        &self,
        scheme: BcastScheme,
        root_col: usize,
        bytes: u64,
        strips: usize,
    ) -> CommSchedule {
        let strips = strips.max(1);
        let mut s = self.fresh(format!(
            "panel-bcast {} root-col {} x{} strips on {}x{}",
            scheme.name(),
            root_col,
            strips,
            self.grid.p,
            self.grid.q
        ));
        let strip_bytes = (bytes / strips as u64).max(1);
        for p in 0..self.grid.p {
            let ring = Self::rooted(&self.grid, &self.live_row(p), root_col);
            for k in 0..strips {
                Self::bcast_into(&mut s, scheme, &ring, strip_bytes, PANEL_TAG + k as u32);
            }
        }
        s
    }

    /// Long-swap ("spread-roll") exchange down every process column:
    /// recursive-doubling pairwise exchanges among the live rows, the
    /// lower partner sending first — the head-to-head-safe idiom. Round
    /// `d` uses `SWAP_TAG + d`.
    pub fn long_swap(&self, bytes: u64) -> CommSchedule {
        let mut s = self.fresh(format!("long-swap on {}x{}", self.grid.p, self.grid.q));
        for q in 0..self.grid.q {
            let members = self.live_col(q);
            let m = members.len();
            let mut dist = 1usize;
            let mut round = 0u32;
            while dist < m {
                for i in 0..m {
                    let j = i ^ dist;
                    if j >= m || j <= i {
                        continue;
                    }
                    let (lo, hi) = (members[i], members[j]);
                    let tag = SWAP_TAG + round;
                    // Lower sends first / higher receives first: no
                    // head-to-head rendezvous.
                    s.push(lo, CommOp::Send { to: hi, tag, bytes });
                    s.push(lo, CommOp::Recv { from: hi, tag });
                    s.push(hi, CommOp::Recv { from: lo, tag });
                    s.push(hi, CommOp::Send { to: lo, tag, bytes });
                }
                dist *= 2;
                round += 1;
            }
        }
        s
    }

    /// `U` broadcast down every process column: a pipelined ring from
    /// the live member of row `root_row` (or the next live row).
    pub fn u_bcast(&self, root_row: usize, bytes: u64) -> CommSchedule {
        let mut s = self.fresh(format!(
            "u-bcast root-row {} on {}x{}",
            root_row, self.grid.p, self.grid.q
        ));
        for q in 0..self.grid.q {
            let members = self.live_col(q);
            let pos = members
                .iter()
                .position(|&r| r / self.grid.q >= root_row)
                .unwrap_or(0);
            let mut ring = Vec::with_capacity(members.len());
            ring.extend_from_slice(&members[pos..]);
            ring.extend_from_slice(&members[..pos]);
            Self::bcast_into(&mut s, BcastScheme::Ring, &ring, bytes, U_TAG);
        }
        s
    }

    /// The full per-stage plan: panel broadcast (split into `strips`
    /// under the pipelined look-ahead), long swap, then `U` broadcast —
    /// concatenated in the order every rank executes them.
    pub fn stage_schedule(
        &self,
        scheme: BcastScheme,
        root_col: usize,
        root_row: usize,
        panel_bytes: u64,
        swap_bytes: u64,
        strips: usize,
    ) -> CommSchedule {
        let mut s = self.panel_bcast(scheme, root_col, panel_bytes, strips);
        s.label = format!(
            "stage {} strips={} on {}x{} ({} dead)",
            scheme.name(),
            strips.max(1),
            self.grid.p,
            self.grid.q,
            self.live.iter().filter(|&&l| !l).count()
        );
        for (r, prog) in self.long_swap(swap_bytes).programs.into_iter().enumerate() {
            s.programs[r].extend(prog);
        }
        for (r, prog) in self
            .u_bcast(root_row, swap_bytes)
            .programs
            .into_iter()
            .enumerate()
        {
            s.programs[r].extend(prog);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bcast_has_linear_op_count_and_skips_dead() {
        let g = ProcessGrid::new(1, 5);
        let s = ScheduleBuilder::new(g).panel_bcast(BcastScheme::Ring, 0, 1000, 1);
        // 4 sends + 4 recvs along the chain.
        assert_eq!(s.total_ops(), 8);
        let dead = ScheduleBuilder::new(g)
            .kill(2)
            .panel_bcast(BcastScheme::Ring, 0, 1000, 1);
        assert_eq!(dead.total_ops(), 6, "ring over 4 live members");
        assert!(dead.programs[2].is_empty());
        for prog in &dead.programs {
            for op in prog {
                assert_ne!(op.peer(), 2, "no op may address the dead rank");
            }
        }
    }

    #[test]
    fn dead_root_duty_falls_to_next_live_column() {
        let g = ProcessGrid::new(1, 4);
        let s = ScheduleBuilder::new(g)
            .kill(1)
            .panel_bcast(BcastScheme::Ring, 1, 64, 1);
        // Rank 2 roots: it only sends, never receives.
        assert!(matches!(s.programs[2][0], CommOp::Send { .. }));
        assert!(s.programs[2]
            .iter()
            .all(|op| matches!(op, CommOp::Send { .. })));
    }

    #[test]
    fn binomial_and_tworing_cover_every_member() {
        for scheme in [BcastScheme::TwoRing, BcastScheme::Binomial] {
            for q in 2..=9 {
                let g = ProcessGrid::new(1, q);
                let s = ScheduleBuilder::new(g).panel_bcast(scheme, 0, 512, 1);
                // Every non-root member receives exactly once.
                for r in 1..q {
                    let recvs = s.programs[r]
                        .iter()
                        .filter(|op| matches!(op, CommOp::Recv { .. }))
                        .count();
                    assert_eq!(recvs, 1, "{} q={} rank {}", scheme.name(), q, r);
                }
                let sends: usize = s
                    .programs
                    .iter()
                    .flatten()
                    .filter(|op| matches!(op, CommOp::Send { .. }))
                    .count();
                assert_eq!(sends, q - 1, "{} q={}", scheme.name(), q);
            }
        }
    }

    #[test]
    fn long_swap_pairs_are_symmetric() {
        let g = ProcessGrid::new(4, 1);
        let s = ScheduleBuilder::new(g).long_swap(256);
        // Recursive doubling over 4 rows: 2 rounds x 2 pairs x 4 ops.
        assert_eq!(s.total_ops(), 16);
        let sends: usize = s
            .programs
            .iter()
            .flatten()
            .filter(|op| matches!(op, CommOp::Send { .. }))
            .count();
        assert_eq!(sends, 8);
    }

    #[test]
    fn stage_schedule_concatenates_all_three_collectives() {
        let g = ProcessGrid::new(2, 2);
        let b = ScheduleBuilder::new(g);
        let st = b.stage_schedule(BcastScheme::Ring, 0, 0, 9600, 4800, 3);
        let parts = b.panel_bcast(BcastScheme::Ring, 0, 9600, 3).total_ops()
            + b.long_swap(4800).total_ops()
            + b.u_bcast(0, 4800).total_ops();
        assert_eq!(st.total_ops(), parts);
        assert!(st.label.contains("stage"));
    }

    #[test]
    fn shape_labels_and_builder_roundtrip() {
        let g = ProcessGrid::new(4, 8);
        assert_eq!(ScheduleShape::healthy(g).label(), "4x8");
        let shape = ScheduleShape {
            grid: g,
            dead_ranks: vec![5, 9],
            reshaped: false,
        };
        assert_eq!(shape.label(), "4x8 -2 dead");
        let b = ScheduleBuilder::for_shape(&shape);
        let s = b.stage_schedule(BcastScheme::Binomial, 1, 1, 8192, 4096, 1);
        assert!(s.programs[5].is_empty() && s.programs[9].is_empty());
        assert_eq!(s.live_count(), 30);
    }
}
