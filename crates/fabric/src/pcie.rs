//! PCIe link and memory-mapped offload queues (paper Fig. 10b).
//!
//! Offload DGEMM moves data in three ways, all modeled here:
//!
//! 1. the host DMAs packed input tiles to GDDR (steps 2–3 of Fig. 10b);
//! 2. requests travel through a **memory-mapped request queue** that the
//!    card polls (steps 4–5), and results return via a response queue
//!    (steps 7–8);
//! 3. output `C` tiles DMA back to host memory (step 9).
//!
//! The tile-size rule of Section V-B falls out of these numbers: to hide
//! the transfer of an `Mt × Nt` output tile behind its own compute,
//! `Kt > 4 · P_dgemm / BW_pcie` — with `P ≈ 950` GFLOPS and `BW ≈ 4` GB/s
//! that gives `Kt ≥ 950`, and the paper uses `Kt = 1200`.

use phi_des::Link;
use std::collections::VecDeque;

/// PCIe link parameters.
#[derive(Clone, Copy, Debug)]
pub struct PcieConfig {
    /// Nominal unidirectional bandwidth, bytes/s (6 GB/s in Table I).
    pub nominal_bw: f64,
    /// Effective bandwidth under contention with host swapping / DGEMM
    /// (footnote 4: "~4 GB/s ... PCIe transfers compete for memory
    /// bandwidth"), bytes/s.
    pub effective_bw: f64,
    /// Per-DMA latency, seconds.
    pub latency: f64,
    /// One-way latency of a queue slot becoming visible to the poller
    /// (host write → card poll hit), seconds.
    pub queue_poll_latency: f64,
}

impl Default for PcieConfig {
    fn default() -> Self {
        Self {
            nominal_bw: 6.0e9,
            effective_bw: 4.0e9,
            latency: 10e-6,
            queue_poll_latency: 2e-6,
        }
    }
}

impl PcieConfig {
    /// The paper's lower bound on the offload tile depth:
    /// `Kt > 4 · P_dgemm / BW_pcie` (Section V-B), with `P` in FLOP/s and
    /// the effective PCIe bandwidth.
    pub fn min_kt(&self, dgemm_flops: f64) -> f64 {
        4.0 * dgemm_flops / self.effective_bw
    }

    /// The link during a CRC-retry storm: each replayed TLP window adds
    /// `stall_s` of recovery time per DMA (the LTSSM replays the packet
    /// after a receiver NAK), and the replays consume a matching slice of
    /// the wire, derating both bandwidths by `1 / (1 + retry_fraction)`.
    /// With `stall_s = 0` the returned config is bit-identical to `self`.
    pub fn with_crc_stall(&self, stall_s: f64, retry_fraction: f64) -> PcieConfig {
        assert!(stall_s >= 0.0 && (0.0..1.0).contains(&retry_fraction));
        PcieConfig {
            nominal_bw: self.nominal_bw / (1.0 + retry_fraction),
            effective_bw: self.effective_bw / (1.0 + retry_fraction),
            latency: self.latency + stall_s,
            queue_poll_latency: self.queue_poll_latency,
        }
    }
}

/// A PCIe attachment: one serialized link per direction, as DMA reads and
/// writes proceed concurrently on PCIe's full-duplex lanes.
#[derive(Clone, Copy, Debug)]
pub struct PcieLink {
    cfg: PcieConfig,
    /// Host → device direction.
    pub to_device: Link,
    /// Device → host direction.
    pub to_host: Link,
}

impl PcieLink {
    /// Builds the link pair using the *effective* bandwidth (the correct
    /// choice whenever the host is simultaneously swapping — i.e., inside
    /// HPL).
    pub fn new(cfg: PcieConfig) -> Self {
        Self {
            cfg,
            to_device: Link::new(cfg.effective_bw, cfg.latency),
            to_host: Link::new(cfg.effective_bw, cfg.latency),
        }
    }

    /// Builds the link pair at nominal bandwidth (microbenchmarks with an
    /// idle host).
    pub fn new_nominal(cfg: PcieConfig) -> Self {
        Self {
            cfg,
            to_device: Link::new(cfg.nominal_bw, cfg.latency),
            to_host: Link::new(cfg.nominal_bw, cfg.latency),
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> PcieConfig {
        self.cfg
    }
}

/// A memory-mapped FIFO queue between host and card (Fig. 10b).
///
/// Functionally a `VecDeque`; temporally, an entry enqueued at time `t`
/// becomes visible to the polling side at `t + queue_poll_latency`.
#[derive(Clone, Debug)]
pub struct MmQueue<T> {
    entries: VecDeque<(f64, T)>,
    poll_latency: f64,
    enqueued: u64,
    dequeued: u64,
    high_water: usize,
}

impl<T> MmQueue<T> {
    /// A queue whose entries become visible `poll_latency` seconds after
    /// enqueue.
    pub fn new(poll_latency: f64) -> Self {
        Self {
            entries: VecDeque::new(),
            poll_latency,
            enqueued: 0,
            dequeued: 0,
            high_water: 0,
        }
    }

    /// Host side: enqueue `item` at time `now`.
    pub fn enqueue(&mut self, now: f64, item: T) {
        self.entries.push_back((now + self.poll_latency, item));
        self.enqueued += 1;
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Poller side: dequeue the head entry if it is visible at `now`.
    pub fn poll(&mut self, now: f64) -> Option<T> {
        match self.entries.front() {
            Some(&(visible_at, _)) if visible_at <= now => {
                self.dequeued += 1;
                self.entries.pop_front().map(|(_, item)| item)
            }
            _ => None,
        }
    }

    /// Earliest time the head entry becomes visible, if any.
    pub fn next_visible_at(&self) -> Option<f64> {
        self.entries.front().map(|&(t, _)| t)
    }

    /// Entries currently queued (visible or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (total enqueued, total dequeued, high-water mark).
    pub fn stats(&self) -> (u64, u64, usize) {
        (self.enqueued, self.dequeued, self.high_water)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_kt_matches_paper() {
        // "BWpcie is ≈4 GB/s and Pdgm is ≈950 GFLOPS. As a result, the
        // panel width Kt should at least be 950."
        let cfg = PcieConfig::default();
        let kt = cfg.min_kt(950e9);
        assert!((kt - 950.0).abs() < 1.0, "Kt bound = {kt}");
        // And the paper's choice of 1200 exceeds the bound.
        assert!(1200.0 > kt);
    }

    #[test]
    fn crc_stall_identity_is_bit_exact() {
        let cfg = PcieConfig::default();
        let same = cfg.with_crc_stall(0.0, 0.0);
        assert_eq!(same.effective_bw.to_bits(), cfg.effective_bw.to_bits());
        assert_eq!(same.nominal_bw.to_bits(), cfg.nominal_bw.to_bits());
        assert_eq!(same.latency.to_bits(), cfg.latency.to_bits());
        let storm = cfg.with_crc_stall(100e-6, 0.2);
        assert!(storm.latency > cfg.latency);
        assert!(storm.effective_bw < cfg.effective_bw);
        // A storm tightens the Kt bound: slower wire needs deeper tiles.
        assert!(storm.min_kt(950e9) > cfg.min_kt(950e9));
    }

    #[test]
    fn directions_are_independent() {
        let mut link = PcieLink::new(PcieConfig::default());
        let (_, up_end) = link.to_device.transfer(0.0, 4.0e9);
        let (down_start, _) = link.to_host.transfer(0.0, 4.0e9);
        // The downstream transfer does not wait for the upstream one.
        assert_eq!(down_start, 0.0);
        assert!(up_end > 0.9);
    }

    #[test]
    fn effective_slower_than_nominal() {
        let cfg = PcieConfig::default();
        let mut eff = PcieLink::new(cfg);
        let mut nom = PcieLink::new_nominal(cfg);
        let (_, t_eff) = eff.to_device.transfer(0.0, 6.0e9);
        let (_, t_nom) = nom.to_device.transfer(0.0, 6.0e9);
        assert!(t_eff > t_nom);
    }

    #[test]
    fn queue_visibility_delay() {
        let mut q = MmQueue::new(2e-6);
        q.enqueue(1.0, "dgemm-tile-0");
        assert_eq!(q.poll(1.0), None, "not visible yet");
        assert_eq!(q.poll(1.0 + 2e-6), Some("dgemm-tile-0"));
        assert_eq!(q.poll(2.0), None, "drained");
    }

    #[test]
    fn queue_is_fifo() {
        let mut q = MmQueue::new(0.0);
        q.enqueue(0.0, 1);
        q.enqueue(0.0, 2);
        q.enqueue(0.0, 3);
        assert_eq!(q.poll(0.0), Some(1));
        assert_eq!(q.poll(0.0), Some(2));
        assert_eq!(q.poll(0.0), Some(3));
    }

    #[test]
    fn queue_stats_track_high_water() {
        let mut q = MmQueue::new(0.0);
        for i in 0..5 {
            q.enqueue(0.0, i);
        }
        q.poll(0.0);
        let (enq, deq, hw) = q.stats();
        assert_eq!((enq, deq, hw), (5, 1, 5));
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
    }

    #[test]
    fn next_visible_supports_event_scheduling() {
        let mut q = MmQueue::new(5e-6);
        assert_eq!(q.next_visible_at(), None);
        q.enqueue(1.0, ());
        assert_eq!(q.next_visible_at(), Some(1.0 + 5e-6));
    }
}
