//! Communication substrate for the hybrid and multi-node Linpack
//! flavours.
//!
//! * [`pcie`] — the host ↔ coprocessor path: a serialized PCIe link with
//!   the paper's effective-bandwidth distinction (6 GB/s nominal, ≈4 GB/s
//!   when DMA competes with swapping and host DGEMM for memory bandwidth
//!   — footnote 4), plus the memory-mapped request/response queues of
//!   Fig. 10b through which the host enqueues offload-DGEMM work and the
//!   card polls for it.
//! * [`grid`] — the P × Q process grid of HPL: coordinate algebra,
//!   block-cyclic ownership, and ring orderings for broadcasts.
//! * [`net`] — the FDR InfiniBand model and analytic times for the two
//!   collectives hybrid HPL exposes on its critical path: the panel
//!   broadcast along a process row and the `U`/swap exchange along a
//!   process column (Section V-A's "U broadcast" and "row swapping").
//! * [`schedule`] — the same collectives materialized as message-level
//!   send/recv programs ([`CommSchedule`]), routed around dead ranks,
//!   so `phi-lint`'s schedule passes can prove every plan the
//!   simulators emit deadlock-free before its analytic time is charged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod net;
pub mod pcie;
pub mod schedule;

pub use grid::{GridCoord, GridError, PatchRemap, ProcessGrid, RemapStrategy};
pub use net::{BcastScheme, HaloSpec, NetModel};
pub use pcie::{MmQueue, PcieConfig, PcieLink};
pub use schedule::{CommOp, CommSchedule, ScheduleBuilder, ScheduleShape};
