//! The P × Q process grid of HPL.
//!
//! HPL distributes the matrix block-cyclically over a `P × Q` grid of
//! processes: block row `i` belongs to process row `i mod P`, block
//! column `j` to process column `j mod Q`. Table III identifies runs by
//! their `P` and `Q` ("the number of used nodes can be derived by
//! multiplying P and Q"); the 100-node run is a 10 × 10 grid.

/// How a cluster remaps block-cyclic ownership after a host-rank
/// death.
///
/// The §V rebalance argument — minimize the data that moves on a
/// reconfiguration — applies to recovery too: the MIC deployment
/// studies (arXiv:1308.3123, arXiv:1310.5842) put fabric transfer
/// volume at the top of exactly the cost regime our recovery constants
/// live in, so the default strategy moves only what the dead rank
/// owned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RemapStrategy {
    /// Re-form the squarest [`ProcessGrid::fallback_grid`] the
    /// survivors allow and redistribute the whole trailing matrix to
    /// its block-cyclic ownership — every surviving rank's blocks move.
    Wholesale,
    /// Locality-preserving [`ProcessGrid::patch_remap`]: every
    /// survivor's ownership stays fixed and only the dead rank's
    /// block-cyclic share is dealt out round-robin — ~`P·Q×` less
    /// modeled traffic, paid for with a mild per-rank load imbalance.
    /// Falls back to [`RemapStrategy::Wholesale`] when the survivor
    /// count forces a reshape (more than 1/8 of the grid dead).
    #[default]
    Patch,
}

impl RemapStrategy {
    /// Short label for tables (`patch` / `whsl`).
    pub fn label(&self) -> &'static str {
        match self {
            RemapStrategy::Wholesale => "whsl",
            RemapStrategy::Patch => "patch",
        }
    }
}

/// Why a grid recovery operation cannot be performed. The panicking
/// entry points ([`ProcessGrid::fallback_grid`],
/// [`ProcessGrid::patch_remap`]) wrap the `try_` variants and panic
/// with exactly this error's message, so callers that validated their
/// inputs and callers that want a typed result see the same contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridError {
    /// `fallback_grid(0)`: no survivors to re-form a grid from.
    NoSurvivors,
    /// `patch_remap(dead_rank)` with `dead_rank >= size`: the rank is
    /// not in the grid.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The grid's size.
        size: usize,
    },
    /// `patch_remap` on a 1×1 grid: no survivors to patch onto.
    SingletonGrid,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::NoSurvivors => write!(f, "no survivors to re-form a grid from"),
            GridError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} not in the grid of {size} processes")
            }
            GridError::SingletonGrid => write!(f, "no survivors to patch onto"),
        }
    }
}

impl std::error::Error for GridError {}

/// Position of a process in the grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridCoord {
    /// Row index in `0..P`.
    pub p: usize,
    /// Column index in `0..Q`.
    pub q: usize,
}

/// A `P × Q` process grid with block-cyclic ownership.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessGrid {
    /// Process rows.
    pub p: usize,
    /// Process columns.
    pub q: usize,
}

impl ProcessGrid {
    /// Builds a grid; both dimensions must be positive.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "degenerate grid {p}x{q}");
        Self { p, q }
    }

    /// Number of processes.
    pub fn size(&self) -> usize {
        self.p * self.q
    }

    /// Linear rank of a coordinate (row-major).
    pub fn rank(&self, c: GridCoord) -> usize {
        debug_assert!(c.p < self.p && c.q < self.q);
        c.p * self.q + c.q
    }

    /// Coordinate of a linear rank.
    pub fn coord(&self, rank: usize) -> GridCoord {
        debug_assert!(rank < self.size());
        GridCoord {
            p: rank / self.q,
            q: rank % self.q,
        }
    }

    /// Process column owning global block-column `j` (block-cyclic).
    pub fn owner_col(&self, j: usize) -> usize {
        j % self.q
    }

    /// Process row owning global block-row `i` (block-cyclic).
    pub fn owner_row(&self, i: usize) -> usize {
        i % self.p
    }

    /// Number of block-columns from a total of `nblocks` owned by process
    /// column `q` (block-cyclic count).
    pub fn blocks_owned_col(&self, q: usize, nblocks: usize) -> usize {
        debug_assert!(q < self.q);
        nblocks / self.q + usize::from(nblocks % self.q > q)
    }

    /// Number of block-rows from a total of `nblocks` owned by process
    /// row `p`.
    pub fn blocks_owned_row(&self, p: usize, nblocks: usize) -> usize {
        debug_assert!(p < self.p);
        nblocks / self.p + usize::from(nblocks % self.p > p)
    }

    /// Local trailing extent: of the global blocks `first..nblocks`, how
    /// many does process row `p` own? Used to size each node's share of a
    /// trailing update. Closed form — this sits on the per-stage loop of
    /// every cluster simulation, and the autotuner evaluates thousands of
    /// such runs.
    pub fn trailing_blocks_row(&self, p: usize, first: usize, nblocks: usize) -> usize {
        count_congruent(first, nblocks, p, self.p)
    }

    /// Same along columns.
    pub fn trailing_blocks_col(&self, q: usize, first: usize, nblocks: usize) -> usize {
        count_congruent(first, nblocks, q, self.q)
    }

    /// Ring order of a process row starting after `root` — the increasing
    /// ring HPL's panel broadcast walks.
    pub fn row_ring(&self, root_q: usize) -> Vec<usize> {
        (1..self.q).map(|i| (root_q + i) % self.q).collect()
    }

    /// Best grid the `survivors` ranks left after a host death can
    /// re-form. Survivor counts rarely factor into anything rectangular
    /// (99 does, 97 is prime), so up to 1/8 of the survivors may be
    /// idled to reach a better shape: every process count `m` in
    /// `(survivors − survivors/8) ..= survivors` is scored with its
    /// squarest factorization `p × q = m` (`p ≤ q`) as
    /// `m · sqrt(p / q)` — work capacity discounted by aspect-ratio
    /// imbalance, the same trade HPL's own grid advice makes — and the
    /// best score wins (larger `m` on ties). 99 survivors stay 9 × 11;
    /// a prime 97 idles seven ranks to re-form a near-square 9 × 10.
    pub fn fallback_grid(survivors: usize) -> Self {
        match Self::try_fallback_grid(survivors) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`Self::fallback_grid`]: returns
    /// [`GridError::NoSurvivors`] for `survivors == 0` instead of
    /// panicking. Recovery paths that derive the survivor count from
    /// untrusted fault plans should prefer this.
    pub fn try_fallback_grid(survivors: usize) -> Result<Self, GridError> {
        if survivors == 0 {
            return Err(GridError::NoSurvivors);
        }
        let floor = survivors - survivors / 8;
        let mut best = (Self::new(1, 1), f64::NEG_INFINITY);
        for m in (floor..=survivors).rev() {
            let g = squarest(m);
            let score = m as f64 * (g.p as f64 / g.q as f64).sqrt();
            if score > best.1 {
                best = (g, score);
            }
        }
        Ok(best.0)
    }

    /// Locality-preserving remap after the death of `dead_rank`: the
    /// grid keeps its shape, every surviving rank keeps its block-cyclic
    /// ownership, and only the dead rank's blocks are dealt out to the
    /// survivors. The returned [`PatchRemap`] prices that move in O(1).
    ///
    /// # Panics
    /// Panics with the corresponding [`GridError`] message when
    /// `dead_rank` is out of range ([`GridError::RankOutOfRange`]) or
    /// the grid has a single process — nobody left to absorb the share
    /// ([`GridError::SingletonGrid`]).
    pub fn patch_remap(&self, dead_rank: usize) -> PatchRemap {
        match self.try_patch_remap(dead_rank) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`Self::patch_remap`]: the same remap as a typed
    /// result, rejecting a foreign `dead_rank` and the singleton grid.
    pub fn try_patch_remap(&self, dead_rank: usize) -> Result<PatchRemap, GridError> {
        if dead_rank >= self.size() {
            return Err(GridError::RankOutOfRange {
                rank: dead_rank,
                size: self.size(),
            });
        }
        if self.size() <= 1 {
            return Err(GridError::SingletonGrid);
        }
        Ok(PatchRemap {
            grid: *self,
            dead: self.coord(dead_rank),
        })
    }

    /// Per-rank load factor on the trailing update after `dead` ranks
    /// have been patched out: the survivors absorb the dead ranks'
    /// block-cyclic share round-robin, so each carries
    /// `size / (size − dead)` of its balanced load. `1.0` exactly when
    /// nothing died.
    ///
    /// # Panics
    /// Panics when `dead >= size` — a patched grid needs a survivor.
    pub fn patch_imbalance(&self, dead: usize) -> f64 {
        assert!(dead < self.size(), "patched out the whole grid");
        self.size() as f64 / (self.size() - dead) as f64
    }
}

/// Priced outcome of [`ProcessGrid::patch_remap`]: which blocks move
/// when one rank's share is dealt out to the survivors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatchRemap {
    /// The grid, shape unchanged — survivors keep their coordinates.
    pub grid: ProcessGrid,
    /// Coordinate of the rank whose blocks move.
    pub dead: GridCoord,
}

impl PatchRemap {
    /// Blocks of the trailing submatrix `first..nblocks` (in block
    /// units, both dimensions) owned by the dead rank — exactly the
    /// blocks a locality-preserving recovery moves. Closed form,
    /// mirroring the trailing-count math the per-stage loop uses: the
    /// dead rank owns the block rows `≡ dead.p (mod P)` crossed with
    /// the block columns `≡ dead.q (mod Q)`.
    pub fn moved_trailing_blocks(&self, first: usize, nblocks: usize) -> usize {
        self.grid.trailing_blocks_row(self.dead.p, first, nblocks)
            * self.grid.trailing_blocks_col(self.dead.q, first, nblocks)
    }

    /// Element-exact extent of the dead rank's trailing share of an
    /// `n × n` matrix tiled in `nb × nb` blocks: the block counts of
    /// [`Self::moved_trailing_blocks`] scaled to elements, with the
    /// final partial block clipped to the matrix edge when the dead
    /// coordinate owns it. Summed over all ranks this tiles the
    /// trailing `(n - first·nb)²` elements exactly, so a patch never
    /// ships more than a wholesale redistribution.
    pub fn moved_trailing_elements(
        &self,
        first: usize,
        nblocks: usize,
        nb: usize,
        n: usize,
    ) -> f64 {
        if nblocks == 0 {
            return 0.0;
        }
        let overhang = (nblocks * nb).saturating_sub(n) as f64;
        let rows = self.grid.trailing_blocks_row(self.dead.p, first, nblocks);
        let cols = self.grid.trailing_blocks_col(self.dead.q, first, nblocks);
        let rows_e = (rows * nb) as f64
            - if rows > 0 && self.grid.owner_row(nblocks - 1) == self.dead.p {
                overhang
            } else {
                0.0
            };
        let cols_e = (cols * nb) as f64
            - if cols > 0 && self.grid.owner_col(nblocks - 1) == self.dead.q {
                overhang
            } else {
                0.0
            };
        rows_e * cols_e
    }

    /// Blocks a wholesale redistribution of the same trailing
    /// submatrix moves: all of them.
    pub fn wholesale_trailing_blocks(first: usize, nblocks: usize) -> usize {
        let t = nblocks.saturating_sub(first);
        t * t
    }
}

/// Squarest `p × q = m` factorization with `p ≤ q`.
fn squarest(m: usize) -> ProcessGrid {
    let mut p = (m as f64).sqrt() as usize;
    while p > 1 && !m.is_multiple_of(p) {
        p -= 1;
    }
    ProcessGrid::new(p.max(1), m / p.max(1))
}

/// Count of `i` in `first..nblocks` with `i % p == r`.
fn count_congruent(first: usize, nblocks: usize, r: usize, p: usize) -> usize {
    let len = nblocks.saturating_sub(first);
    let off = (r + p - first % p) % p;
    if off >= len {
        0
    } else {
        (len - off - 1) / p + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let g = ProcessGrid::new(3, 4);
        assert_eq!(g.size(), 12);
        for r in 0..12 {
            assert_eq!(g.rank(g.coord(r)), r);
        }
    }

    #[test]
    fn block_cyclic_ownership() {
        let g = ProcessGrid::new(2, 3);
        assert_eq!(g.owner_col(0), 0);
        assert_eq!(g.owner_col(4), 1);
        assert_eq!(g.owner_row(5), 1);
    }

    #[test]
    fn owned_counts_sum_to_total() {
        let g = ProcessGrid::new(3, 4);
        for nblocks in [0usize, 1, 7, 12, 100] {
            let col_sum: usize = (0..4).map(|q| g.blocks_owned_col(q, nblocks)).sum();
            assert_eq!(col_sum, nblocks);
            let row_sum: usize = (0..3).map(|p| g.blocks_owned_row(p, nblocks)).sum();
            assert_eq!(row_sum, nblocks);
        }
    }

    #[test]
    fn trailing_counts_match_filter() {
        let g = ProcessGrid::new(2, 2);
        // Blocks 3..10 → rows 3,5,7,9 odd → p=1 owns 4 of 7.
        assert_eq!(g.trailing_blocks_row(1, 3, 10), 4);
        assert_eq!(g.trailing_blocks_row(0, 3, 10), 3);
        let total: usize = (0..2).map(|q| g.trailing_blocks_col(q, 3, 10)).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn closed_form_counts_match_exhaustive_filter() {
        for p in 1..=7usize {
            let g = ProcessGrid::new(p, p);
            for first in 0..20 {
                for nblocks in 0..25 {
                    for r in 0..p {
                        let want = (first..nblocks).filter(|&i| i % p == r).count();
                        assert_eq!(
                            g.trailing_blocks_row(r, first, nblocks),
                            want,
                            "p={p} r={r} first={first} nblocks={nblocks}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_covers_all_other_columns() {
        let g = ProcessGrid::new(1, 5);
        let ring = g.row_ring(2);
        assert_eq!(ring, vec![3, 4, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "degenerate grid")]
    fn zero_dimension_rejected() {
        ProcessGrid::new(0, 3);
    }

    #[test]
    fn fallback_grid_prefers_balanced_shapes() {
        // One death in the Table III 10×10 run: 99 survivors stay 9×11.
        assert_eq!(ProcessGrid::fallback_grid(99), ProcessGrid::new(9, 11));
        // Prime survivor count idles ranks for a square-ish shape.
        assert_eq!(ProcessGrid::fallback_grid(97), ProcessGrid::new(9, 10));
        // Perfect squares stay perfect.
        assert_eq!(ProcessGrid::fallback_grid(100), ProcessGrid::new(10, 10));
        assert_eq!(ProcessGrid::fallback_grid(1), ProcessGrid::new(1, 1));
        assert_eq!(ProcessGrid::fallback_grid(3), ProcessGrid::new(1, 3));
    }

    #[test]
    fn fallback_grid_never_exceeds_survivors_or_idles_too_many() {
        for survivors in 1..=256usize {
            let g = ProcessGrid::fallback_grid(survivors);
            assert!(g.size() <= survivors, "survivors={survivors}");
            assert!(
                g.size() >= survivors - survivors / 8,
                "survivors={survivors} kept only {}",
                g.size()
            );
            assert!(g.p <= g.q);
        }
    }

    #[test]
    #[should_panic(expected = "no survivors")]
    fn fallback_grid_rejects_zero() {
        ProcessGrid::fallback_grid(0);
    }

    #[test]
    fn patch_remap_counts_match_exhaustive_filter() {
        for (p, q) in [(2usize, 2usize), (3, 4), (10, 10)] {
            let g = ProcessGrid::new(p, q);
            for rank in [0, g.size() / 2, g.size() - 1] {
                let r = g.patch_remap(rank);
                for (first, nblocks) in [(0usize, 25usize), (7, 31), (30, 30), (29, 30)] {
                    let want = (first..nblocks).filter(|&i| i % p == r.dead.p).count()
                        * (first..nblocks).filter(|&j| j % q == r.dead.q).count();
                    assert_eq!(
                        r.moved_trailing_blocks(first, nblocks),
                        want,
                        "{p}x{q} rank {rank} [{first}, {nblocks})"
                    );
                }
            }
        }
    }

    #[test]
    fn patch_moves_a_grid_size_fraction_of_wholesale() {
        // On the Table III 10×10 grid the dead rank owns 1/100 of the
        // trailing blocks: the locality-preserving remap moves ~P·Q×
        // less than a wholesale redistribution.
        let g = ProcessGrid::new(10, 10);
        let r = g.patch_remap(42);
        let (first, nblocks) = (200, 860);
        let moved = r.moved_trailing_blocks(first, nblocks);
        let wholesale = PatchRemap::wholesale_trailing_blocks(first, nblocks);
        assert!(moved > 0);
        let ratio = wholesale as f64 / moved as f64;
        assert!(
            (90.0..=110.0).contains(&ratio),
            "expected ~100x reduction, got {ratio:.1}x"
        );
        // Summed over every rank, the per-rank shares tile the trailing
        // submatrix exactly.
        let total: usize = (0..g.size())
            .map(|k| g.patch_remap(k).moved_trailing_blocks(first, nblocks))
            .sum();
        assert_eq!(total, wholesale);
    }

    #[test]
    fn patch_imbalance_is_identity_then_grows() {
        let g = ProcessGrid::new(10, 10);
        assert_eq!(g.patch_imbalance(0).to_bits(), 1.0f64.to_bits());
        assert!((g.patch_imbalance(1) - 100.0 / 99.0).abs() < 1e-15);
        assert!(g.patch_imbalance(12) > g.patch_imbalance(1));
    }

    #[test]
    #[should_panic(expected = "not in the grid")]
    fn patch_remap_rejects_foreign_rank() {
        ProcessGrid::new(2, 2).patch_remap(4);
    }

    #[test]
    #[should_panic(expected = "no survivors to patch")]
    fn patch_remap_rejects_singleton_grid() {
        ProcessGrid::new(1, 1).patch_remap(0);
    }

    #[test]
    fn typed_errors_mirror_the_panicking_contracts() {
        assert_eq!(
            ProcessGrid::try_fallback_grid(0),
            Err(GridError::NoSurvivors)
        );
        assert_eq!(
            ProcessGrid::try_fallback_grid(99),
            Ok(ProcessGrid::new(9, 11))
        );
        let g = ProcessGrid::new(2, 2);
        assert_eq!(
            g.try_patch_remap(4),
            Err(GridError::RankOutOfRange { rank: 4, size: 4 })
        );
        assert_eq!(
            ProcessGrid::new(1, 1).try_patch_remap(0),
            Err(GridError::SingletonGrid)
        );
        assert_eq!(g.try_patch_remap(3).unwrap(), g.patch_remap(3));
        // The panic messages are exactly the typed errors' Display.
        assert_eq!(
            GridError::NoSurvivors.to_string(),
            "no survivors to re-form a grid from"
        );
        assert!(GridError::RankOutOfRange { rank: 4, size: 4 }
            .to_string()
            .contains("not in the grid"));
        assert_eq!(
            GridError::SingletonGrid.to_string(),
            "no survivors to patch onto"
        );
    }

    #[test]
    fn remap_strategy_default_and_labels() {
        assert_eq!(RemapStrategy::default(), RemapStrategy::Patch);
        assert_eq!(RemapStrategy::Patch.label(), "patch");
        assert_eq!(RemapStrategy::Wholesale.label(), "whsl");
    }
}
