//! Property tests for the communication substrate: block-cyclic
//! ownership must partition the matrix, links must serialize causally,
//! and queue visibility must be monotone.

use phi_des::Link;
use phi_fabric::{GridCoord, MmQueue, NetModel, ProcessGrid};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every global block has exactly one owner, and per-process counts
    /// sum to the total — for any grid and block count.
    #[test]
    fn block_cyclic_partitions(
        p in 1usize..12,
        q in 1usize..12,
        nblocks in 0usize..300,
    ) {
        let g = ProcessGrid::new(p, q);
        let col_sum: usize = (0..q).map(|c| g.blocks_owned_col(c, nblocks)).sum();
        prop_assert_eq!(col_sum, nblocks);
        let row_sum: usize = (0..p).map(|r| g.blocks_owned_row(r, nblocks)).sum();
        prop_assert_eq!(row_sum, nblocks);
        for j in 0..nblocks.min(40) {
            prop_assert!(g.owner_col(j) < q);
            prop_assert!(g.owner_row(j) < p);
        }
        // Trailing counts partition any suffix.
        let first = nblocks / 3;
        let t: usize = (0..p).map(|r| g.trailing_blocks_row(r, first, nblocks)).sum();
        prop_assert_eq!(t, nblocks - first.min(nblocks));
    }

    /// rank/coord are inverse bijections.
    #[test]
    fn rank_coord_bijection(p in 1usize..10, q in 1usize..10) {
        let g = ProcessGrid::new(p, q);
        let mut seen = std::collections::HashSet::new();
        for pp in 0..p {
            for qq in 0..q {
                let c = GridCoord { p: pp, q: qq };
                let r = g.rank(c);
                prop_assert!(r < g.size());
                prop_assert!(seen.insert(r), "duplicate rank {r}");
                prop_assert_eq!(g.coord(r), c);
            }
        }
    }

    /// Ring order visits every other column exactly once.
    #[test]
    fn ring_is_a_permutation(q in 1usize..16, root in 0usize..16) {
        let root = root % q;
        let g = ProcessGrid::new(1, q);
        let ring = g.row_ring(root);
        prop_assert_eq!(ring.len(), q - 1);
        let mut set: std::collections::HashSet<usize> = ring.iter().copied().collect();
        prop_assert_eq!(set.len(), q - 1);
        set.insert(root);
        prop_assert_eq!(set.len(), q);
    }

    /// Link transfers are causal (never start before requested, never
    /// overlap) and conserve byte accounting.
    #[test]
    fn link_transfers_serialize(
        requests in prop::collection::vec((0.0f64..10.0, 0.0f64..1e9), 1..40),
    ) {
        let mut link = Link::new(1e9, 1e-6);
        let mut prev_end = 0.0f64;
        let mut total = 0.0;
        for &(now, bytes) in &requests {
            let (start, end) = link.transfer(now, bytes);
            prop_assert!(start >= now, "start before request");
            prop_assert!(start >= prev_end, "overlapping transfers");
            prop_assert!(end >= start);
            prev_end = end;
            total += bytes;
        }
        prop_assert!((link.bytes_moved() - total).abs() < 1e-3);
        prop_assert_eq!(link.busy_until(), prev_end);
    }

    /// Network collective times are monotone in payload and never
    /// negative; degenerate single-process collectives are free.
    #[test]
    fn net_model_monotone(
        nb in 1usize..2000,
        cols in 1usize..100_000,
        p in 1usize..16,
    ) {
        let n = NetModel::default();
        prop_assert_eq!(n.long_swap(nb, cols, 1), 0.0);
        prop_assert_eq!(n.ring_bcast(1e6, 1), 0.0);
        let t1 = n.long_swap(nb, cols, p.max(2));
        let t2 = n.long_swap(nb, cols * 2, p.max(2));
        prop_assert!(t1 >= 0.0 && t2 >= t1);
        let b1 = n.u_bcast(nb, cols, p.max(2));
        let b2 = n.u_bcast(nb * 2, cols, p.max(2));
        prop_assert!(b1 >= 0.0 && b2 >= b1);
    }

    /// Queue entries become visible exactly in FIFO order, never before
    /// their latency elapses.
    #[test]
    fn queue_visibility_monotone(
        latency in 0.0f64..1e-3,
        sends in prop::collection::vec(0.0f64..1.0, 1..30),
    ) {
        let mut q = MmQueue::new(latency);
        let mut times = sends.clone();
        times.sort_by(f64::total_cmp);
        for (i, &t) in times.iter().enumerate() {
            q.enqueue(t, i);
        }
        // Polling just before visibility yields nothing; at visibility,
        // items come out in order.
        let mut expected = 0usize;
        for &t in &times {
            let visible = t + latency;
            if latency > 0.0 {
                prop_assert_eq!(q.poll(visible - latency / 2.0), None);
            }
            let got = q.poll(visible).expect("visible at its deadline");
            prop_assert_eq!(got, expected);
            expected += 1;
        }
        prop_assert!(q.is_empty());
    }
}
