//! Property tests for the communication substrate: block-cyclic
//! ownership must partition the matrix, links must serialize causally,
//! and queue visibility must be monotone.
//!
//! Driven by a local deterministic LCG (no external proptest dependency):
//! each property runs over a fixed-seed sweep of randomized cases.

use phi_des::Link;
use phi_fabric::{GridCoord, MmQueue, NetModel, ProcessGrid};

/// Minimal LCG (same constants as phi-matrix's HplRng) for case sweeps.
struct Cases(u64);

impl Cases {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Every global block has exactly one owner, and per-process counts
/// sum to the total — for any grid and block count.
#[test]
fn block_cyclic_partitions() {
    let mut cases = Cases(0xF0B);
    for _ in 0..128 {
        let p = cases.index(1, 12);
        let q = cases.index(1, 12);
        let nblocks = cases.index(0, 300);
        let g = ProcessGrid::new(p, q);
        let col_sum: usize = (0..q).map(|c| g.blocks_owned_col(c, nblocks)).sum();
        assert_eq!(col_sum, nblocks);
        let row_sum: usize = (0..p).map(|r| g.blocks_owned_row(r, nblocks)).sum();
        assert_eq!(row_sum, nblocks);
        for j in 0..nblocks.min(40) {
            assert!(g.owner_col(j) < q);
            assert!(g.owner_row(j) < p);
        }
        // Trailing counts partition any suffix.
        let first = nblocks / 3;
        let t: usize = (0..p)
            .map(|r| g.trailing_blocks_row(r, first, nblocks))
            .sum();
        assert_eq!(t, nblocks - first.min(nblocks));
    }
}

/// rank/coord are inverse bijections.
#[test]
fn rank_coord_bijection() {
    let mut cases = Cases(0xB11);
    for _ in 0..128 {
        let p = cases.index(1, 10);
        let q = cases.index(1, 10);
        let g = ProcessGrid::new(p, q);
        let mut seen = std::collections::HashSet::new();
        for pp in 0..p {
            for qq in 0..q {
                let c = GridCoord { p: pp, q: qq };
                let r = g.rank(c);
                assert!(r < g.size());
                assert!(seen.insert(r), "duplicate rank {r}");
                assert_eq!(g.coord(r), c);
            }
        }
    }
}

/// Ring order visits every other column exactly once.
#[test]
fn ring_is_a_permutation() {
    let mut cases = Cases(0x417);
    for _ in 0..128 {
        let q = cases.index(1, 16);
        let root = cases.index(0, 16) % q;
        let g = ProcessGrid::new(1, q);
        let ring = g.row_ring(root);
        assert_eq!(ring.len(), q - 1);
        let mut set: std::collections::HashSet<usize> = ring.iter().copied().collect();
        assert_eq!(set.len(), q - 1);
        set.insert(root);
        assert_eq!(set.len(), q);
    }
}

/// Link transfers are causal (never start before requested, never
/// overlap) and conserve byte accounting.
#[test]
fn link_transfers_serialize() {
    let mut cases = Cases(0x11F);
    for _ in 0..128 {
        let nreq = cases.index(1, 40);
        let mut link = Link::new(1e9, 1e-6);
        let mut prev_end = 0.0f64;
        let mut total = 0.0;
        for _ in 0..nreq {
            let now = cases.unit() * 10.0;
            let bytes = cases.unit() * 1e9;
            let (start, end) = link.transfer(now, bytes);
            assert!(start >= now, "start before request");
            assert!(start >= prev_end, "overlapping transfers");
            assert!(end >= start);
            prev_end = end;
            total += bytes;
        }
        assert!((link.bytes_moved() - total).abs() < 1e-3);
        assert_eq!(link.busy_until(), prev_end);
    }
}

/// Network collective times are monotone in payload and never
/// negative; degenerate single-process collectives are free.
#[test]
fn net_model_monotone() {
    let mut cases = Cases(0x3E7);
    for _ in 0..128 {
        let nb = cases.index(1, 2000);
        let cols = cases.index(1, 100_000);
        let p = cases.index(1, 16);
        let n = NetModel::default();
        assert_eq!(n.long_swap(nb, cols, 1), 0.0);
        assert_eq!(n.ring_bcast(1e6, 1), 0.0);
        let t1 = n.long_swap(nb, cols, p.max(2));
        let t2 = n.long_swap(nb, cols * 2, p.max(2));
        assert!(t1 >= 0.0 && t2 >= t1);
        let b1 = n.u_bcast(nb, cols, p.max(2));
        let b2 = n.u_bcast(nb * 2, cols, p.max(2));
        assert!(b1 >= 0.0 && b2 >= b1);
    }
}

/// Queue entries become visible exactly in FIFO order, never before
/// their latency elapses.
#[test]
fn queue_visibility_monotone() {
    let mut cases = Cases(0x9F1F0);
    for _ in 0..128 {
        let latency = cases.unit() * 1e-3;
        let nsend = cases.index(1, 30);
        let mut q = MmQueue::new(latency);
        let mut times: Vec<f64> = (0..nsend).map(|_| cases.unit()).collect();
        times.sort_by(f64::total_cmp);
        for (i, &t) in times.iter().enumerate() {
            q.enqueue(t, i);
        }
        // Polling just before visibility yields nothing; at visibility,
        // items come out in order.
        for (expected, &t) in times.iter().enumerate() {
            let visible = t + latency;
            if latency > 0.0 {
                assert_eq!(q.poll(visible - latency / 2.0), None);
            }
            let got = q.poll(visible).expect("visible at its deadline");
            assert_eq!(got, expected);
        }
        assert!(q.is_empty());
    }
}

/// The per-rank patch-remap shares tile every trailing submatrix
/// exactly, and each share is the O(1) closed form — for any grid,
/// window and rank.
#[test]
fn patch_remap_shares_tile_the_trailing_matrix() {
    use phi_fabric::PatchRemap;
    let mut cases = Cases(0xBA7C);
    for _ in 0..96 {
        let p = cases.index(1, 9);
        let q = cases.index(1, 9);
        let g = ProcessGrid::new(p, q);
        if g.size() < 2 {
            continue;
        }
        let nblocks = cases.index(1, 120);
        let first = cases.index(0, nblocks + 1);
        let wholesale = PatchRemap::wholesale_trailing_blocks(first, nblocks);
        let mut total = 0usize;
        for rank in 0..g.size() {
            let r = g.patch_remap(rank);
            let moved = r.moved_trailing_blocks(first, nblocks);
            let want = (first..nblocks).filter(|&i| i % p == r.dead.p).count()
                * (first..nblocks).filter(|&j| j % q == r.dead.q).count();
            assert_eq!(moved, want, "{p}x{q} rank {rank} [{first}, {nblocks})");
            total += moved;
        }
        assert_eq!(total, wholesale, "{p}x{q} [{first}, {nblocks})");
    }
}

/// Patch imbalance is exactly 1 with zero deaths, strictly increasing
/// in the death count, and bounded by the wholesale reshape's own
/// worst case while the patch path still applies (≤ 1/8 dead).
#[test]
fn patch_imbalance_monotone_and_bounded() {
    let mut cases = Cases(0x1B1A5);
    for _ in 0..64 {
        let p = cases.index(1, 12);
        let q = cases.index(2, 12);
        let g = ProcessGrid::new(p, q);
        assert_eq!(g.patch_imbalance(0).to_bits(), 1.0f64.to_bits());
        let mut prev = 1.0;
        for dead in 1..=g.size() / 8 {
            let f = g.patch_imbalance(dead);
            assert!(f > prev, "{p}x{q} dead {dead}");
            // 1/8 of the grid dead costs at most 8/7 per survivor.
            assert!(f <= 8.0 / 7.0 + 1e-12, "{p}x{q} dead {dead}: {f}");
            prev = f;
        }
    }
}

/// Halo volumes conserve rank by rank for any admissible decomposition:
/// every byte a rank sends across a face is received by exactly one
/// neighbor, the per-rank send/receive tallies from the message list
/// match the spec's own accessors, and the machine-wide total is the
/// sum of sent volumes. Face volumes are integer byte counts, so every
/// comparison here is exact.
#[test]
fn halo_volumes_conserve_for_random_decompositions() {
    use phi_fabric::HaloSpec;
    let mut cases = Cases(0x4A70);
    for case in 0..96 {
        let radius = cases.index(1, 4);
        let mut dims = [0usize; 3];
        let mut grid = [0usize; 3];
        for a in 0..3 {
            grid[a] = cases.index(1, 5);
            // Blocks at least `radius` deep by construction.
            dims[a] = grid[a] * radius + cases.index(0, 24);
        }
        let spec = HaloSpec::new(
            (dims[0], dims[1], dims[2]),
            (grid[0], grid[1], grid[2]),
            radius,
        );
        let ranks = spec.rank_count();
        let mut sent = vec![0.0f64; ranks];
        let mut recv = vec![0.0f64; ranks];
        let mut msgs = 0usize;
        for (from, to, bytes) in spec.messages() {
            assert!(from < ranks && to < ranks && from != to, "case {case}");
            assert!(bytes > 0.0, "case {case}: empty face message");
            sent[from] += bytes;
            recv[to] += bytes;
            msgs += 1;
        }
        let decomposed_axes = grid.iter().filter(|&&p| p > 1).count();
        assert_eq!(
            msgs,
            2 * decomposed_axes * ranks,
            "case {case}: two directed faces per decomposed axis per rank"
        );
        for r in 0..ranks {
            assert_eq!(
                sent[r], recv[r],
                "case {case}: rank {r} sent {} but received {}",
                sent[r], recv[r]
            );
        }
        assert_eq!(sent, spec.sent_bytes(), "case {case}: sent accessor");
        assert_eq!(recv, spec.received_bytes(), "case {case}: recv accessor");
        let total: f64 = sent.iter().sum();
        assert_eq!(total, spec.total_bytes(), "case {case}: machine total");
    }
}
