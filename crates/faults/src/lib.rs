//! Deterministic fault injection for the simulated Linpack stack.
//!
//! The cluster and offload models in this workspace are *analytic*
//! discrete-event simulations: every run is a pure function of its
//! configuration. That makes fault tolerance unusually testable — a
//! "fault" is just a perturbation of the calibrated machine models
//! (link bandwidth, PCIe stalls, per-core throughput, card liveness)
//! applied over a window of simulated time, and a whole campaign can be
//! replayed bit-identically from one seed.
//!
//! A [`FaultPlan`] is an explicit, time-ordered list of [`FaultEvent`]s.
//! Plans are built either by hand (one event at a chosen simulated
//! time) or by [`FaultPlan::campaign`] / [`FaultPlan::cluster_campaign`],
//! which draw events from a seeded [`FaultRng`] — the same 64-bit LCG
//! family the matrix generator uses, so determinism needs no external
//! crate. Consumers never sample randomness at query time: every
//! parameter is fixed at plan construction, and [`FaultPlan::effects_at`]
//! / [`FaultPlan::effects_over`] are pure functions of simulated time.
//! [`FaultPlan::fingerprint`] hashes the full event list so tests can
//! assert two runs saw exactly the same faults.
//!
//! **Correlated cascades.** A [`FaultEvent`] may carry an
//! [`Escalation`] edge (`escalates_to`): a transient fault that, with
//! some probability, worsens into a second fault after a delay — a PCIe
//! CRC storm retraining itself into a dead card, a flapping rail
//! escalating into a lost host rank. Edges chain: an escalation may
//! itself carry a next hop ([`Escalation::then`]), so a storm can burn
//! out its card *and* the dead card can take its host down — a
//! multi-hop chain declared as one causal unit. Edges are *resolved*,
//! by [`FaultPlan::resolved`], with a seeded draw per edge: a firing
//! edge appends the escalated event (carrying the remaining chain) to
//! the plan as a concrete, causally linked occurrence, and resolution
//! recurses to a fixed point — bounded by [`MAX_CASCADE_DEPTH`] hops
//! and guarded against re-spawning an event already in the plan, so it
//! can never loop. The fingerprint covers every edge of every chain
//! plus the spawned events, so a cascade replays as one causal unit
//! under one fingerprint, and resolution never schedules anything at
//! or past the horizon: an escalation landing at **exactly** the
//! horizon is dropped (`at_s >= horizon_s`), keeping
//! [`FaultPlan::effects_over`] over `[0, horizon)` and the resolved
//! event list in agreement.

#![forbid(unsafe_code)]

/// The LCG multiplier shared with `phi_matrix::HplRng` (Knuth MMIX).
const MULT: u64 = 6364136223846793005;
/// The LCG increment shared with `phi_matrix::HplRng`.
const ADD: u64 = 1442695040888963407;

/// FNV-1a offset basis (shared by fingerprints and event hashes).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100000001b3;

/// Salt XORed into a campaign seed before escalation resolution, so the
/// per-edge resolution draws never alias the event-parameter draws.
const ESCALATION_SALT: u64 = 0xe5ca_1a7e_0ca5_cade;

/// Upper bound on the hops a cascade chain may resolve through: a
/// depth guard on [`FaultPlan::resolved`]'s fixed-point recursion.
/// Real chains are 2–3 hops (storm → card → host); eight is comfortably
/// past anything physical while keeping a malformed self-feeding plan
/// finite.
pub const MAX_CASCADE_DEPTH: usize = 8;

/// FNV-1a over the little-endian bytes of `x`, folded into `h`.
fn fnv_mix(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Folds a kind's tag and exact parameter bit patterns into `h`.
fn mix_kind(h: &mut u64, kind: &FaultKind) {
    fnv_mix(h, kind.tag());
    match *kind {
        FaultKind::LinkDegrade { factor, duration_s } => {
            fnv_mix(h, factor.to_bits());
            fnv_mix(h, duration_s.to_bits());
        }
        FaultKind::LatencyJitter {
            sigma_s,
            duration_s,
        } => {
            fnv_mix(h, sigma_s.to_bits());
            fnv_mix(h, duration_s.to_bits());
        }
        FaultKind::PcieCrcStorm {
            stall_s,
            duration_s,
        } => {
            fnv_mix(h, stall_s.to_bits());
            fnv_mix(h, duration_s.to_bits());
        }
        FaultKind::Straggler {
            core_fraction,
            slowdown,
            duration_s,
        } => {
            fnv_mix(h, core_fraction.to_bits());
            fnv_mix(h, slowdown.to_bits());
            fnv_mix(h, duration_s.to_bits());
        }
        FaultKind::CardDeath { card } => fnv_mix(h, card as u64),
        FaultKind::HostDeath { rank } => fnv_mix(h, rank as u64),
    }
}

/// Folds an escalation edge — and, recursively, the rest of its chain —
/// into `h`. Single-hop edges mix exactly the bytes the pre-chain
/// format did, keeping historical digests stable.
fn mix_esc(h: &mut u64, esc: &Escalation) {
    fnv_mix(h, 0xe5c);
    mix_kind(h, &esc.kind);
    fnv_mix(h, esc.delay_s.to_bits());
    fnv_mix(h, esc.probability.to_bits());
    if let Some(next) = &esc.then {
        mix_esc(h, next);
    }
}

/// A content hash of one event (onset + kind + full escalation chain),
/// used to key the per-edge resolution draw: identical events draw
/// identically no matter where they sit in the plan.
fn event_hash(ev: &FaultEvent) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_mix(&mut h, ev.at_s.to_bits());
    mix_kind(&mut h, &ev.kind);
    if let Some(esc) = &ev.escalates_to {
        mix_esc(&mut h, esc);
    }
    h
}

/// Seeded 64-bit LCG — the workspace's standard deterministic stream.
///
/// Mirrors `phi_matrix::HplRng` (same constants) so `phi-faults` stays
/// a leaf crate with no dependencies.
#[derive(Clone, Copy, Debug)]
pub struct FaultRng(u64);

impl FaultRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(MULT).wrapping_add(ADD))
    }

    /// Next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(MULT).wrapping_add(ADD);
        self.0
    }

    /// Uniform in `[0, 1)` with 53 significant bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// One kind of injected fault. All parameters are concrete — nothing is
/// sampled after plan construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Inter-node link bandwidth multiplied by `factor` (< 1) for
    /// `duration_s` of simulated time — a flapping or congested rail.
    LinkDegrade { factor: f64, duration_s: f64 },
    /// Extra per-message latency of `sigma_s` seconds for `duration_s`
    /// — switch buffer jitter.
    LatencyJitter { sigma_s: f64, duration_s: f64 },
    /// PCIe CRC-retry storm: every transfer in the window pays an extra
    /// `stall_s` replay stall (the hardware retrains and replays TLPs).
    PcieCrcStorm { stall_s: f64, duration_s: f64 },
    /// A fraction of cores throttle to `slowdown`× their normal time
    /// for `duration_s` — a straggler card running hot.
    Straggler {
        core_fraction: f64,
        slowdown: f64,
        duration_s: f64,
    },
    /// A coprocessor dies at the event time and never comes back.
    CardDeath { card: usize },
    /// A host rank dies at the event time and never comes back: the
    /// surviving ranks must re-form the process grid, restore the dead
    /// rank's checkpointed panel state over the fabric and remap
    /// block-cyclic ownership before the factorization can continue.
    HostDeath {
        /// Linear rank (row-major in the P × Q grid) that is lost.
        rank: usize,
    },
}

impl FaultKind {
    /// Window length; card and host deaths are permanent.
    pub fn duration_s(&self) -> f64 {
        match *self {
            FaultKind::LinkDegrade { duration_s, .. }
            | FaultKind::LatencyJitter { duration_s, .. }
            | FaultKind::PcieCrcStorm { duration_s, .. }
            | FaultKind::Straggler { duration_s, .. } => duration_s,
            FaultKind::CardDeath { .. } | FaultKind::HostDeath { .. } => f64::INFINITY,
        }
    }

    /// True for the permanent kinds (card or host death).
    pub fn is_permanent(&self) -> bool {
        matches!(
            self,
            FaultKind::CardDeath { .. } | FaultKind::HostDeath { .. }
        )
    }

    fn tag(&self) -> u64 {
        match self {
            FaultKind::LinkDegrade { .. } => 1,
            FaultKind::LatencyJitter { .. } => 2,
            FaultKind::PcieCrcStorm { .. } => 3,
            FaultKind::Straggler { .. } => 4,
            FaultKind::CardDeath { .. } => 5,
            FaultKind::HostDeath { .. } => 6,
        }
    }
}

/// A correlated-failure edge: the owning event escalates into `kind`
/// after `delay_s`, with probability `probability`, when the plan is
/// [`FaultPlan::resolved`]. A chain continues through [`then`]: the
/// spawned event inherits the tail of the chain and resolves it in
/// turn (storm → card → host). All fields are concrete; the only
/// randomness is one seeded draw per edge at resolution time.
///
/// [`then`]: Escalation::then
#[derive(Clone, Debug, PartialEq)]
pub struct Escalation {
    /// The fault the owning event escalates into.
    pub kind: FaultKind,
    /// Delay from the owning event's onset to the escalated onset,
    /// seconds of simulated time (≥ 0).
    pub delay_s: f64,
    /// Probability in `[0, 1]` that the edge fires at resolution.
    pub probability: f64,
    /// Next hop of the chain, carried by the spawned event; `None`
    /// terminates the chain.
    pub then: Option<Box<Escalation>>,
}

impl Escalation {
    /// A single-hop edge (no chain).
    pub fn new(kind: FaultKind, delay_s: f64, probability: f64) -> Self {
        Self {
            kind,
            delay_s,
            probability,
            then: None,
        }
    }

    /// Appends `next` at the end of the chain (builder style), so
    /// `a.chain(b).chain(c)` reads in causal order: the owning event
    /// escalates into `a`, which escalates into `b`, then `c`.
    pub fn chain(mut self, next: Escalation) -> Self {
        self.push_tail(next);
        self
    }

    fn push_tail(&mut self, next: Escalation) {
        match &mut self.then {
            Some(tail) => tail.push_tail(next),
            None => self.then = Some(Box::new(next)),
        }
    }

    /// Hops in this chain, the terminal edge included (≥ 1).
    pub fn hops(&self) -> usize {
        1 + self.then.as_ref().map_or(0, |t| t.hops())
    }

    /// Clips the chain to at most `depth` hops. Plan construction
    /// applies this with [`MAX_CASCADE_DEPTH`], so the depth bound is a
    /// property of the *declared* plan — which keeps resolution a true
    /// fixed point (a spawned event's tail is always a suffix of an
    /// already-clipped chain).
    fn clip(&mut self, depth: usize) {
        if depth <= 1 {
            self.then = None;
        } else if let Some(tail) = &mut self.then {
            tail.clip(depth - 1);
        }
    }
}

/// A fault scheduled at an absolute simulated time.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Onset, seconds of simulated time.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
    /// Optional correlated-cascade edge, resolved by
    /// [`FaultPlan::resolved`]. `None` for a plain, uncorrelated fault.
    pub escalates_to: Option<Escalation>,
}

impl FaultEvent {
    /// A plain event with no escalation edge.
    pub fn new(at_s: f64, kind: FaultKind) -> Self {
        Self {
            at_s,
            kind,
            escalates_to: None,
        }
    }
    /// Does the window cover simulated time `t`?
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.at_s && t < self.at_s + self.kind.duration_s()
    }

    /// Fraction of `[t0, t1)` the window covers (0 when disjoint).
    pub fn overlap_fraction(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let end = self.at_s + self.kind.duration_s();
        let lo = self.at_s.max(t0);
        let hi = end.min(t1);
        ((hi - lo) / (t1 - t0)).clamp(0.0, 1.0)
    }
}

/// Aggregate perturbation of the machine models at (or over) a point of
/// simulated time. The identity element ([`Effects::healthy`]) leaves
/// every model untouched — a zero-fault plan is bit-identical to no
/// plan at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Effects {
    /// Multiplier on inter-node link bandwidth, in `(0, 1]`.
    pub net_bw_factor: f64,
    /// Additive per-message network latency, seconds.
    pub extra_latency_s: f64,
    /// Additive per-transfer PCIe stall, seconds.
    pub pcie_stall_s: f64,
    /// Multiplier ≥ 1 on compute time (straggler throttling).
    pub compute_slowdown: f64,
    /// Cards dead so far (cumulative, permanent).
    pub cards_lost: usize,
    /// Host ranks dead so far (cumulative, permanent).
    pub hosts_lost: usize,
}

impl Effects {
    /// No perturbation at all.
    pub fn healthy() -> Self {
        Self {
            net_bw_factor: 1.0,
            extra_latency_s: 0.0,
            pcie_stall_s: 0.0,
            compute_slowdown: 1.0,
            cards_lost: 0,
            hosts_lost: 0,
        }
    }

    /// True when this equals [`Effects::healthy`].
    pub fn is_healthy(&self) -> bool {
        *self == Self::healthy()
    }
}

/// A deterministic, replayable fault schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, identical output to a healthy run.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from explicit events (kept sorted by onset). Escalation
    /// chains deeper than [`MAX_CASCADE_DEPTH`] are clipped here, at
    /// declaration, so every plan satisfies the depth bound by
    /// construction.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        for ev in &mut events {
            if let Some(esc) = &mut ev.escalates_to {
                esc.clip(MAX_CASCADE_DEPTH);
            }
        }
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Self { events }
    }

    /// A seeded random campaign: `count` events drawn over
    /// `[0, horizon_s)`. Identical `(seed, horizon_s, count)` triples
    /// produce identical plans, bit for bit. Single-node flavour: no
    /// host deaths and no escalation edges (see
    /// [`FaultPlan::cluster_campaign`] for those).
    pub fn campaign(seed: u64, horizon_s: f64, count: usize) -> Self {
        assert!(horizon_s > 0.0);
        let mut rng = FaultRng::new(seed);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at_s = rng.range(0.0, horizon_s);
            let window = rng.range(0.02, 0.25) * horizon_s;
            let kind = match rng.index(0, 5) {
                0 => FaultKind::LinkDegrade {
                    factor: rng.range(0.25, 0.9),
                    duration_s: window,
                },
                1 => FaultKind::LatencyJitter {
                    sigma_s: rng.range(1e-6, 40e-6),
                    duration_s: window,
                },
                2 => FaultKind::PcieCrcStorm {
                    stall_s: rng.range(5e-6, 200e-6),
                    duration_s: window,
                },
                3 => FaultKind::Straggler {
                    core_fraction: rng.range(0.05, 0.5),
                    slowdown: rng.range(1.2, 3.0),
                    duration_s: window,
                },
                _ => FaultKind::CardDeath {
                    card: rng.index(0, 2),
                },
            };
            events.push(FaultEvent::new(at_s, kind));
        }
        Self::from_events(events)
    }

    /// A seeded random campaign for a `nodes`-rank cluster with
    /// `cards_per_node` coprocessors per host: the single-node kinds
    /// plus host-rank deaths and correlated cascades (a CRC storm that
    /// may escalate into a card death, a degraded rail that may
    /// escalate into a host death). Escalation edges are resolved
    /// before the plan is returned, so every event in the result is
    /// concrete and strictly inside the horizon. Identical argument
    /// tuples produce identical plans, bit for bit.
    pub fn cluster_campaign(
        seed: u64,
        horizon_s: f64,
        count: usize,
        nodes: usize,
        cards_per_node: usize,
    ) -> Self {
        assert!(horizon_s > 0.0, "degenerate horizon");
        assert!(nodes > 0, "a cluster has at least one rank");
        let mut rng = FaultRng::new(seed);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at_s = rng.range(0.0, horizon_s);
            let window = rng.range(0.02, 0.25) * horizon_s;
            let (kind, escalates_to) = match rng.index(0, 8) {
                0 => (
                    FaultKind::LinkDegrade {
                        factor: rng.range(0.25, 0.9),
                        duration_s: window,
                    },
                    None,
                ),
                1 => (
                    FaultKind::LatencyJitter {
                        sigma_s: rng.range(1e-6, 40e-6),
                        duration_s: window,
                    },
                    None,
                ),
                2 => (
                    FaultKind::PcieCrcStorm {
                        stall_s: rng.range(5e-6, 200e-6),
                        duration_s: window,
                    },
                    None,
                ),
                3 => (
                    FaultKind::Straggler {
                        core_fraction: rng.range(0.05, 0.5),
                        slowdown: rng.range(1.2, 3.0),
                        duration_s: window,
                    },
                    None,
                ),
                4 => (
                    FaultKind::CardDeath {
                        card: rng.index(0, cards_per_node.max(1)),
                    },
                    None,
                ),
                5 => (
                    FaultKind::HostDeath {
                        rank: rng.index(0, nodes),
                    },
                    None,
                ),
                6 => (
                    // A CRC storm that may burn out the card it storms
                    // on — and the dead card may then take its whole
                    // host down (the 3-hop storm → card → host chain).
                    FaultKind::PcieCrcStorm {
                        stall_s: rng.range(50e-6, 400e-6),
                        duration_s: window,
                    },
                    Some(
                        Escalation::new(
                            FaultKind::CardDeath {
                                card: rng.index(0, cards_per_node.max(1)),
                            },
                            rng.range(0.0, 0.1) * horizon_s,
                            rng.range(0.25, 1.0),
                        )
                        .chain(Escalation::new(
                            FaultKind::HostDeath {
                                rank: rng.index(0, nodes),
                            },
                            rng.range(0.0, 0.1) * horizon_s,
                            rng.range(0.25, 1.0),
                        )),
                    ),
                ),
                _ => (
                    // A flapping rail that may take its host down with it.
                    FaultKind::LinkDegrade {
                        factor: rng.range(0.1, 0.5),
                        duration_s: window,
                    },
                    Some(Escalation::new(
                        FaultKind::HostDeath {
                            rank: rng.index(0, nodes),
                        },
                        rng.range(0.0, 0.1) * horizon_s,
                        rng.range(0.25, 1.0),
                    )),
                ),
            };
            events.push(FaultEvent {
                at_s,
                kind,
                escalates_to,
            });
        }
        Self::from_events(events).resolved(seed ^ ESCALATION_SALT, horizon_s)
    }

    /// Adds one event (builder style), keeping onset order.
    pub fn with_event(self, at_s: f64, kind: FaultKind) -> Self {
        self.with_fault_event(FaultEvent::new(at_s, kind))
    }

    /// Adds one event carrying a correlated-cascade edge (builder
    /// style). The edge stays latent until [`FaultPlan::resolved`] is
    /// called.
    pub fn with_cascade(self, at_s: f64, kind: FaultKind, escalation: Escalation) -> Self {
        self.with_fault_event(FaultEvent {
            at_s,
            kind,
            escalates_to: Some(escalation),
        })
    }

    /// Adds a fully-specified event (builder style), keeping onset
    /// order and the construction-time chain clipping.
    pub fn with_fault_event(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        Self::from_events(self.events)
    }

    /// Resolves every escalation chain to a fixed point, with one
    /// seeded draw per edge: a firing edge appends its escalated fault
    /// as a concrete event at `parent.at_s + delay_s` carrying the
    /// rest of the chain, and the spawned event's own edge resolves in
    /// the next round — recursively, until no unresolved edge remains.
    /// The recursion is bounded by construction: chains are clipped to
    /// [`MAX_CASCADE_DEPTH`] hops when the plan is built, and every
    /// spawned tail is strictly shorter than its parent's chain, so
    /// the fixed point arrives within that many rounds. Spawned onsets
    /// must lie strictly before `horizon_s`: an escalation landing at
    /// *exactly* the horizon is dropped (and with it the rest of its
    /// chain) — cascades never schedule anything at or past the
    /// horizon.
    ///
    /// Each draw is keyed on `seed` and the drawing event's own
    /// content hash, so resolution is independent of event order,
    /// deterministic, and idempotent: resolving an already-resolved
    /// plan with the same seed changes nothing. An edge whose spawned
    /// event already exists in the plan, chain and all, fires into it
    /// (no duplicate is appended) — together with the depth clipping
    /// this is the cycle guard: a self-feeding chain re-deriving the
    /// same event converges instead of looping.
    pub fn resolved(&self, seed: u64, horizon_s: f64) -> Self {
        assert!(horizon_s > 0.0, "degenerate horizon");
        let mut out = self.events.clone();
        let mut frontier = self.events.clone();
        for _hop in 0..MAX_CASCADE_DEPTH {
            let mut next = Vec::new();
            for ev in &frontier {
                let Some(esc) = &ev.escalates_to else {
                    continue;
                };
                let mut rng = FaultRng::new(seed ^ event_hash(ev));
                if rng.unit() >= esc.probability {
                    continue;
                }
                let at_s = ev.at_s + esc.delay_s;
                if at_s >= horizon_s {
                    continue;
                }
                let spawned = FaultEvent {
                    at_s,
                    kind: esc.kind,
                    escalates_to: esc.then.as_deref().cloned(),
                };
                if !out.contains(&spawned) {
                    out.push(spawned.clone());
                    next.push(spawned);
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        Self::from_events(out)
    }

    /// The schedule, onset-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Instantaneous aggregate effects at simulated time `t`.
    /// Overlapping faults compose: bandwidth factors multiply, latency
    /// and stalls add, slowdowns multiply, card and host deaths
    /// accumulate.
    pub fn effects_at(&self, t: f64) -> Effects {
        let mut e = Effects::healthy();
        for ev in &self.events {
            match ev.kind {
                FaultKind::CardDeath { .. } if t >= ev.at_s => e.cards_lost += 1,
                FaultKind::HostDeath { .. } if t >= ev.at_s => e.hosts_lost += 1,
                FaultKind::CardDeath { .. } | FaultKind::HostDeath { .. } => {}
                _ if ev.active_at(t) => match ev.kind {
                    FaultKind::LinkDegrade { factor, .. } => e.net_bw_factor *= factor,
                    FaultKind::LatencyJitter { sigma_s, .. } => e.extra_latency_s += sigma_s,
                    FaultKind::PcieCrcStorm { stall_s, .. } => e.pcie_stall_s += stall_s,
                    FaultKind::Straggler {
                        core_fraction,
                        slowdown,
                        ..
                    } => {
                        // A fraction f of cores running k× slower drags
                        // aggregate throughput to 1/(1-f+f*k)... inverted:
                        e.compute_slowdown *= 1.0 - core_fraction + core_fraction * slowdown;
                    }
                    FaultKind::CardDeath { .. } | FaultKind::HostDeath { .. } => unreachable!(),
                },
                _ => {}
            }
        }
        e
    }

    /// Aggregate effects averaged over `[t0, t1)` — the right
    /// granularity for the per-stage cluster loop.
    ///
    /// [`Self::effects_at`] is piecewise constant with breakpoints at
    /// window boundaries, so the window fields here are the *exact*
    /// time-average `∫ effects_at dt / (t1 − t0)` (up to float
    /// rounding): the interval is cut at every boundary and each
    /// sub-interval contributes its instantaneous composition, weighted
    /// by length. The permanent counters (`cards_lost`, `hosts_lost`)
    /// are instead the totals by the *end* of the window — a death
    /// anywhere in `[t0, t1)` has happened from the next panel
    /// boundary's point of view. A window no transient fault overlaps
    /// returns bit-exactly healthy window fields.
    pub fn effects_over(&self, t0: f64, t1: f64) -> Effects {
        let mut e = Effects::healthy();
        for ev in &self.events {
            match ev.kind {
                FaultKind::CardDeath { .. } if ev.at_s < t1 => e.cards_lost += 1,
                FaultKind::HostDeath { .. } if ev.at_s < t1 => e.hosts_lost += 1,
                _ => {}
            }
        }
        if t1 <= t0 {
            return e;
        }
        // Breakpoints of the piecewise-constant transient fields that
        // fall strictly inside the window. None ⇒ every transient field
        // is constant over the window; sample once so the no-overlap
        // case stays bit-exactly healthy.
        let mut cuts: Vec<f64> = Vec::new();
        let mut touched = false;
        for ev in &self.events {
            if ev.kind.is_permanent() {
                continue;
            }
            touched |= ev.overlap_fraction(t0, t1) > 0.0;
            let end = ev.at_s + ev.kind.duration_s();
            for b in [ev.at_s, end] {
                if b > t0 && b < t1 {
                    cuts.push(b);
                }
            }
        }
        if !touched {
            return e;
        }
        cuts.push(t0);
        cuts.push(t1);
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| a.to_bits() == b.to_bits());
        // Accumulate each field as healthy + Σ weighted deviation, so
        // sub-intervals where a field is untouched contribute exactly
        // nothing to it.
        let span = t1 - t0;
        let (mut bw, mut lat, mut stall, mut slow) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for pair in cuts.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let s = self.effects_at(lo + 0.5 * (hi - lo));
            let w = (hi - lo) / span;
            bw += w * (s.net_bw_factor - 1.0);
            lat += w * s.extra_latency_s;
            stall += w * s.pcie_stall_s;
            slow += w * (s.compute_slowdown - 1.0);
        }
        e.net_bw_factor = 1.0 + bw;
        e.extra_latency_s = lat;
        e.pcie_stall_s = stall;
        e.compute_slowdown = 1.0 + slow;
        e
    }

    /// Onset of the first card death, if any card ever dies.
    pub fn first_card_death(&self) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CardDeath { .. }))
            .map(|e| e.at_s)
            .next()
    }

    /// Total cards that ever die under this plan.
    pub fn total_card_deaths(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CardDeath { .. }))
            .count()
    }

    /// Onset of the first host-rank death, if any host ever dies.
    pub fn first_host_death(&self) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::HostDeath { .. }))
            .map(|e| e.at_s)
            .next()
    }

    /// Total host ranks that ever die under this plan.
    pub fn total_host_deaths(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::HostDeath { .. }))
            .count()
    }

    /// FNV-1a over the exact bit patterns of every event, including
    /// every hop of any escalation chain — two plans fingerprint equal
    /// iff they schedule identical faults with identical cascade
    /// structure. A resolved cascade (edges + spawned events)
    /// therefore carries one fingerprint distinct from the same faults
    /// arriving uncorrelated; edge-free and single-hop plans keep
    /// their historical digests.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for ev in &self.events {
            fnv_mix(&mut h, ev.at_s.to_bits());
            mix_kind(&mut h, &ev.kind);
            if let Some(esc) = &ev.escalates_to {
                mix_esc(&mut h, esc);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_healthy_everywhere() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        for t in [0.0, 1.0, 1e6] {
            assert!(p.effects_at(t).is_healthy());
        }
        assert!(p.effects_over(0.0, 1e9).is_healthy());
        assert_eq!(p.first_card_death(), None);
    }

    #[test]
    fn same_seed_same_campaign() {
        let a = FaultPlan::campaign(42, 100.0, 12);
        let b = FaultPlan::campaign(42, 100.0, 12);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FaultPlan::campaign(43, 100.0, 12);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn window_activation_and_overlap() {
        let p = FaultPlan::none().with_event(
            10.0,
            FaultKind::LinkDegrade {
                factor: 0.5,
                duration_s: 5.0,
            },
        );
        assert!(p.effects_at(9.99).is_healthy());
        assert_eq!(p.effects_at(12.0).net_bw_factor, 0.5);
        assert!(p.effects_at(15.0).is_healthy());
        // Half of [10, 20) overlaps → factor averages to 0.75.
        let e = p.effects_over(10.0, 20.0);
        assert!((e.net_bw_factor - 0.75).abs() < 1e-12);
        // Disjoint window sees nothing.
        assert!(p.effects_over(20.0, 30.0).is_healthy());
    }

    #[test]
    fn card_death_is_permanent_and_cumulative() {
        let p = FaultPlan::none()
            .with_event(5.0, FaultKind::CardDeath { card: 0 })
            .with_event(8.0, FaultKind::CardDeath { card: 1 });
        assert_eq!(p.effects_at(4.0).cards_lost, 0);
        assert_eq!(p.effects_at(6.0).cards_lost, 1);
        assert_eq!(p.effects_at(1e9).cards_lost, 2);
        assert_eq!(p.first_card_death(), Some(5.0));
        assert_eq!(p.total_card_deaths(), 2);
    }

    #[test]
    fn overlapping_faults_compose() {
        let p = FaultPlan::none()
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            )
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            )
            .with_event(
                0.0,
                FaultKind::Straggler {
                    core_fraction: 0.5,
                    slowdown: 2.0,
                    duration_s: 10.0,
                },
            );
        let e = p.effects_at(5.0);
        assert!((e.net_bw_factor - 0.25).abs() < 1e-12);
        assert!((e.compute_slowdown - 1.5).abs() < 1e-12);
    }

    #[test]
    fn events_are_onset_sorted() {
        let p = FaultPlan::from_events(vec![
            FaultEvent::new(9.0, FaultKind::CardDeath { card: 0 }),
            FaultEvent::new(
                1.0,
                FaultKind::LatencyJitter {
                    sigma_s: 1e-6,
                    duration_s: 2.0,
                },
            ),
        ]);
        assert!(p.events()[0].at_s < p.events()[1].at_s);
    }

    #[test]
    fn host_death_is_permanent_and_cumulative() {
        let p = FaultPlan::none()
            .with_event(3.0, FaultKind::HostDeath { rank: 7 })
            .with_event(11.0, FaultKind::HostDeath { rank: 2 });
        assert_eq!(p.effects_at(2.9).hosts_lost, 0);
        assert_eq!(p.effects_at(3.0).hosts_lost, 1);
        assert_eq!(p.effects_at(1e9).hosts_lost, 2);
        assert_eq!(p.effects_over(0.0, 4.0).hosts_lost, 1);
        assert_eq!(p.first_host_death(), Some(3.0));
        assert_eq!(p.total_host_deaths(), 2);
        // Host deaths don't count as card deaths (and vice versa).
        assert_eq!(p.total_card_deaths(), 0);
        assert_eq!(p.effects_at(1e9).cards_lost, 0);
    }

    #[test]
    fn cluster_campaign_is_deterministic_and_inside_horizon() {
        let a = FaultPlan::cluster_campaign(42, 3600.0, 24, 100, 1);
        let b = FaultPlan::cluster_campaign(42, 3600.0, 24, 100, 1);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            FaultPlan::cluster_campaign(43, 3600.0, 24, 100, 1).fingerprint()
        );
        // Resolution may append events, never schedule past the horizon.
        assert!(a.events().len() >= 24);
        for ev in a.events() {
            assert!(ev.at_s < 3600.0);
            if let FaultKind::HostDeath { rank } = ev.kind {
                assert!(rank < 100);
            }
        }
    }

    #[test]
    fn escalation_fires_iff_draw_beats_probability() {
        let storm = FaultKind::PcieCrcStorm {
            stall_s: 1e-4,
            duration_s: 5.0,
        };
        let certain = FaultPlan::none()
            .with_cascade(
                10.0,
                storm,
                Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 1.0),
            )
            .resolved(99, 100.0);
        assert_eq!(certain.total_card_deaths(), 1);
        assert_eq!(certain.first_card_death(), Some(12.0));

        let never = FaultPlan::none()
            .with_cascade(
                10.0,
                storm,
                Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 0.0),
            )
            .resolved(99, 100.0);
        assert_eq!(never.total_card_deaths(), 0);
    }

    #[test]
    fn escalation_never_schedules_at_or_past_horizon() {
        let p = FaultPlan::none()
            .with_cascade(
                90.0,
                FaultKind::LinkDegrade {
                    factor: 0.2,
                    duration_s: 5.0,
                },
                // Lands exactly at the horizon: dropped by the pinned
                // `at_s >= horizon_s` semantics.
                Escalation::new(FaultKind::HostDeath { rank: 0 }, 10.0, 1.0),
            )
            .resolved(7, 100.0);
        assert_eq!(p.total_host_deaths(), 0);
    }

    #[test]
    fn resolution_is_idempotent_and_order_independent() {
        let a = FaultEvent {
            at_s: 5.0,
            kind: FaultKind::PcieCrcStorm {
                stall_s: 2e-4,
                duration_s: 4.0,
            },
            escalates_to: Some(Escalation::new(FaultKind::CardDeath { card: 1 }, 1.0, 0.9)),
        };
        let b = FaultEvent {
            at_s: 20.0,
            kind: FaultKind::LinkDegrade {
                factor: 0.3,
                duration_s: 6.0,
            },
            escalates_to: Some(Escalation::new(FaultKind::HostDeath { rank: 3 }, 2.0, 0.9)),
        };
        let fwd = FaultPlan::from_events(vec![a.clone(), b.clone()]).resolved(11, 100.0);
        let rev = FaultPlan::from_events(vec![b, a]).resolved(11, 100.0);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.fingerprint(), rev.fingerprint());
        // Resolving again with the same seed is a no-op.
        assert_eq!(fwd.resolved(11, 100.0), fwd);
    }

    #[test]
    fn cascade_changes_fingerprint_even_when_dormant() {
        let storm = FaultKind::PcieCrcStorm {
            stall_s: 1e-4,
            duration_s: 5.0,
        };
        let plain = FaultPlan::none().with_event(10.0, storm);
        let edged = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 0.5),
        );
        assert_ne!(plain.fingerprint(), edged.fingerprint());
        // A chained second hop changes the digest again.
        let chained = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 0.5).chain(Escalation::new(
                FaultKind::HostDeath { rank: 0 },
                1.0,
                0.5,
            )),
        );
        assert_ne!(edged.fingerprint(), chained.fingerprint());
    }

    #[test]
    fn effects_over_matches_integral_of_effects_at() {
        // Overlapping windows: the old multiply-the-averages composition
        // got this wrong; the piecewise-exact version must not.
        let p = FaultPlan::none()
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            )
            .with_event(
                5.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            );
        // [0,15): 5 s at 0.5, 5 s at 0.25, 5 s at 0.5 → mean 5/12.
        let e = p.effects_over(0.0, 15.0);
        assert!((e.net_bw_factor - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = FaultRng::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let x = r.range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = r.index(2, 17);
            assert!((2..17).contains(&i));
        }
    }
}
