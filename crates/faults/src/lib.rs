//! Deterministic fault injection for the simulated Linpack stack.
//!
//! The cluster and offload models in this workspace are *analytic*
//! discrete-event simulations: every run is a pure function of its
//! configuration. That makes fault tolerance unusually testable — a
//! "fault" is just a perturbation of the calibrated machine models
//! (link bandwidth, PCIe stalls, per-core throughput, card liveness)
//! applied over a window of simulated time, and a whole campaign can be
//! replayed bit-identically from one seed.
//!
//! A [`FaultPlan`] is an explicit, time-ordered list of [`FaultEvent`]s.
//! Plans are built either by hand (one event at a chosen simulated
//! time) or by [`FaultPlan::campaign`] / [`FaultPlan::cluster_campaign`],
//! which draw events from a seeded [`FaultRng`] — the same 64-bit LCG
//! family the matrix generator uses, so determinism needs no external
//! crate. Consumers never sample randomness at query time: every
//! parameter is fixed at plan construction, and [`FaultPlan::effects_at`]
//! / [`FaultPlan::effects_over`] are pure functions of simulated time.
//! [`FaultPlan::fingerprint`] hashes the full event list so tests can
//! assert two runs saw exactly the same faults.
//!
//! **Correlated cascades.** A [`FaultEvent`] may carry an
//! [`Escalation`] edge (`escalates_to`): a transient fault that, with
//! some probability, worsens into one *or several* further faults
//! after a delay — a PCIe CRC storm retraining itself into a dead
//! card, a flapping rail escalating into a lost host rank, a rack
//! power event taking a whole correlated set of ranks down at once.
//! An edge carries a list of [`ChildSpec`]s: each child has its own
//! probability, delay, optional uniform jitter, and a correlated-group
//! [`Scope`] that expands one firing draw into N spawned events across
//! a deterministic, per-event-hash-keyed target set ([`Scope::SameHost`]
//! fans to every card on the struck host, [`Scope::RankSet`] to an
//! explicit rack/chassis set, [`Scope::Fraction`] to a seeded random
//! fraction of the fleet). Children chain: each child may itself carry
//! a next edge ([`ChildSpec::then`]), so a storm can burn out its card
//! *and* the dead card can take its host down — a multi-hop cascade
//! declared as one causal unit. Edges are *resolved*, by
//! [`FaultPlan::resolved`], with a seeded draw per child: a firing
//! child appends its escalated events (carrying the remaining chain)
//! to the plan as concrete, causally linked occurrences, and
//! resolution recurses to a fixed point — bounded by
//! [`MAX_CASCADE_DEPTH`] hops and guarded against re-spawning an event
//! already in the plan, so it can never loop. The fingerprint covers
//! every child of every edge plus the spawned events — single-child
//! edges hash exactly the bytes the pre-fan-out format did, keeping
//! historical digests stable — and resolution never schedules anything
//! at or past the horizon: an escalation landing at **exactly** the
//! horizon is dropped (`at_s >= horizon_s`), keeping
//! [`FaultPlan::effects_over`] over `[0, horizon)` and the resolved
//! event list in agreement.

#![forbid(unsafe_code)]

/// The LCG multiplier shared with `phi_matrix::HplRng` (Knuth MMIX).
const MULT: u64 = 6364136223846793005;
/// The LCG increment shared with `phi_matrix::HplRng`.
const ADD: u64 = 1442695040888963407;

/// FNV-1a offset basis (shared by fingerprints and event hashes).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100000001b3;

/// Salt XORed into a campaign seed before escalation resolution, so the
/// per-edge resolution draws never alias the event-parameter draws.
const ESCALATION_SALT: u64 = 0xe5ca_1a7e_0ca5_cade;

/// Per-child-index salt multiplier (the 64-bit golden ratio) separating
/// sibling children's resolution streams. Child 0's salt is zero, so a
/// single-child edge draws exactly the stream the pre-fan-out format
/// drew — legacy plans resolve bit-identically.
const CHILD_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Upper bound on the hops a cascade chain may resolve through: a
/// depth guard on [`FaultPlan::resolved`]'s fixed-point recursion.
/// Real chains are 2–3 hops (storm → card → host); eight is comfortably
/// past anything physical while keeping a malformed self-feeding plan
/// finite.
pub const MAX_CASCADE_DEPTH: usize = 8;

/// FNV-1a over the little-endian bytes of `x`, folded into `h`.
fn fnv_mix(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Folds a kind's tag and exact parameter bit patterns into `h`.
fn mix_kind(h: &mut u64, kind: &FaultKind) {
    fnv_mix(h, kind.tag());
    match *kind {
        FaultKind::LinkDegrade { factor, duration_s } => {
            fnv_mix(h, factor.to_bits());
            fnv_mix(h, duration_s.to_bits());
        }
        FaultKind::LatencyJitter {
            sigma_s,
            duration_s,
        } => {
            fnv_mix(h, sigma_s.to_bits());
            fnv_mix(h, duration_s.to_bits());
        }
        FaultKind::PcieCrcStorm {
            stall_s,
            duration_s,
        } => {
            fnv_mix(h, stall_s.to_bits());
            fnv_mix(h, duration_s.to_bits());
        }
        FaultKind::Straggler {
            core_fraction,
            slowdown,
            duration_s,
        } => {
            fnv_mix(h, core_fraction.to_bits());
            fnv_mix(h, slowdown.to_bits());
            fnv_mix(h, duration_s.to_bits());
        }
        FaultKind::CardDeath { card } => fnv_mix(h, card as u64),
        FaultKind::HostDeath { rank } => fnv_mix(h, rank as u64),
    }
}

/// Folds a correlated-group scope's tag and parameters into `h`. Only
/// called for non-[`Scope::Single`] scopes — the default scope
/// contributes no bytes, keeping pre-fan-out digests stable.
fn mix_scope(h: &mut u64, scope: &Scope) {
    match scope {
        Scope::Single => {}
        Scope::SameCard => fnv_mix(h, 1),
        Scope::SameHost { cards } => {
            fnv_mix(h, 2);
            fnv_mix(h, *cards as u64);
        }
        Scope::RankSet(ranks) => {
            fnv_mix(h, 3);
            fnv_mix(h, ranks.len() as u64);
            for &r in ranks {
                fnv_mix(h, r as u64);
            }
        }
        Scope::Fraction { f, of } => {
            fnv_mix(h, 4);
            fnv_mix(h, f.to_bits());
            fnv_mix(h, *of as u64);
        }
    }
}

/// Folds an escalation edge — every child, and recursively the rest of
/// each child's chain — into `h`. The byte layout is
/// backward-compatible by construction: a single-child edge emits no
/// fan marker, a [`Scope::Single`] child emits no scope bytes, and a
/// zero-jitter child emits no jitter bytes, so single-hop and chained
/// edges hash exactly the bytes the pre-fan-out format did, keeping
/// historical digests stable. Multi-child edges lead with a fan marker
/// and the child count, so a 2-child fan can never alias a 2-hop chain.
fn mix_esc(h: &mut u64, esc: &Escalation) {
    if esc.children.len() != 1 {
        fnv_mix(h, 0xfa0);
        fnv_mix(h, esc.children.len() as u64);
    }
    for child in &esc.children {
        fnv_mix(h, 0xe5c);
        mix_kind(h, &child.kind);
        fnv_mix(h, child.delay_s.to_bits());
        fnv_mix(h, child.probability.to_bits());
        if child.scope != Scope::Single {
            fnv_mix(h, 0x5c0);
            mix_scope(h, &child.scope);
        }
        if child.jitter_s != 0.0 {
            fnv_mix(h, 0x171);
            fnv_mix(h, child.jitter_s.to_bits());
        }
        if let Some(next) = &child.then {
            mix_esc(h, next);
        }
    }
}

/// A content hash of one event (onset + kind + full escalation chain),
/// used to key the per-edge resolution draw: identical events draw
/// identically no matter where they sit in the plan.
fn event_hash(ev: &FaultEvent) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_mix(&mut h, ev.at_s.to_bits());
    mix_kind(&mut h, &ev.kind);
    if let Some(esc) = &ev.escalates_to {
        mix_esc(&mut h, esc);
    }
    h
}

/// Seeded 64-bit LCG — the workspace's standard deterministic stream.
///
/// Mirrors `phi_matrix::HplRng` (same constants) so `phi-faults` stays
/// a leaf crate with no dependencies.
#[derive(Clone, Copy, Debug)]
pub struct FaultRng(u64);

impl FaultRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(MULT).wrapping_add(ADD))
    }

    /// Next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(MULT).wrapping_add(ADD);
        self.0
    }

    /// Uniform in `[0, 1)` with 53 significant bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// One kind of injected fault. All parameters are concrete — nothing is
/// sampled after plan construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Inter-node link bandwidth multiplied by `factor` (< 1) for
    /// `duration_s` of simulated time — a flapping or congested rail.
    LinkDegrade { factor: f64, duration_s: f64 },
    /// Extra per-message latency of `sigma_s` seconds for `duration_s`
    /// — switch buffer jitter.
    LatencyJitter { sigma_s: f64, duration_s: f64 },
    /// PCIe CRC-retry storm: every transfer in the window pays an extra
    /// `stall_s` replay stall (the hardware retrains and replays TLPs).
    PcieCrcStorm { stall_s: f64, duration_s: f64 },
    /// A fraction of cores throttle to `slowdown`× their normal time
    /// for `duration_s` — a straggler card running hot.
    Straggler {
        core_fraction: f64,
        slowdown: f64,
        duration_s: f64,
    },
    /// A coprocessor dies at the event time and never comes back.
    CardDeath { card: usize },
    /// A host rank dies at the event time and never comes back: the
    /// surviving ranks must re-form the process grid, restore the dead
    /// rank's checkpointed panel state over the fabric and remap
    /// block-cyclic ownership before the factorization can continue.
    HostDeath {
        /// Linear rank (row-major in the P × Q grid) that is lost.
        rank: usize,
    },
}

impl FaultKind {
    /// Window length; card and host deaths are permanent.
    pub fn duration_s(&self) -> f64 {
        match *self {
            FaultKind::LinkDegrade { duration_s, .. }
            | FaultKind::LatencyJitter { duration_s, .. }
            | FaultKind::PcieCrcStorm { duration_s, .. }
            | FaultKind::Straggler { duration_s, .. } => duration_s,
            FaultKind::CardDeath { .. } | FaultKind::HostDeath { .. } => f64::INFINITY,
        }
    }

    /// True for the permanent kinds (card or host death).
    pub fn is_permanent(&self) -> bool {
        matches!(
            self,
            FaultKind::CardDeath { .. } | FaultKind::HostDeath { .. }
        )
    }

    fn tag(&self) -> u64 {
        match self {
            FaultKind::LinkDegrade { .. } => 1,
            FaultKind::LatencyJitter { .. } => 2,
            FaultKind::PcieCrcStorm { .. } => 3,
            FaultKind::Straggler { .. } => 4,
            FaultKind::CardDeath { .. } => 5,
            FaultKind::HostDeath { .. } => 6,
        }
    }
}

/// Correlated-group scope of one escalation child: how a single firing
/// draw expands into concrete spawned targets. Every expansion is a
/// pure function of the owning event's content hash and the resolution
/// seed — correlated sets are deterministic and replay bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub enum Scope {
    /// The child's own declared target, unchanged — the pre-fan-out
    /// behavior, and the default.
    Single,
    /// Correlate the child's target with the owning event: a child
    /// spawned by a card-scoped parent strikes the *same* card. Parents
    /// without a card target fall back to the declared target.
    SameCard,
    /// Fan out to every card index `0..cards` on the struck host — a
    /// PCIe CRC storm or power rail taking the whole riser with it.
    SameHost {
        /// Coprocessors per host on the modeled system.
        cards: usize,
    },
    /// Fan out to an explicit correlated rank set — a rack or chassis
    /// sharing one power feed.
    RankSet(Vec<usize>),
    /// Fan out to a seeded pseudo-random fraction `f` of ranks
    /// `0..of`: each rank joins the correlated set independently with
    /// probability `f`, keyed on the owning event's hash — the same
    /// event always strikes the same subset.
    Fraction {
        /// Per-rank membership probability in `[0, 1]`.
        f: f64,
        /// Fleet size the fraction is drawn over.
        of: usize,
    },
}

impl Scope {
    /// Expands the scope into spawn targets, in deterministic order.
    /// `Some(t)` retargets the child's kind onto `t` (card index or
    /// host rank); `None` keeps the declared target. Membership draws
    /// ([`Scope::Fraction`]) come from `rng`, which resolution keys on
    /// the owning event's content hash — so the correlated set is a
    /// pure function of (seed, event).
    fn expand(&self, parent: &FaultKind, rng: &mut FaultRng) -> Vec<Option<usize>> {
        match self {
            Scope::Single => vec![None],
            Scope::SameCard => match *parent {
                FaultKind::CardDeath { card } => vec![Some(card)],
                _ => vec![None],
            },
            Scope::SameHost { cards } => (0..(*cards).max(1)).map(Some).collect(),
            Scope::RankSet(ranks) => ranks.iter().map(|&r| Some(r)).collect(),
            Scope::Fraction { f, of } => (0..*of)
                .filter_map(|r| if rng.unit() < *f { Some(Some(r)) } else { None })
                .collect(),
        }
    }
}

/// Stamps target `t` into a kind's card/rank slot; transient kinds
/// carry no target and pass through unchanged.
fn retarget(kind: FaultKind, t: usize) -> FaultKind {
    match kind {
        FaultKind::CardDeath { .. } => FaultKind::CardDeath { card: t },
        FaultKind::HostDeath { .. } => FaultKind::HostDeath { rank: t },
        other => other,
    }
}

/// One child of a correlated-failure edge: the owning event escalates
/// into `kind` after `delay_s` (plus optional per-target jitter), with
/// probability `probability`, across the targets its [`Scope`] expands
/// to. A chain continues through [`then`]: every spawned event inherits
/// the tail of the chain and resolves it in turn (storm → card →
/// host). All fields are concrete; the only randomness is the seeded
/// per-child draw stream at resolution time.
///
/// [`then`]: ChildSpec::then
#[derive(Clone, Debug, PartialEq)]
pub struct ChildSpec {
    /// The fault this child escalates into (its card/rank target may be
    /// rewritten by the scope expansion).
    pub kind: FaultKind,
    /// Delay from the owning event's onset to the escalated onset,
    /// seconds of simulated time (≥ 0).
    pub delay_s: f64,
    /// Probability in `[0, 1]` that the child fires at resolution. One
    /// draw covers the whole correlated set: the group fires together
    /// or not at all.
    pub probability: f64,
    /// Extra uniform `[0, jitter_s)` onset stagger drawn per spawned
    /// target — members of a correlated set don't land on exactly the
    /// same microsecond. Zero (the default) adds no draw offset and
    /// keeps spawn times bit-identical to the pre-fan-out format.
    pub jitter_s: f64,
    /// Correlated-group scope; [`Scope::Single`] (the default)
    /// reproduces the pre-fan-out single-target behavior.
    pub scope: Scope,
    /// Next hop of the chain, carried by every spawned event; `None`
    /// terminates the chain.
    pub then: Option<Box<Escalation>>,
}

impl ChildSpec {
    /// A single-target child (no scope fan-out, no jitter, no chain).
    pub fn new(kind: FaultKind, delay_s: f64, probability: f64) -> Self {
        Self {
            kind,
            delay_s,
            probability,
            jitter_s: 0.0,
            scope: Scope::Single,
            then: None,
        }
    }

    /// Sets the correlated-group scope (builder style).
    pub fn with_scope(mut self, scope: Scope) -> Self {
        self.scope = scope;
        self
    }

    /// Sets the per-target onset jitter bound (builder style).
    pub fn with_jitter(mut self, jitter_s: f64) -> Self {
        self.jitter_s = jitter_s;
        self
    }

    /// Hops through this child's chain, itself included (≥ 1).
    fn hops(&self) -> usize {
        1 + self.then.as_ref().map_or(0, |t| t.hops())
    }

    fn clip(&mut self, depth: usize) {
        if depth <= 1 {
            self.then = None;
        } else if let Some(tail) = &mut self.then {
            tail.clip(depth - 1);
        }
    }
}

/// A correlated-failure edge: one or more [`ChildSpec`]s the owning
/// event may escalate into when the plan is [`FaultPlan::resolved`].
/// The single-child constructors ([`Escalation::new`] +
/// [`Escalation::chain`]) reproduce the pre-fan-out chain semantics —
/// same fingerprints, same resolution draws; [`Escalation::fan`] /
/// [`Escalation::also`] declare multi-child fan-out edges.
#[derive(Clone, Debug, PartialEq)]
pub struct Escalation {
    /// The children this edge may spawn; each draws independently.
    pub children: Vec<ChildSpec>,
}

impl Escalation {
    /// A single-hop, single-child edge (no chain, no fan-out).
    pub fn new(kind: FaultKind, delay_s: f64, probability: f64) -> Self {
        Self {
            children: vec![ChildSpec::new(kind, delay_s, probability)],
        }
    }

    /// A multi-child fan-out edge. Panics on an empty child list — an
    /// edge that can spawn nothing is a plan-construction bug.
    pub fn fan(children: Vec<ChildSpec>) -> Self {
        assert!(!children.is_empty(), "a fan-out edge needs children");
        Self { children }
    }

    /// Appends `next` at the end of the *last* child's chain (builder
    /// style), so `a.chain(b).chain(c)` reads in causal order: the
    /// owning event escalates into `a`, which escalates into `b`, then
    /// `c`. On single-child edges this is exactly the pre-fan-out
    /// chain builder.
    pub fn chain(mut self, next: Escalation) -> Self {
        self.push_tail(next);
        self
    }

    /// Adds a sibling child to this edge (builder style).
    pub fn also(mut self, child: ChildSpec) -> Self {
        self.children.push(child);
        self
    }

    fn push_tail(&mut self, next: Escalation) {
        let last = self
            .children
            .last_mut()
            .expect("an escalation edge always has at least one child");
        match &mut last.then {
            Some(tail) => tail.push_tail(next),
            None => last.then = Some(Box::new(next)),
        }
    }

    /// Hops in the longest chain through this edge, the terminal edge
    /// included (≥ 1).
    pub fn hops(&self) -> usize {
        self.children.iter().map(ChildSpec::hops).max().unwrap_or(1)
    }

    /// Clips every chain to at most `depth` hops. Plan construction
    /// applies this with [`MAX_CASCADE_DEPTH`], so the depth bound is a
    /// property of the *declared* plan — which keeps resolution a true
    /// fixed point (a spawned event's tail is always a suffix of an
    /// already-clipped chain).
    fn clip(&mut self, depth: usize) {
        for child in &mut self.children {
            child.clip(depth);
        }
    }
}

/// A fault scheduled at an absolute simulated time.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Onset, seconds of simulated time.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
    /// Optional correlated-cascade edge, resolved by
    /// [`FaultPlan::resolved`]. `None` for a plain, uncorrelated fault.
    pub escalates_to: Option<Escalation>,
}

impl FaultEvent {
    /// A plain event with no escalation edge.
    pub fn new(at_s: f64, kind: FaultKind) -> Self {
        Self {
            at_s,
            kind,
            escalates_to: None,
        }
    }
    /// Does the window cover simulated time `t`?
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.at_s && t < self.at_s + self.kind.duration_s()
    }

    /// Fraction of `[t0, t1)` the window covers (0 when disjoint).
    pub fn overlap_fraction(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let end = self.at_s + self.kind.duration_s();
        let lo = self.at_s.max(t0);
        let hi = end.min(t1);
        ((hi - lo) / (t1 - t0)).clamp(0.0, 1.0)
    }
}

/// Aggregate perturbation of the machine models at (or over) a point of
/// simulated time. The identity element ([`Effects::healthy`]) leaves
/// every model untouched — a zero-fault plan is bit-identical to no
/// plan at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Effects {
    /// Multiplier on inter-node link bandwidth, in `(0, 1]`.
    pub net_bw_factor: f64,
    /// Additive per-message network latency, seconds.
    pub extra_latency_s: f64,
    /// Additive per-transfer PCIe stall, seconds.
    pub pcie_stall_s: f64,
    /// Multiplier ≥ 1 on compute time (straggler throttling).
    pub compute_slowdown: f64,
    /// Cards dead so far (cumulative, permanent).
    pub cards_lost: usize,
    /// Host ranks dead so far (cumulative, permanent).
    pub hosts_lost: usize,
}

impl Effects {
    /// No perturbation at all.
    pub fn healthy() -> Self {
        Self {
            net_bw_factor: 1.0,
            extra_latency_s: 0.0,
            pcie_stall_s: 0.0,
            compute_slowdown: 1.0,
            cards_lost: 0,
            hosts_lost: 0,
        }
    }

    /// True when this equals [`Effects::healthy`].
    pub fn is_healthy(&self) -> bool {
        *self == Self::healthy()
    }
}

/// Which failure-mode family a [`FaultPlan::fleet_campaign`] draws
/// from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CampaignScope {
    /// Plain cluster kinds blended with both fan-out archetypes.
    #[default]
    Mixed,
    /// Rack power events only: correlated rank-set deaths.
    Rack,
    /// Host-wide PCIe storms only: fan-out to every card on a host.
    Storm,
}

impl CampaignScope {
    /// Every scope, for sweeps and flag validation.
    pub const ALL: [CampaignScope; 3] = [
        CampaignScope::Mixed,
        CampaignScope::Rack,
        CampaignScope::Storm,
    ];

    /// Stable lowercase name (flag value / report label).
    pub fn name(&self) -> &'static str {
        match self {
            CampaignScope::Mixed => "mixed",
            CampaignScope::Rack => "rack",
            CampaignScope::Storm => "storm",
        }
    }

    /// Parses a flag value; `None` on anything unknown.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mixed" => Some(CampaignScope::Mixed),
            "rack" => Some(CampaignScope::Rack),
            "storm" => Some(CampaignScope::Storm),
            _ => None,
        }
    }
}

/// A deterministic, replayable fault schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, identical output to a healthy run.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from explicit events (kept sorted by onset). Escalation
    /// chains deeper than [`MAX_CASCADE_DEPTH`] are clipped here, at
    /// declaration, so every plan satisfies the depth bound by
    /// construction.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        for ev in &mut events {
            if let Some(esc) = &mut ev.escalates_to {
                esc.clip(MAX_CASCADE_DEPTH);
            }
        }
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Self { events }
    }

    /// A seeded random campaign: `count` events drawn over
    /// `[0, horizon_s)`. Identical `(seed, horizon_s, count)` triples
    /// produce identical plans, bit for bit. Single-node flavour: no
    /// host deaths and no escalation edges (see
    /// [`FaultPlan::cluster_campaign`] for those).
    pub fn campaign(seed: u64, horizon_s: f64, count: usize) -> Self {
        assert!(horizon_s > 0.0);
        let mut rng = FaultRng::new(seed);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at_s = rng.range(0.0, horizon_s);
            let window = rng.range(0.02, 0.25) * horizon_s;
            let kind = match rng.index(0, 5) {
                0 => FaultKind::LinkDegrade {
                    factor: rng.range(0.25, 0.9),
                    duration_s: window,
                },
                1 => FaultKind::LatencyJitter {
                    sigma_s: rng.range(1e-6, 40e-6),
                    duration_s: window,
                },
                2 => FaultKind::PcieCrcStorm {
                    stall_s: rng.range(5e-6, 200e-6),
                    duration_s: window,
                },
                3 => FaultKind::Straggler {
                    core_fraction: rng.range(0.05, 0.5),
                    slowdown: rng.range(1.2, 3.0),
                    duration_s: window,
                },
                _ => FaultKind::CardDeath {
                    card: rng.index(0, 2),
                },
            };
            events.push(FaultEvent::new(at_s, kind));
        }
        Self::from_events(events)
    }

    /// A seeded random campaign for a `nodes`-rank cluster with
    /// `cards_per_node` coprocessors per host: the single-node kinds
    /// plus host-rank deaths and correlated cascades (a CRC storm that
    /// may escalate into a card death, a degraded rail that may
    /// escalate into a host death). Escalation edges are resolved
    /// before the plan is returned, so every event in the result is
    /// concrete and strictly inside the horizon. Identical argument
    /// tuples produce identical plans, bit for bit.
    pub fn cluster_campaign(
        seed: u64,
        horizon_s: f64,
        count: usize,
        nodes: usize,
        cards_per_node: usize,
    ) -> Self {
        assert!(horizon_s > 0.0, "degenerate horizon");
        assert!(nodes > 0, "a cluster has at least one rank");
        let mut rng = FaultRng::new(seed);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at_s = rng.range(0.0, horizon_s);
            let window = rng.range(0.02, 0.25) * horizon_s;
            let (kind, escalates_to) = match rng.index(0, 8) {
                0 => (
                    FaultKind::LinkDegrade {
                        factor: rng.range(0.25, 0.9),
                        duration_s: window,
                    },
                    None,
                ),
                1 => (
                    FaultKind::LatencyJitter {
                        sigma_s: rng.range(1e-6, 40e-6),
                        duration_s: window,
                    },
                    None,
                ),
                2 => (
                    FaultKind::PcieCrcStorm {
                        stall_s: rng.range(5e-6, 200e-6),
                        duration_s: window,
                    },
                    None,
                ),
                3 => (
                    FaultKind::Straggler {
                        core_fraction: rng.range(0.05, 0.5),
                        slowdown: rng.range(1.2, 3.0),
                        duration_s: window,
                    },
                    None,
                ),
                4 => (
                    FaultKind::CardDeath {
                        card: rng.index(0, cards_per_node.max(1)),
                    },
                    None,
                ),
                5 => (
                    FaultKind::HostDeath {
                        rank: rng.index(0, nodes),
                    },
                    None,
                ),
                6 => (
                    // A CRC storm that may burn out the card it storms
                    // on — and the dead card may then take its whole
                    // host down (the 3-hop storm → card → host chain).
                    FaultKind::PcieCrcStorm {
                        stall_s: rng.range(50e-6, 400e-6),
                        duration_s: window,
                    },
                    Some(
                        Escalation::new(
                            FaultKind::CardDeath {
                                card: rng.index(0, cards_per_node.max(1)),
                            },
                            rng.range(0.0, 0.1) * horizon_s,
                            rng.range(0.25, 1.0),
                        )
                        .chain(Escalation::new(
                            FaultKind::HostDeath {
                                rank: rng.index(0, nodes),
                            },
                            rng.range(0.0, 0.1) * horizon_s,
                            rng.range(0.25, 1.0),
                        )),
                    ),
                ),
                _ => (
                    // A flapping rail that may take its host down with it.
                    FaultKind::LinkDegrade {
                        factor: rng.range(0.1, 0.5),
                        duration_s: window,
                    },
                    Some(Escalation::new(
                        FaultKind::HostDeath {
                            rank: rng.index(0, nodes),
                        },
                        rng.range(0.0, 0.1) * horizon_s,
                        rng.range(0.25, 1.0),
                    )),
                ),
            };
            events.push(FaultEvent {
                at_s,
                kind,
                escalates_to,
            });
        }
        Self::from_events(events).resolved(seed ^ ESCALATION_SALT, horizon_s)
    }

    /// A seeded random *fleet* campaign: the correlated fan-out
    /// archetypes operational Phi deployments report, drawn over
    /// `[0, horizon_s)` for a `nodes`-rank cluster with
    /// `cards_per_node` coprocessors per host. [`CampaignScope::Rack`]
    /// draws rack power events — a deep link brownout that fans out,
    /// on one correlated draw, into host deaths across a contiguous
    /// rank span sharing the feed. [`CampaignScope::Storm`] draws PCIe
    /// CRC storms that fan out to every card on the struck host, with
    /// a chained chance of taking the host itself down.
    /// [`CampaignScope::Mixed`] blends both with the plain
    /// single-target kinds of [`FaultPlan::cluster_campaign`].
    /// Escalation edges are resolved before the plan is returned, so
    /// every event in the result is concrete and strictly inside the
    /// horizon. Identical argument tuples produce identical plans, bit
    /// for bit, and the correlated sets are keyed per event hash — the
    /// same seed always strikes the same ranks.
    pub fn fleet_campaign(
        seed: u64,
        horizon_s: f64,
        count: usize,
        nodes: usize,
        cards_per_node: usize,
        scope: CampaignScope,
    ) -> Self {
        assert!(horizon_s > 0.0, "degenerate horizon");
        assert!(nodes > 0, "a cluster has at least one rank");
        let mut rng = FaultRng::new(seed);
        let mut events = Vec::with_capacity(count);
        // A rack spans up to 8 contiguous ranks — small enough that a
        // single rack event stays inside a 100-node system's default
        // patch-remap budget, large enough to exercise batch recovery.
        let rack_w = 8.min(nodes);
        for _ in 0..count {
            let at_s = rng.range(0.0, horizon_s);
            let window = rng.range(0.02, 0.25) * horizon_s;
            let archetype = match scope {
                CampaignScope::Rack => 0,
                CampaignScope::Storm => 1,
                // Mixed: mostly plain cluster kinds, with both fan-out
                // archetypes in the tail of the distribution.
                CampaignScope::Mixed => match rng.index(0, 8) {
                    0 => 0,
                    1 => 1,
                    _ => 2,
                },
            };
            let ev = match archetype {
                0 => {
                    // Rack power event: the shared feed browns out the
                    // rack's links, and with one correlated draw the
                    // whole contiguous rank span goes down together.
                    let start = rng.index(0, nodes - rack_w + 1);
                    let ranks: Vec<usize> = (start..start + rack_w).collect();
                    FaultEvent {
                        at_s,
                        kind: FaultKind::LinkDegrade {
                            factor: rng.range(0.05, 0.3),
                            duration_s: window,
                        },
                        escalates_to: Some(Escalation::fan(vec![ChildSpec::new(
                            FaultKind::HostDeath { rank: start },
                            rng.range(0.0, 0.05) * horizon_s,
                            rng.range(0.2, 0.9),
                        )
                        .with_scope(Scope::RankSet(ranks))
                        .with_jitter(rng.range(0.0, 0.01) * horizon_s)])),
                    }
                }
                1 => {
                    // Host-wide PCIe storm: every card on the host sees
                    // the retry storm burn it out, and the dead riser
                    // may take the host rank down with it.
                    let host = rng.index(0, nodes);
                    FaultEvent {
                        at_s,
                        kind: FaultKind::PcieCrcStorm {
                            stall_s: rng.range(50e-6, 400e-6),
                            duration_s: window,
                        },
                        escalates_to: Some(
                            Escalation::fan(vec![ChildSpec::new(
                                FaultKind::CardDeath { card: 0 },
                                rng.range(0.0, 0.05) * horizon_s,
                                rng.range(0.25, 0.9),
                            )
                            .with_scope(Scope::SameHost {
                                cards: cards_per_node.max(1),
                            })])
                            .chain(Escalation::new(
                                FaultKind::HostDeath { rank: host },
                                rng.range(0.0, 0.05) * horizon_s,
                                rng.range(0.2, 0.7),
                            )),
                        ),
                    }
                }
                _ => {
                    // Plain single-target kinds, same families as
                    // `cluster_campaign`.
                    let kind = match rng.index(0, 6) {
                        0 => FaultKind::LinkDegrade {
                            factor: rng.range(0.25, 0.9),
                            duration_s: window,
                        },
                        1 => FaultKind::LatencyJitter {
                            sigma_s: rng.range(1e-6, 40e-6),
                            duration_s: window,
                        },
                        2 => FaultKind::PcieCrcStorm {
                            stall_s: rng.range(5e-6, 200e-6),
                            duration_s: window,
                        },
                        3 => FaultKind::Straggler {
                            core_fraction: rng.range(0.05, 0.5),
                            slowdown: rng.range(1.2, 3.0),
                            duration_s: window,
                        },
                        4 => FaultKind::CardDeath {
                            card: rng.index(0, cards_per_node.max(1)),
                        },
                        _ => FaultKind::HostDeath {
                            rank: rng.index(0, nodes),
                        },
                    };
                    FaultEvent::new(at_s, kind)
                }
            };
            events.push(ev);
        }
        Self::from_events(events).resolved(seed ^ ESCALATION_SALT, horizon_s)
    }

    /// Adds one event (builder style), keeping onset order.
    pub fn with_event(self, at_s: f64, kind: FaultKind) -> Self {
        self.with_fault_event(FaultEvent::new(at_s, kind))
    }

    /// Adds one event carrying a correlated-cascade edge (builder
    /// style). The edge stays latent until [`FaultPlan::resolved`] is
    /// called.
    pub fn with_cascade(self, at_s: f64, kind: FaultKind, escalation: Escalation) -> Self {
        self.with_fault_event(FaultEvent {
            at_s,
            kind,
            escalates_to: Some(escalation),
        })
    }

    /// Adds a fully-specified event (builder style), keeping onset
    /// order and the construction-time chain clipping.
    pub fn with_fault_event(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        Self::from_events(self.events)
    }

    /// Resolves every escalation edge to a fixed point, with one
    /// seeded draw per child: a firing child expands its [`Scope`]
    /// into concrete targets and appends each escalated fault as a
    /// concrete event at `parent.at_s + delay_s (+ jitter)` carrying
    /// the rest of the chain, and the spawned events' own edges
    /// resolve in the next round — recursively, until no unresolved
    /// edge remains. A whole correlated set (a rack's rank set, every
    /// card on a host) therefore lands in **one** resolution step of
    /// the worklist. The recursion is bounded by construction: chains
    /// are clipped to [`MAX_CASCADE_DEPTH`] hops when the plan is
    /// built, and every spawned tail is strictly shorter than its
    /// parent's chain, so the fixed point arrives within that many
    /// rounds. Spawned onsets must lie strictly before `horizon_s`: an
    /// escalation landing at *exactly* the horizon is dropped (and
    /// with it the rest of its chain) — cascades never schedule
    /// anything at or past the horizon.
    ///
    /// Each child's draw stream is keyed on `seed`, the drawing
    /// event's own content hash, and the child's index (child 0's salt
    /// is zero, so single-child edges draw exactly the pre-fan-out
    /// stream), so resolution is independent of event order,
    /// deterministic, and idempotent: resolving an already-resolved
    /// plan with the same seed changes nothing. A child whose spawned
    /// event already exists in the plan, chain and all, fires into it
    /// (no duplicate is appended) — that dedups identical spawns
    /// across sibling children too, and together with the depth
    /// clipping it is the cycle guard: a self-feeding chain
    /// re-deriving the same event converges instead of looping.
    pub fn resolved(&self, seed: u64, horizon_s: f64) -> Self {
        assert!(horizon_s > 0.0, "degenerate horizon");
        let mut out = self.events.clone();
        let mut frontier = self.events.clone();
        for _hop in 0..MAX_CASCADE_DEPTH {
            let mut next = Vec::new();
            for ev in &frontier {
                let Some(esc) = &ev.escalates_to else {
                    continue;
                };
                let eh = event_hash(ev);
                for (i, child) in esc.children.iter().enumerate() {
                    let salt = (i as u64).wrapping_mul(CHILD_SALT);
                    let mut rng = FaultRng::new(seed ^ eh ^ salt);
                    if rng.unit() >= child.probability {
                        continue;
                    }
                    for target in child.scope.expand(&ev.kind, &mut rng) {
                        let mut at_s = ev.at_s + child.delay_s;
                        if child.jitter_s > 0.0 {
                            at_s += rng.range(0.0, child.jitter_s);
                        }
                        if at_s >= horizon_s {
                            continue;
                        }
                        let kind = match target {
                            Some(t) => retarget(child.kind, t),
                            None => child.kind,
                        };
                        let spawned = FaultEvent {
                            at_s,
                            kind,
                            escalates_to: child.then.as_deref().cloned(),
                        };
                        if !out.contains(&spawned) {
                            out.push(spawned.clone());
                            next.push(spawned);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        Self::from_events(out)
    }

    /// The schedule, onset-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ranks killed by [`FaultKind::HostDeath`] events, onset-ordered,
    /// each folded into `0..size` the way the recovery loops address a
    /// grid (`rank % size`). Duplicates are kept — a rank named twice
    /// in a plan is the caller's dedup decision, exactly as it was for
    /// the inline filters this replaces.
    pub fn host_death_ranks(&self, size: usize) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|ev| match ev.kind {
                FaultKind::HostDeath { rank } => Some(rank % size),
                _ => None,
            })
            .collect()
    }

    /// Ranks killed by *any* permanent death, onset-ordered and folded
    /// into `0..size`. In the native flavour a node *is* a card, so
    /// [`FaultKind::CardDeath`] and [`FaultKind::HostDeath`] both name
    /// a dying rank.
    pub fn node_death_ranks(&self, size: usize) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|ev| match ev.kind {
                FaultKind::CardDeath { card } => Some(card % size),
                FaultKind::HostDeath { rank } => Some(rank % size),
                _ => None,
            })
            .collect()
    }

    /// Instantaneous aggregate effects at simulated time `t`.
    /// Overlapping faults compose: bandwidth factors multiply, latency
    /// and stalls add, slowdowns multiply, card and host deaths
    /// accumulate.
    pub fn effects_at(&self, t: f64) -> Effects {
        let mut e = Effects::healthy();
        for ev in &self.events {
            match ev.kind {
                FaultKind::CardDeath { .. } if t >= ev.at_s => e.cards_lost += 1,
                FaultKind::HostDeath { .. } if t >= ev.at_s => e.hosts_lost += 1,
                FaultKind::CardDeath { .. } | FaultKind::HostDeath { .. } => {}
                _ if ev.active_at(t) => match ev.kind {
                    FaultKind::LinkDegrade { factor, .. } => e.net_bw_factor *= factor,
                    FaultKind::LatencyJitter { sigma_s, .. } => e.extra_latency_s += sigma_s,
                    FaultKind::PcieCrcStorm { stall_s, .. } => e.pcie_stall_s += stall_s,
                    FaultKind::Straggler {
                        core_fraction,
                        slowdown,
                        ..
                    } => {
                        // A fraction f of cores running k× slower drags
                        // aggregate throughput to 1/(1-f+f*k)... inverted:
                        e.compute_slowdown *= 1.0 - core_fraction + core_fraction * slowdown;
                    }
                    FaultKind::CardDeath { .. } | FaultKind::HostDeath { .. } => unreachable!(),
                },
                _ => {}
            }
        }
        e
    }

    /// Aggregate effects averaged over `[t0, t1)` — the right
    /// granularity for the per-stage cluster loop.
    ///
    /// [`Self::effects_at`] is piecewise constant with breakpoints at
    /// window boundaries, so the window fields here are the *exact*
    /// time-average `∫ effects_at dt / (t1 − t0)` (up to float
    /// rounding): the interval is cut at every boundary and each
    /// sub-interval contributes its instantaneous composition, weighted
    /// by length. The permanent counters (`cards_lost`, `hosts_lost`)
    /// are instead the totals by the *end* of the window — a death
    /// anywhere in `[t0, t1)` has happened from the next panel
    /// boundary's point of view. A window no transient fault overlaps
    /// returns bit-exactly healthy window fields.
    pub fn effects_over(&self, t0: f64, t1: f64) -> Effects {
        let mut e = Effects::healthy();
        for ev in &self.events {
            match ev.kind {
                FaultKind::CardDeath { .. } if ev.at_s < t1 => e.cards_lost += 1,
                FaultKind::HostDeath { .. } if ev.at_s < t1 => e.hosts_lost += 1,
                _ => {}
            }
        }
        if t1 <= t0 {
            return e;
        }
        // Breakpoints of the piecewise-constant transient fields that
        // fall strictly inside the window. None ⇒ every transient field
        // is constant over the window; sample once so the no-overlap
        // case stays bit-exactly healthy.
        let mut cuts: Vec<f64> = Vec::new();
        let mut touched = false;
        for ev in &self.events {
            if ev.kind.is_permanent() {
                continue;
            }
            touched |= ev.overlap_fraction(t0, t1) > 0.0;
            let end = ev.at_s + ev.kind.duration_s();
            for b in [ev.at_s, end] {
                if b > t0 && b < t1 {
                    cuts.push(b);
                }
            }
        }
        if !touched {
            return e;
        }
        cuts.push(t0);
        cuts.push(t1);
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| a.to_bits() == b.to_bits());
        // Accumulate each field as healthy + Σ weighted deviation, so
        // sub-intervals where a field is untouched contribute exactly
        // nothing to it.
        let span = t1 - t0;
        let (mut bw, mut lat, mut stall, mut slow) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for pair in cuts.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let s = self.effects_at(lo + 0.5 * (hi - lo));
            let w = (hi - lo) / span;
            bw += w * (s.net_bw_factor - 1.0);
            lat += w * s.extra_latency_s;
            stall += w * s.pcie_stall_s;
            slow += w * (s.compute_slowdown - 1.0);
        }
        e.net_bw_factor = 1.0 + bw;
        e.extra_latency_s = lat;
        e.pcie_stall_s = stall;
        e.compute_slowdown = 1.0 + slow;
        e
    }

    /// Onset of the first card death, if any card ever dies.
    pub fn first_card_death(&self) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CardDeath { .. }))
            .map(|e| e.at_s)
            .next()
    }

    /// Total cards that ever die under this plan.
    pub fn total_card_deaths(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CardDeath { .. }))
            .count()
    }

    /// Onset of the first host-rank death, if any host ever dies.
    pub fn first_host_death(&self) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::HostDeath { .. }))
            .map(|e| e.at_s)
            .next()
    }

    /// Total host ranks that ever die under this plan.
    pub fn total_host_deaths(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::HostDeath { .. }))
            .count()
    }

    /// FNV-1a over the exact bit patterns of every event, including
    /// every hop of any escalation chain — two plans fingerprint equal
    /// iff they schedule identical faults with identical cascade
    /// structure. A resolved cascade (edges + spawned events)
    /// therefore carries one fingerprint distinct from the same faults
    /// arriving uncorrelated; edge-free and single-hop plans keep
    /// their historical digests.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for ev in &self.events {
            fnv_mix(&mut h, ev.at_s.to_bits());
            mix_kind(&mut h, &ev.kind);
            if let Some(esc) = &ev.escalates_to {
                mix_esc(&mut h, esc);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_healthy_everywhere() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        for t in [0.0, 1.0, 1e6] {
            assert!(p.effects_at(t).is_healthy());
        }
        assert!(p.effects_over(0.0, 1e9).is_healthy());
        assert_eq!(p.first_card_death(), None);
    }

    #[test]
    fn same_seed_same_campaign() {
        let a = FaultPlan::campaign(42, 100.0, 12);
        let b = FaultPlan::campaign(42, 100.0, 12);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FaultPlan::campaign(43, 100.0, 12);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn window_activation_and_overlap() {
        let p = FaultPlan::none().with_event(
            10.0,
            FaultKind::LinkDegrade {
                factor: 0.5,
                duration_s: 5.0,
            },
        );
        assert!(p.effects_at(9.99).is_healthy());
        assert_eq!(p.effects_at(12.0).net_bw_factor, 0.5);
        assert!(p.effects_at(15.0).is_healthy());
        // Half of [10, 20) overlaps → factor averages to 0.75.
        let e = p.effects_over(10.0, 20.0);
        assert!((e.net_bw_factor - 0.75).abs() < 1e-12);
        // Disjoint window sees nothing.
        assert!(p.effects_over(20.0, 30.0).is_healthy());
    }

    #[test]
    fn card_death_is_permanent_and_cumulative() {
        let p = FaultPlan::none()
            .with_event(5.0, FaultKind::CardDeath { card: 0 })
            .with_event(8.0, FaultKind::CardDeath { card: 1 });
        assert_eq!(p.effects_at(4.0).cards_lost, 0);
        assert_eq!(p.effects_at(6.0).cards_lost, 1);
        assert_eq!(p.effects_at(1e9).cards_lost, 2);
        assert_eq!(p.first_card_death(), Some(5.0));
        assert_eq!(p.total_card_deaths(), 2);
    }

    #[test]
    fn overlapping_faults_compose() {
        let p = FaultPlan::none()
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            )
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            )
            .with_event(
                0.0,
                FaultKind::Straggler {
                    core_fraction: 0.5,
                    slowdown: 2.0,
                    duration_s: 10.0,
                },
            );
        let e = p.effects_at(5.0);
        assert!((e.net_bw_factor - 0.25).abs() < 1e-12);
        assert!((e.compute_slowdown - 1.5).abs() < 1e-12);
    }

    #[test]
    fn events_are_onset_sorted() {
        let p = FaultPlan::from_events(vec![
            FaultEvent::new(9.0, FaultKind::CardDeath { card: 0 }),
            FaultEvent::new(
                1.0,
                FaultKind::LatencyJitter {
                    sigma_s: 1e-6,
                    duration_s: 2.0,
                },
            ),
        ]);
        assert!(p.events()[0].at_s < p.events()[1].at_s);
    }

    #[test]
    fn host_death_is_permanent_and_cumulative() {
        let p = FaultPlan::none()
            .with_event(3.0, FaultKind::HostDeath { rank: 7 })
            .with_event(11.0, FaultKind::HostDeath { rank: 2 });
        assert_eq!(p.effects_at(2.9).hosts_lost, 0);
        assert_eq!(p.effects_at(3.0).hosts_lost, 1);
        assert_eq!(p.effects_at(1e9).hosts_lost, 2);
        assert_eq!(p.effects_over(0.0, 4.0).hosts_lost, 1);
        assert_eq!(p.first_host_death(), Some(3.0));
        assert_eq!(p.total_host_deaths(), 2);
        // Host deaths don't count as card deaths (and vice versa).
        assert_eq!(p.total_card_deaths(), 0);
        assert_eq!(p.effects_at(1e9).cards_lost, 0);
    }

    #[test]
    fn cluster_campaign_is_deterministic_and_inside_horizon() {
        let a = FaultPlan::cluster_campaign(42, 3600.0, 24, 100, 1);
        let b = FaultPlan::cluster_campaign(42, 3600.0, 24, 100, 1);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            FaultPlan::cluster_campaign(43, 3600.0, 24, 100, 1).fingerprint()
        );
        // Resolution may append events, never schedule past the horizon.
        assert!(a.events().len() >= 24);
        for ev in a.events() {
            assert!(ev.at_s < 3600.0);
            if let FaultKind::HostDeath { rank } = ev.kind {
                assert!(rank < 100);
            }
        }
    }

    #[test]
    fn escalation_fires_iff_draw_beats_probability() {
        let storm = FaultKind::PcieCrcStorm {
            stall_s: 1e-4,
            duration_s: 5.0,
        };
        let certain = FaultPlan::none()
            .with_cascade(
                10.0,
                storm,
                Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 1.0),
            )
            .resolved(99, 100.0);
        assert_eq!(certain.total_card_deaths(), 1);
        assert_eq!(certain.first_card_death(), Some(12.0));

        let never = FaultPlan::none()
            .with_cascade(
                10.0,
                storm,
                Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 0.0),
            )
            .resolved(99, 100.0);
        assert_eq!(never.total_card_deaths(), 0);
    }

    #[test]
    fn escalation_never_schedules_at_or_past_horizon() {
        let p = FaultPlan::none()
            .with_cascade(
                90.0,
                FaultKind::LinkDegrade {
                    factor: 0.2,
                    duration_s: 5.0,
                },
                // Lands exactly at the horizon: dropped by the pinned
                // `at_s >= horizon_s` semantics.
                Escalation::new(FaultKind::HostDeath { rank: 0 }, 10.0, 1.0),
            )
            .resolved(7, 100.0);
        assert_eq!(p.total_host_deaths(), 0);
    }

    #[test]
    fn resolution_is_idempotent_and_order_independent() {
        let a = FaultEvent {
            at_s: 5.0,
            kind: FaultKind::PcieCrcStorm {
                stall_s: 2e-4,
                duration_s: 4.0,
            },
            escalates_to: Some(Escalation::new(FaultKind::CardDeath { card: 1 }, 1.0, 0.9)),
        };
        let b = FaultEvent {
            at_s: 20.0,
            kind: FaultKind::LinkDegrade {
                factor: 0.3,
                duration_s: 6.0,
            },
            escalates_to: Some(Escalation::new(FaultKind::HostDeath { rank: 3 }, 2.0, 0.9)),
        };
        let fwd = FaultPlan::from_events(vec![a.clone(), b.clone()]).resolved(11, 100.0);
        let rev = FaultPlan::from_events(vec![b, a]).resolved(11, 100.0);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.fingerprint(), rev.fingerprint());
        // Resolving again with the same seed is a no-op.
        assert_eq!(fwd.resolved(11, 100.0), fwd);
    }

    #[test]
    fn cascade_changes_fingerprint_even_when_dormant() {
        let storm = FaultKind::PcieCrcStorm {
            stall_s: 1e-4,
            duration_s: 5.0,
        };
        let plain = FaultPlan::none().with_event(10.0, storm);
        let edged = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 0.5),
        );
        assert_ne!(plain.fingerprint(), edged.fingerprint());
        // A chained second hop changes the digest again.
        let chained = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 0.5).chain(Escalation::new(
                FaultKind::HostDeath { rank: 0 },
                1.0,
                0.5,
            )),
        );
        assert_ne!(edged.fingerprint(), chained.fingerprint());
    }

    #[test]
    fn effects_over_matches_integral_of_effects_at() {
        // Overlapping windows: the old multiply-the-averages composition
        // got this wrong; the piecewise-exact version must not.
        let p = FaultPlan::none()
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            )
            .with_event(
                5.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            );
        // [0,15): 5 s at 0.5, 5 s at 0.25, 5 s at 0.5 → mean 5/12.
        let e = p.effects_over(0.0, 15.0);
        assert!((e.net_bw_factor - 5.0 / 12.0).abs() < 1e-12);
    }

    /// The pre-fan-out escalation hash, re-implemented byte for byte:
    /// `0xe5c, kind, delay, prob`, then the chained hop. The new
    /// `mix_esc` must reproduce it exactly on single-child chains.
    fn legacy_mix_chain(h: &mut u64, hops: &[(FaultKind, f64, f64)]) {
        for (kind, delay_s, probability) in hops {
            fnv_mix(h, 0xe5c);
            mix_kind(h, kind);
            fnv_mix(h, delay_s.to_bits());
            fnv_mix(h, probability.to_bits());
        }
    }

    #[test]
    fn single_chain_fingerprint_matches_pre_fanout_format() {
        let storm = FaultKind::PcieCrcStorm {
            stall_s: 1e-4,
            duration_s: 5.0,
        };
        let hops = [
            (FaultKind::CardDeath { card: 1 }, 2.0, 0.5),
            (FaultKind::HostDeath { rank: 3 }, 1.5, 0.25),
        ];
        let plan = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::new(hops[0].0, hops[0].1, hops[0].2)
                .chain(Escalation::new(hops[1].0, hops[1].1, hops[1].2)),
        );
        let mut h = FNV_OFFSET;
        fnv_mix(&mut h, 10.0f64.to_bits());
        mix_kind(&mut h, &storm);
        legacy_mix_chain(&mut h, &hops);
        assert_eq!(plan.fingerprint(), h, "single-chain digest drifted");
    }

    #[test]
    fn fan_scope_and_jitter_each_change_the_fingerprint() {
        let storm = FaultKind::PcieCrcStorm {
            stall_s: 1e-4,
            duration_s: 5.0,
        };
        let child = ChildSpec::new(FaultKind::CardDeath { card: 0 }, 2.0, 0.5);
        let single =
            FaultPlan::none().with_cascade(10.0, storm, Escalation::fan(vec![child.clone()]));
        let fanned = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::fan(vec![
                child.clone(),
                ChildSpec::new(FaultKind::HostDeath { rank: 0 }, 1.0, 0.5),
            ]),
        );
        let scoped = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::fan(vec![child.clone().with_scope(Scope::SameHost { cards: 2 })]),
        );
        let jittered = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::fan(vec![child.with_jitter(0.5)]),
        );
        let prints = [
            single.fingerprint(),
            fanned.fingerprint(),
            scoped.fingerprint(),
            jittered.fingerprint(),
        ];
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "variants {i} and {j} alias");
            }
        }
        // A one-child fan is exactly the single-child constructor.
        let direct = FaultPlan::none().with_cascade(
            10.0,
            storm,
            Escalation::new(FaultKind::CardDeath { card: 0 }, 2.0, 0.5),
        );
        assert_eq!(single.fingerprint(), direct.fingerprint());
    }

    #[test]
    fn rank_set_fan_kills_the_whole_correlated_set_in_one_step() {
        let ranks: Vec<usize> = (40..48).collect();
        let p = FaultPlan::none()
            .with_cascade(
                10.0,
                FaultKind::LinkDegrade {
                    factor: 0.1,
                    duration_s: 5.0,
                },
                Escalation::fan(vec![ChildSpec::new(
                    FaultKind::HostDeath { rank: 0 },
                    1.0,
                    1.0,
                )
                .with_scope(Scope::RankSet(ranks.clone()))]),
            )
            .resolved(42, 100.0);
        assert_eq!(p.total_host_deaths(), ranks.len());
        let mut dead: Vec<usize> = p
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::HostDeath { rank } => Some(rank),
                _ => None,
            })
            .collect();
        dead.sort_unstable();
        assert_eq!(dead, ranks, "exactly the declared rank set dies");
        // One correlated draw: zero jitter lands the whole set on the
        // same onset, one resolution step after the parent.
        for ev in p.events().iter().filter(|e| e.kind.is_permanent()) {
            assert_eq!(ev.at_s.to_bits(), 11.0f64.to_bits());
        }
        // Replays bit-identically.
        assert_eq!(
            p.fingerprint(),
            FaultPlan::none()
                .with_cascade(
                    10.0,
                    FaultKind::LinkDegrade {
                        factor: 0.1,
                        duration_s: 5.0,
                    },
                    Escalation::fan(vec![ChildSpec::new(
                        FaultKind::HostDeath { rank: 0 },
                        1.0,
                        1.0,
                    )
                    .with_scope(Scope::RankSet(ranks))]),
                )
                .resolved(42, 100.0)
                .fingerprint()
        );
    }

    #[test]
    fn same_host_fan_strikes_every_card_once() {
        let p = FaultPlan::none()
            .with_cascade(
                5.0,
                FaultKind::PcieCrcStorm {
                    stall_s: 2e-4,
                    duration_s: 4.0,
                },
                Escalation::fan(vec![ChildSpec::new(
                    FaultKind::CardDeath { card: 0 },
                    1.0,
                    1.0,
                )
                .with_scope(Scope::SameHost { cards: 4 })]),
            )
            .resolved(7, 100.0);
        assert_eq!(p.total_card_deaths(), 4);
        let mut cards: Vec<usize> = p
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::CardDeath { card } => Some(card),
                _ => None,
            })
            .collect();
        cards.sort_unstable();
        assert_eq!(cards, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fraction_scope_is_keyed_on_the_event_hash() {
        let fan = |at_s: f64| {
            FaultPlan::none()
                .with_cascade(
                    at_s,
                    FaultKind::LinkDegrade {
                        factor: 0.2,
                        duration_s: 5.0,
                    },
                    Escalation::fan(vec![ChildSpec::new(
                        FaultKind::HostDeath { rank: 0 },
                        1.0,
                        1.0,
                    )
                    .with_scope(Scope::Fraction { f: 0.3, of: 100 })]),
                )
                .resolved(11, 1000.0)
        };
        // Same event → same subset; a different event hash → a
        // different (here: almost surely different) subset.
        assert_eq!(fan(10.0), fan(10.0));
        let a: Vec<FaultKind> = fan(10.0).events().iter().map(|e| e.kind).collect();
        let b: Vec<FaultKind> = fan(20.0).events().iter().map(|e| e.kind).collect();
        assert_ne!(a, b);
        // Membership probability 0.3 over 100 ranks: some but not all.
        let n = fan(10.0).total_host_deaths();
        assert!(n > 0 && n < 100, "implausible fraction draw: {n}");
    }

    #[test]
    fn sibling_duplicate_spawns_are_deduped() {
        // Two children declaring the identical spawn (same kind, same
        // delay, no chain): the plan gains the event once.
        let child = ChildSpec::new(FaultKind::CardDeath { card: 0 }, 2.0, 1.0);
        let p = FaultPlan::none()
            .with_cascade(
                10.0,
                FaultKind::PcieCrcStorm {
                    stall_s: 1e-4,
                    duration_s: 5.0,
                },
                Escalation::fan(vec![child.clone(), child]),
            )
            .resolved(3, 100.0);
        assert_eq!(p.total_card_deaths(), 1);
    }

    #[test]
    fn fan_out_resolution_is_order_independent_and_idempotent() {
        let a = FaultEvent {
            at_s: 5.0,
            kind: FaultKind::PcieCrcStorm {
                stall_s: 2e-4,
                duration_s: 4.0,
            },
            escalates_to: Some(Escalation::fan(vec![
                ChildSpec::new(FaultKind::CardDeath { card: 0 }, 1.0, 0.9)
                    .with_scope(Scope::SameHost { cards: 2 }),
                ChildSpec::new(FaultKind::HostDeath { rank: 1 }, 2.0, 0.6),
            ])),
        };
        let b = FaultEvent {
            at_s: 20.0,
            kind: FaultKind::LinkDegrade {
                factor: 0.3,
                duration_s: 6.0,
            },
            escalates_to: Some(Escalation::fan(vec![ChildSpec::new(
                FaultKind::HostDeath { rank: 0 },
                1.0,
                0.9,
            )
            .with_scope(Scope::RankSet(vec![3, 4, 5]))
            .with_jitter(0.25)])),
        };
        let fwd = FaultPlan::from_events(vec![a.clone(), b.clone()]).resolved(11, 100.0);
        let rev = FaultPlan::from_events(vec![b, a]).resolved(11, 100.0);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.fingerprint(), rev.fingerprint());
        assert_eq!(fwd.resolved(11, 100.0), fwd);
    }

    #[test]
    fn fleet_campaign_is_deterministic_and_inside_horizon() {
        for scope in CampaignScope::ALL {
            let a = FaultPlan::fleet_campaign(42, 3600.0, 12, 100, 2, scope);
            let b = FaultPlan::fleet_campaign(42, 3600.0, 12, 100, 2, scope);
            assert_eq!(a, b, "{scope:?}");
            assert_ne!(
                a.fingerprint(),
                FaultPlan::fleet_campaign(43, 3600.0, 12, 100, 2, scope).fingerprint(),
                "{scope:?}"
            );
            for ev in a.events() {
                assert!(ev.at_s < 3600.0, "{scope:?}");
                if let FaultKind::HostDeath { rank } = ev.kind {
                    assert!(rank < 100, "{scope:?}");
                }
            }
        }
        // Rack campaigns actually produce correlated multi-rank deaths
        // somewhere across a handful of seeds.
        let batch: usize = (0..8)
            .map(|s| FaultPlan::fleet_campaign(s, 3600.0, 12, 100, 2, CampaignScope::Rack))
            .map(|p| p.total_host_deaths())
            .sum();
        assert!(batch >= 8, "rack campaigns too quiet: {batch} deaths");
    }

    #[test]
    fn campaign_scope_names_round_trip() {
        for scope in CampaignScope::ALL {
            assert_eq!(CampaignScope::parse(scope.name()), Some(scope));
        }
        assert_eq!(CampaignScope::parse("bogus"), None);
        assert_eq!(CampaignScope::default(), CampaignScope::Mixed);
    }

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = FaultRng::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let x = r.range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = r.index(2, 17);
            assert!((2..17).contains(&i));
        }
    }
}
