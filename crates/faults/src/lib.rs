//! Deterministic fault injection for the simulated Linpack stack.
//!
//! The cluster and offload models in this workspace are *analytic*
//! discrete-event simulations: every run is a pure function of its
//! configuration. That makes fault tolerance unusually testable — a
//! "fault" is just a perturbation of the calibrated machine models
//! (link bandwidth, PCIe stalls, per-core throughput, card liveness)
//! applied over a window of simulated time, and a whole campaign can be
//! replayed bit-identically from one seed.
//!
//! A [`FaultPlan`] is an explicit, time-ordered list of [`FaultEvent`]s.
//! Plans are built either by hand (one event at a chosen simulated
//! time) or by [`FaultPlan::campaign`], which draws events from a
//! seeded [`FaultRng`] — the same 64-bit LCG family the matrix
//! generator uses, so determinism needs no external crate. Consumers
//! never sample randomness at query time: every parameter is fixed at
//! plan construction, and [`FaultPlan::effects_at`] /
//! [`FaultPlan::effects_over`] are pure functions of simulated time.
//! [`FaultPlan::fingerprint`] hashes the full event list so tests can
//! assert two runs saw exactly the same faults.

#![forbid(unsafe_code)]

/// The LCG multiplier shared with `phi_matrix::HplRng` (Knuth MMIX).
const MULT: u64 = 6364136223846793005;
/// The LCG increment shared with `phi_matrix::HplRng`.
const ADD: u64 = 1442695040888963407;

/// Seeded 64-bit LCG — the workspace's standard deterministic stream.
///
/// Mirrors `phi_matrix::HplRng` (same constants) so `phi-faults` stays
/// a leaf crate with no dependencies.
#[derive(Clone, Copy, Debug)]
pub struct FaultRng(u64);

impl FaultRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(MULT).wrapping_add(ADD))
    }

    /// Next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(MULT).wrapping_add(ADD);
        self.0
    }

    /// Uniform in `[0, 1)` with 53 significant bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// One kind of injected fault. All parameters are concrete — nothing is
/// sampled after plan construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Inter-node link bandwidth multiplied by `factor` (< 1) for
    /// `duration_s` of simulated time — a flapping or congested rail.
    LinkDegrade { factor: f64, duration_s: f64 },
    /// Extra per-message latency of `sigma_s` seconds for `duration_s`
    /// — switch buffer jitter.
    LatencyJitter { sigma_s: f64, duration_s: f64 },
    /// PCIe CRC-retry storm: every transfer in the window pays an extra
    /// `stall_s` replay stall (the hardware retrains and replays TLPs).
    PcieCrcStorm { stall_s: f64, duration_s: f64 },
    /// A fraction of cores throttle to `slowdown`× their normal time
    /// for `duration_s` — a straggler card running hot.
    Straggler {
        core_fraction: f64,
        slowdown: f64,
        duration_s: f64,
    },
    /// A coprocessor dies at the event time and never comes back.
    CardDeath { card: usize },
}

impl FaultKind {
    /// Window length; card death is permanent.
    pub fn duration_s(&self) -> f64 {
        match *self {
            FaultKind::LinkDegrade { duration_s, .. }
            | FaultKind::LatencyJitter { duration_s, .. }
            | FaultKind::PcieCrcStorm { duration_s, .. }
            | FaultKind::Straggler { duration_s, .. } => duration_s,
            FaultKind::CardDeath { .. } => f64::INFINITY,
        }
    }

    fn tag(&self) -> u64 {
        match self {
            FaultKind::LinkDegrade { .. } => 1,
            FaultKind::LatencyJitter { .. } => 2,
            FaultKind::PcieCrcStorm { .. } => 3,
            FaultKind::Straggler { .. } => 4,
            FaultKind::CardDeath { .. } => 5,
        }
    }
}

/// A fault scheduled at an absolute simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Onset, seconds of simulated time.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Does the window cover simulated time `t`?
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.at_s && t < self.at_s + self.kind.duration_s()
    }

    /// Fraction of `[t0, t1)` the window covers (0 when disjoint).
    pub fn overlap_fraction(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let end = self.at_s + self.kind.duration_s();
        let lo = self.at_s.max(t0);
        let hi = end.min(t1);
        ((hi - lo) / (t1 - t0)).clamp(0.0, 1.0)
    }
}

/// Aggregate perturbation of the machine models at (or over) a point of
/// simulated time. The identity element ([`Effects::healthy`]) leaves
/// every model untouched — a zero-fault plan is bit-identical to no
/// plan at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Effects {
    /// Multiplier on inter-node link bandwidth, in `(0, 1]`.
    pub net_bw_factor: f64,
    /// Additive per-message network latency, seconds.
    pub extra_latency_s: f64,
    /// Additive per-transfer PCIe stall, seconds.
    pub pcie_stall_s: f64,
    /// Multiplier ≥ 1 on compute time (straggler throttling).
    pub compute_slowdown: f64,
    /// Cards dead so far (cumulative, permanent).
    pub cards_lost: usize,
}

impl Effects {
    /// No perturbation at all.
    pub fn healthy() -> Self {
        Self {
            net_bw_factor: 1.0,
            extra_latency_s: 0.0,
            pcie_stall_s: 0.0,
            compute_slowdown: 1.0,
            cards_lost: 0,
        }
    }

    /// True when this equals [`Effects::healthy`].
    pub fn is_healthy(&self) -> bool {
        *self == Self::healthy()
    }
}

/// A deterministic, replayable fault schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, identical output to a healthy run.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from explicit events (kept sorted by onset).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Self { events }
    }

    /// A seeded random campaign: `count` events drawn over
    /// `[0, horizon_s)`. Identical `(seed, horizon_s, count)` triples
    /// produce identical plans, bit for bit.
    pub fn campaign(seed: u64, horizon_s: f64, count: usize) -> Self {
        assert!(horizon_s > 0.0);
        let mut rng = FaultRng::new(seed);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at_s = rng.range(0.0, horizon_s);
            let window = rng.range(0.02, 0.25) * horizon_s;
            let kind = match rng.index(0, 5) {
                0 => FaultKind::LinkDegrade {
                    factor: rng.range(0.25, 0.9),
                    duration_s: window,
                },
                1 => FaultKind::LatencyJitter {
                    sigma_s: rng.range(1e-6, 40e-6),
                    duration_s: window,
                },
                2 => FaultKind::PcieCrcStorm {
                    stall_s: rng.range(5e-6, 200e-6),
                    duration_s: window,
                },
                3 => FaultKind::Straggler {
                    core_fraction: rng.range(0.05, 0.5),
                    slowdown: rng.range(1.2, 3.0),
                    duration_s: window,
                },
                _ => FaultKind::CardDeath {
                    card: rng.index(0, 2),
                },
            };
            events.push(FaultEvent { at_s, kind });
        }
        Self::from_events(events)
    }

    /// Adds one event (builder style), keeping onset order.
    pub fn with_event(mut self, at_s: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_s, kind });
        self.events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        self
    }

    /// The schedule, onset-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Instantaneous aggregate effects at simulated time `t`.
    /// Overlapping faults compose: bandwidth factors multiply, latency
    /// and stalls add, slowdowns multiply, card deaths accumulate.
    pub fn effects_at(&self, t: f64) -> Effects {
        let mut e = Effects::healthy();
        for ev in &self.events {
            match ev.kind {
                FaultKind::CardDeath { .. } if t >= ev.at_s => e.cards_lost += 1,
                FaultKind::CardDeath { .. } => {}
                _ if ev.active_at(t) => match ev.kind {
                    FaultKind::LinkDegrade { factor, .. } => e.net_bw_factor *= factor,
                    FaultKind::LatencyJitter { sigma_s, .. } => e.extra_latency_s += sigma_s,
                    FaultKind::PcieCrcStorm { stall_s, .. } => e.pcie_stall_s += stall_s,
                    FaultKind::Straggler {
                        core_fraction,
                        slowdown,
                        ..
                    } => {
                        // A fraction f of cores running k× slower drags
                        // aggregate throughput to 1/(1-f+f*k)... inverted:
                        e.compute_slowdown *= 1.0 - core_fraction + core_fraction * slowdown;
                    }
                    FaultKind::CardDeath { .. } => unreachable!(),
                },
                _ => {}
            }
        }
        e
    }

    /// Aggregate effects averaged over `[t0, t1)` — transient windows
    /// are weighted by their overlap with the interval, which is the
    /// right granularity for the per-stage cluster loop.
    pub fn effects_over(&self, t0: f64, t1: f64) -> Effects {
        let mut e = Effects::healthy();
        for ev in &self.events {
            match ev.kind {
                FaultKind::CardDeath { .. } => {
                    if ev.at_s < t1 {
                        e.cards_lost += 1;
                    }
                }
                _ => {
                    let w = ev.overlap_fraction(t0, t1);
                    if w <= 0.0 {
                        continue;
                    }
                    match ev.kind {
                        FaultKind::LinkDegrade { factor, .. } => {
                            e.net_bw_factor *= 1.0 - w + w * factor;
                        }
                        FaultKind::LatencyJitter { sigma_s, .. } => {
                            e.extra_latency_s += w * sigma_s;
                        }
                        FaultKind::PcieCrcStorm { stall_s, .. } => {
                            e.pcie_stall_s += w * stall_s;
                        }
                        FaultKind::Straggler {
                            core_fraction,
                            slowdown,
                            ..
                        } => {
                            let full = 1.0 - core_fraction + core_fraction * slowdown;
                            e.compute_slowdown *= 1.0 - w + w * full;
                        }
                        FaultKind::CardDeath { .. } => unreachable!(),
                    }
                }
            }
        }
        e
    }

    /// Onset of the first card death, if any card ever dies.
    pub fn first_card_death(&self) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CardDeath { .. }))
            .map(|e| e.at_s)
            .next()
    }

    /// Total cards that ever die under this plan.
    pub fn total_card_deaths(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CardDeath { .. }))
            .count()
    }

    /// FNV-1a over the exact bit patterns of every event — two plans
    /// fingerprint equal iff they schedule identical faults.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for ev in &self.events {
            mix(ev.at_s.to_bits());
            mix(ev.kind.tag());
            match ev.kind {
                FaultKind::LinkDegrade { factor, duration_s } => {
                    mix(factor.to_bits());
                    mix(duration_s.to_bits());
                }
                FaultKind::LatencyJitter {
                    sigma_s,
                    duration_s,
                } => {
                    mix(sigma_s.to_bits());
                    mix(duration_s.to_bits());
                }
                FaultKind::PcieCrcStorm {
                    stall_s,
                    duration_s,
                } => {
                    mix(stall_s.to_bits());
                    mix(duration_s.to_bits());
                }
                FaultKind::Straggler {
                    core_fraction,
                    slowdown,
                    duration_s,
                } => {
                    mix(core_fraction.to_bits());
                    mix(slowdown.to_bits());
                    mix(duration_s.to_bits());
                }
                FaultKind::CardDeath { card } => mix(card as u64),
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_healthy_everywhere() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        for t in [0.0, 1.0, 1e6] {
            assert!(p.effects_at(t).is_healthy());
        }
        assert!(p.effects_over(0.0, 1e9).is_healthy());
        assert_eq!(p.first_card_death(), None);
    }

    #[test]
    fn same_seed_same_campaign() {
        let a = FaultPlan::campaign(42, 100.0, 12);
        let b = FaultPlan::campaign(42, 100.0, 12);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FaultPlan::campaign(43, 100.0, 12);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn window_activation_and_overlap() {
        let p = FaultPlan::none().with_event(
            10.0,
            FaultKind::LinkDegrade {
                factor: 0.5,
                duration_s: 5.0,
            },
        );
        assert!(p.effects_at(9.99).is_healthy());
        assert_eq!(p.effects_at(12.0).net_bw_factor, 0.5);
        assert!(p.effects_at(15.0).is_healthy());
        // Half of [10, 20) overlaps → factor averages to 0.75.
        let e = p.effects_over(10.0, 20.0);
        assert!((e.net_bw_factor - 0.75).abs() < 1e-12);
        // Disjoint window sees nothing.
        assert!(p.effects_over(20.0, 30.0).is_healthy());
    }

    #[test]
    fn card_death_is_permanent_and_cumulative() {
        let p = FaultPlan::none()
            .with_event(5.0, FaultKind::CardDeath { card: 0 })
            .with_event(8.0, FaultKind::CardDeath { card: 1 });
        assert_eq!(p.effects_at(4.0).cards_lost, 0);
        assert_eq!(p.effects_at(6.0).cards_lost, 1);
        assert_eq!(p.effects_at(1e9).cards_lost, 2);
        assert_eq!(p.first_card_death(), Some(5.0));
        assert_eq!(p.total_card_deaths(), 2);
    }

    #[test]
    fn overlapping_faults_compose() {
        let p = FaultPlan::none()
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            )
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 10.0,
                },
            )
            .with_event(
                0.0,
                FaultKind::Straggler {
                    core_fraction: 0.5,
                    slowdown: 2.0,
                    duration_s: 10.0,
                },
            );
        let e = p.effects_at(5.0);
        assert!((e.net_bw_factor - 0.25).abs() < 1e-12);
        assert!((e.compute_slowdown - 1.5).abs() < 1e-12);
    }

    #[test]
    fn events_are_onset_sorted() {
        let p = FaultPlan::from_events(vec![
            FaultEvent {
                at_s: 9.0,
                kind: FaultKind::CardDeath { card: 0 },
            },
            FaultEvent {
                at_s: 1.0,
                kind: FaultKind::LatencyJitter {
                    sigma_s: 1e-6,
                    duration_s: 2.0,
                },
            },
        ]);
        assert!(p.events()[0].at_s < p.events()[1].at_s);
    }

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = FaultRng::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let x = r.range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = r.index(2, 17);
            assert!((2..17).contains(&i));
        }
    }
}
