//! Seeded property tests for the fault layer. No property-testing
//! crate: the generator is the workspace's own [`FaultRng`], so every
//! "random" case replays bit-identically from the seeds below.

use phi_faults::{
    ChildSpec, Escalation, FaultEvent, FaultKind, FaultPlan, FaultRng, Scope, MAX_CASCADE_DEPTH,
};

/// Draws one random event (possibly carrying an escalation edge).
fn random_event(rng: &mut FaultRng, horizon: f64) -> FaultEvent {
    let at_s = rng.range(0.0, horizon);
    let window = rng.range(0.01, 0.3) * horizon;
    let kind = match rng.index(0, 6) {
        0 => FaultKind::LinkDegrade {
            factor: rng.range(0.1, 0.95),
            duration_s: window,
        },
        1 => FaultKind::LatencyJitter {
            sigma_s: rng.range(1e-6, 50e-6),
            duration_s: window,
        },
        2 => FaultKind::PcieCrcStorm {
            stall_s: rng.range(1e-6, 5e-4),
            duration_s: window,
        },
        3 => FaultKind::Straggler {
            core_fraction: rng.range(0.05, 0.6),
            slowdown: rng.range(1.1, 4.0),
            duration_s: window,
        },
        4 => FaultKind::CardDeath {
            card: rng.index(0, 4),
        },
        _ => FaultKind::HostDeath {
            rank: rng.index(0, 100),
        },
    };
    let mut ev = FaultEvent::new(at_s, kind);
    if rng.unit() < 0.4 {
        let mut esc = random_escalation(rng, horizon);
        // Sometimes grow a multi-hop chain behind the first edge.
        while rng.unit() < 0.35 {
            esc = esc.chain(random_escalation(rng, horizon));
        }
        ev.escalates_to = Some(esc);
    }
    ev
}

/// One random escalation edge (no tail).
fn random_escalation(rng: &mut FaultRng, horizon: f64) -> Escalation {
    let kind = if rng.unit() < 0.5 {
        FaultKind::CardDeath {
            card: rng.index(0, 4),
        }
    } else {
        FaultKind::HostDeath {
            rank: rng.index(0, 100),
        }
    };
    Escalation::new(kind, rng.range(0.0, 0.5) * horizon, rng.unit())
}

/// Fisher–Yates driven by the same deterministic stream.
fn shuffle<T>(items: &mut [T], rng: &mut FaultRng) {
    for i in (1..items.len()).rev() {
        let j = rng.index(0, i + 1);
        items.swap(i, j);
    }
}

#[test]
fn fingerprint_is_stable_across_insertion_order() {
    for seed in [1u64, 7, 0xABC, 0xFA0175] {
        let mut rng = FaultRng::new(seed);
        let horizon = rng.range(10.0, 1000.0);
        let events: Vec<FaultEvent> = (0..12).map(|_| random_event(&mut rng, horizon)).collect();

        let reference = FaultPlan::from_events(events.clone()).fingerprint();
        for _ in 0..8 {
            let mut perm = events.clone();
            shuffle(&mut perm, &mut rng);
            // Batch construction and one-at-a-time insertion must both
            // land on the reference fingerprint.
            assert_eq!(
                FaultPlan::from_events(perm.clone()).fingerprint(),
                reference
            );
            let built = perm
                .into_iter()
                .fold(FaultPlan::none(), |p, ev| p.with_fault_event(ev));
            assert_eq!(built.fingerprint(), reference);
        }
    }
}

/// Reference time-average of the transient fields: cut the window at
/// every (finite) event boundary and sum `effects_at` at sub-interval
/// midpoints, weighted by length — direct accumulation, deliberately a
/// different algorithm from the library's delta-from-healthy one.
fn reference_avg(plan: &FaultPlan, t0: f64, t1: f64) -> (f64, f64, f64, f64) {
    let mut cuts = vec![t0, t1];
    for ev in plan.events() {
        let end = ev.at_s + ev.kind.duration_s();
        for b in [ev.at_s, end] {
            if b > t0 && b < t1 && b.is_finite() {
                cuts.push(b);
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| a.to_bits() == b.to_bits());
    let span = t1 - t0;
    let (mut bw, mut lat, mut stall, mut slow) = (0.0, 0.0, 0.0, 0.0);
    for w in cuts.windows(2) {
        let e = plan.effects_at(0.5 * (w[0] + w[1]));
        let f = (w[1] - w[0]) / span;
        bw += f * e.net_bw_factor;
        lat += f * e.extra_latency_s;
        stall += f * e.pcie_stall_s;
        slow += f * e.compute_slowdown;
    }
    (bw, lat, stall, slow)
}

#[test]
fn effects_over_equals_integral_of_effects_at() {
    for seed in [2u64, 3, 5, 0xBEEF, 0xCAFE] {
        let mut rng = FaultRng::new(seed);
        let horizon = rng.range(10.0, 1000.0);
        let events: Vec<FaultEvent> = (0..10).map(|_| random_event(&mut rng, horizon)).collect();
        let plan = FaultPlan::from_events(events).resolved(seed, horizon);

        for _ in 0..50 {
            let a = rng.range(0.0, 1.5 * horizon);
            let b = rng.range(0.0, 1.5 * horizon);
            let (t0, t1) = if a < b { (a, b) } else { (b, a) };
            if t1 - t0 < 1e-9 {
                continue;
            }
            let e = plan.effects_over(t0, t1);
            let (bw, lat, stall, slow) = reference_avg(&plan, t0, t1);
            assert!(
                (e.net_bw_factor - bw).abs() <= 1e-12 * bw.abs().max(1.0),
                "seed {seed}: bw {} vs integral {bw} on [{t0}, {t1})",
                e.net_bw_factor
            );
            assert!((e.extra_latency_s - lat).abs() <= 1e-12 * lat.abs().max(1.0));
            assert!((e.pcie_stall_s - stall).abs() <= 1e-12 * stall.abs().max(1.0));
            assert!((e.compute_slowdown - slow).abs() <= 1e-12 * slow.abs().max(1.0));
            // Death counters use end-of-window semantics.
            let by_end = plan
                .events()
                .iter()
                .filter(|ev| ev.kind.is_permanent() && ev.at_s < t1)
                .count();
            assert_eq!(e.cards_lost + e.hosts_lost, by_end);
        }
    }
}

#[test]
fn escalation_chains_never_pass_the_horizon() {
    for seed in [4u64, 9, 0x5EED, 0xFA0175] {
        let mut rng = FaultRng::new(seed);
        let horizon = rng.range(5.0, 500.0);
        // Raw plans with aggressive edges...
        let events: Vec<FaultEvent> = (0..16).map(|_| random_event(&mut rng, horizon)).collect();
        let resolved = FaultPlan::from_events(events).resolved(seed ^ 0xE5C, horizon);
        for ev in resolved.events() {
            assert!(
                ev.at_s < horizon,
                "seed {seed}: event at {} past horizon {horizon}",
                ev.at_s
            );
        }
        // ...and the library's own cluster campaigns.
        let campaign = FaultPlan::cluster_campaign(seed, horizon, 20, 100, 2);
        for ev in campaign.events() {
            assert!(ev.at_s < horizon);
        }
    }
}

#[test]
fn resolution_is_deterministic_idempotent_and_order_free() {
    for seed in [6u64, 8, 0xD00D] {
        let mut rng = FaultRng::new(seed);
        let horizon = rng.range(10.0, 200.0);
        let events: Vec<FaultEvent> = (0..10).map(|_| random_event(&mut rng, horizon)).collect();

        let once = FaultPlan::from_events(events.clone()).resolved(seed, horizon);
        // Same seed, same outcome — from any insertion order.
        for _ in 0..6 {
            let mut perm = events.clone();
            shuffle(&mut perm, &mut rng);
            assert_eq!(FaultPlan::from_events(perm).resolved(seed, horizon), once);
        }
        // Idempotent under the same seed.
        assert_eq!(once.resolved(seed, horizon), once);
        // Zero-probability edges never fire no matter the seed.
        let mut damp = events.clone();
        for ev in &mut damp {
            if let Some(esc) = &mut ev.escalates_to {
                for child in &mut esc.children {
                    child.probability = 0.0;
                }
            }
        }
        let damped = FaultPlan::from_events(damp.clone()).resolved(seed, horizon);
        assert_eq!(damped.events().len(), damp.len());
    }
}

/// Builds a deliberately long (possibly cyclic-looking) chain: every
/// hop fires with probability 1 after a short delay, and the kinds
/// repeat so only the cycle guard keeps resolution from re-spawning.
fn certain_chain(rng: &mut FaultRng, hops: usize) -> Escalation {
    let mut esc = Escalation::new(
        FaultKind::CardDeath {
            card: rng.index(0, 2),
        },
        0.5,
        1.0,
    );
    for i in 1..hops {
        let kind = if i % 2 == 0 {
            FaultKind::CardDeath {
                card: rng.index(0, 2),
            }
        } else {
            FaultKind::HostDeath {
                rank: rng.index(0, 3),
            }
        };
        esc = esc.chain(Escalation::new(kind, 0.5, 1.0));
    }
    esc
}

/// Re-resolving a resolved plan — under the same seed or any other —
/// is a fixed point even when the declared chains are recursive.
#[test]
fn recursive_resolution_reaches_a_fixed_point() {
    for seed in [10u64, 0xF1CED, 0xFA0175] {
        let mut rng = FaultRng::new(seed);
        let horizon = rng.range(50.0, 400.0);
        let mut events: Vec<FaultEvent> = (0..8).map(|_| random_event(&mut rng, horizon)).collect();
        // Guarantee at least one deep chain is present.
        events[0].escalates_to = Some(certain_chain(&mut rng, 2 * MAX_CASCADE_DEPTH));
        let once = FaultPlan::from_events(events).resolved(seed, horizon);
        assert_eq!(once.resolved(seed, horizon), once, "seed {seed}");
        // Rebuilding the resolved plan from its own event list and
        // resolving again lands on the same fixed point.
        let rebuilt = FaultPlan::from_events(once.events().to_vec());
        assert_eq!(rebuilt.resolved(seed, horizon), once, "seed {seed}");
    }
}

/// No declared chain — however long — spawns more than
/// `MAX_CASCADE_DEPTH` descendants from a single root.
#[test]
fn cascade_depth_is_bounded() {
    for seed in [11u64, 0xDEE9, 0xB0B] {
        let mut rng = FaultRng::new(seed);
        let horizon = 1e6; // far away: the horizon never clips the chain
        let root = FaultEvent {
            at_s: 1.0,
            kind: FaultKind::PcieCrcStorm {
                stall_s: 1e-4,
                duration_s: 2.0,
            },
            escalates_to: Some(certain_chain(&mut rng, 5 * MAX_CASCADE_DEPTH)),
        };
        let plan = FaultPlan::from_events(vec![root]);
        // Construction already clips the declared chain...
        for ev in plan.events() {
            if let Some(esc) = &ev.escalates_to {
                assert!(esc.hops() <= MAX_CASCADE_DEPTH, "seed {seed}");
            }
        }
        // ...so resolution spawns at most MAX_CASCADE_DEPTH events.
        let resolved = plan.resolved(seed, horizon);
        assert!(
            resolved.events().len() <= 1 + MAX_CASCADE_DEPTH,
            "seed {seed}: {} events",
            resolved.events().len()
        );
        assert_eq!(resolved.resolved(seed, horizon), resolved);
    }
}

/// Chains whose hops repeat the same kinds terminate: the duplicate
/// guard drops re-spawned events instead of looping, and resolution
/// always lands on a finite, idempotent plan.
#[test]
fn cycle_guard_never_loops() {
    for seed in [12u64, 0xC1C1E, 7] {
        // Two roots whose chains re-spawn each other's kinds at the
        // same timestamps — the classic ping-pong cycle shape.
        let a = FaultEvent {
            at_s: 1.0,
            kind: FaultKind::CardDeath { card: 0 },
            escalates_to: Some(
                Escalation::new(FaultKind::HostDeath { rank: 0 }, 1.0, 1.0)
                    .chain(Escalation::new(FaultKind::CardDeath { card: 0 }, 1.0, 1.0))
                    .chain(Escalation::new(FaultKind::HostDeath { rank: 0 }, 1.0, 1.0)),
            ),
        };
        let b =
            FaultEvent {
                at_s: 2.0,
                kind: FaultKind::HostDeath { rank: 0 },
                escalates_to: Some(
                    Escalation::new(FaultKind::CardDeath { card: 0 }, 1.0, 1.0)
                        .chain(Escalation::new(FaultKind::HostDeath { rank: 0 }, 1.0, 1.0)),
                ),
            };
        let resolved = FaultPlan::from_events(vec![a, b]).resolved(seed, 1e6);
        // Finite and small: the two declared chains can spawn at most
        // their own hops, duplicates dropped.
        assert!(resolved.events().len() <= 2 + 3 + 2, "seed {seed}");
        assert_eq!(resolved.resolved(seed, 1e6), resolved, "seed {seed}");
    }
}

/// The plan digest hears every hop of a chain, but does not care in
/// which order chained *events* were declared.
#[test]
fn fingerprint_stable_under_chain_declaration_order() {
    let mut rng = FaultRng::new(0xF1F0);
    let horizon = 300.0;
    let events: Vec<FaultEvent> = (0..10)
        .map(|_| {
            let mut ev = random_event(&mut rng, horizon);
            let hops = 1 + rng.index(0, 4);
            ev.escalates_to = Some(certain_chain(&mut rng, hops));
            ev
        })
        .collect();
    let reference = FaultPlan::from_events(events.clone()).fingerprint();
    for _ in 0..8 {
        let mut perm = events.clone();
        shuffle(&mut perm, &mut rng);
        assert_eq!(FaultPlan::from_events(perm).fingerprint(), reference);
    }
    // But trimming one hop off any chain changes the digest.
    let mut trimmed = events.clone();
    let esc = trimmed[3].escalates_to.take().unwrap();
    let head = &esc.children[0];
    trimmed[3].escalates_to = Some(Escalation::new(head.kind, head.delay_s, head.probability));
    let plain = FaultPlan::from_events(trimmed.clone());
    if events[3].escalates_to.as_ref().unwrap().hops() > 1 {
        assert_ne!(plain.fingerprint(), reference);
    }
}

/// One random fan-out child: every scope variant, sometimes jittered.
fn random_child(rng: &mut FaultRng, horizon: f64) -> ChildSpec {
    let kind = if rng.unit() < 0.5 {
        FaultKind::CardDeath {
            card: rng.index(0, 4),
        }
    } else {
        FaultKind::HostDeath {
            rank: rng.index(0, 100),
        }
    };
    let scope = match rng.index(0, 5) {
        0 => Scope::Single,
        1 => Scope::SameCard,
        2 => Scope::SameHost {
            cards: rng.index(1, 5),
        },
        3 => {
            let start = rng.index(0, 92);
            Scope::RankSet((start..start + rng.index(1, 9)).collect())
        }
        _ => Scope::Fraction {
            f: rng.range(0.05, 0.6),
            of: rng.index(10, 100),
        },
    };
    let mut child = ChildSpec::new(kind, rng.range(0.0, 0.4) * horizon, rng.unit());
    child = child.with_scope(scope);
    if rng.unit() < 0.5 {
        child = child.with_jitter(rng.range(0.0, 0.05) * horizon);
    }
    child
}

/// A random event carrying a multi-child fan-out edge, some children
/// chained a hop deeper.
fn random_fan_event(rng: &mut FaultRng, horizon: f64) -> FaultEvent {
    let mut ev = random_event(rng, horizon);
    let mut esc = Escalation::fan(vec![random_child(rng, horizon)]);
    while rng.unit() < 0.5 {
        esc = esc.also(random_child(rng, horizon));
    }
    if rng.unit() < 0.4 {
        esc = esc.chain(random_escalation(rng, horizon));
    }
    ev.escalates_to = Some(esc);
    ev
}

#[test]
fn fan_out_resolution_is_order_independent_and_idempotent() {
    for seed in [21u64, 0xFA27, 0xACE] {
        let mut rng = FaultRng::new(seed);
        let horizon = rng.range(20.0, 400.0);
        let events: Vec<FaultEvent> = (0..8)
            .map(|_| random_fan_event(&mut rng, horizon))
            .collect();
        let once = FaultPlan::from_events(events.clone()).resolved(seed, horizon);
        for _ in 0..6 {
            let mut perm = events.clone();
            shuffle(&mut perm, &mut rng);
            assert_eq!(
                FaultPlan::from_events(perm).resolved(seed, horizon),
                once,
                "seed {seed}"
            );
        }
        assert_eq!(once.resolved(seed, horizon), once, "seed {seed}");
        assert_eq!(
            FaultPlan::from_events(once.events().to_vec()).resolved(seed, horizon),
            once,
            "seed {seed}"
        );
    }
}

#[test]
fn correlated_draws_are_identical_under_thread_count_changes() {
    // The correlated sets are keyed on (seed, event hash) alone, so
    // resolving the same plans concurrently — at any thread count, in
    // any scheduling order — must land on byte-identical results.
    for seed in [22u64, 0xFEE7] {
        let mut rng = FaultRng::new(seed);
        let horizon = rng.range(20.0, 400.0);
        let plans: Vec<FaultPlan> = (0..16)
            .map(|_| {
                let events: Vec<FaultEvent> = (0..6)
                    .map(|_| random_fan_event(&mut rng, horizon))
                    .collect();
                FaultPlan::from_events(events)
            })
            .collect();
        let serial: Vec<FaultPlan> = plans.iter().map(|p| p.resolved(seed, horizon)).collect();
        for nthreads in [1usize, 2, 8] {
            let mut slots: Vec<Option<FaultPlan>> = vec![None; plans.len()];
            std::thread::scope(|s| {
                for (t, chunk) in slots.chunks_mut(plans.len().div_ceil(nthreads)).enumerate() {
                    let base = t * plans.len().div_ceil(nthreads);
                    let plans = &plans;
                    s.spawn(move || {
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            *slot = Some(plans[base + k].resolved(seed, horizon));
                        }
                    });
                }
            });
            let threaded: Vec<FaultPlan> = slots.into_iter().map(|p| p.unwrap()).collect();
            assert_eq!(threaded, serial, "seed {seed} nthreads {nthreads}");
        }
    }
}

#[test]
fn fan_out_children_respect_depth_and_horizon_bounds() {
    for seed in [23u64, 0xBAD5, 0x777] {
        let mut rng = FaultRng::new(seed);
        let horizon = rng.range(5.0, 200.0);
        let events: Vec<FaultEvent> = (0..12)
            .map(|_| random_fan_event(&mut rng, horizon))
            .collect();
        let plan = FaultPlan::from_events(events);
        for ev in plan.events() {
            if let Some(esc) = &ev.escalates_to {
                assert!(esc.hops() <= MAX_CASCADE_DEPTH, "seed {seed}");
            }
        }
        let resolved = plan.resolved(seed, horizon);
        for ev in resolved.events() {
            assert!(
                ev.at_s < horizon,
                "seed {seed}: spawn at {} past horizon {horizon}",
                ev.at_s
            );
            if let Some(esc) = &ev.escalates_to {
                assert!(esc.hops() <= MAX_CASCADE_DEPTH, "seed {seed}");
            }
        }
        assert_eq!(resolved.resolved(seed, horizon), resolved, "seed {seed}");
    }
}

#[test]
fn duplicate_spawns_across_sibling_children_are_deduped() {
    for seed in [24u64, 0xD0D0] {
        let mut rng = FaultRng::new(seed);
        let horizon = 500.0;
        // Every sibling declares the identical certain spawn; the
        // resolved plan must gain it exactly once per distinct target.
        let child = ChildSpec::new(FaultKind::HostDeath { rank: 0 }, 1.0, 1.0)
            .with_scope(Scope::RankSet(vec![5, 6, 7]));
        let siblings = 2 + rng.index(0, 4);
        let ev = FaultEvent {
            at_s: rng.range(0.0, 100.0),
            kind: FaultKind::LinkDegrade {
                factor: 0.2,
                duration_s: 5.0,
            },
            escalates_to: Some(Escalation::fan(vec![child; siblings])),
        };
        let resolved = FaultPlan::from_events(vec![ev]).resolved(seed, horizon);
        assert_eq!(
            resolved.total_host_deaths(),
            3,
            "seed {seed}: {siblings} identical siblings must dedup to one set"
        );
    }
}

#[test]
fn zero_fault_window_fields_are_bit_exactly_healthy() {
    // Any window that no transient fault overlaps must return the
    // healthy identity exactly — the property the cluster simulator's
    // bit-identity guarantee stands on.
    let mut rng = FaultRng::new(0x1D);
    for _ in 0..20 {
        let gap_start = rng.range(100.0, 200.0);
        let plan = FaultPlan::none()
            .with_event(
                0.0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: 50.0,
                },
            )
            .with_event(gap_start + 50.0, FaultKind::CardDeath { card: 0 });
        let e = plan.effects_over(60.0, gap_start);
        assert_eq!(e.net_bw_factor.to_bits(), 1.0f64.to_bits());
        assert_eq!(e.extra_latency_s.to_bits(), 0.0f64.to_bits());
        assert_eq!(e.pcie_stall_s.to_bits(), 0.0f64.to_bits());
        assert_eq!(e.compute_slowdown.to_bits(), 1.0f64.to_bits());
    }
}
