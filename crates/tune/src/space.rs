//! The configuration space the tuner searches, and the machine it
//! searches it for.

use crate::Fnv;
use phi_fabric::{BcastScheme, ProcessGrid};
use phi_hpl::hybrid::{HybridConfig, Lookahead, WorkDivision};

/// The machine (and problem) a tuning run targets. The underlying chip,
/// host, PCIe and network models are the workspace's calibrated paper
/// models; this struct holds what varies between Table II/III rows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineConfig {
    /// Nodes in the cluster (`P · Q` of every candidate grid).
    pub nodes: usize,
    /// Coprocessors per node.
    pub cards_per_node: usize,
    /// Host memory per node, GiB.
    pub host_mem_gib: f64,
    /// Problem size to tune for.
    pub n: usize,
}

impl MachineConfig {
    /// The paper's Table II / Table III single-node setup: one card,
    /// 64 GB, N = 84K.
    pub fn paper_single_node() -> Self {
        Self {
            nodes: 1,
            cards_per_node: 1,
            host_mem_gib: 64.0,
            n: 84_000,
        }
    }

    /// The paper's Table III 100-node headline setup: one card per node,
    /// 64 GB each, N = 825K.
    pub fn paper_cluster_100() -> Self {
        Self {
            nodes: 100,
            cards_per_node: 1,
            host_mem_gib: 64.0,
            n: 825_000,
        }
    }

    /// FNV-1a fingerprint over the machine fields **and** the calibrated
    /// model constants a candidate's score depends on — two machines with
    /// the same shape but different calibration hash differently, so the
    /// tuning cache cannot serve stale results across model changes.
    pub fn fingerprint(&self) -> u64 {
        let probe = HybridConfig::new(self.n, ProcessGrid::new(1, self.nodes), self.cards_per_node);
        let mut h = Fnv::new();
        h.write_u64(self.nodes as u64);
        h.write_u64(self.cards_per_node as u64);
        h.write_u64(self.host_mem_gib.to_bits());
        h.write_u64(self.n as u64);
        h.write_u64(probe.peak_gflops().to_bits());
        h.write_u64(probe.offload.pcie.effective_bw.to_bits());
        h.write_u64(probe.net.bandwidth.to_bits());
        h.write_u64(probe.net.latency.to_bits());
        h.write_u64((probe.offload.host.cfg.cores() as u64) << 32 | probe.offload.kt as u64);
        h.finish()
    }
}

/// One point in the search space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Panel width (`NB`; the offload tile depth `Kt` is tied to it).
    pub nb: usize,
    /// Look-ahead scheme.
    pub lookahead: Lookahead,
    /// Host/card work division.
    pub division: WorkDivision,
    /// Panel-broadcast scheme.
    pub bcast: BcastScheme,
    /// Process grid (`p`, `q`), with `p · q == nodes`.
    pub grid: (usize, usize),
}

/// Canonical, totally ordered key of a candidate. `NB` leads so sorting
/// by key implements the ε-rule's smallest-NB preference directly.
pub type CandidateKey = (usize, u8, u8, u64, u8, usize, usize);

impl Candidate {
    /// The paper's hand-set configuration for `machine`: NB = 1200,
    /// pipelined look-ahead, dynamic stealing, ring broadcast, the most
    /// square grid — the baseline the tuner must never regress below.
    pub fn paper_baseline(machine: &MachineConfig) -> Self {
        Self {
            nb: 1200,
            lookahead: Lookahead::Pipelined,
            division: WorkDivision::Dynamic,
            bcast: BcastScheme::Ring,
            grid: squarest_grid(machine.nodes),
        }
    }

    /// The full simulator configuration this candidate denotes. `NB` and
    /// the offload tile depth `Kt` are tied (the paper runs `Kt = NB`),
    /// so the update flops `2·m·n·Kt` scale with the panel width.
    pub fn config(&self, machine: &MachineConfig) -> HybridConfig {
        let mut cfg = HybridConfig::new(
            machine.n,
            ProcessGrid::new(self.grid.0, self.grid.1),
            machine.cards_per_node,
        );
        cfg.nb = self.nb;
        cfg.offload.kt = self.nb;
        cfg.lookahead = self.lookahead;
        cfg.division = self.division;
        cfg.bcast = self.bcast;
        cfg.host_mem_gib = machine.host_mem_gib;
        cfg
    }

    /// Whether the candidate can run at all: grid covers the cluster,
    /// the panel fits the matrix, and the per-node share fits host
    /// memory (the same gate `simulate_cluster` asserts).
    pub fn feasible(&self, machine: &MachineConfig) -> bool {
        if self.grid.0 * self.grid.1 != machine.nodes {
            return false;
        }
        if self.nb == 0 || self.nb > machine.n {
            return false;
        }
        if let WorkDivision::Static { card_fraction } = self.division {
            if !(0.0..=1.0).contains(&card_fraction) {
                return false;
            }
        }
        let cfg = self.config(machine);
        cfg.bytes_per_node() <= cfg.host_mem_gib * 1.073741824e9 * 0.95
    }

    /// Canonical key: deterministic identity, dedup and tie-break order.
    pub fn key(&self) -> CandidateKey {
        let la = match self.lookahead {
            Lookahead::None => 0u8,
            Lookahead::Basic => 1,
            Lookahead::Pipelined => 2,
        };
        let (div, frac) = match self.division {
            WorkDivision::Dynamic => (0u8, 0u64),
            WorkDivision::Static { card_fraction } => (1, card_fraction.to_bits()),
        };
        let bc = match self.bcast {
            BcastScheme::Ring => 0u8,
            BcastScheme::TwoRing => 1,
            BcastScheme::Binomial => 2,
        };
        (self.nb, la, div, frac, bc, self.grid.0, self.grid.1)
    }

    /// One-line human-readable form (score tables, cache files).
    pub fn describe(&self) -> String {
        let la = match self.lookahead {
            Lookahead::None => "none",
            Lookahead::Basic => "basic",
            Lookahead::Pipelined => "pipelined",
        };
        let div = match self.division {
            WorkDivision::Dynamic => "dynamic".to_string(),
            WorkDivision::Static { card_fraction } => format!("static({card_fraction:.2})"),
        };
        format!(
            "NB={} la={la} div={div} bcast={} grid={}x{}",
            self.nb,
            self.bcast.name(),
            self.grid.0,
            self.grid.1
        )
    }
}

/// Every `(p, q)` with `p · q == nodes`, in increasing `p`.
pub fn factor_grids(nodes: usize) -> Vec<(usize, usize)> {
    (1..=nodes)
        .filter(|p| nodes.is_multiple_of(*p))
        .map(|p| (p, nodes / p))
        .collect()
}

/// The factorization of `nodes` closest to square (ties to the flatter
/// `p <= q` shape) — HPL folklore's starting point and the paper's
/// choice for every Table III row.
pub fn squarest_grid(nodes: usize) -> (usize, usize) {
    factor_grids(nodes)
        .into_iter()
        .filter(|&(p, q)| p <= q)
        .min_by_key(|&(p, q)| q - p)
        .unwrap_or((1, nodes))
}

/// The enumerated search space.
#[derive(Clone, Debug)]
pub struct TuneSpace {
    /// Coarse panel widths.
    pub nbs: Vec<usize>,
    /// Look-ahead schemes.
    pub lookaheads: Vec<Lookahead>,
    /// Work divisions (dynamic stealing plus a ladder of static splits).
    pub divisions: Vec<WorkDivision>,
    /// Broadcast schemes.
    pub bcasts: Vec<BcastScheme>,
    /// Process grids.
    pub grids: Vec<(usize, usize)>,
}

impl TuneSpace {
    /// The default coarse grid for `machine`: the paper's NB
    /// neighborhood, all look-ahead and broadcast schemes, dynamic
    /// stealing plus three static splits, and every factorization of the
    /// node count.
    pub fn coarse(machine: &MachineConfig) -> Self {
        let divisions = if machine.cards_per_node == 0 {
            vec![WorkDivision::Dynamic]
        } else {
            vec![
                WorkDivision::Dynamic,
                WorkDivision::Static {
                    card_fraction: 0.75,
                },
                WorkDivision::Static {
                    card_fraction: 0.85,
                },
                WorkDivision::Static {
                    card_fraction: 0.95,
                },
            ]
        };
        Self {
            nbs: vec![600, 800, 960, 1200, 1440, 1680, 2000, 2400],
            lookaheads: vec![Lookahead::None, Lookahead::Basic, Lookahead::Pipelined],
            divisions,
            bcasts: BcastScheme::ALL.to_vec(),
            grids: factor_grids(machine.nodes),
        }
    }

    /// The feasible cross-product, in a fixed deterministic nesting
    /// order (grid, NB, look-ahead, division, broadcast).
    pub fn candidates(&self, machine: &MachineConfig) -> Vec<Candidate> {
        let mut out = Vec::new();
        for &grid in &self.grids {
            for &nb in &self.nbs {
                for &lookahead in &self.lookaheads {
                    for &division in &self.divisions {
                        for &bcast in &self.bcasts {
                            let c = Candidate {
                                nb,
                                lookahead,
                                division,
                                bcast,
                                grid,
                            };
                            if c.feasible(machine) {
                                out.push(c);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// FNV-1a signature of the space (part of the cache key: a changed
    /// search space must not be served a stale result).
    pub fn signature(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.nbs.len() as u64);
        for &nb in &self.nbs {
            h.write_u64(nb as u64);
        }
        h.write_u64(self.lookaheads.len() as u64);
        for &la in &self.lookaheads {
            h.write_u64(match la {
                Lookahead::None => 0,
                Lookahead::Basic => 1,
                Lookahead::Pipelined => 2,
            });
        }
        h.write_u64(self.divisions.len() as u64);
        for &d in &self.divisions {
            match d {
                WorkDivision::Dynamic => h.write_u64(0),
                WorkDivision::Static { card_fraction } => {
                    h.write_u64(1);
                    h.write_u64(card_fraction.to_bits());
                }
            }
        }
        h.write_u64(self.bcasts.len() as u64);
        for &b in &self.bcasts {
            h.write(b.name().as_bytes());
        }
        h.write_u64(self.grids.len() as u64);
        for &(p, q) in &self.grids {
            h.write_u64(p as u64);
            h.write_u64(q as u64);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_factorizations_cover_and_multiply_back() {
        assert_eq!(factor_grids(1), vec![(1, 1)]);
        let g100 = factor_grids(100);
        assert_eq!(g100.len(), 9);
        assert!(g100.iter().all(|&(p, q)| p * q == 100));
        assert!(g100.contains(&(10, 10)));
        assert_eq!(squarest_grid(100), (10, 10));
        assert_eq!(squarest_grid(12), (3, 4));
        assert_eq!(squarest_grid(1), (1, 1));
    }

    #[test]
    fn paper_baseline_is_feasible_on_both_paper_machines() {
        for m in [
            MachineConfig::paper_single_node(),
            MachineConfig::paper_cluster_100(),
        ] {
            let base = Candidate::paper_baseline(&m);
            assert!(base.feasible(&m), "baseline infeasible on {m:?}");
            assert_eq!(base.nb, 1200);
            let cfg = base.config(&m);
            assert_eq!(cfg.offload.kt, base.nb, "Kt must be tied to NB");
        }
    }

    #[test]
    fn infeasible_candidates_are_rejected() {
        let m = MachineConfig::paper_single_node();
        let mut c = Candidate::paper_baseline(&m);
        c.grid = (2, 1); // wrong node count
        assert!(!c.feasible(&m));
        let mut big = Candidate::paper_baseline(&m);
        big.nb = m.n + 1;
        assert!(!big.feasible(&m));
        // A 1×1 node cannot hold N that needs > 60.8 GiB.
        let tight = MachineConfig {
            n: 120_000,
            ..MachineConfig::paper_single_node()
        };
        assert!(!Candidate::paper_baseline(&tight).feasible(&tight));
    }

    #[test]
    fn coarse_space_is_deterministic_and_nonempty() {
        let m = MachineConfig::paper_cluster_100();
        let space = TuneSpace::coarse(&m);
        let a = space.candidates(&m);
        let b = space.candidates(&m);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.key() == y.key()));
        // Signature is stable, and sensitive to the space.
        assert_eq!(space.signature(), TuneSpace::coarse(&m).signature());
        let mut other = space.clone();
        other.nbs.push(3000);
        assert_ne!(space.signature(), other.signature());
    }

    #[test]
    fn machine_fingerprints_differ_between_paper_machines() {
        let a = MachineConfig::paper_single_node().fingerprint();
        let b = MachineConfig::paper_cluster_100().fingerprint();
        assert_ne!(a, b);
        assert_eq!(a, MachineConfig::paper_single_node().fingerprint());
    }
}
