//! `phi-tune` — deterministic, seeded autotuning for the simulated
//! Linpack stack.
//!
//! The paper's headline numbers are not one algorithm but a *tuned
//! configuration*: panel width `NB`, look-ahead depth, the host/card
//! work-division (§IV-B), the broadcast scheme (Fig. 8) and the P × Q
//! process grid were all hand-searched per machine, and §VI notes the
//! multi-node runs settle on a different `NB` than a single node. This
//! crate performs that search against the calibrated simulators:
//!
//! * [`TuneSpace`] enumerates the configuration space;
//! * [`tune`] runs the two-phase search — a **coarse grid** over the
//!   full space on the fast analytic cluster path, then **coordinate
//!   descent with successive halving** around the leaders, and finally a
//!   re-score of the surviving finalists on the slower DES-calibrated
//!   path ([`phi_hpl::hybrid::simulate_cluster_calibrated`]);
//! * candidate evaluations run in parallel on `std::thread` with a
//!   deterministic by-index merge, so the result is independent of
//!   thread count;
//! * [`TuneCache`] is a content-addressed cache keyed by an FNV-1a
//!   fingerprint of the machine, the search space and the seed (the
//!   same fingerprint scheme `phi-faults` uses for replay identity) —
//!   a second run with the same key is a pure cache hit. The framing
//!   lives in `phi-serve`'s shared [`phi_serve::ResultStore`]; the
//!   on-disk bytes are unchanged from the pre-migration v2 format.
//!
//! Selection applies an ε-rule: among finalists within 1% of the best
//! calibrated score *and no slower than the paper's hand-set baseline*,
//! the smallest `NB` wins (the §V-B `Kt`-bound argument: a smaller
//! panel costs nothing measurable but eases memory and PCIe pressure).
//! The baseline is always in the population, so the tuner never
//! regresses below the hand-tuned configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod search;
pub mod space;
pub mod workload;

pub use cache::{CacheReadError, TuneCache};
pub use search::{tune, tune_cached, ScoredCandidate, TuneOptions, TuneOutcome, TunedConfig};
pub use space::{Candidate, MachineConfig, TuneSpace};
pub use workload::{
    tune_spmv_blocking, tune_stencil_decomposition, SpmvBlockingChoice, StencilDecompChoice,
};

/// FNV-1a, the workspace's standard fingerprint hash (identical
/// constants to the `phi-faults` replay fingerprints).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// The workspace's standard LCG (same multiplier/increment as the
/// `phi-faults` plan generator): deterministic, seedable, no external
/// dependency.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TuneRng(u64);

impl TuneRng {
    pub(crate) fn new(seed: u64) -> Self {
        TuneRng(seed.wrapping_add(0x9e3779b97f4a7c15))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // xorshift the top bits down: the LCG's low bits are weak.
        let x = self.0;
        (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd)
    }

    /// Uniform value in `0..n` (n > 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv::new().finish(), 0xcbf29ce484222325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let mut a = TuneRng::new(7);
        let mut b = TuneRng::new(7);
        let mut c = TuneRng::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        for _ in 0..100 {
            assert!(a.below(10) < 10);
        }
    }
}
