//! The two-phase search: coarse grid → coordinate descent with
//! successive halving → calibrated re-score of the finalists.

use crate::space::{Candidate, CandidateKey, MachineConfig, TuneSpace};
use crate::{cache, TuneRng};
use phi_hpl::hybrid::{simulate_cluster, simulate_cluster_calibrated, Lookahead};
use phi_hpl::{GigaflopsReport, HplDat, HybridConfig};
use std::collections::BTreeSet;
// lint:allow(seed-bypass): wall clock feeds progress reporting only,
// never a tuning decision — scores replay bit-for-bit from the seed.
use std::time::Instant;

/// ε of the selection rule: among finalists within this fraction of the
/// best score (and no slower than the paper baseline), the smallest NB
/// wins.
pub const EPSILON: f64 = 0.01;

/// Rows kept in the persisted score table.
pub const MAX_TABLE: usize = 16;

/// Knobs of a tuning run. All defaults are deterministic; `threads`
/// only changes wall time, never the result (evaluations merge by
/// index).
#[derive(Clone, Copy, Debug)]
pub struct TuneOptions {
    /// Seed of the refinement proposals (part of the cache key).
    pub seed: u64,
    /// Worker threads (0 = auto: available parallelism, capped at 8).
    pub threads: usize,
    /// Finalists carried out of the coarse phase.
    pub finalists: usize,
    /// Coordinate-descent rounds (each halves the finalist set).
    pub refine_rounds: usize,
    /// Stage-sampling cadence of the calibrated re-score.
    pub sample_every: usize,
    /// Smoke mode: coarse grid only, no refinement, no calibrated pass.
    pub coarse_only: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            seed: 0x2013_0522, // the paper's conference date
            threads: 0,
            finalists: 8,
            refine_rounds: 2,
            sample_every: 16,
            coarse_only: false,
        }
    }
}

/// A candidate with the report that scored it.
#[derive(Clone, Debug)]
pub struct ScoredCandidate {
    /// The configuration point.
    pub candidate: Candidate,
    /// Its simulated result ([`GigaflopsReport`], HPL conventions).
    pub report: GigaflopsReport,
}

/// The winning configuration, in a form that round-trips through the
/// standard `HPL.dat` layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunedConfig {
    /// Problem size the tuning targeted.
    pub n: usize,
    /// Chosen panel width.
    pub nb: usize,
    /// Chosen process grid.
    pub grid: (usize, usize),
    /// Chosen look-ahead scheme.
    pub lookahead: Lookahead,
    /// Chosen work division.
    pub division: phi_hpl::WorkDivision,
    /// Chosen broadcast scheme.
    pub bcast: phi_fabric::BcastScheme,
}

impl TunedConfig {
    /// Packs a winning candidate.
    pub fn from_candidate(n: usize, c: &Candidate) -> Self {
        Self {
            n,
            nb: c.nb,
            grid: c.grid,
            lookahead: c.lookahead,
            division: c.division,
            bcast: c.bcast,
        }
    }

    /// Back to a [`Candidate`].
    pub fn candidate(&self) -> Candidate {
        Candidate {
            nb: self.nb,
            lookahead: self.lookahead,
            division: self.division,
            bcast: self.bcast,
            grid: self.grid,
        }
    }

    /// The simulator configuration (for re-running the tuned point).
    pub fn hybrid_config(&self, machine: &MachineConfig) -> HybridConfig {
        self.candidate().config(machine)
    }

    /// The tuned plan as an [`HplDat`] — `dat.render()` emits the
    /// standard input file, and parsing it back recovers N, NB, the
    /// grid and the look-ahead depth.
    pub fn hpl_dat(&self) -> HplDat {
        HplDat {
            ns: vec![self.n],
            nbs: vec![self.nb],
            grids: vec![self.grid],
            depth: match self.lookahead {
                Lookahead::None => 0,
                Lookahead::Basic => 1,
                Lookahead::Pipelined => 2,
            },
        }
    }
}

/// Everything a tuning run produces.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Cache key: FNV over machine fingerprint, space signature, seed
    /// and tuner version.
    pub fingerprint: u64,
    /// The machine tuned for.
    pub machine: MachineConfig,
    /// The winning configuration.
    pub tuned: TunedConfig,
    /// The winner's score (calibrated unless `coarse_only`).
    pub tuned_report: GigaflopsReport,
    /// The paper's hand-set configuration on this machine.
    pub baseline: Candidate,
    /// The baseline's score at the same fidelity as the winner's.
    pub baseline_report: GigaflopsReport,
    /// Total candidate evaluations across all phases.
    pub candidates_evaluated: usize,
    /// Final score table, best first (top [`MAX_TABLE`] rows).
    pub table: Vec<ScoredCandidate>,
    /// Whether this outcome was served from the tuning cache.
    pub cache_hit: bool,
    /// Wall-clock seconds the run (or cache load) took.
    pub wall_time_s: f64,
}

#[derive(Clone, Copy, Debug)]
enum Fidelity {
    Analytic,
    Calibrated { sample_every: usize },
}

fn eval_one(c: &Candidate, machine: &MachineConfig, fid: Fidelity) -> GigaflopsReport {
    let cfg = c.config(machine);
    match fid {
        Fidelity::Analytic => simulate_cluster(&cfg, false).report,
        Fidelity::Calibrated { sample_every } => {
            simulate_cluster_calibrated(&cfg, sample_every).report
        }
    }
}

/// Parallel evaluation with a deterministic by-index merge: thread `t`
/// takes candidates `t, t + T, t + 2T, …` (striping balances the
/// NB-driven cost gradient), and results land in their input slots, so
/// the output is independent of `T` and of thread scheduling.
fn eval_parallel(
    cands: &[Candidate],
    machine: &MachineConfig,
    threads: usize,
    fid: Fidelity,
) -> Vec<GigaflopsReport> {
    if cands.is_empty() {
        return Vec::new();
    }
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let nthreads = if threads == 0 { auto } else { threads }
        .min(cands.len())
        .max(1);
    let mut out: Vec<Option<GigaflopsReport>> = vec![None; cands.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                s.spawn(move || {
                    (t..cands.len())
                        .step_by(nthreads)
                        .map(|i| (i, eval_one(&cands[i], machine, fid)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("tuner worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("slot evaluated"))
        .collect()
}

/// Coordinate-descent proposals around a finalist: NB half/quarter
/// steps of the coarse lattice, one seeded NB probe, and ±0.05 on a
/// static split fraction.
fn neighbors(c: &Candidate, machine: &MachineConfig, rng: &mut TuneRng) -> Vec<Candidate> {
    let mut out = Vec::new();
    let push_nb = |nb: i64, out: &mut Vec<Candidate>| {
        if nb >= 240 {
            let cand = Candidate {
                nb: nb as usize,
                ..*c
            };
            if cand.feasible(machine) {
                out.push(cand);
            }
        }
    };
    for d in [-120i64, -60, 60, 120] {
        push_nb(c.nb as i64 + d, &mut out);
    }
    // One seeded probe on a 20-multiple lattice within ±200.
    let jitter = (rng.below(21) as i64 - 10) * 20;
    if jitter != 0 {
        push_nb(c.nb as i64 + jitter, &mut out);
    }
    if let phi_hpl::WorkDivision::Static { card_fraction } = c.division {
        for df in [-0.05f64, 0.05] {
            let f = (card_fraction + df).clamp(0.0, 1.0);
            let cand = Candidate {
                division: phi_hpl::WorkDivision::Static { card_fraction: f },
                ..*c
            };
            if cand.feasible(machine) {
                out.push(cand);
            }
        }
    }
    out
}

/// Ranks `(candidate, report)` pairs best-first: score descending, then
/// canonical key ascending — a total, deterministic order.
fn rank(set: &mut [ScoredCandidate]) {
    set.sort_by(|a, b| {
        b.report
            .gflops
            .partial_cmp(&a.report.gflops)
            .expect("scores are finite")
            .then_with(|| a.candidate.key().cmp(&b.candidate.key()))
    });
}

/// The ε-rule: among candidates within [`EPSILON`] of the best score
/// **and** at least as fast as the baseline, the smallest canonical key
/// (NB leads) wins. The argmax always qualifies, so the eligible set is
/// never empty and the winner never scores below the baseline.
fn select(set: &[ScoredCandidate], baseline_key: CandidateKey) -> usize {
    let bidx = set
        .iter()
        .position(|sc| sc.candidate.key() == baseline_key)
        .expect("baseline is always scored");
    let base_g = set[bidx].report.gflops;
    let best_g = set
        .iter()
        .map(|sc| sc.report.gflops)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut chosen: Option<usize> = None;
    for (i, sc) in set.iter().enumerate() {
        if sc.report.gflops >= best_g * (1.0 - EPSILON) && sc.report.gflops >= base_g {
            let better = match chosen {
                None => true,
                Some(j) => sc.candidate.key() < set[j].candidate.key(),
            };
            if better {
                chosen = Some(i);
            }
        }
    }
    chosen.expect("the argmax is always eligible")
}

/// Runs the full search (no cache). Deterministic for a given
/// `(machine, space, opts.seed)`; `opts.threads` never changes the
/// result.
///
/// # Panics
/// Panics when the paper baseline configuration does not fit the
/// machine — the never-regress guard needs it in the population.
pub fn tune(machine: &MachineConfig, space: &TuneSpace, opts: &TuneOptions) -> TuneOutcome {
    let t0 = Instant::now(); // lint:allow(seed-bypass): wall time reported, not consumed
    let fingerprint = cache::cache_key(machine, space, opts.seed);
    let baseline = Candidate::paper_baseline(machine);
    assert!(
        baseline.feasible(machine),
        "paper baseline must fit the machine"
    );

    // Phase 1: coarse grid (baseline force-included — never-regress).
    let mut pop = space.candidates(machine);
    if !pop.iter().any(|c| c.key() == baseline.key()) {
        pop.push(baseline);
    }
    let scores = eval_parallel(&pop, machine, opts.threads, Fidelity::Analytic);
    let mut evaluated = pop.len();

    let mut scored: Vec<ScoredCandidate> = pop
        .iter()
        .zip(scores)
        .map(|(c, report)| ScoredCandidate {
            candidate: *c,
            report,
        })
        .collect();
    rank(&mut scored);

    if opts.coarse_only {
        return pack(
            machine,
            fingerprint,
            scored,
            baseline,
            evaluated,
            t0.elapsed().as_secs_f64(),
        );
    }

    // Phase 2: coordinate descent with successive halving.
    let mut finalists: Vec<ScoredCandidate> =
        scored.iter().take(opts.finalists.max(2)).cloned().collect();
    let mut seen: BTreeSet<CandidateKey> = pop.iter().map(Candidate::key).collect();
    let mut rng = TuneRng::new(opts.seed ^ machine.fingerprint());
    for _ in 0..opts.refine_rounds {
        let mut proposals = Vec::new();
        for sc in &finalists {
            for n in neighbors(&sc.candidate, machine, &mut rng) {
                if seen.insert(n.key()) {
                    proposals.push(n);
                }
            }
        }
        let pscores = eval_parallel(&proposals, machine, opts.threads, Fidelity::Analytic);
        evaluated += proposals.len();
        finalists.extend(
            proposals
                .iter()
                .zip(pscores)
                .map(|(c, report)| ScoredCandidate {
                    candidate: *c,
                    report,
                }),
        );
        rank(&mut finalists);
        let keep = (finalists.len() / 2).clamp(2, opts.finalists.max(2));
        finalists.truncate(keep);
    }

    // Phase 3: calibrated re-score of the survivors plus the baseline.
    let mut cal_set: Vec<Candidate> = finalists.iter().map(|sc| sc.candidate).collect();
    if !cal_set.iter().any(|c| c.key() == baseline.key()) {
        cal_set.push(baseline);
    }
    let cal_scores = eval_parallel(
        &cal_set,
        machine,
        opts.threads,
        Fidelity::Calibrated {
            sample_every: opts.sample_every,
        },
    );
    evaluated += cal_set.len();
    let mut cal: Vec<ScoredCandidate> = cal_set
        .iter()
        .zip(cal_scores)
        .map(|(c, report)| ScoredCandidate {
            candidate: *c,
            report,
        })
        .collect();
    rank(&mut cal);

    pack(
        machine,
        fingerprint,
        cal,
        baseline,
        evaluated,
        t0.elapsed().as_secs_f64(),
    )
}

/// Applies the ε-rule to a ranked set and assembles the outcome.
fn pack(
    machine: &MachineConfig,
    fingerprint: u64,
    scored: Vec<ScoredCandidate>,
    baseline: Candidate,
    evaluated: usize,
    wall_time_s: f64,
) -> TuneOutcome {
    let chosen = select(&scored, baseline.key());
    let bidx = scored
        .iter()
        .position(|sc| sc.candidate.key() == baseline.key())
        .expect("baseline scored");
    let tuned = TunedConfig::from_candidate(machine.n, &scored[chosen].candidate);
    let tuned_report = scored[chosen].report.clone();
    let baseline_report = scored[bidx].report.clone();
    let mut table = scored;
    table.truncate(MAX_TABLE);
    TuneOutcome {
        fingerprint,
        machine: *machine,
        tuned,
        tuned_report,
        baseline,
        baseline_report,
        candidates_evaluated: evaluated,
        table,
        cache_hit: false,
        wall_time_s,
    }
}

/// [`tune`] behind a content-addressed cache: a prior run with the same
/// machine fingerprint, space signature and seed is returned verbatim
/// (with `cache_hit = true`) without evaluating a single candidate.
pub fn tune_cached(
    machine: &MachineConfig,
    space: &TuneSpace,
    opts: &TuneOptions,
    cache: &cache::TuneCache,
) -> std::io::Result<TuneOutcome> {
    let t0 = Instant::now(); // lint:allow(seed-bypass): wall time reported, not consumed
    let key = cache::cache_key(machine, space, opts.seed);
    match cache.load_checked(key) {
        Ok(Some(mut out)) => {
            out.cache_hit = true;
            out.wall_time_s = t0.elapsed().as_secs_f64();
            return Ok(out);
        }
        Ok(None) => {}
        // A damaged record is not fatal: fall through to a fresh tune,
        // which overwrites the bad bytes below.
        Err(cache::CacheReadError::Corrupt { .. }) => {}
        Err(cache::CacheReadError::Io(e)) => return Err(e),
    }
    let out = tune(machine, space, opts);
    cache.store(&out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_fabric::BcastScheme;
    use phi_hpl::WorkDivision;

    /// A small machine that keeps tests fast: 4 nodes, modest N.
    fn small_machine() -> MachineConfig {
        MachineConfig {
            nodes: 4,
            cards_per_node: 1,
            host_mem_gib: 64.0,
            n: 120_000,
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let mut o1 = TuneOptions {
            threads: 1,
            coarse_only: true,
            ..TuneOptions::default()
        };
        let a = tune(&m, &space, &o1);
        o1.threads = 4;
        let b = tune(&m, &space, &o1);
        assert_eq!(a.tuned, b.tuned);
        assert_eq!(
            a.tuned_report.gflops.to_bits(),
            b.tuned_report.gflops.to_bits()
        );
        assert_eq!(a.candidates_evaluated, b.candidates_evaluated);
    }

    #[test]
    fn never_regresses_below_the_baseline() {
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let out = tune(&m, &space, &TuneOptions::default());
        assert!(
            out.tuned_report.gflops >= out.baseline_report.gflops,
            "tuned {} < baseline {}",
            out.tuned_report.gflops,
            out.baseline_report.gflops
        );
        assert!(out.candidates_evaluated > 100);
        assert!(!out.table.is_empty());
        // The table is ranked best-first.
        for w in out.table.windows(2) {
            assert!(w[0].report.gflops >= w[1].report.gflops);
        }
    }

    #[test]
    fn tuned_config_roundtrips_through_hpldat() {
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let out = tune(
            &m,
            &space,
            &TuneOptions {
                coarse_only: true,
                ..TuneOptions::default()
            },
        );
        let dat = out.tuned.hpl_dat();
        let text = dat.render();
        let back = phi_hpl::HplDat::parse(&text).expect("rendered HPL.dat parses");
        assert_eq!(back, dat);
        assert_eq!(back.render().as_bytes(), text.as_bytes());
        assert_eq!(back.nbs, vec![out.tuned.nb]);
        assert_eq!(back.grids, vec![out.tuned.grid]);
        assert_eq!(back.lookahead(), out.tuned.lookahead);
        // And back to a runnable config.
        let cfg = out.tuned.hybrid_config(&m);
        assert_eq!(cfg.nb, out.tuned.nb);
        assert_eq!(cfg.offload.kt, out.tuned.nb);
    }

    #[test]
    fn epsilon_rule_prefers_smallest_nb_within_band() {
        // Hand-built score set: three candidates within 1% of the best,
        // one clearly below, baseline in the middle.
        let m = small_machine();
        let base = Candidate::paper_baseline(&m);
        let mk = |nb: usize, t: f64| ScoredCandidate {
            candidate: Candidate { nb, ..base },
            report: GigaflopsReport::new(m.n, t, 1.0e5),
        };
        // Smaller time = higher score. 1200 is baseline; 960 within 1%
        // of best and above baseline; 800 below baseline; 2000 best.
        let set = vec![
            mk(2000, 100.0),
            mk(960, 100.4),
            mk(1200, 100.6), // baseline
            mk(800, 103.0),
        ];
        let chosen = select(&set, base.key());
        assert_eq!(set[chosen].candidate.nb, 960);
        // If every alternative is below the baseline, the baseline wins.
        let set2 = vec![mk(1200, 100.0), mk(960, 101.5), mk(800, 103.0)];
        let chosen2 = select(&set2, base.key());
        assert_eq!(set2[chosen2].candidate.nb, 1200);
    }

    #[test]
    fn seeded_refinement_is_reproducible_per_seed() {
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let opts = TuneOptions {
            refine_rounds: 1,
            sample_every: 32,
            ..TuneOptions::default()
        };
        let a = tune(&m, &space, &opts);
        let b = tune(&m, &space, &opts);
        assert_eq!(a.tuned, b.tuned);
        assert_eq!(
            a.tuned_report.time_s.to_bits(),
            b.tuned_report.time_s.to_bits()
        );
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn gate_single_node_rediscovers_paper_configuration() {
        // Headline gate, Table II/III single node: the tuner must find a
        // configuration at least as fast as the hand-set paper
        // parameters, with NB inside the paper's optimum band.
        let m = MachineConfig::paper_single_node();
        let space = TuneSpace::coarse(&m);
        let out = tune(&m, &space, &TuneOptions::default());
        assert!(
            out.tuned_report.gflops >= out.baseline_report.gflops,
            "tuned {:.0} GFLOPS < paper baseline {:.0}",
            out.tuned_report.gflops,
            out.baseline_report.gflops
        );
        assert!(
            (960..=1536).contains(&out.tuned.nb),
            "tuned NB {} outside the paper's optimum band",
            out.tuned.nb
        );
        // The winner keeps the paper's structural choices.
        assert_eq!(out.tuned.lookahead, Lookahead::Pipelined);
        assert_eq!(out.tuned.division, WorkDivision::Dynamic);
        assert_eq!(out.tuned.bcast, BcastScheme::Ring);
        assert_eq!(out.tuned.grid, (1, 1));
        // And lands in Table III's efficiency neighborhood.
        let eff = out.tuned_report.efficiency();
        assert!((eff - 0.798).abs() < 0.05, "tuned efficiency {eff:.3}");
    }

    #[test]
    fn gate_hundred_node_rediscovers_paper_configuration() {
        // Headline gate, Table III 100-node row (N = 825K, 10 × 10).
        let m = MachineConfig::paper_cluster_100();
        let space = TuneSpace::coarse(&m);
        let opts = TuneOptions {
            sample_every: 64,
            ..TuneOptions::default()
        };
        let out = tune(&m, &space, &opts);
        assert!(
            out.tuned_report.gflops >= out.baseline_report.gflops,
            "tuned {:.0} GFLOPS < paper baseline {:.0}",
            out.tuned_report.gflops,
            out.baseline_report.gflops
        );
        assert!(
            (960..=1536).contains(&out.tuned.nb),
            "tuned NB {} outside the paper's optimum band",
            out.tuned.nb
        );
        assert_eq!(out.tuned.grid, (10, 10), "grid search must find 10x10");
        // §VI: the multi-node optimum NB differs from single node — our
        // model puts it at or below the single-node choice.
        let tf = out.tuned_report.gflops / 1e3;
        assert!((tf - 107.0).abs() < 6.0, "tuned 100-node {tf:.1} TFLOPS");
    }
}
