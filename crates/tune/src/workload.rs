//! Blocking searches for the performance-lab workloads.
//!
//! The HPL tuner searches panel width and look-ahead; the other two
//! workloads have their own analogous knobs, each searched exhaustively
//! and deterministically here:
//!
//! * **SpMV** — the SELL-C-σ *sort window*: sorting rows by length
//!   within windows of σ rows before slicing balances the per-thread
//!   nonzero counts (less zero-padding streamed) but scrambles the `y`
//!   scatter and the gather locality. The search scores each window by
//!   the bytes it actually moves: padded values plus permutation
//!   traffic.
//! * **Stencil** — the `(p1, p2, p3)` rank-grid factorization: for a
//!   fixed rank count, surface-to-volume ratio decides how much halo
//!   each sweep ships. The search enumerates every factorization the
//!   radius admits and charges the analytic
//!   [`NetModel::halo_exchange`] time.

use phi_fabric::{HaloSpec, NetModel};
use phi_knc::spmv::BLOCK_ROWS;

/// Outcome of the SpMV sort-window search.
#[derive(Clone, Debug, PartialEq)]
pub struct SpmvBlockingChoice {
    /// Winning window size in rows (σ). `1` means "keep matrix order".
    pub sort_window: usize,
    /// Nonzeros streamed after padding rows to their block's depth.
    pub padded_nnz: usize,
    /// Bytes-moved score the window won with.
    pub score_bytes: f64,
    /// `padded_nnz / nnz` — the balance overhead the kernel will see.
    pub overhead: f64,
}

/// Padded nonzero count when `row_lens` (in the given order) is cut into
/// row blocks of [`BLOCK_ROWS`], each padded to its deepest row — the
/// exact quantity `run_spmv` streams.
pub fn padded_nnz(row_lens: &[usize]) -> usize {
    row_lens
        .chunks(BLOCK_ROWS)
        .map(|b| BLOCK_ROWS * b.iter().copied().max().unwrap_or(0).max(1))
        .sum()
}

fn window_sorted(row_lens: &[usize], window: usize) -> (Vec<usize>, f64) {
    let mut order: Vec<usize> = (0..row_lens.len()).collect();
    for chunk in order.chunks_mut(window.max(1)) {
        chunk.sort_by_key(|&r| (std::cmp::Reverse(row_lens[r]), r));
    }
    let displacement: f64 = order
        .iter()
        .enumerate()
        .map(|(pos, &r)| pos.abs_diff(r) as f64)
        .sum();
    (order.iter().map(|&r| row_lens[r]).collect(), displacement)
}

/// Searches SELL sort windows for the ordering that moves the fewest
/// bytes: `8 · padded_nnz` for the streamed values plus `4` bytes per
/// row-displacement unit for the permutation's scatter/gather traffic.
/// Windows are tried in the given order; ties keep the earlier (smaller)
/// window, so the result is deterministic.
pub fn tune_spmv_blocking(row_lens: &[usize], windows: &[usize]) -> SpmvBlockingChoice {
    assert!(!row_lens.is_empty() && !windows.is_empty());
    let nnz: usize = row_lens.iter().sum();
    let mut best: Option<SpmvBlockingChoice> = None;
    for &w in windows {
        let (sorted, displacement) = window_sorted(row_lens, w);
        let padded = padded_nnz(&sorted);
        let score = 8.0 * padded as f64 + 4.0 * displacement;
        let cand = SpmvBlockingChoice {
            sort_window: w,
            padded_nnz: padded,
            score_bytes: score,
            overhead: padded as f64 / nnz.max(1) as f64,
        };
        let better = match &best {
            None => true,
            Some(b) => score < b.score_bytes,
        };
        if better {
            best = Some(cand);
        }
    }
    best.expect("at least one window scored")
}

/// The default window ladder the lab searches: matrix order up to
/// whole-matrix sorting in powers of four.
pub fn default_spmv_windows(rows: usize) -> Vec<usize> {
    let mut w = vec![1, BLOCK_ROWS];
    let mut s = 4 * BLOCK_ROWS;
    while s < rows {
        w.push(s);
        s *= 4;
    }
    w.push(rows.max(1));
    w.dedup();
    w
}

/// Outcome of the stencil decomposition search.
#[derive(Clone, Debug, PartialEq)]
pub struct StencilDecompChoice {
    /// Winning rank grid.
    pub ranks: (usize, usize, usize),
    /// Analytic halo-exchange seconds per sweep under the searched rail.
    pub halo_s: f64,
    /// Bytes the whole machine ships per sweep.
    pub halo_bytes: f64,
}

/// Enumerates every `(p1, p2, p3)` with `p1·p2·p3 = total_ranks` whose
/// blocks stay at least `radius` deep, and returns the one with the
/// cheapest per-sweep halo exchange. Ties fall to the lexicographically
/// smallest grid, so the result is deterministic.
///
/// # Panics
/// Panics when no admissible factorization exists (domain too small for
/// the rank count at this radius).
pub fn tune_stencil_decomposition(
    dims: (usize, usize, usize),
    total_ranks: usize,
    radius: usize,
    net: &NetModel,
) -> StencilDecompChoice {
    assert!(total_ranks >= 1 && radius >= 1);
    let admissible = |n: usize, p: usize| p == 1 || (n >= p && n / p >= radius);
    let mut best: Option<StencilDecompChoice> = None;
    for p1 in 1..=total_ranks {
        if !total_ranks.is_multiple_of(p1) || !admissible(dims.0, p1) {
            continue;
        }
        let rest = total_ranks / p1;
        for p2 in 1..=rest {
            if !rest.is_multiple_of(p2) || !admissible(dims.1, p2) {
                continue;
            }
            let p3 = rest / p2;
            if !admissible(dims.2, p3) {
                continue;
            }
            let spec = HaloSpec::new(dims, (p1, p2, p3), radius);
            let halo_s = net.halo_exchange(&spec);
            let cand = StencilDecompChoice {
                ranks: (p1, p2, p3),
                halo_s,
                halo_bytes: spec.total_bytes(),
            };
            let better = match &best {
                None => true,
                Some(b) => halo_s < b.halo_s,
            };
            if better {
                best = Some(cand);
            }
        }
    }
    best.unwrap_or_else(|| {
        panic!("no (p1,p2,p3) factorization of {total_ranks} fits {dims:?} at radius {radius}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_rows() -> Vec<usize> {
        // 128 rows: every 32-row stretch mixes one long row into short
        // ones, the worst case for unsorted slicing.
        (0..128).map(|r| if r % 7 == 0 { 90 } else { 6 }).collect()
    }

    #[test]
    fn sorting_reduces_padding() {
        let rows = skewed_rows();
        let unsorted = padded_nnz(&rows);
        let (fully_sorted, _) = window_sorted(&rows, rows.len());
        assert!(padded_nnz(&fully_sorted) < unsorted);
    }

    #[test]
    fn search_trades_padding_against_permutation_traffic() {
        let rows = skewed_rows();
        let choice = tune_spmv_blocking(&rows, &default_spmv_windows(rows.len()));
        // Some sorting must win on this pathological layout...
        assert!(choice.sort_window > 1, "{choice:?}");
        // ...and the winner must beat both extremes' scores or tie them.
        let w1 = tune_spmv_blocking(&rows, &[1]);
        let wall = tune_spmv_blocking(&rows, &[rows.len()]);
        assert!(choice.score_bytes <= w1.score_bytes);
        assert!(choice.score_bytes <= wall.score_bytes);
        assert!(choice.overhead >= 1.0);
    }

    #[test]
    fn uniform_rows_prefer_no_sorting() {
        let rows = vec![24usize; 256];
        let choice = tune_spmv_blocking(&rows, &default_spmv_windows(256));
        assert_eq!(choice.sort_window, 1, "{choice:?}");
        assert!((choice.overhead - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cubic_domain_prefers_balanced_grids_at_scale() {
        // At 8 ranks a slab ties the cube on bytes (undecomposed axes
        // ship no surface) and wins on phase latency; at 64 ranks the
        // surface-to-volume argument takes over and the balanced cube
        // must win outright.
        let net = NetModel::default();
        let c = tune_stencil_decomposition((256, 256, 256), 64, 1, &net);
        assert_eq!(c.ranks, (4, 4, 4), "{c:?}");
        assert!(c.halo_s > 0.0);
        let slab = HaloSpec::new((256, 256, 256), (1, 8, 8), 1);
        assert!(net.halo_exchange(&slab) > c.halo_s);
    }

    #[test]
    fn radius_rules_out_thin_slabs() {
        let net = NetModel::default();
        // 8 ranks over a 16-deep axis at radius 4: slicing any axis 8
        // ways leaves 2-deep blocks, so the only admissible grids split
        // at most 4× per axis.
        let c = tune_stencil_decomposition((16, 16, 16), 8, 4, &net);
        assert!(c.ranks.0 <= 4 && c.ranks.1 <= 4 && c.ranks.2 <= 4, "{c:?}");
    }

    #[test]
    fn search_is_deterministic() {
        let rows = skewed_rows();
        let a = tune_spmv_blocking(&rows, &default_spmv_windows(rows.len()));
        let b = tune_spmv_blocking(&rows, &default_spmv_windows(rows.len()));
        assert_eq!(a, b);
        let net = NetModel::default();
        assert_eq!(
            tune_stencil_decomposition((96, 64, 48), 12, 2, &net),
            tune_stencil_decomposition((96, 64, 48), 12, 2, &net)
        );
    }
}
