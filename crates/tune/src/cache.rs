//! Content-addressed tuning cache — a client of the shared
//! [`phi_serve::ResultStore`].
//!
//! A tuning result is stored under an FNV-1a key over the machine
//! fingerprint, the search-space signature, the seed and the tuner
//! version — the same content-addressing scheme `phi-faults` uses for
//! replay fingerprints. The framing (header line, hex-bit `f64` text,
//! `end <fnv>` integrity trailer, `tune-<key>.txt` file naming) now
//! lives in `phi-serve`'s generic store; this module contributes only
//! the [`TuneOutcome`] field layout via a [`Record`] implementation.
//! The on-disk bytes are **identical** to the pre-store v2 format, so
//! cache directories written before the migration stay readable, and
//! two runs with the same key still produce byte-identical files
//! (wall time and the cache-hit flag are deliberately excluded).

use crate::search::{ScoredCandidate, TuneOutcome, TunedConfig};
use crate::space::{Candidate, MachineConfig, TuneSpace};
use crate::Fnv;
use phi_fabric::BcastScheme;
use phi_hpl::hybrid::{Lookahead, WorkDivision};
use phi_hpl::GigaflopsReport;
use phi_serve::store::{serialize_record, Record, ResultStore};
use std::io;
use std::path::{Path, PathBuf};

/// Why a cache record could not be read. This *is* the shared store's
/// error: `Io` is the environment's fault (permissions, disk);
/// `Corrupt` means the file exists but its bytes are not a valid
/// record — truncated write, bit flip, wrong format. Callers treat
/// `Corrupt` as "recompute and overwrite", never as a panic.
pub use phi_serve::store::StoreReadError as CacheReadError;

/// Bumped whenever the search or serialization changes meaning, so old
/// cache entries can never be mistaken for current ones. v2 added the
/// `end <fnv>` integrity trailer.
const TUNER_VERSION: u64 = 2;

/// The content-addressed cache key of a tuning run.
pub fn cache_key(machine: &MachineConfig, space: &TuneSpace, seed: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(TUNER_VERSION);
    h.write_u64(machine.fingerprint());
    h.write_u64(space.signature());
    h.write_u64(seed);
    h.finish()
}

/// A directory of tuning results, one file per cache key. Since the
/// store migration this is a thin veneer over [`ResultStore`]: a tune
/// cache directory is a result-store directory whose `tune` namespace
/// holds [`TuneOutcome`] records, and it can be shared with
/// `phi-serve`'s campaign service without collision.
#[derive(Clone, Debug)]
pub struct TuneCache {
    store: ResultStore,
}

impl TuneCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(Self {
            store: ResultStore::open(dir)?,
        })
    }

    /// Wraps an existing store handle (e.g. the campaign service's),
    /// so tuning results and campaign outcomes share one directory.
    pub fn with_store(store: ResultStore) -> Self {
        Self { store }
    }

    /// The file a key is stored under.
    pub fn path(&self, key: u64) -> PathBuf {
        self.store.record_path::<TuneOutcome>(key)
    }

    /// Loads the outcome stored under `key`, if any. A corrupt or
    /// truncated file counts as a miss, not an error — the tuner simply
    /// re-runs and overwrites it.
    pub fn load(&self, key: u64) -> io::Result<Option<TuneOutcome>> {
        self.store.load::<TuneOutcome>(key)
    }

    /// Like [`load`](Self::load), but a damaged file surfaces as a
    /// typed [`CacheReadError::Corrupt`] instead of a silent miss, so
    /// callers can log or count the fallback. Never panics on truncated,
    /// bit-flipped or empty files.
    pub fn load_checked(&self, key: u64) -> Result<Option<TuneOutcome>, CacheReadError> {
        self.store.load_checked::<TuneOutcome>(key)
    }

    /// Stores an outcome under its own fingerprint.
    pub fn store(&self, out: &TuneOutcome) -> io::Result<()> {
        self.store.put(out.fingerprint, out)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// The underlying shared store.
    pub fn result_store(&self) -> &ResultStore {
        &self.store
    }
}

fn la_code(la: Lookahead) -> u8 {
    match la {
        Lookahead::None => 0,
        Lookahead::Basic => 1,
        Lookahead::Pipelined => 2,
    }
}

fn bc_code(b: BcastScheme) -> u8 {
    match b {
        BcastScheme::Ring => 0,
        BcastScheme::TwoRing => 1,
        BcastScheme::Binomial => 2,
    }
}

fn cand_line(c: &Candidate) -> String {
    let div = match c.division {
        WorkDivision::Dynamic => "dyn".to_string(),
        WorkDivision::Static { card_fraction } => format!("st:{:016x}", card_fraction.to_bits()),
    };
    format!(
        "nb={} la={} div={div} bc={} grid={}x{}",
        c.nb,
        la_code(c.lookahead),
        bc_code(c.bcast),
        c.grid.0,
        c.grid.1
    )
}

fn score_line(r: &GigaflopsReport) -> String {
    format!(
        "time={:016x} peak={:016x}",
        r.time_s.to_bits(),
        r.peak_gflops.to_bits()
    )
}

fn field<'a>(tokens: &'a [&str], name: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(name)?.strip_prefix('='))
}

fn parse_cand(tokens: &[&str]) -> Option<Candidate> {
    let nb: usize = field(tokens, "nb")?.parse().ok()?;
    let lookahead = match field(tokens, "la")? {
        "0" => Lookahead::None,
        "1" => Lookahead::Basic,
        "2" => Lookahead::Pipelined,
        _ => return None,
    };
    let division = match field(tokens, "div")? {
        "dyn" => WorkDivision::Dynamic,
        st => WorkDivision::Static {
            card_fraction: f64::from_bits(u64::from_str_radix(st.strip_prefix("st:")?, 16).ok()?),
        },
    };
    let bcast = match field(tokens, "bc")? {
        "0" => BcastScheme::Ring,
        "1" => BcastScheme::TwoRing,
        "2" => BcastScheme::Binomial,
        _ => return None,
    };
    let (p, q) = field(tokens, "grid")?.split_once('x')?;
    Some(Candidate {
        nb,
        lookahead,
        division,
        bcast,
        grid: (p.parse().ok()?, q.parse().ok()?),
    })
}

fn parse_score(tokens: &[&str], n: usize) -> Option<GigaflopsReport> {
    let time = f64::from_bits(u64::from_str_radix(field(tokens, "time")?, 16).ok()?);
    let peak = f64::from_bits(u64::from_str_radix(field(tokens, "peak")?, 16).ok()?);
    if time <= 0.0 || time.is_nan() {
        return None;
    }
    Some(GigaflopsReport::new(n, time, peak))
}

impl Record for TuneOutcome {
    const NAMESPACE: &'static str = "tune";
    const HEADER: &'static str = "phi-tune cache v2";

    fn write_fields(&self, s: &mut String) {
        let m = &self.machine;
        s.push_str(&format!("key {:016x}\n", self.fingerprint));
        s.push_str(&format!(
            "machine nodes={} cards={} mem={:016x} n={}\n",
            m.nodes,
            m.cards_per_node,
            m.host_mem_gib.to_bits(),
            m.n
        ));
        s.push_str(&format!("evaluated {}\n", self.candidates_evaluated));
        s.push_str(&format!("baseline {}\n", cand_line(&self.baseline)));
        s.push_str(&format!(
            "baseline-score {}\n",
            score_line(&self.baseline_report)
        ));
        s.push_str(&format!("tuned {}\n", cand_line(&self.tuned.candidate())));
        s.push_str(&format!("tuned-score {}\n", score_line(&self.tuned_report)));
        s.push_str(&format!("table {}\n", self.table.len()));
        for sc in &self.table {
            s.push_str(&format!(
                "row {} {}\n",
                cand_line(&sc.candidate),
                score_line(&sc.report)
            ));
        }
    }

    fn parse_fields(fields: &str) -> Option<Self> {
        let mut lines = fields.lines();
        let key = u64::from_str_radix(lines.next()?.strip_prefix("key ")?, 16).ok()?;
        let mtoks: Vec<&str> = lines.next()?.strip_prefix("machine ")?.split(' ').collect();
        let machine = MachineConfig {
            nodes: field(&mtoks, "nodes")?.parse().ok()?,
            cards_per_node: field(&mtoks, "cards")?.parse().ok()?,
            host_mem_gib: f64::from_bits(u64::from_str_radix(field(&mtoks, "mem")?, 16).ok()?),
            n: field(&mtoks, "n")?.parse().ok()?,
        };
        let evaluated: usize = lines.next()?.strip_prefix("evaluated ")?.parse().ok()?;
        let btoks: Vec<&str> = lines
            .next()?
            .strip_prefix("baseline ")?
            .split(' ')
            .collect();
        let baseline = parse_cand(&btoks)?;
        let bstoks: Vec<&str> = lines
            .next()?
            .strip_prefix("baseline-score ")?
            .split(' ')
            .collect();
        let baseline_report = parse_score(&bstoks, machine.n)?;
        let ttoks: Vec<&str> = lines.next()?.strip_prefix("tuned ")?.split(' ').collect();
        let tuned = TunedConfig::from_candidate(machine.n, &parse_cand(&ttoks)?);
        let tstoks: Vec<&str> = lines
            .next()?
            .strip_prefix("tuned-score ")?
            .split(' ')
            .collect();
        let tuned_report = parse_score(&tstoks, machine.n)?;
        let nrows: usize = lines.next()?.strip_prefix("table ")?.parse().ok()?;
        let mut table = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let toks: Vec<&str> = lines.next()?.strip_prefix("row ")?.split(' ').collect();
            table.push(ScoredCandidate {
                candidate: parse_cand(&toks)?,
                report: parse_score(&toks, machine.n)?,
            });
        }
        Some(TuneOutcome {
            fingerprint: key,
            machine,
            tuned,
            tuned_report,
            baseline,
            baseline_report,
            candidates_evaluated: evaluated,
            table,
            cache_hit: false,
            wall_time_s: 0.0,
        })
    }
}

/// The deterministic byte serialization of an outcome (wall time and
/// the cache-hit flag excluded). The final `end <fnv>` line is an
/// FNV-1a over every preceding byte, so truncations and bit flips are
/// detectably corrupt rather than silently parseable.
pub fn serialize(out: &TuneOutcome) -> String {
    serialize_record(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{tune, tune_cached, TuneOptions};
    use phi_serve::store::parse_record;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("phi-tune-test-{}-{tag}", std::process::id()))
    }

    fn small_machine() -> MachineConfig {
        MachineConfig {
            nodes: 2,
            cards_per_node: 1,
            host_mem_gib: 64.0,
            n: 90_000,
        }
    }

    #[test]
    fn cache_determinism_same_seed_identical_bytes() {
        // Satellite gate: two runs with the same seed and machine
        // fingerprint produce identical TunedConfig and identical cache
        // bytes; a changed fingerprint misses the cache.
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let opts = TuneOptions {
            coarse_only: true,
            ..TuneOptions::default()
        };
        let a = tune(&m, &space, &opts);
        let b = tune(&m, &space, &opts);
        assert_eq!(a.tuned, b.tuned);
        assert_eq!(serialize(&a).as_bytes(), serialize(&b).as_bytes());

        // A different machine fingerprint keys differently.
        let other = MachineConfig { n: 60_000, ..m };
        assert_ne!(
            cache_key(&m, &space, opts.seed),
            cache_key(&other, &TuneSpace::coarse(&other), opts.seed)
        );
        // A different seed keys differently too.
        assert_ne!(
            cache_key(&m, &space, opts.seed),
            cache_key(&m, &space, opts.seed + 1)
        );
    }

    #[test]
    fn second_run_is_a_pure_cache_hit() {
        let dir = tmp_dir("hit");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TuneCache::open(&dir).unwrap();
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let opts = TuneOptions {
            coarse_only: true,
            ..TuneOptions::default()
        };
        let first = tune_cached(&m, &space, &opts, &cache).unwrap();
        assert!(!first.cache_hit);
        let second = tune_cached(&m, &space, &opts, &cache).unwrap();
        assert!(second.cache_hit, "second run must be served from cache");
        assert_eq!(first.tuned, second.tuned);
        assert_eq!(
            first.tuned_report.time_s.to_bits(),
            second.tuned_report.time_s.to_bits()
        );
        assert_eq!(first.candidates_evaluated, second.candidates_evaluated);
        // The file on disk round-trips the serialization byte-exactly.
        let bytes = std::fs::read(cache.path(first.fingerprint)).unwrap();
        assert_eq!(bytes, serialize(&first).into_bytes());

        // A changed fingerprint (different machine) misses.
        let other = MachineConfig { n: 60_000, ..m };
        let other_space = TuneSpace::coarse(&other);
        let miss = tune_cached(&other, &other_space, &opts, &cache).unwrap();
        assert!(!miss.cache_hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serialization_roundtrips_bit_exactly() {
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let opts = TuneOptions {
            coarse_only: true,
            seed: 42,
            ..TuneOptions::default()
        };
        let out = tune(&m, &space, &opts);
        let text = serialize(&out);
        let back: TuneOutcome = parse_record(&text).expect("own serialization parses");
        assert_eq!(back.fingerprint, out.fingerprint);
        assert_eq!(back.machine, out.machine);
        assert_eq!(back.tuned, out.tuned);
        assert_eq!(
            back.tuned_report.time_s.to_bits(),
            out.tuned_report.time_s.to_bits()
        );
        assert_eq!(
            back.tuned_report.gflops.to_bits(),
            out.tuned_report.gflops.to_bits()
        );
        assert_eq!(
            back.baseline_report.time_s.to_bits(),
            out.baseline_report.time_s.to_bits()
        );
        assert_eq!(back.table.len(), out.table.len());
        for (x, y) in back.table.iter().zip(&out.table) {
            assert_eq!(x.candidate, y.candidate);
            assert_eq!(x.report.time_s.to_bits(), y.report.time_s.to_bits());
        }
        // Re-serializing the parsed outcome is byte-identical.
        assert_eq!(serialize(&back).as_bytes(), text.as_bytes());
    }

    #[test]
    fn legacy_v2_cache_files_stay_readable_through_the_shared_store() {
        // Migration gate: a cache file written by the pre-`ResultStore`
        // code must load unchanged. The v2 layout is reconstructed here
        // literally — header, field lines, FNV trailer, `tune-<key>.txt`
        // naming — independent of the production serializer, so a
        // framing drift in either layer fails this test.
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let opts = TuneOptions {
            coarse_only: true,
            ..TuneOptions::default()
        };
        let out = tune(&m, &space, &opts);

        let mut legacy = String::new();
        legacy.push_str("phi-tune cache v2\n");
        legacy.push_str(&format!("key {:016x}\n", out.fingerprint));
        legacy.push_str(&format!(
            "machine nodes={} cards={} mem={:016x} n={}\n",
            m.nodes,
            m.cards_per_node,
            m.host_mem_gib.to_bits(),
            m.n
        ));
        legacy.push_str(&format!("evaluated {}\n", out.candidates_evaluated));
        legacy.push_str(&format!("baseline {}\n", cand_line(&out.baseline)));
        legacy.push_str(&format!(
            "baseline-score {}\n",
            score_line(&out.baseline_report)
        ));
        legacy.push_str(&format!("tuned {}\n", cand_line(&out.tuned.candidate())));
        legacy.push_str(&format!("tuned-score {}\n", score_line(&out.tuned_report)));
        legacy.push_str(&format!("table {}\n", out.table.len()));
        for sc in &out.table {
            legacy.push_str(&format!(
                "row {} {}\n",
                cand_line(&sc.candidate),
                score_line(&sc.report)
            ));
        }
        let mut h = Fnv::new();
        h.write(legacy.as_bytes());
        legacy.push_str(&format!("end {:016x}\n", h.finish()));

        // The migrated serializer still emits exactly the legacy bytes.
        assert_eq!(serialize(&out), legacy, "on-disk format drifted from v2");

        // And a legacy file dropped into a cache directory is a hit.
        let dir = tmp_dir("legacy");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TuneCache::open(&dir).unwrap();
        let legacy_path = dir.join(format!("tune-{:016x}.txt", out.fingerprint));
        std::fs::write(&legacy_path, &legacy).unwrap();
        assert_eq!(cache.path(out.fingerprint), legacy_path);
        let loaded = cache
            .load(out.fingerprint)
            .unwrap()
            .expect("legacy record loads");
        assert_eq!(loaded.tuned, out.tuned);
        assert_eq!(loaded.fingerprint, out.fingerprint);
        let hit = tune_cached(&m, &space, &opts, &cache).unwrap();
        assert!(hit.cache_hit, "legacy file must serve as a cache hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_file_is_a_miss_not_an_error() {
        let dir = tmp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TuneCache::open(&dir).unwrap();
        std::fs::write(cache.path(0xDEAD), "not a cache file").unwrap();
        assert!(cache.load(0xDEAD).unwrap().is_none());
        assert!(cache.load(0xBEEF).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_cache_files_surface_typed_errors_and_never_panic() {
        let dir = tmp_dir("damaged");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TuneCache::open(&dir).unwrap();
        let m = small_machine();
        let space = TuneSpace::coarse(&m);
        let opts = TuneOptions {
            coarse_only: true,
            ..TuneOptions::default()
        };
        let good = tune(&m, &space, &opts);
        let bytes = serialize(&good).into_bytes();
        let key = good.fingerprint;

        // Empty file.
        std::fs::write(cache.path(key), b"").unwrap();
        match cache.load_checked(key) {
            Err(CacheReadError::Corrupt { reason, .. }) => assert_eq!(reason, "empty file"),
            other => panic!("expected Corrupt(empty), got {other:?}"),
        }

        // Truncations at every prefix length must parse-fail or parse,
        // never panic (the full record is the only valid prefix).
        for cut in (0..bytes.len()).step_by(37) {
            std::fs::write(cache.path(key), &bytes[..cut]).unwrap();
            assert!(
                cache.load_checked(key).unwrap_or(None).is_none(),
                "truncation at {cut} produced a record"
            );
        }

        // A single bit flip anywhere — header, payload or trailer — is
        // caught by the integrity trailer, never panics, never yields a
        // silently altered record.
        for pos in (0..bytes.len()).step_by(11) {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x10;
            std::fs::write(cache.path(key), &flipped).unwrap();
            match cache.load_checked(key) {
                Err(CacheReadError::Corrupt { .. }) => {}
                other => panic!("bit flip at {pos} not caught: {other:?}"),
            }
        }

        // The lenient `load` maps every Corrupt to a miss.
        std::fs::write(cache.path(key), "phi-tune cache v2\ngarbage").unwrap();
        assert!(cache.load(key).unwrap().is_none());

        // And `tune_cached` recovers: recompute, overwrite, serve hits.
        let recomputed = tune_cached(&m, &space, &opts, &cache).unwrap();
        assert!(!recomputed.cache_hit);
        assert_eq!(recomputed.tuned, good.tuned);
        assert_eq!(
            std::fs::read(cache.path(key)).unwrap(),
            serialize(&recomputed).into_bytes(),
            "bad bytes must be overwritten with a valid record"
        );
        assert!(tune_cached(&m, &space, &opts, &cache).unwrap().cache_hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn post_recovery_retune_never_regresses_baseline() {
        // After a host death on the paper's 100-node system the
        // survivors re-tune for the 99-rank fallback machine; the tuned
        // configuration must still beat (or match) the untuned baseline.
        let lost_one = MachineConfig {
            nodes: 99,
            ..MachineConfig::paper_cluster_100()
        };
        let space = TuneSpace::coarse(&lost_one);
        let opts = TuneOptions {
            coarse_only: true,
            ..TuneOptions::default()
        };
        let out = tune(&lost_one, &space, &opts);
        assert!(
            out.tuned_report.time_s <= out.baseline_report.time_s,
            "re-tune regressed: {} s vs baseline {} s",
            out.tuned_report.time_s,
            out.baseline_report.time_s
        );
        assert!(out.tuned_report.gflops >= out.baseline_report.gflops);
    }
}
