//! The static↔dynamic lint gate behind `cargo run -p phi-bench --bin
//! lint` (and the CI step of the same name).
//!
//! Three obligations, mirroring `phi-lint`'s own gate tests but packaged
//! as a runnable report with a process exit code:
//!
//! 1. both paper kernels analyze with **zero errors**;
//! 2. the analyzer's static cycle lower bound agrees with the
//!    cycle-accurate emulator within [`TOLERANCE`] for both kernels;
//! 3. every diagnostic kind fires on its deliberately-broken fixture.

use crate::format::TextTable;
use phi_blas::gemm::MicroKernelKind;
use phi_knc::kernels::{build_basic_kernel, kernel_mr, run_tile_product, NR};
use phi_knc::PipelineConfig;
use phi_lint::Severity;
use phi_matrix::HplRng;

/// Maximum allowed relative gap between the static cycle bound and the
/// emulator's steady-state measurement.
pub const TOLERANCE: f64 = 0.05;
/// Inner-loop depth used for the emulated steady-state measurement.
const DEPTH: usize = 300;

/// Gate verdict for one paper kernel.
#[derive(Clone, Debug)]
pub struct KernelGateRow {
    /// Kernel label.
    pub kernel: &'static str,
    /// FMAs per iteration.
    pub fmadds: usize,
    /// Vector slots per iteration.
    pub u_slots: usize,
    /// Static cycle lower bound per aggregate iteration.
    pub static_cycles: f64,
    /// Emulator-measured steady-state cycles per aggregate iteration.
    pub measured_cycles: f64,
    /// Error-severity findings (must be 0).
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Rendered analyzer report.
    pub report: String,
}

impl KernelGateRow {
    /// Relative gap between prediction and measurement.
    pub fn rel_err(&self) -> f64 {
        (self.measured_cycles - self.static_cycles).abs() / self.measured_cycles
    }

    /// True when this kernel satisfies the gate.
    pub fn passed(&self) -> bool {
        self.errors == 0 && self.rel_err() < TOLERANCE
    }
}

/// Gate verdict for one broken fixture.
#[derive(Clone, Debug)]
pub struct FixtureGateRow {
    /// Fixture scenario name.
    pub name: &'static str,
    /// Diagnostic kind it must trip.
    pub expect: &'static str,
    /// Whether the analyzer reported that kind.
    pub fired: bool,
}

/// Complete gate outcome.
#[derive(Clone, Debug)]
pub struct LintGate {
    /// One row per paper kernel.
    pub kernels: Vec<KernelGateRow>,
    /// One row per diagnostic fixture.
    pub fixtures: Vec<FixtureGateRow>,
}

fn measure_kernel(kind: MicroKernelKind) -> f64 {
    let mr = kernel_mr(kind);
    let mut rng = HplRng::new(match kind {
        MicroKernelKind::Kernel1 => 11,
        MicroKernelKind::Kernel2 => 12,
    });
    let a: Vec<f64> = (0..mr * DEPTH).map(|_| rng.next_value()).collect();
    let bs = std::array::from_fn(|_| (0..DEPTH * NR).map(|_| rng.next_value()).collect());
    run_tile_product(kind, DEPTH, &a, &bs, PipelineConfig::default()).steady_cycles_per_iter
}

/// Runs the full gate: analyzer + emulator cross-check + fixtures.
pub fn run() -> LintGate {
    let kernels = [
        (MicroKernelKind::Kernel1, "Basic Kernel 1"),
        (MicroKernelKind::Kernel2, "Basic Kernel 2"),
    ]
    .into_iter()
    .map(|(kind, kernel)| {
        let (body, epi) = build_basic_kernel(kind);
        let report = phi_lint::analyze(&body, &epi);
        KernelGateRow {
            kernel,
            fmadds: report.model.fmadds,
            u_slots: report.model.u_slots,
            static_cycles: report.model.cycles_per_iter_lower_bound(),
            measured_cycles: measure_kernel(kind),
            errors: report.errors().count(),
            warnings: report
                .diags
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .count(),
            report: report.render(),
        }
    })
    .collect();

    let fixtures = phi_lint::fixtures::all()
        .into_iter()
        .map(|f| {
            let report = phi_lint::analyze(&f.body, &f.epilogue);
            FixtureGateRow {
                name: f.name,
                expect: f.expect,
                fired: report.diags.iter().any(|d| d.kind.name() == f.expect),
            }
        })
        .collect();

    LintGate { kernels, fixtures }
}

impl LintGate {
    /// True when every kernel and fixture obligation holds.
    pub fn passed(&self) -> bool {
        self.kernels.iter().all(|k| k.passed()) && self.fixtures.iter().all(|f| f.fired)
    }

    /// Renders the gate report: verdict tables plus the per-kernel
    /// analyzer output (the Kernel 1 vs Kernel 2 comparison).
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "kernel",
            "fmadd/slots",
            "theoretical",
            "static cyc/iter",
            "emulated",
            "gap",
            "errors",
            "warnings",
        ]);
        for k in &self.kernels {
            t.row([
                k.kernel.to_string(),
                format!("{}/{}", k.fmadds, k.u_slots),
                format!("{:.1}%", 100.0 * k.fmadds as f64 / k.u_slots as f64),
                format!("{:.2}", k.static_cycles),
                format!("{:.2}", k.measured_cycles),
                format!("{:.2}%", 100.0 * k.rel_err()),
                k.errors.to_string(),
                k.warnings.to_string(),
            ]);
        }
        let mut f = TextTable::new(["fixture", "expected lint", "fired"]);
        for row in &self.fixtures {
            f.row([row.name, row.expect, if row.fired { "yes" } else { "NO" }]);
        }
        let mut out = format!(
            "static\u{2194}dynamic consistency gate (tolerance {:.0}%)\n{}\n{}\n",
            100.0 * TOLERANCE,
            t.render(),
            f.render()
        );
        for k in &self.kernels {
            out.push_str(&format!("{} analyzer report:\n{}\n", k.kernel, k.report));
        }
        out.push_str(if self.passed() {
            "gate: PASS\n"
        } else {
            "gate: FAIL\n"
        });
        out
    }
}

impl LintGate {
    /// Renders the machine-readable report the CI job uploads as an
    /// artifact: kernel verdicts (with stable `K###`-coded finding
    /// counts) plus the fixture self-test.
    pub fn render_json(&self) -> String {
        use phi_lint::diag::json_escape;
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| {
                format!(
                    "{{\"kernel\":\"{}\",\"fmadds\":{},\"u_slots\":{},\"static_cycles\":{:.6},\
                     \"measured_cycles\":{:.6},\"rel_err\":{:.6},\"errors\":{},\"warnings\":{},\
                     \"passed\":{}}}",
                    json_escape(k.kernel),
                    k.fmadds,
                    k.u_slots,
                    k.static_cycles,
                    k.measured_cycles,
                    k.rel_err(),
                    k.errors,
                    k.warnings,
                    k.passed()
                )
            })
            .collect();
        let fixtures: Vec<String> = self
            .fixtures
            .iter()
            .map(|f| {
                format!(
                    "{{\"name\":\"{}\",\"expect\":\"{}\",\"fired\":{}}}",
                    json_escape(f.name),
                    f.expect,
                    f.fired
                )
            })
            .collect();
        format!(
            "{{\"gate\":\"lint\",\"passed\":{},\"tolerance\":{TOLERANCE},\"kernels\":[{}],\
             \"fixtures\":[{}]}}\n",
            self.passed(),
            kernels.join(","),
            fixtures.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_and_renders() {
        let gate = run();
        assert!(gate.passed(), "{}", gate.render());
        let text = gate.render();
        assert!(text.contains("31/32") && text.contains("30/32"), "{text}");
        assert!(text.contains("gate: PASS"), "{text}");
        assert_eq!(gate.fixtures.len(), phi_lint::LintKind::all_names().len());
        let j = gate.render_json();
        assert!(j.starts_with("{\"gate\":\"lint\",\"passed\":true"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }
}
