//! Autotuner driver: runs `phi-tune` on the paper's two reference
//! machines (the Table II single node and the Table III 100-node
//! cluster) and emits `BENCH_tune.json` plus a per-candidate score
//! table. I/O failures surface as [`TuneBenchError`] values, never
//! panics.

use crate::TextTable;
use phi_tune::{tune_cached, MachineConfig, TuneCache, TuneOptions, TuneOutcome, TuneSpace};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A failure in the tune driver, carried as a value so the binary can
/// exit with a message instead of a panic backtrace.
#[derive(Debug)]
pub enum TuneBenchError {
    /// An unrecognized command-line argument.
    BadArg(String),
    /// Filesystem I/O failed (cache directory or JSON output).
    Io {
        /// What the driver was doing when the error occurred.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for TuneBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneBenchError::BadArg(a) => {
                write!(f, "unrecognized argument `{a}` (expected --smoke, --out <path> or --cache-dir <path>)")
            }
            TuneBenchError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for TuneBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneBenchError::BadArg(_) => None,
            TuneBenchError::Io { source, .. } => Some(source),
        }
    }
}

fn io_ctx(context: impl Into<String>) -> impl FnOnce(io::Error) -> TuneBenchError {
    let context = context.into();
    move |source| TuneBenchError::Io { context, source }
}

/// One tuned machine: its label and the full tuning outcome.
#[derive(Clone, Debug)]
pub struct TuneRun {
    /// Machine label used in reports and JSON ("single-node", …).
    pub label: &'static str,
    /// The tuner's outcome on that machine.
    pub outcome: TuneOutcome,
}

/// Runs the tuner on both paper reference machines. `smoke` restricts
/// the search to the coarse grid (the CI-friendly mode); the cache
/// directory makes a second invocation a pure cache hit.
pub fn run_tuner(smoke: bool, cache_dir: &Path) -> Result<Vec<TuneRun>, TuneBenchError> {
    let cache = TuneCache::open(cache_dir).map_err(io_ctx(format!(
        "opening tune cache {}",
        cache_dir.display()
    )))?;
    let mut runs = Vec::new();
    for (label, machine, sample_every) in [
        ("single-node", MachineConfig::paper_single_node(), 16),
        ("cluster-100", MachineConfig::paper_cluster_100(), 64),
    ] {
        let space = TuneSpace::coarse(&machine);
        let opts = TuneOptions {
            coarse_only: smoke,
            sample_every,
            ..TuneOptions::default()
        };
        let outcome = tune_cached(&machine, &space, &opts, &cache)
            .map_err(io_ctx(format!("tuning {label}")))?;
        runs.push(TuneRun { label, outcome });
    }
    Ok(runs)
}

fn json_f64(x: f64) -> String {
    // JSON has no NaN/Inf; the tuner never produces them, but guard
    // anyway so the artifact always parses.
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// Renders the runs as the `BENCH_tune.json` artifact: per machine the
/// config fingerprint, candidate count, best and baseline GFLOPS and
/// wall time.
pub fn bench_json(runs: &[TuneRun]) -> String {
    let mut s = String::from("{\n  \"schema\": \"phi-bench/tune/v1\",\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let o = &r.outcome;
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"fingerprint\": \"{:#018x}\", \"candidates\": {}, \
             \"best_gflops\": {}, \"baseline_gflops\": {}, \"wall_time_s\": {}, \
             \"cache_hit\": {}, \"nb\": {}, \"grid\": [{}, {}]}}{}\n",
            r.label,
            o.fingerprint,
            o.candidates_evaluated,
            json_f64(o.tuned_report.gflops),
            json_f64(o.baseline_report.gflops),
            json_f64(o.wall_time_s),
            o.cache_hit,
            o.tuned.nb,
            o.tuned.grid.0,
            o.tuned.grid.1,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes the JSON artifact to `path`.
pub fn write_bench_json(path: &Path, runs: &[TuneRun]) -> Result<(), TuneBenchError> {
    std::fs::write(path, bench_json(runs)).map_err(io_ctx(format!("writing {}", path.display())))
}

/// Renders the summary table plus each machine's per-candidate score
/// table.
pub fn render(runs: &[TuneRun]) -> String {
    let mut t = TextTable::new([
        "machine", "NB", "grid", "config", "GFLOPS", "baseline", "Δ", "cands", "cache", "wall(s)",
    ]);
    for r in runs {
        let o = &r.outcome;
        let c = o.tuned.candidate();
        t.row([
            r.label.to_string(),
            o.tuned.nb.to_string(),
            format!("{}x{}", o.tuned.grid.0, o.tuned.grid.1),
            c.describe(),
            format!("{:.0}", o.tuned_report.gflops),
            format!("{:.0}", o.baseline_report.gflops),
            format!(
                "{:+.2}%",
                100.0 * (o.tuned_report.gflops / o.baseline_report.gflops - 1.0)
            ),
            o.candidates_evaluated.to_string(),
            if o.cache_hit { "hit" } else { "miss" }.to_string(),
            format!("{:.2}", o.wall_time_s),
        ]);
    }
    let mut s = t.render();
    for r in runs {
        s.push_str(&format!("\n{} — top candidates:\n", r.label));
        let mut ct = TextTable::new(["#", "config", "GFLOPS", "vs best"]);
        let best = r.outcome.table.first().map(|sc| sc.report.gflops);
        for (i, sc) in r.outcome.table.iter().enumerate().take(8) {
            let rel = best.map_or(0.0, |b| 100.0 * (sc.report.gflops / b - 1.0));
            ct.row([
                (i + 1).to_string(),
                sc.candidate.describe(),
                format!("{:.0}", sc.report.gflops),
                format!("{rel:+.2}%"),
            ]);
        }
        s.push_str(&ct.render());
    }
    s
}

/// Parsed command line of the `tune` binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneArgs {
    /// Coarse grid only (CI smoke mode).
    pub smoke: bool,
    /// Where to write the JSON artifact.
    pub out: PathBuf,
    /// Tuning-cache directory.
    pub cache_dir: PathBuf,
}

impl Default for TuneArgs {
    fn default() -> Self {
        TuneArgs {
            smoke: false,
            out: PathBuf::from("BENCH_tune.json"),
            cache_dir: PathBuf::from("target/tune-cache"),
        }
    }
}

impl TuneArgs {
    /// Parses `--smoke`, `--out <path>` and `--cache-dir <path>`.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, TuneBenchError> {
        let mut out = TuneArgs::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => out.smoke = true,
                "--out" => match args.next() {
                    Some(p) => out.out = PathBuf::from(p),
                    None => return Err(TuneBenchError::BadArg(a)),
                },
                "--cache-dir" => match args.next() {
                    Some(p) => out.cache_dir = PathBuf::from(p),
                    None => return Err(TuneBenchError::BadArg(a)),
                },
                _ => return Err(TuneBenchError::BadArg(a)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_and_reject() {
        let ok = TuneArgs::parse(
            ["--smoke", "--out", "x.json", "--cache-dir", "c"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert!(ok.smoke);
        assert_eq!(ok.out, PathBuf::from("x.json"));
        assert_eq!(ok.cache_dir, PathBuf::from("c"));
        assert!(TuneArgs::parse(["--bogus".to_string()].into_iter()).is_err());
        assert!(TuneArgs::parse(["--out".to_string()].into_iter()).is_err());
    }

    #[test]
    fn smoke_run_emits_well_formed_json_and_caches() {
        let dir = std::env::temp_dir().join(format!("phi-bench-tune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let runs = run_tuner(true, &dir).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].label, "single-node");
        assert_eq!(runs[1].label, "cluster-100");
        for r in &runs {
            assert!(!r.outcome.cache_hit);
            assert!(r.outcome.tuned_report.gflops >= r.outcome.baseline_report.gflops);
        }
        let json = bench_json(&runs);
        assert!(json.contains("\"schema\": \"phi-bench/tune/v1\""));
        assert!(json.contains("\"label\": \"single-node\""));
        assert!(json.contains("\"label\": \"cluster-100\""));
        assert!(json.contains("\"fingerprint\": \"0x"));
        assert!(json.contains("\"best_gflops\""));
        assert!(json.contains("\"baseline_gflops\""));
        assert!(json.contains("\"wall_time_s\""));
        // Second invocation: pure cache hit, same tuned config.
        let again = run_tuner(true, &dir).unwrap();
        for (a, b) in runs.iter().zip(&again) {
            assert!(b.outcome.cache_hit, "{} must hit the cache", b.label);
            assert_eq!(a.outcome.tuned, b.outcome.tuned);
        }
        let text = render(&again);
        assert!(text.contains("hit"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
