//! The schedule-verification gate behind `cargo run -p phi-bench --bin
//! schedule-lint` (and the CI job of the same name).
//!
//! Four obligations, mirroring the kernel lint gate's shape but aimed
//! at the cluster side of the paper:
//!
//! 1. **Channel graphs** — every communication-grid regime the
//!    fault-tolerant simulators can route through (healthy grids,
//!    patch-remapped grids with accumulating dead ranks, wholesale
//!    fallback grids; hybrid and native flavours, every broadcast
//!    scheme, with and without lookahead strip-splitting) materializes
//!    to send/recv programs that verify deadlock-free under rendezvous
//!    semantics ([`phi_lint::schedule`]).
//! 2. **Ownership** — each regime's block-cyclic owner map proves
//!    exactly-once live coverage, and every patch transition conserves
//!    blocks against the closed form the simulators charge
//!    ([`phi_lint::ownership`]).
//! 3. **Determinism** — the simulator/fault crates scan clean of seed
//!    bypasses, hash-order iteration and unordered float reductions
//!    ([`phi_lint::determinism`]).
//! 4. **Self-test** — every schedule-family diagnostic kind fires on
//!    its deliberately broken fixture.

use crate::format::TextTable;
use crate::perfgate::GATE_SEED;
use phi_fabric::{BcastScheme, ProcessGrid, RemapStrategy, ScheduleBuilder, ScheduleShape};
use phi_faults::{FaultKind, FaultPlan};
use phi_hpl::hybrid::{recovery_regimes, FtPolicy};
use phi_hpl::native::{native_recovery_regimes, NativeClusterConfig};
use phi_hpl::HybridConfig;
use phi_lint::diag::json_escape;
use phi_lint::{determinism, ownership, schedule, OwnershipMap, SchedDiagnostic};
use std::path::Path;

/// Block grid of the ownership proofs: enough blocks that every process
/// coordinate of the largest grid owns trailing cells.
const NBLOCKS: usize = 12;
/// Block size of the ownership proofs (elements).
const NB: usize = 800;
/// Matrix order — deliberately not a multiple of [`NB`], so the clipped
/// final block row/column exercises the element-exact accounting.
const N: usize = NBLOCKS * NB - 160;
/// First unfactored block: the proofs run over a mid-factorization
/// trailing window, the state recovery actually remaps.
const FIRST: usize = 2;
/// Panel/swap byte sizes of the materialized schedules.
const PANEL_BYTES: u64 = 8 * (NB as u64) * (NB as u64);
const SWAP_BYTES: u64 = 8 * (NB as u64) * 64;

/// Verification tally for one communication-grid regime.
#[derive(Clone, Debug)]
pub struct ShapeRow {
    /// Which simulator family emitted the regime.
    pub flavour: &'static str,
    /// [`ScheduleShape::label`].
    pub label: String,
    /// Materialized schedules checked.
    pub schedules: usize,
    /// Send/recv operations proved across them.
    pub ops: usize,
    /// Trailing blocks covered by the ownership proof.
    pub blocks: usize,
    /// Findings against this regime (must be 0).
    pub findings: usize,
}

/// Self-test verdict for one broken fixture.
#[derive(Clone, Debug)]
pub struct SchedFixtureRow {
    /// Fixture scenario name.
    pub name: &'static str,
    /// Diagnostic kind it must trip.
    pub expect: &'static str,
    /// Whether the checker reported that kind.
    pub fired: bool,
}

/// Complete gate outcome.
#[derive(Clone, Debug)]
pub struct SchedLintGate {
    /// One row per distinct regime verified.
    pub shapes: Vec<ShapeRow>,
    /// One row per broken fixture.
    pub fixtures: Vec<SchedFixtureRow>,
    /// Source files covered by the determinism scan.
    pub files_scanned: usize,
    /// Every finding against the real tree (must be empty).
    pub findings: Vec<SchedDiagnostic>,
}

/// The fault plans whose recovery regimes the gate sweeps: nothing, a
/// seeded mixed campaign (what the `faults`/`fleet` bins replay), and a
/// deep correlated loss that blows any default death budget.
fn reference_plans(size: usize) -> Vec<FaultPlan> {
    let mut deep = FaultPlan::none();
    for k in 0..size.min(7) {
        deep = deep.with_event(
            10.0 * (k + 1) as f64,
            FaultKind::HostDeath {
                rank: (k * 5 + 3) % size,
            },
        );
    }
    vec![
        FaultPlan::none(),
        FaultPlan::campaign(GATE_SEED, 600.0, 8),
        deep,
    ]
}

/// Every distinct regime the reference sweep can enter, hybrid and
/// native, across grids × plans × remap policies.
fn reference_shapes() -> Vec<(&'static str, ScheduleShape)> {
    let mut out: Vec<(&'static str, ScheduleShape)> = Vec::new();
    let mut push = |flavour: &'static str, shape: ScheduleShape| {
        if !out.iter().any(|(f, s)| *f == flavour && *s == shape) {
            out.push((flavour, shape));
        }
    };
    for (p, q) in [(2usize, 2usize), (4, 8), (10, 10)] {
        let grid = ProcessGrid::new(p, q);
        let hybrid = HybridConfig::new(168_000, grid, 2);
        let policies = [
            FtPolicy::default(),
            FtPolicy::default().with_death_budget(1),
            FtPolicy::default().with_remap(RemapStrategy::Wholesale),
        ];
        for plan in reference_plans(grid.size()) {
            for policy in &policies {
                for shape in recovery_regimes(&hybrid, &plan, policy) {
                    push("hybrid", shape);
                }
            }
            let native = NativeClusterConfig::new(30_000, p, q);
            for shape in native_recovery_regimes(&native, &plan) {
                push("native", shape);
            }
        }
    }
    out
}

/// Materializes and checks every schedule variant of one regime:
/// all broadcast schemes × lookahead strip counts × corner roots.
/// Returns `(schedules, ops, findings)`.
fn verify_channels(shape: &ScheduleShape) -> (usize, usize, Vec<SchedDiagnostic>) {
    let b = ScheduleBuilder::for_shape(shape);
    let grid = shape.grid;
    let root_cols = if grid.q > 1 {
        vec![0, grid.q - 1]
    } else {
        vec![0]
    };
    let root_rows = if grid.p > 1 {
        vec![0, grid.p - 1]
    } else {
        vec![0]
    };
    let (mut schedules, mut ops) = (0usize, 0usize);
    let mut diags = Vec::new();
    for scheme in BcastScheme::ALL {
        for strips in [1usize, 4] {
            for &rc in &root_cols {
                for &rr in &root_rows {
                    let s = b.stage_schedule(scheme, rc, rr, PANEL_BYTES, SWAP_BYTES, strips);
                    schedules += 1;
                    ops += s.total_ops();
                    diags.extend(schedule::check(&s));
                }
            }
        }
    }
    (schedules, ops, diags)
}

/// Proves the regime's ownership story: exactly-once live coverage of
/// the trailing window, plus per-death conservation against
/// [`phi_fabric::PatchRemap::moved_trailing_elements`] for patched
/// regimes. Returns `(blocks_proved, findings)`.
fn verify_ownership(shape: &ScheduleShape) -> (usize, Vec<SchedDiagnostic>) {
    let grid = shape.grid;
    let label = shape.label();
    let mut diags = Vec::new();
    let trailing = (NBLOCKS - FIRST) * (NBLOCKS - FIRST);
    if shape.dead_ranks.is_empty() {
        // Healthy or wholesale-reshaped: the plain block-cyclic map
        // over the (possibly fallback) grid must cover exactly once.
        let map = OwnershipMap::block_cyclic(&grid, NBLOCKS);
        let live = vec![true; grid.size()];
        diags.extend(ownership::check_exactly_once(&map, FIRST, &live, &label));
        return (trailing, diags);
    }
    // Patched regime: replay the deaths in order. Conservation is
    // proved per death from a pristine map (the closed form prices each
    // rank's own block-cyclic share); coverage is proved on the
    // sequential map, where inherited blocks cascade to later patches.
    let pristine = OwnershipMap::block_cyclic(&grid, NBLOCKS);
    let mut map = pristine.clone();
    let mut live = vec![true; grid.size()];
    for &dead in &shape.dead_ranks {
        live[dead] = false;
        let survivors: Vec<usize> = (0..grid.size()).filter(|&r| live[r]).collect();
        let remap = grid.patch_remap(dead);
        let mut single = pristine.clone();
        single.apply_patch(dead, &survivors, FIRST);
        diags.extend(ownership::check_patch_conservation(
            &pristine, &single, &remap, FIRST, NB, N, &label,
        ));
        map.apply_patch(dead, &survivors, FIRST);
    }
    diags.extend(ownership::check_exactly_once(&map, FIRST, &live, &label));
    (trailing * (1 + shape.dead_ranks.len()), diags)
}

/// Runs the full gate. `root` is the workspace root the determinism
/// scan resolves [`determinism::SCAN_ROOTS`] against.
pub fn run(root: &Path) -> std::io::Result<SchedLintGate> {
    let mut shapes = Vec::new();
    let mut findings = Vec::new();
    for (flavour, shape) in reference_shapes() {
        let (schedules, ops, chan) = verify_channels(&shape);
        let (blocks, own) = verify_ownership(&shape);
        let row_findings = chan.len() + own.len();
        findings.extend(chan);
        findings.extend(own);
        shapes.push(ShapeRow {
            flavour,
            label: shape.label(),
            schedules,
            ops,
            blocks,
            findings: row_findings,
        });
    }

    let mut files_scanned = 0usize;
    for rel in determinism::SCAN_ROOTS {
        let dir = root.join(rel);
        let (files, diags) = determinism::scan_dir(&dir)?;
        files_scanned += files;
        findings.extend(diags);
    }

    let mut fixtures = Vec::new();
    for f in schedule::broken_fixtures() {
        let diags = schedule::check(&f.schedule);
        fixtures.push(SchedFixtureRow {
            name: f.name,
            expect: f.expect,
            fired: diags.iter().any(|d| d.kind.name() == f.expect),
        });
    }
    for f in ownership::broken_fixtures() {
        fixtures.push(SchedFixtureRow {
            name: f.name,
            expect: f.expect,
            fired: f.diags.iter().any(|d| d.kind.name() == f.expect),
        });
    }
    for f in determinism::broken_fixtures() {
        fixtures.push(SchedFixtureRow {
            name: f.name,
            expect: f.expect,
            fired: f.diags.iter().any(|d| d.kind.name() == f.expect),
        });
    }

    Ok(SchedLintGate {
        shapes,
        fixtures,
        files_scanned,
        findings,
    })
}

/// Total send/recv operations the reference sweep proves — the
/// `schedule_lint_throughput` perf-gate metric. A pure deterministic
/// count: it moves only when the sweep covers more (or fewer) regimes
/// and schedules, never with wall clock or machine.
pub fn reference_sweep_ops() -> f64 {
    reference_shapes()
        .iter()
        .map(|(_, shape)| verify_channels(shape).1)
        .sum::<usize>() as f64
}

impl SchedLintGate {
    /// True when every regime verifies clean and every fixture fires.
    pub fn passed(&self) -> bool {
        self.findings.is_empty() && self.fixtures.iter().all(|f| f.fired)
    }

    /// Total operations proved across all regimes.
    pub fn ops_verified(&self) -> usize {
        self.shapes.iter().map(|s| s.ops).sum()
    }

    /// Renders the gate report as tables plus any findings.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "flavour",
            "regime",
            "schedules",
            "ops",
            "blocks",
            "findings",
        ]);
        for s in &self.shapes {
            t.row([
                s.flavour.to_string(),
                s.label.clone(),
                s.schedules.to_string(),
                s.ops.to_string(),
                s.blocks.to_string(),
                s.findings.to_string(),
            ]);
        }
        let mut f = TextTable::new(["fixture", "expected lint", "fired"]);
        for row in &self.fixtures {
            f.row([row.name, row.expect, if row.fired { "yes" } else { "NO" }]);
        }
        let mut out = format!(
            "schedule verification gate ({} regimes, {} ops, {} source files scanned)\n{}\n{}\n",
            self.shapes.len(),
            self.ops_verified(),
            self.files_scanned,
            t.render(),
            f.render()
        );
        for d in &self.findings {
            out.push_str(&d.render());
        }
        out.push_str(if self.passed() {
            "gate: PASS\n"
        } else {
            "gate: FAIL\n"
        });
        out
    }

    /// Renders the machine-readable report the CI job uploads as an
    /// artifact: one stable JSON object, findings in
    /// [`SchedDiagnostic::render_json`] form.
    pub fn render_json(&self) -> String {
        let shapes: Vec<String> = self
            .shapes
            .iter()
            .map(|s| {
                format!(
                    "{{\"flavour\":\"{}\",\"regime\":\"{}\",\"schedules\":{},\"ops\":{},\
                     \"blocks\":{},\"findings\":{}}}",
                    s.flavour,
                    json_escape(&s.label),
                    s.schedules,
                    s.ops,
                    s.blocks,
                    s.findings
                )
            })
            .collect();
        let fixtures: Vec<String> = self
            .fixtures
            .iter()
            .map(|f| {
                format!(
                    "{{\"name\":\"{}\",\"expect\":\"{}\",\"fired\":{}}}",
                    json_escape(f.name),
                    f.expect,
                    f.fired
                )
            })
            .collect();
        let findings: Vec<String> = self.findings.iter().map(|d| d.render_json()).collect();
        format!(
            "{{\"gate\":\"schedule-lint\",\"passed\":{},\"regimes\":{},\"ops_verified\":{},\
             \"files_scanned\":{},\"shapes\":[{}],\"fixtures\":[{}],\"findings\":[{}]}}\n",
            self.passed(),
            self.shapes.len(),
            self.ops_verified(),
            self.files_scanned,
            shapes.join(","),
            fixtures.join(","),
            findings.join(",")
        )
    }
}

/// The workspace root this crate was compiled in — where the CI job and
/// the tests run the determinism scan.
pub fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_lint::SchedKind;

    #[test]
    fn gate_passes_on_the_real_tree_and_renders() {
        let gate = run(&workspace_root()).unwrap();
        assert!(gate.passed(), "{}", gate.render());
        assert!(
            gate.files_scanned > 20,
            "scan saw {} files",
            gate.files_scanned
        );
        // The sweep must cover healthy, patched and reshaped regimes of
        // both flavours.
        assert!(gate.shapes.iter().any(|s| s.flavour == "hybrid"));
        assert!(gate.shapes.iter().any(|s| s.flavour == "native"));
        assert!(gate.shapes.iter().any(|s| s.label.contains("dead")));
        assert!(gate.shapes.iter().any(|s| s.label.contains("reshaped")));
        // Every schedule-family diagnostic kind has a fixture, and all
        // fixtures fire.
        assert_eq!(gate.fixtures.len(), SchedKind::all_names().len());
        let text = gate.render();
        assert!(text.contains("gate: PASS"), "{text}");
    }

    #[test]
    fn sweep_ops_are_deterministic_and_match_the_gate() {
        let a = reference_sweep_ops();
        assert_eq!(a, reference_sweep_ops());
        let gate = run(&workspace_root()).unwrap();
        assert_eq!(gate.ops_verified() as f64, a);
        assert!(a > 10_000.0, "sweep shrank to {a} ops");
    }

    #[test]
    fn json_report_is_well_formed_enough_for_ci() {
        let gate = run(&workspace_root()).unwrap();
        let j = gate.render_json();
        assert!(
            j.starts_with("{\"gate\":\"schedule-lint\",\"passed\":true"),
            "{j}"
        );
        assert!(j.contains("\"fixtures\":["), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }
}
