//! Minimal fixed-width text tables for the regenerator binaries.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "ragged table row");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len() - 1));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["k", "eff"]);
        t.row(["120", "86.7"]);
        t.row(["300", "89.4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("eff"));
        assert!(lines[3].contains("89.4"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_row_rejected() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }
}
