//! Regenerates Table II (SGEMM/DGEMM efficiency vs k, M = N = 28,000).
fn main() {
    println!(
        "Table II — GEMM efficiency vs k\n{}",
        phi_bench::table2_render()
    );
}
