//! Fault campaign: degraded-vs-healthy hybrid Linpack under seeded,
//! replayable fault plans. Pass a hex or decimal seed to change the
//! random campaigns; the replay check must always print bit-identical.
//!
//! ```text
//! faults [SEED] [--single] [--cluster] [--remap patch|wholesale] \
//!        [--fleet-seeds N] [--scope mixed|rack|storm] [--out FILE]
//! ```
//!
//! By default both the single-node table and the Table III 100-node
//! cluster table are printed; `--single` / `--cluster` restrict to one.
//! `--remap` picks the host-death recovery remapping for the cluster
//! table (default `patch`, the locality-preserving strategy; the table
//! always carries one explicitly-wholesale row for comparison).
//! `--fleet-seeds N` appends an `N`-seed fleet availability summary
//! (see the `fleet` bin for the full campaign driver); `--scope` picks
//! its failure-mode family. `--out FILE` additionally writes the report
//! to `FILE` (the CI smoke job uploads it as an artifact).

use std::fmt;
use std::process::ExitCode;

/// A malformed seed argument, carried as a value instead of a panic.
#[derive(Debug)]
struct SeedError(String);

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed must be a u64 (decimal or 0x-hex), got `{}`",
            self.0
        )
    }
}

impl std::error::Error for SeedError {}

fn parse_seed(s: &str) -> Result<u64, SeedError> {
    let s = s.trim();
    let hex = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"));
    match hex {
        Some(h) => u64::from_str_radix(h, 16),
        None => s.parse(),
    }
    .map_err(|_| SeedError(s.to_string()))
}

fn main() -> ExitCode {
    let mut seed = 0xFA_0175u64;
    let mut single = false;
    let mut cluster = false;
    let mut remap = phi_fabric::RemapStrategy::default();
    let mut fleet_seeds: Option<usize> = None;
    let mut scope = phi_faults::CampaignScope::default();
    let mut out_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--single" => single = true,
            "--cluster" => cluster = true,
            "--remap" => match args.next().as_deref() {
                Some("patch") => remap = phi_fabric::RemapStrategy::Patch,
                Some("wholesale") => remap = phi_fabric::RemapStrategy::Wholesale,
                other => {
                    eprintln!(
                        "faults: --remap needs `patch` or `wholesale`, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--fleet-seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => fleet_seeds = Some(n),
                _ => {
                    eprintln!("faults: --fleet-seeds needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--scope" => match args
                .next()
                .as_deref()
                .and_then(phi_faults::CampaignScope::parse)
            {
                Some(s) => scope = s,
                None => {
                    eprintln!("faults: --scope needs `mixed`, `rack` or `storm`");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("faults: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => match parse_seed(other) {
                Ok(s) => seed = s,
                Err(e) => {
                    eprintln!("faults: {e}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    // Neither flag means both tables.
    if !single && !cluster {
        single = true;
        cluster = true;
    }

    let mut report = String::new();
    if single {
        report.push_str(&format!(
            "== Fault campaign (single node) ==\n{}",
            phi_bench::fault_campaign_render(seed)
        ));
    }
    if cluster {
        if single {
            report.push('\n');
        }
        report.push_str(&format!(
            "== Fault campaign (Table III, N = 825K on 10x10) ==\n{}",
            phi_bench::fault_campaign_cluster_render(seed, remap)
        ));
    }
    if let Some(seeds) = fleet_seeds {
        if single || cluster {
            report.push('\n');
        }
        report.push_str(&phi_bench::fleet_render(&phi_bench::FleetOptions {
            seeds,
            seed0: seed,
            scope,
            ..phi_bench::FleetOptions::default()
        }));
    }
    print!("{report}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("faults: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
