//! Fault campaign: degraded-vs-healthy hybrid Linpack under seeded,
//! replayable fault plans. Pass a hex or decimal seed to change the
//! random campaigns; the replay check must always print bit-identical.

use std::fmt;
use std::process::ExitCode;

/// A malformed seed argument, carried as a value instead of a panic.
#[derive(Debug)]
struct SeedError(String);

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed must be a u64 (decimal or 0x-hex), got `{}`",
            self.0
        )
    }
}

impl std::error::Error for SeedError {}

fn parse_seed(s: &str) -> Result<u64, SeedError> {
    let s = s.trim();
    let hex = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"));
    match hex {
        Some(h) => u64::from_str_radix(h, 16),
        None => s.parse(),
    }
    .map_err(|_| SeedError(s.to_string()))
}

fn main() -> ExitCode {
    let seed = match std::env::args().nth(1) {
        Some(arg) => match parse_seed(&arg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("faults: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => 0xFA_0175,
    };
    println!(
        "== Fault campaign ==\n{}",
        phi_bench::fault_campaign_render(seed)
    );
    ExitCode::SUCCESS
}
