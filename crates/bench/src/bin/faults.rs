//! Fault campaign: degraded-vs-healthy hybrid Linpack under seeded,
//! replayable fault plans. Pass a hex or decimal seed to change the
//! random campaigns; the replay check must always print bit-identical.
fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| {
            let s = s.trim();
            let hex = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"));
            match hex {
                Some(h) => u64::from_str_radix(h, 16),
                None => s.parse(),
            }
            .expect("seed must be a u64 (decimal or 0x-hex)")
        })
        .unwrap_or(0xFA_0175);
    println!(
        "== Fault campaign ==\n{}",
        phi_bench::fault_campaign_render(seed)
    );
}
