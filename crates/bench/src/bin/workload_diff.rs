//! `workload-diff` — the workload-conformance gate CI runs.
//!
//! Four checks, all deterministic (see `phi_bench::workloads`):
//!
//! 1. SpMV differential equivalence — interpreter vs block-trace fast
//!    path vs the pure-Rust reference, bit for bit, with the fast path
//!    required to actually engage;
//! 2. stencil differential equivalence — emulated sweep vs reference;
//! 3. zero lint diagnostics on both shipped listings under their
//!    declared roofline class;
//! 4. rank-by-rank halo-volume conservation on the reference
//!    decomposition.
//!
//! `--inject` is the must-fail self-test: a flipped SpMV result bit and
//! a phantom halo message are injected; the gate must catch both or it
//! is comparing nothing. CI runs that mode and requires non-zero exit.

use phi_bench::workloads::workload_diff;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut inject = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--inject" => inject = true,
            other => {
                eprintln!("workload-diff: unrecognized argument `{other}` (expected --inject)");
                return ExitCode::FAILURE;
            }
        }
    }
    let fails = workload_diff(inject);
    if inject {
        let caught_spmv = fails.iter().any(|f| f.contains("spmv: y diverged"));
        let caught_halo = fails.iter().any(|f| f.starts_with("halo:"));
        if caught_spmv && caught_halo {
            println!("workload-diff --inject: both injected divergences caught");
            return ExitCode::FAILURE; // non-zero by contract: divergence present
        }
        eprintln!(
            "workload-diff --inject: injected divergence NOT caught \
             (spmv={caught_spmv} halo={caught_halo})"
        );
        // A zero exit tells CI the self-test failed (CI inverts it).
        return ExitCode::SUCCESS;
    }
    if fails.is_empty() {
        println!(
            "workload-diff: PASS — spmv/stencil bit-identical on both paths, \
             listings lint clean, halo volumes conserved"
        );
        ExitCode::SUCCESS
    } else {
        for f in &fails {
            eprintln!("workload-diff: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}
