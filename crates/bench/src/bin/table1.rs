//! Regenerates Table I (system configurations).
fn main() {
    println!(
        "Table I — system configurations\n{}",
        phi_bench::table1_render()
    );
}
