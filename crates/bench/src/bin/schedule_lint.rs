//! Runs the `phi-lint` schedule-verification gate: materializes every
//! communication-grid regime the fault-tolerant simulators can route
//! through, proves each plan deadlock-free and each ownership map
//! exactly-once/conserving, scans the simulator crates for determinism
//! hazards, and proves every schedule diagnostic on its broken fixture.
//! Exits non-zero on any violation (the CI gate).
//!
//! `--json` emits the machine-readable report CI uploads as an
//! artifact; `--root <dir>` overrides the workspace root the
//! determinism scan walks.
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = phi_bench::schedlint::workspace_root();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = p.into(),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unrecognized argument `{other}` (expected --json or --root <dir>)");
                return ExitCode::FAILURE;
            }
        }
    }
    let gate = match phi_bench::schedlint::run(&root) {
        Ok(g) => g,
        Err(e) => {
            eprintln!(
                "schedule-lint: determinism scan failed under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", gate.render_json());
    } else {
        print!("{}", gate.render());
    }
    if gate.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
