//! Regenerates Fig. 9 (2x2-node hybrid HPL iteration profiles).
fn main() {
    println!(
        "Fig. 9 — hybrid HPL profile, 2x2 nodes, 2 cards, N = 84K\n{}",
        phi_bench::fig9_render()
    );
}
