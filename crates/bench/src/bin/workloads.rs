//! `workloads` — the performance-lab driver.
//!
//! Runs each workload through the shared pipeline (listing → lint →
//! emulator → roofline → fabric) and prints one row per workload.
//! `--workload dgemm|spmv|stencil` restricts the run to one kind;
//! without it the whole lab runs.

use phi_bench::workloads::{lab_render, lab_rows};
use phi_hpl::WorkloadKind;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut kinds: Vec<WorkloadKind> = Vec::new();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => match args.next().as_deref().and_then(WorkloadKind::parse) {
                Some(k) => kinds.push(k),
                None => {
                    eprintln!(
                        "workloads: --workload takes one of {}",
                        WorkloadKind::ALL.map(WorkloadKind::name).join("|")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("workloads: --out takes a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "workloads: unrecognized argument `{other}` \
                     (expected --workload dgemm|spmv|stencil or --out <path>)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if kinds.is_empty() {
        kinds = WorkloadKind::ALL.to_vec();
    }
    let text = lab_render(&lab_rows(&kinds));
    print!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("workloads: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
