//! Performance-regression gate over the deterministic simulators.
//!
//! ```text
//! perfgate [--baseline FILE] [--cache-dir DIR]
//! ```
//!
//! Computes the headline metrics (Table III cluster campaign GFLOPS,
//! host-death recovery overheads for both remap strategies, patch
//! redistribution-volume reduction, 100-node smoke-tune GFLOPS) and
//! compares them against the committed `BENCH_baseline.json` at ±1 %.
//! Any metric outside the band fails the process with a delta table.
//! `UPDATE_BASELINE=1` regenerates the baseline file instead.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match phi_bench::perfgate::GateArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let update = std::env::var_os("UPDATE_BASELINE").is_some_and(|v| v != "0");
    match phi_bench::perfgate::run_gate(&args, update) {
        Ok((report, pass)) => {
            print!("{report}");
            if pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("perfgate: {e}");
            ExitCode::FAILURE
        }
    }
}
