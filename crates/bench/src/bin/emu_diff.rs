//! `emu-diff` — the emulator-equivalence gate CI runs.
//!
//! Three checks, all deterministic:
//!
//! 1. **Differential sweep**: both paper kernels × blocking depths ×
//!    pipeline variants, run through the per-instruction interpreter and
//!    the block-trace fast path; cycles, every counter, and the C tiles
//!    must be bit-identical, and the fast path must actually engage.
//! 2. **Parallel-DES digest comparison**: the reference rank-level
//!    cluster DES at 1, 2 and 8 worker threads plus the windowless
//!    sequential executor; every report digest must be byte-identical.
//! 3. **`--inject`**: a must-fail self-test. A single bit of divergence
//!    is injected into each comparison (an off-by-one cycle count, a
//!    flipped DES digest bit); the gate must reject both, proving the
//!    comparisons are live. CI runs this mode and requires a non-zero
//!    exit.
//!
//! Exit status: 0 iff every check passed (in `--inject` mode: iff every
//! injected divergence was caught).

use phi_blas::gemm::MicroKernelKind;
use phi_fabric::ProcessGrid;
use phi_hpl::hybrid::{simulate_cluster_rankdes, HybridConfig};
use phi_knc::kernels::{run_tile_product, run_tile_product_traced};
use phi_knc::PipelineConfig;
use std::process::ExitCode;

fn tile_inputs(kind: MicroKernelKind, depth: usize) -> (Vec<f64>, [Vec<f64>; 4]) {
    let mr = match kind {
        MicroKernelKind::Kernel1 => 31,
        MicroKernelKind::Kernel2 => 30,
    };
    let a: Vec<f64> = (0..mr * depth)
        .map(|i| ((i * 7 + 3) % 23) as f64 - 11.0)
        .collect();
    let bs: [Vec<f64>; 4] = std::array::from_fn(|t| {
        (0..depth * 8)
            .map(|i| ((i * 5 + t) % 17) as f64 - 8.0)
            .collect()
    });
    (a, bs)
}

/// Runs the kernel differential sweep; returns human-readable failure
/// lines (empty = pass). `inject` perturbs the fast path's reported
/// cycle count on one sweep point, which the comparison must flag.
fn differential_sweep(inject: bool) -> Vec<String> {
    let mut fails = Vec::new();
    let mut replayed = 0u64;
    let variants = [
        PipelineConfig::default(),
        PipelineConfig {
            mem_latency: 340,
            demand_mem_penalty: 340,
            fill_defer_threshold: 4,
            fill_stall_cycles: 3,
            ..PipelineConfig::default()
        },
    ];
    for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
        for depth in [64usize, 192] {
            for (ci, cfg) in variants.iter().enumerate() {
                let (a, bs) = tile_inputs(kind, depth);
                let slow = run_tile_product(kind, depth, &a, &bs, *cfg);
                let (mut fast, ts, _) = run_tile_product_traced(kind, depth, &a, &bs, *cfg);
                replayed += ts.replayed_segments;
                if inject && ci == 0 && depth == 64 && kind == MicroKernelKind::Kernel1 {
                    fast.cycles_total += 1;
                }
                let tag = format!("{kind:?} depth={depth} cfg#{ci}");
                if fast.cycles_total != slow.cycles_total {
                    fails.push(format!(
                        "{tag}: cycles diverged (fast {} vs slow {})",
                        fast.cycles_total, slow.cycles_total
                    ));
                }
                if fast.stats != slow.stats {
                    fails.push(format!("{tag}: counters diverged"));
                }
                let bits = |t: &Vec<Vec<f64>>| -> Vec<Vec<u64>> {
                    t.iter()
                        .map(|v| v.iter().map(|x| x.to_bits()).collect())
                        .collect()
                };
                if bits(&fast.c_tiles) != bits(&slow.c_tiles) {
                    fails.push(format!("{tag}: C tiles diverged"));
                }
            }
        }
    }
    if replayed == 0 {
        fails.push("fast path never engaged across the sweep".into());
    }
    fails
}

/// Runs the rank-level cluster DES at several thread counts and the
/// sequential reference; every digest must agree. `inject` flips one
/// digest bit, which the comparison must flag.
fn des_digest_compare(inject: bool) -> Vec<String> {
    let mut fails = Vec::new();
    let cfg = HybridConfig::new(160_000, ProcessGrid::new(4, 4), 2);
    let reference = simulate_cluster_rankdes(&cfg, 1);
    println!(
        "parallel-des reference: events={} windows={} digest={:#018x}",
        reference.parallel.events, reference.parallel.windows, reference.parallel.digest
    );
    for threads in [2usize, 8] {
        let mut r = simulate_cluster_rankdes(&cfg, threads);
        if inject && threads == 8 {
            r.parallel.digest ^= 1;
        }
        if r.parallel != reference.parallel {
            fails.push(format!(
                "DES diverged at --threads {threads}: digest {:#018x} vs {:#018x}",
                r.parallel.digest, reference.parallel.digest
            ));
        }
    }
    fails
}

fn main() -> ExitCode {
    let mut inject = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--inject" => inject = true,
            other => {
                eprintln!("emu-diff: unrecognized argument `{other}` (expected --inject)");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut fails = differential_sweep(inject);
    fails.extend(des_digest_compare(inject));
    if inject {
        // Must-fail self-test: both injected divergences have to be
        // caught, or the gate is comparing nothing.
        let caught_emu = fails.iter().any(|f| f.contains("cycles diverged"));
        let caught_des = fails.iter().any(|f| f.contains("DES diverged"));
        if caught_emu && caught_des {
            println!("emu-diff --inject: both injected divergences caught");
            return ExitCode::FAILURE; // non-zero by contract: divergence present
        }
        eprintln!(
            "emu-diff --inject: injected divergence NOT caught (emu={caught_emu} des={caught_des})"
        );
        // A zero exit here tells CI the self-test failed (CI inverts it).
        return ExitCode::SUCCESS;
    }
    if fails.is_empty() {
        println!("emu-diff: PASS — fast path bit-identical, DES digests thread-count independent");
        ExitCode::SUCCESS
    } else {
        for f in &fails {
            eprintln!("emu-diff: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}
