//! Regenerates Fig. 7 (Gantt charts of the 5K LU execution profile).
fn main() {
    let (st, dy) = phi_bench::fig7_gantt(100);
    println!("Fig. 7 — LU execution profiles (N = 5120)\n\n{st}\n{dy}");
}
