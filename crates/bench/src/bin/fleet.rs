//! Fleet-scale Monte Carlo availability campaign: tens of thousands of
//! seeded fault campaigns streamed through the fault-tolerant cluster
//! simulators, reduced to completion-time percentiles, a
//! GFLOPS-availability curve, the patch-vs-wholesale crossover frontier
//! and the best patch death budget.
//!
//! ```text
//! fleet [--seeds N] [--seed0 SEED] [--threads T] \
//!       [--scope mixed|rack|storm] [--events N] [--out FILE] [--store DIR]
//! ```
//!
//! The report is byte-identical at any `--threads` value (including the
//! `0` = auto default); re-running with the same flags must reproduce
//! the same fleet digest bit for bit. `--out FILE` additionally writes
//! the report to `FILE` (the CI smoke job uploads it as an artifact).
//! `--store DIR` streams every seed's outcome through the
//! content-addressed result store at `DIR`: a repeated fleet dedups per
//! seed and only recomputes what the store lacks. Store traffic goes to
//! stderr, so the report on stdout (and in `--out`) stays byte-equal to
//! an unstored run.

use phi_bench::fleet::{fleet_render, fleet_render_stored, FleetOptions};
use phi_faults::CampaignScope;
use phi_serve::ResultStore;
use std::process::ExitCode;

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(h) => u64::from_str_radix(h, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() -> ExitCode {
    let mut opts = FleetOptions::default();
    let mut out_path: Option<String> = None;
    let mut store_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.seeds = n,
                _ => {
                    eprintln!("fleet: --seeds needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--seed0" => match args.next().as_deref().and_then(parse_seed) {
                Some(s) => opts.seed0 = s,
                None => {
                    eprintln!("fleet: --seed0 needs a u64 (decimal or 0x-hex)");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => opts.threads = t,
                None => {
                    eprintln!("fleet: --threads needs an integer (0 = auto)");
                    return ExitCode::FAILURE;
                }
            },
            "--scope" => match args.next().as_deref().and_then(CampaignScope::parse) {
                Some(s) => opts.scope = s,
                None => {
                    eprintln!("fleet: --scope needs `mixed`, `rack` or `storm`");
                    return ExitCode::FAILURE;
                }
            },
            "--events" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.events = n,
                _ => {
                    eprintln!("fleet: --events needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("fleet: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--store" => match args.next() {
                Some(p) => store_dir = Some(p),
                None => {
                    eprintln!("fleet: --store needs a directory path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("fleet: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match &store_dir {
        Some(dir) => {
            let store = match ResultStore::open(dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("fleet: cannot open store {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (report, stats) = fleet_render_stored(&opts, &store);
            eprintln!(
                "fleet: store {dir}: {} hits, {} misses",
                stats.hits, stats.misses
            );
            report
        }
        None => fleet_render(&opts),
    };
    print!("{report}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("fleet: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
