//! Regenerates Fig. 11 (offload DGEMM performance).
fn main() {
    println!(
        "Fig. 11 — offload DGEMM (Kt = 1200)\n{}",
        phi_bench::fig11_render()
    );
}
