//! Regenerates Fig. 6 (native Linpack vs problem size).
fn main() {
    println!(
        "Fig. 6 — native Linpack performance\n{}",
        phi_bench::fig6_render()
    );
}
