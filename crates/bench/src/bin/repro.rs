//! Regenerates every table and figure in one run.
fn main() {
    println!("== Table I ==\n{}", phi_bench::table1_render());
    println!("== Table II ==\n{}", phi_bench::table2_render());
    println!("== Fig. 2 ==\n{}", phi_bench::fig2_render());
    println!("== Fig. 4 ==\n{}", phi_bench::fig4_render());
    println!("== Fig. 6 ==\n{}", phi_bench::fig6_render());
    let (st, dy) = phi_bench::fig7_gantt(100);
    println!("== Fig. 7 ==\n{st}\n{dy}");
    {
        use phi_fabric::ProcessGrid;
        use phi_hpl::hybrid::{stage_gantt::fig8_render, HybridConfig};
        let cfg = HybridConfig::new(84_000, ProcessGrid::new(1, 1), 1);
        println!("== Fig. 8 ==\n{}", fig8_render(&cfg, 5, 100));
    }
    println!("== Fig. 9 ==\n{}", phi_bench::fig9_render());
    println!("== Fig. 11 ==\n{}", phi_bench::fig11_render());
    println!("== Table III ==\n{}", phi_bench::table3_render());
}
