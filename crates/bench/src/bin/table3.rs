//! Regenerates Table III (node- and cluster-level HPL results).
fn main() {
    println!(
        "Table III — HPL performance\n{}",
        phi_bench::table3_render()
    );
}
