//! Regenerates Fig. 8: one-iteration timing diagrams of the three
//! look-ahead schemes.
use phi_fabric::ProcessGrid;
use phi_hpl::hybrid::stage_gantt::fig8_render;
use phi_hpl::hybrid::HybridConfig;

fn main() {
    let cfg = HybridConfig::new(84_000, ProcessGrid::new(1, 1), 1);
    println!("Fig. 8 — hybrid HPL look-ahead schemes (single node, 1 card, N = 84K, stage 5)\n");
    println!("{}", fig8_render(&cfg, 5, 110));
}
