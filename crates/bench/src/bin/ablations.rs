//! Runs the four ablation studies of DESIGN.md §4.
fn main() {
    println!(
        "== Super-stages + regrouping vs fixed partitions ==\n{}",
        phi_bench::ablations::superstage_render()
    );
    println!(
        "== Dynamic work stealing vs static split (M=N=40K, 12 host cores) ==\n{}",
        phi_bench::ablations::stealing_render()
    );
    println!(
        "== Run-time tile-size selection vs fixed grids ==\n{}",
        phi_bench::ablations::tiles_render()
    );
    println!(
        "== Prefetch-fill defer threshold (Fig. 1c) ==\n{}",
        phi_bench::ablations::prefetch_render()
    );
}
