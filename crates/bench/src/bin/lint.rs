//! Runs the `phi-lint` static↔dynamic consistency gate: analyzes the
//! Fig. 2 kernels, cross-checks the static cycle bound against the
//! emulator, and proves every diagnostic on its broken fixture. Exits
//! non-zero on any violation (the CI gate). `--json` emits the
//! machine-readable report CI uploads as an artifact.
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("unrecognized argument `{other}` (expected --json)");
                return ExitCode::FAILURE;
            }
        }
    }
    let gate = phi_bench::lintgate::run();
    if json {
        print!("{}", gate.render_json());
    } else {
        print!("{}", gate.render());
    }
    if gate.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
