//! Runs the `phi-lint` static↔dynamic consistency gate: analyzes the
//! Fig. 2 kernels, cross-checks the static cycle bound against the
//! emulator, and proves every diagnostic on its broken fixture. Exits
//! non-zero on any violation (the CI gate).
use std::process::ExitCode;

fn main() -> ExitCode {
    let gate = phi_bench::lintgate::run();
    print!("{}", gate.render());
    if gate.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
