//! Regenerates the Fig. 2 kernel comparison on the cycle-level emulator,
//! including the instruction listings of Fig. 2b/2c.
use phi_blas::gemm::MicroKernelKind;
use phi_knc::disasm::disassemble;
use phi_knc::kernels::build_basic_kernel;

fn main() {
    println!(
        "Fig. 2 — Basic Kernel 1 vs Basic Kernel 2 (emulated)\n{}",
        phi_bench::fig2_render()
    );
    for (kind, label) in [
        (MicroKernelKind::Kernel1, "Basic Kernel 1 (Fig. 2b)"),
        (MicroKernelKind::Kernel2, "Basic Kernel 2 (Fig. 2c)"),
    ] {
        let (body, _) = build_basic_kernel(kind);
        println!("{label} inner loop (U = vector pipe, V = co-issued):");
        println!("{}", disassemble(&body));
    }
}
