//! The paper's future work (Section VII): Linpack directly on a cluster
//! of Knights Corners with the hosts asleep, plus the energy comparison
//! the conclusion argues for.
use phi_hpl::energy::{compare_designs, PowerModel};
use phi_hpl::native::cluster::simulate_native_cluster;
use phi_hpl::native::NativeClusterConfig;

fn main() {
    println!("Fully-native multi-node Linpack (future work, Section VII)\n");
    println!("{:>8} {:>6} {:>10} {:>8}", "N", "cards", "GFLOPS", "eff");
    for (n, side) in [
        (30_000usize, 1usize),
        (60_000, 2),
        (120_000, 4),
        (300_000, 10),
    ] {
        let cfg = NativeClusterConfig::new(n, side, side);
        let r = simulate_native_cluster(&cfg);
        println!(
            "{:>8} {:>6} {:>10.0} {:>7.1}%",
            n,
            side * side,
            r.gflops,
            100.0 * r.efficiency()
        );
    }
    println!("\nEnergy efficiency on 4 nodes (2x2):");
    let power = PowerModel::default();
    let (cpu, hybrid, native) = compare_designs(4, &power);
    for (label, p, watts_label) in [
        ("CPU-only ", &cpu, power.cpu_node_w()),
        ("hybrid   ", &hybrid, power.hybrid_node_w(1)),
        ("native   ", &native, power.native_node_w()),
    ] {
        println!(
            "  {label}: {:>8.0} GFLOPS at {:>4.0} W/node -> {:.2} GFLOPS/W",
            p.gflops,
            watts_label,
            p.gflops_per_watt()
        );
    }
    println!("\nThe native design wins GFLOPS/W (the conclusion's argument) but is");
    println!("capped by 8 GB GDDR per card; the hybrid design trades watts for N.");
}
