//! Autotunes the paper's two reference machines and writes
//! `BENCH_tune.json`:
//!
//! ```text
//! cargo run --release -p phi-bench --bin tune            # full search
//! cargo run --release -p phi-bench --bin tune -- --smoke # coarse grid only
//! ```
//!
//! A second invocation with the same machine fingerprint, space and
//! seed is served entirely from the tuning cache.

use phi_bench::tune::{render, run_tuner, write_bench_json, TuneArgs};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tune: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), phi_bench::tune::TuneBenchError> {
    let args = TuneArgs::parse(std::env::args().skip(1))?;
    let mode = if args.smoke {
        "smoke (coarse grid)"
    } else {
        "full (coarse + refine + calibrated)"
    };
    println!("== phi-tune: {mode} ==\n");
    let runs = run_tuner(args.smoke, &args.cache_dir)?;
    println!("{}", render(&runs));
    write_bench_json(&args.out, &runs)?;
    println!("\nwrote {}", args.out.display());
    Ok(())
}
