//! Regenerates Fig. 4 (DGEMM performance vs matrix size).
fn main() {
    println!(
        "Fig. 4 — DGEMM performance comparison\n{}",
        phi_bench::fig4_render()
    );
}
