//! Load generator for the `phi-serve` campaign service: replays
//! thousands of concurrent requests (cold, then warm) against one
//! service and reports throughput, hit rate, p99 latency and the
//! per-phase determinism digests, ending with a PASS/FAIL verdict over
//! the service invariants (single-flight dedup, zero warm executions,
//! byte-identical hit path, ≥10× warm speedup from a cold start).
//!
//! ```text
//! serve [--requests N] [--space N] [--workers T] [--clients T] \
//!       [--seed0 SEED] [--store DIR] [--out FILE]
//! ```
//!
//! The digests are byte-identical at any `--workers`/`--clients` value;
//! only the wall-clock columns vary between runs.

use phi_bench::serve::{serve_load_render, ServeLoadOptions};
use std::process::ExitCode;

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(h) => u64::from_str_radix(h, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() -> ExitCode {
    let mut opts = ServeLoadOptions::default();
    let mut out_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.requests = n,
                _ => {
                    eprintln!("serve: --requests needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--space" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.space = n,
                _ => {
                    eprintln!("serve: --space needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => opts.workers = t,
                None => {
                    eprintln!("serve: --workers needs an integer (0 = auto)");
                    return ExitCode::FAILURE;
                }
            },
            "--clients" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) if t > 0 => opts.clients = t,
                _ => {
                    eprintln!("serve: --clients needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--seed0" => match args.next().as_deref().and_then(parse_seed) {
                Some(s) => opts.seed0 = s,
                None => {
                    eprintln!("serve: --seed0 needs a u64 (decimal or 0x-hex)");
                    return ExitCode::FAILURE;
                }
            },
            "--store" => match args.next() {
                Some(p) => opts.store_dir = Some(p.into()),
                None => {
                    eprintln!("serve: --store needs a directory path");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("serve: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("serve: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = serve_load_render(&opts);
    print!("{report}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.contains("serve-load invariants: PASS") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
