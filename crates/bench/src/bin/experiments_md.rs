//! Regenerates the measured columns of `EXPERIMENTS.md` as fresh
//! markdown, so documentation drift is one command away from detection:
//!
//! ```text
//! cargo run --release -p phi-bench --bin experiments_md > /tmp/measured.md
//! ```

use phi_bench::*;

fn main() {
    println!("# Measured results (auto-generated)\n");
    println!("Regenerate with `cargo run --release -p phi-bench --bin experiments_md`.\n");

    println!("## Table II\n");
    println!("| k | DP measured | DP paper | SP measured | SP paper |");
    println!("|---|---|---|---|---|");
    for r in table2_rows() {
        println!(
            "| {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
            r.k,
            100.0 * r.dp_eff,
            100.0 * r.paper_dp_eff,
            100.0 * r.sp_eff,
            100.0 * r.paper_sp_eff
        );
    }

    println!("\n## Fig. 2 (emulated kernels)\n");
    println!("| kernel | theoretical | achieved | fill stalls |");
    println!("|---|---|---|---|");
    for r in fig2_rows() {
        println!(
            "| {:?} | {:.1}% | {:.1}% | {} |",
            r.kind,
            100.0 * r.theoretical,
            100.0 * r.steady,
            r.fill_stalls
        );
    }

    println!("\n## Fig. 4 (selected sizes)\n");
    println!("| N | SNB GF | KNC kernel GF | KNC DGEMM GF | pack ovh |");
    println!("|---|---|---|---|---|");
    for p in fig4_series(&[1000, 5000, 17_000, 28_000]) {
        println!(
            "| {} | {:.0} | {:.0} | {:.0} | {:.1}% |",
            p.n,
            p.snb_gflops,
            p.knc_kernel_gflops,
            p.knc_dgemm_gflops,
            100.0 * p.pack_overhead
        );
    }

    println!("\n## Fig. 6 (selected sizes)\n");
    println!("| N | SNB HPL GF | static GF | dynamic GF |");
    println!("|---|---|---|---|");
    for p in fig6_series(&[2048, 4096, 8192, 16_384, 30_720]) {
        println!(
            "| {} | {:.0} | {:.0} | {:.0} |",
            p.n, p.snb_gflops, p.static_gflops, p.dynamic_gflops
        );
    }

    println!("\n## Fig. 9\n");
    let s = fig9_summary();
    println!(
        "- basic-look-ahead exposure (early third): {:.1}%\n\
         - pipelined exposure: {:.1}%\n\
         - max per-iteration saving: {:.1}%",
        100.0 * s.basic_exposure,
        100.0 * s.pipelined_exposure,
        100.0 * s.max_iteration_saving
    );

    println!("\n## Fig. 11\n");
    println!("| M=N | 1 card eff | 2 cards eff |");
    println!("|---|---|---|");
    for p in fig11_series(&[10_000, 40_000, 82_000]) {
        println!(
            "| {} | {:.1}% | {:.1}% |",
            p.n,
            100.0 * p.one_card_eff,
            100.0 * p.two_card_eff
        );
    }

    print!("\n{}", experiments_fault_section_md(0xFA_0175));

    println!("\n## Table III\n");
    println!("| system | N | P×Q | measured | paper |");
    println!("|---|---|---|---|---|");
    for r in table3_rows() {
        println!(
            "| {} | {} | {}×{} | {:.2} TF / {:.1}% | {:.2} TF / {:.1}% |",
            r.system,
            r.n,
            r.p,
            r.q,
            r.tflops,
            100.0 * r.eff,
            r.paper_tflops,
            100.0 * r.paper_eff
        );
    }
}
