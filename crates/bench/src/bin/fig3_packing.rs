//! Demonstrates the Fig. 3 packing layouts on a small example.
use phi_blas::gemm::{pack_a, pack_b};
use phi_matrix::MatGen;

fn main() {
    println!("Fig. 3 — packing into the Knights Corner-friendly format\n");
    let a = MatGen::new(1).matrix::<f64>(64, 6);
    let pa = pack_a(&a.view(), 30);
    println!(
        "A (64x6) -> {} tiles of 30x6, column-major inside each tile",
        pa.tile_count()
    );
    println!("  tile 0, column 0 starts: {:?}", &pa.tile(0)[..4]);
    println!(
        "  tile 2 has {} live rows (zero-padded to 30)",
        pa.tile_rows(2)
    );
    let b = MatGen::new(2).matrix::<f64>(6, 20);
    let pb = pack_b(&b.view(), 8);
    println!(
        "B (6x20) -> {} tiles of 6x8, row-major inside each tile",
        pb.tile_count()
    );
    println!("  tile 0, row 0 starts: {:?}", &pb.tile(0)[..4]);
    println!(
        "  tile 2 has {} live cols (zero-padded to 8)",
        pb.tile_cols(2)
    );
}
