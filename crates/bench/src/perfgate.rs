//! Performance-regression gate: a handful of headline metrics computed
//! in-process from the deterministic simulators, compared against the
//! committed `BENCH_baseline.json` with a ±1 % tolerance.
//!
//! The metrics are all analytic-model outputs, so on an unchanged tree
//! they reproduce bit-for-bit and the gate is noise-free: any delta is
//! a real change to the model or the recovery machinery. CI runs the
//! `perfgate` binary; an intentional change regenerates the baseline
//! with `UPDATE_BASELINE=1` and commits the diff like any fixture.

use crate::faults::fault_campaign_cluster_rows;
use crate::fleet::{completion_percentiles, run_fleet, FleetOptions};
use crate::serve::{serve_load, ServeLoadOptions, ServeLoadResult};
use crate::tune::{run_tuner, TuneBenchError};
use crate::TextTable;
use phi_blas::gemm::MicroKernelKind;
use phi_fabric::{ProcessGrid, RemapStrategy};
use phi_faults::{CampaignScope, FaultPlan};
use phi_hpl::hybrid::{simulate_cluster_rankdes, HybridConfig};
use phi_knc::kernels::run_tile_product_traced;
use phi_knc::PipelineConfig;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Seed the gate's fault campaign runs under — the fixture seed, so the
/// goldens, the docs and the baseline all describe the same campaign.
pub const GATE_SEED: u64 = 0xFA_0175;

/// Relative tolerance for every metric: a metric regresses (or
/// improves) past the gate when `|current / baseline - 1|` exceeds
/// this.
pub const GATE_TOLERANCE: f64 = 0.01;

/// A failure in the perf gate, carried as a value so the binary exits
/// with a message instead of a panic backtrace.
#[derive(Debug)]
pub enum PerfGateError {
    /// An unrecognized command-line argument.
    BadArg(String),
    /// Filesystem I/O failed (baseline file or tune cache).
    Io {
        /// What the gate was doing when the error occurred.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The baseline file exists but a metric line cannot be parsed.
    Malformed(String),
}

impl fmt::Display for PerfGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfGateError::BadArg(a) => write!(
                f,
                "unrecognized argument `{a}` (expected --baseline <path> or --cache-dir <path>)"
            ),
            PerfGateError::Io { context, source } => write!(f, "{context}: {source}"),
            PerfGateError::Malformed(line) => {
                write!(f, "malformed baseline metric line: `{line}`")
            }
        }
    }
}

impl std::error::Error for PerfGateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PerfGateError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<TuneBenchError> for PerfGateError {
    fn from(e: TuneBenchError) -> Self {
        match e {
            TuneBenchError::BadArg(a) => PerfGateError::BadArg(a),
            TuneBenchError::Io { context, source } => PerfGateError::Io { context, source },
        }
    }
}

fn io_ctx(context: impl Into<String>) -> impl FnOnce(io::Error) -> PerfGateError {
    let context = context.into();
    move |source| PerfGateError::Io { context, source }
}

/// One gated metric: a stable name and its current value.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable snake_case key, used to match against the baseline.
    pub name: &'static str,
    /// Current value on this tree.
    pub value: f64,
}

/// Seeds in the gate's reference fleet — small enough to keep the gate
/// fast, large enough that the P99 is a real tail statistic.
const GATE_FLEET_SEEDS: usize = 160;

/// The gate's fleet: [`GATE_FLEET_SEEDS`] mixed-scope campaigns rooted
/// at [`GATE_SEED`]. Thread count stays at auto — the fleet is
/// byte-identical at any value, so the metric is machine-independent.
fn gate_fleet_options() -> FleetOptions {
    FleetOptions {
        seeds: GATE_FLEET_SEEDS,
        seed0: GATE_SEED,
        ..FleetOptions::default()
    }
}

/// Fan-out resolution throughput in *simulated* terms: resolved events
/// per simulated hour across a reference set of rack-scoped (maximally
/// fanning) campaign plans. Pure plan arithmetic — no wall clock, so
/// the metric reproduces bit-for-bit; it moves only when the fan-out
/// resolution itself starts spawning more or fewer events.
fn fanout_resolution_throughput() -> f64 {
    const PLANS: usize = 64;
    const HORIZON_S: f64 = 3600.0;
    let events: usize = (0..PLANS as u64)
        .map(|i| {
            FaultPlan::fleet_campaign(
                GATE_SEED.wrapping_add(i),
                HORIZON_S,
                3,
                100,
                2,
                CampaignScope::Rack,
            )
            .events()
            .len()
        })
        .sum();
    events as f64 / (PLANS as f64 * HORIZON_S / 3600.0)
}

/// The gate's reference campaign-service workload: a small cold + warm
/// load generation on an in-memory service rooted at [`GATE_SEED`].
/// Both derived metrics are defined in deterministic terms —
/// `serve_requests_per_s` divides requests by *simulated* seconds (the
/// Σ completion time of the unique campaigns behind them, no wall
/// clock) and `serve_hit_rate` counts requests that skipped execution —
/// so they reproduce bit-for-bit at any worker count. They move only
/// when spec canonicalization, the dedup machinery or the simulated
/// campaigns themselves change.
fn gate_serve_load() -> ServeLoadResult {
    serve_load(&ServeLoadOptions {
        requests: 600,
        space: 24,
        clients: 4,
        seed0: GATE_SEED,
        ..ServeLoadOptions::default()
    })
}

/// Block-replay coverage speedup of the traced emulator: total simulated
/// cycles over interpreter-executed cycles on the paper's Kernel 2 tile
/// product at a steady-state depth. Deterministic cycle arithmetic — the
/// metric moves only when the trace engine's coverage changes (a guard
/// that starts missing, a template that stops forming), and the
/// differential harness separately proves the covered cycles are
/// bit-identical.
fn emu_block_replay_speedup() -> f64 {
    const DEPTH: usize = 1024;
    let mr = 30;
    let a: Vec<f64> = (0..mr * DEPTH)
        .map(|i| ((i * 7 + 3) % 23) as f64 - 11.0)
        .collect();
    let bs: [Vec<f64>; 4] = std::array::from_fn(|t| {
        (0..DEPTH * 8)
            .map(|i| ((i * 5 + t) % 17) as f64 - 8.0)
            .collect()
    });
    let (_, _, speedup) = run_tile_product_traced(
        MicroKernelKind::Kernel2,
        DEPTH,
        &a,
        &bs,
        PipelineConfig::default(),
    );
    speedup
}

/// Parallel-DES throughput in *simulated* terms: events per simulated
/// second of the reference rank-level cluster DES (a 4 × 4 grid running
/// the hybrid HPL stage loop). No wall clock — the figure reproduces
/// bit-for-bit and is byte-identical at any worker count (the engine's
/// contract); it moves only when the rank partitioning or the stage
/// pipeline changes how many events the simulation needs.
fn parallel_des_events_per_s() -> f64 {
    let cfg = HybridConfig::new(160_000, ProcessGrid::new(4, 4), 2);
    let r = simulate_cluster_rankdes(&cfg, 1);
    r.parallel.events as f64 / r.time_s
}

/// Computes every gated metric in-process. The fault-campaign figures
/// come from the Table III cluster campaign at [`GATE_SEED`]; the fleet
/// tail figure from the 160-seed reference fleet; the
/// tune figure from the 100-node smoke tune (cached under `cache_dir`).
pub fn collect_metrics(cache_dir: &Path) -> Result<Vec<Metric>, PerfGateError> {
    let rows = fault_campaign_cluster_rows(GATE_SEED, RemapStrategy::Patch);
    // Row layout is pinned by `cluster_table_covers_host_death_and_recovers`:
    // 0 healthy, 2 host death (patch, checkpointed), 4 host death (wholesale).
    let healthy = &rows[0];
    let patch = &rows[2];
    let whsl = &rows[4];
    let serve = gate_serve_load();
    serve
        .check()
        .expect("gate serve workload violates an invariant");
    let runs = run_tuner(true, cache_dir)?;
    let cluster100 = runs
        .iter()
        .find(|r| r.label == "cluster-100")
        .expect("run_tuner always returns the cluster-100 machine");
    Ok(vec![
        Metric {
            name: "cluster_healthy_gflops",
            value: healthy.gflops,
        },
        Metric {
            name: "host_death_patch_overhead",
            value: patch.overhead,
        },
        Metric {
            name: "host_death_patch_blocks_moved",
            value: patch.blocks_moved as f64,
        },
        Metric {
            name: "host_death_wholesale_overhead",
            value: whsl.overhead,
        },
        Metric {
            name: "host_death_wholesale_blocks_moved",
            value: whsl.blocks_moved as f64,
        },
        Metric {
            name: "patch_volume_reduction",
            value: whsl.blocks_moved as f64 / patch.blocks_moved as f64,
        },
        Metric {
            name: "tune_cluster100_smoke_gflops",
            value: cluster100.outcome.tuned_report.gflops,
        },
        Metric {
            name: "fleet_p99_time_s",
            value: completion_percentiles(&run_fleet(&gate_fleet_options()))[1].1,
        },
        Metric {
            name: "fanout_resolution_throughput",
            value: fanout_resolution_throughput(),
        },
        // Send/recv operations the schedule-lint reference sweep
        // proves. A pure deterministic count (no wall clock): it moves
        // only when the sweep's regime or schedule coverage changes —
        // a silent shrink in verification coverage fails the gate.
        Metric {
            name: "schedule_lint_throughput",
            value: crate::schedlint::reference_sweep_ops(),
        },
        Metric {
            name: "serve_requests_per_s",
            value: serve.simulated_requests_per_s(),
        },
        Metric {
            name: "serve_hit_rate",
            value: serve.stats.hit_rate(),
        },
        Metric {
            name: "emu_block_replay_speedup",
            value: emu_block_replay_speedup(),
        },
        Metric {
            name: "parallel_des_events_per_s",
            value: parallel_des_events_per_s(),
        },
        // Performance-lab workloads: the emulated SpMV operating point
        // (bandwidth side of the roofline) and the stencil cluster's
        // exposed halo time (the new fabric pattern). Both deterministic
        // model outputs — see `crate::workloads`.
        Metric {
            name: "spmv_gflops",
            value: crate::workloads::spmv_gflops(),
        },
        Metric {
            name: "stencil_halo_exchange_s",
            value: crate::workloads::stencil_halo_exchange_s(),
        },
    ])
}

/// Renders the metrics as the `BENCH_baseline.json` artifact: one
/// metric per line so the parser (and `git diff`) stay line-oriented.
pub fn baseline_json(metrics: &[Metric]) -> String {
    let mut s = String::from("{\n  \"schema\": \"phi-bench/perfgate/v1\",\n  \"metrics\": {\n");
    for (i, m) in metrics.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {:.6}{}\n",
            m.name,
            m.value,
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Parses a baseline produced by [`baseline_json`]. Line-based on
/// purpose — the workspace carries no JSON dependency, and the emitter
/// guarantees one `"name": value` pair per line inside `"metrics"`.
pub fn parse_baseline(text: &str) -> Result<Vec<(String, f64)>, PerfGateError> {
    let mut out = Vec::new();
    let mut in_metrics = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"metrics\"") {
            in_metrics = true;
            continue;
        }
        if !in_metrics {
            continue;
        }
        if t.starts_with('}') {
            break;
        }
        let Some((name, value)) = t.split_once(':') else {
            return Err(PerfGateError::Malformed(t.to_string()));
        };
        let name = name.trim().trim_matches('"').to_string();
        let value: f64 = value
            .trim()
            .trim_end_matches(',')
            .parse()
            .map_err(|_| PerfGateError::Malformed(t.to_string()))?;
        out.push((name, value));
    }
    Ok(out)
}

/// The comparison of one metric against its baseline entry.
#[derive(Clone, Debug)]
pub struct GateLine {
    /// Metric name.
    pub name: String,
    /// Value recorded in the baseline, if the baseline has the metric.
    pub baseline: Option<f64>,
    /// Value on this tree, if the tree still produces the metric.
    pub current: Option<f64>,
    /// `current / baseline - 1`; `None` when either side is missing.
    pub delta: Option<f64>,
    /// Whether this line keeps the gate green.
    pub pass: bool,
}

/// The full gate verdict: one line per metric, most-regressed first.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// Per-metric comparisons.
    pub lines: Vec<GateLine>,
}

impl GateReport {
    /// True iff every metric is within tolerance and neither side has
    /// metrics the other lacks.
    pub fn pass(&self) -> bool {
        self.lines.iter().all(|l| l.pass)
    }

    /// Renders the delta table the binary prints.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["metric", "baseline", "current", "delta", "gate"]);
        for l in &self.lines {
            let f = |v: Option<f64>| v.map_or_else(|| "missing".to_string(), |x| format!("{x:.4}"));
            t.row([
                l.name.clone(),
                f(l.baseline),
                f(l.current),
                l.delta
                    .map_or_else(|| "-".to_string(), |d| format!("{:+.3}%", 100.0 * d)),
                if l.pass { "ok" } else { "FAIL" }.to_string(),
            ]);
        }
        t.render()
    }
}

/// Compares current metrics against the baseline at `tolerance`.
/// A metric present on only one side fails the gate — a renamed or
/// dropped metric must come with a regenerated baseline.
pub fn compare(baseline: &[(String, f64)], current: &[Metric], tolerance: f64) -> GateReport {
    let mut lines = Vec::new();
    for m in current {
        let base = baseline.iter().find(|(n, _)| n == m.name).map(|&(_, v)| v);
        let delta = base.map(|b| if b == 0.0 { 0.0 } else { m.value / b - 1.0 });
        let pass = matches!(delta, Some(d) if d.abs() <= tolerance);
        lines.push(GateLine {
            name: m.name.to_string(),
            baseline: base,
            current: Some(m.value),
            delta,
            pass,
        });
    }
    for (n, v) in baseline {
        if !current.iter().any(|m| m.name == n) {
            lines.push(GateLine {
                name: n.clone(),
                baseline: Some(*v),
                current: None,
                delta: None,
                pass: false,
            });
        }
    }
    lines.sort_by(|a, b| {
        let key = |l: &GateLine| l.delta.map_or(f64::INFINITY, f64::abs);
        key(b)
            .partial_cmp(&key(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    GateReport { lines }
}

/// Parsed command line of the `perfgate` binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateArgs {
    /// Baseline file to compare against (or regenerate).
    pub baseline: PathBuf,
    /// Tuning-cache directory for the smoke-tune metric.
    pub cache_dir: PathBuf,
}

impl Default for GateArgs {
    fn default() -> Self {
        GateArgs {
            baseline: PathBuf::from("BENCH_baseline.json"),
            cache_dir: PathBuf::from("target/tune-cache"),
        }
    }
}

impl GateArgs {
    /// Parses `--baseline <path>` and `--cache-dir <path>`.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, PerfGateError> {
        let mut out = GateArgs::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--baseline" => match args.next() {
                    Some(p) => out.baseline = PathBuf::from(p),
                    None => return Err(PerfGateError::BadArg(a)),
                },
                "--cache-dir" => match args.next() {
                    Some(p) => out.cache_dir = PathBuf::from(p),
                    None => return Err(PerfGateError::BadArg(a)),
                },
                _ => return Err(PerfGateError::BadArg(a)),
            }
        }
        Ok(out)
    }
}

/// Runs the whole gate: collect, then either regenerate the baseline
/// (when `update` is set, as the binary does under `UPDATE_BASELINE=1`)
/// or compare against it. Returns the report text and whether the gate
/// passed.
pub fn run_gate(args: &GateArgs, update: bool) -> Result<(String, bool), PerfGateError> {
    let metrics = collect_metrics(&args.cache_dir)?;
    if update {
        std::fs::write(&args.baseline, baseline_json(&metrics)).map_err(io_ctx(format!(
            "writing baseline {}",
            args.baseline.display()
        )))?;
        return Ok((
            format!(
                "perfgate: wrote {} ({} metrics)\n",
                args.baseline.display(),
                metrics.len()
            ),
            true,
        ));
    }
    let text = std::fs::read_to_string(&args.baseline).map_err(io_ctx(format!(
        "reading baseline {} (UPDATE_BASELINE=1 to create it)",
        args.baseline.display()
    )))?;
    let baseline = parse_baseline(&text)?;
    let report = compare(&baseline, &metrics, GATE_TOLERANCE);
    let verdict = if report.pass() {
        format!(
            "perfgate: PASS — {} metrics within ±{:.0}% of {}\n",
            metrics.len(),
            100.0 * GATE_TOLERANCE,
            args.baseline.display()
        )
    } else {
        let failed = report.lines.iter().filter(|l| !l.pass).count();
        format!(
            "perfgate: FAIL — {failed} metric(s) outside ±{:.0}% of {} \
             (UPDATE_BASELINE=1 to accept an intentional change)\n",
            100.0 * GATE_TOLERANCE,
            args.baseline.display()
        )
    };
    Ok((format!("{}{verdict}", report.render()), report.pass()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Vec<Metric> {
        vec![
            Metric {
                name: "cluster_healthy_gflops",
                value: 107170.25,
            },
            Metric {
                name: "patch_volume_reduction",
                value: 100.0,
            },
        ]
    }

    #[test]
    fn baseline_round_trips_through_the_line_parser() {
        let json = baseline_json(&metrics());
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(
            parsed,
            vec![
                ("cluster_healthy_gflops".to_string(), 107170.25),
                ("patch_volume_reduction".to_string(), 100.0),
            ]
        );
        assert!(parse_baseline("{\n  \"metrics\": {\n    garbage\n  }\n}\n").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_outside() {
        let m = metrics();
        let base = parse_baseline(&baseline_json(&m)).unwrap();
        assert!(compare(&base, &m, GATE_TOLERANCE).pass());
        // 0.9 % drift: still inside the ±1 % gate.
        let drifted = vec![
            Metric {
                name: "cluster_healthy_gflops",
                value: 107170.25 * 1.009,
            },
            m[1].clone(),
        ];
        assert!(compare(&base, &drifted, GATE_TOLERANCE).pass());
        // 2 % regression: outside, and sorted to the top of the table.
        let regressed = vec![
            Metric {
                name: "cluster_healthy_gflops",
                value: 107170.25 * 0.98,
            },
            m[1].clone(),
        ];
        let report = compare(&base, &regressed, GATE_TOLERANCE);
        assert!(!report.pass());
        assert_eq!(report.lines[0].name, "cluster_healthy_gflops");
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn missing_and_extra_metrics_fail_the_gate() {
        let m = metrics();
        let base = parse_baseline(&baseline_json(&m)).unwrap();
        let report = compare(&base, &m[..1], GATE_TOLERANCE);
        assert!(!report.pass());
        let one = parse_baseline(&baseline_json(&m[..1])).unwrap();
        assert!(!compare(&one, &m, GATE_TOLERANCE).pass());
    }

    #[test]
    fn args_parse_and_reject() {
        let ok = GateArgs::parse(
            ["--baseline", "b.json", "--cache-dir", "c"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(ok.baseline, PathBuf::from("b.json"));
        assert_eq!(ok.cache_dir, PathBuf::from("c"));
        assert!(GateArgs::parse(["--bogus".to_string()].into_iter()).is_err());
        assert!(GateArgs::parse(["--baseline".to_string()].into_iter()).is_err());
    }

    #[test]
    fn collected_metrics_reproduce_and_gate_green_against_themselves() {
        let dir = std::env::temp_dir().join(format!("phi-perfgate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = collect_metrics(&dir).unwrap();
        let b = collect_metrics(&dir).unwrap();
        assert_eq!(a, b, "gate metrics must be deterministic");
        assert_eq!(a.len(), 16);
        let spmv = a.iter().find(|m| m.name == "spmv_gflops").unwrap();
        // Bandwidth-bound: a small fraction of the 17.6 GF per-core
        // peak, but nonzero — the steady state stays on the L1-hit path.
        assert!(
            spmv.value > 0.0 && spmv.value < 8.0,
            "spmv operating point drifted off the bandwidth roof: {}",
            spmv.value
        );
        let halo = a
            .iter()
            .find(|m| m.name == "stencil_halo_exchange_s")
            .unwrap();
        assert!(halo.value > 0.0, "stencil cluster exposed no halo stage");
        let hit_rate = a.iter().find(|m| m.name == "serve_hit_rate").unwrap();
        // 1200 requests over 24 unique specs: all but the first touch of
        // each key must be a hit.
        assert!(
            (hit_rate.value - (1200.0 - 24.0) / 1200.0).abs() < 1e-12,
            "hit rate drifted: {}",
            hit_rate.value
        );
        let rps = a.iter().find(|m| m.name == "serve_requests_per_s").unwrap();
        assert!(rps.value > 0.0 && rps.value.is_finite());
        let sched = a
            .iter()
            .find(|m| m.name == "schedule_lint_throughput")
            .unwrap();
        assert!(sched.value > 10_000.0, "sweep shrank to {}", sched.value);
        let p99 = a.iter().find(|m| m.name == "fleet_p99_time_s").unwrap();
        assert!(p99.value > 0.0);
        let thr = a
            .iter()
            .find(|m| m.name == "fanout_resolution_throughput")
            .unwrap();
        // Rack campaigns amplify: more events than the 3 roots per
        // plan-hour, or the fan-out stopped fanning.
        assert!(thr.value > 3.0, "throughput collapsed: {}", thr.value);
        let speedup = a
            .iter()
            .find(|m| m.name == "emu_block_replay_speedup")
            .unwrap();
        assert!(
            speedup.value >= 5.0,
            "block replay must cover >= 5x of steady state, got {}",
            speedup.value
        );
        let des = a
            .iter()
            .find(|m| m.name == "parallel_des_events_per_s")
            .unwrap();
        assert!(des.value > 0.0 && des.value.is_finite());
        let reduction = a
            .iter()
            .find(|m| m.name == "patch_volume_reduction")
            .unwrap();
        assert!(
            reduction.value >= 10.0,
            "patch must cut redistribution volume >= 10x, got {}",
            reduction.value
        );
        let base = parse_baseline(&baseline_json(&a)).unwrap();
        assert!(compare(&base, &a, GATE_TOLERANCE).pass());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
