//! Experiment regenerators: every table and figure of the paper's
//! evaluation, as structured data plus plain-text renderers.
//!
//! Each `table*`/`fig*` module produces rows/series through the machine
//! models and simulations of the workspace, paired with the number the
//! paper reports so drift is visible at a glance. The `src/bin/`
//! executables are thin wrappers; `cargo run -p phi-bench --bin repro`
//! regenerates everything.

#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod faults;
pub mod fleet;
pub mod format;
pub mod lintgate;
pub mod perfgate;
pub mod schedlint;
pub mod serve;
pub mod tune;
pub mod workloads;

pub use experiments::*;
pub use faults::{
    experiments_fault_section_md, fault_campaign_cluster_render, fault_campaign_cluster_rows,
    fault_campaign_render, fault_campaign_rows, paper_cluster, CampaignRow,
};
pub use fleet::{
    availability_curve, best_budget, budget_sweep, completion_percentiles, crossover_frontier,
    crossover_point, fleet_render, fleet_render_stored, run_fleet, run_fleet_stored, FleetOptions,
    FleetResult, FleetStoreStats, SeedOutcome,
};
pub use format::TextTable;
pub use phi_hpl::native::NativeScheme;
pub use serve::{serve_load, serve_load_render, ServeLoadOptions, ServeLoadResult};
pub use workloads::{lab_render, lab_rows, workload_diff, LabRow};
