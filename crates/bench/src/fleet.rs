//! Fleet-scale Monte Carlo availability campaigns: the fault model as
//! *statistics*, not anecdotes.
//!
//! One seeded campaign is an anecdote; an operator sizing a Phi
//! deployment needs the distribution — what completion time the 99.9th
//! percentile run pays, what fraction of runs still clear a GFLOPS
//! floor, where the locality-preserving patch remap stops beating the
//! wholesale reshape, and how many correlated deaths the patch budget
//! should absorb before giving up. [`run_fleet`] answers those by
//! streaming tens of thousands of seeded [`FaultPlan::fleet_campaign`]
//! draws through the fault-tolerant cluster simulators — each seed runs
//! the Table III hybrid system under both remap strategies plus a
//! native-mode cluster — and reducing the per-seed outcomes into
//! P50/P99/P99.9 completion times, a GFLOPS-availability curve, a
//! patch-vs-wholesale crossover frontier keyed by hosts lost, and a
//! death-budget sweep.
//!
//! Determinism is the contract: seeds are striped across worker
//! threads with a by-index merge (the `phi-tune` evaluator's idiom), so
//! the outcome vector — and therefore every reduced statistic and the
//! rendered report — is byte-identical at any thread count. The
//! [`FleetResult::digest`] folds every per-seed fingerprint in seed
//! order so one `u64` witnesses the whole campaign.

use crate::faults::paper_cluster;
use crate::TextTable;
use phi_fabric::RemapStrategy;
use phi_faults::{CampaignScope, FaultPlan};
use phi_hpl::hybrid::{simulate_cluster, HybridConfig};
use phi_hpl::native::{simulate_native_cluster, simulate_native_cluster_ft, NativeClusterConfig};
use phi_hpl::{simulate_cluster_faulty, FtPolicy};
use phi_serve::store::{Record, ResultStore};
use std::fmt::Write;

/// FNV-1a offset basis (matches the faults crate's fingerprints).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_mix(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Knobs of one fleet campaign.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Seeds (campaigns) to run. The acceptance default is 10 000; the
    /// CI smoke job runs a small count.
    pub seeds: usize,
    /// Base seed: campaign `i` draws from `seed0 + i`.
    pub seed0: u64,
    /// Worker threads; `0` picks `available_parallelism` (capped at 8).
    /// The results are byte-identical at any value.
    pub threads: usize,
    /// Which failure-mode family the campaigns draw from.
    pub scope: CampaignScope,
    /// Root events per campaign (cascade fan-out adds more).
    pub events: usize,
    /// Patch death budgets swept for the expected-throughput maximum.
    pub budgets: Vec<usize>,
    /// Budget-sweep subsample stride: every `stride`-th seed re-runs
    /// under each budget (the sweep costs `budgets × seeds / stride`
    /// extra simulations).
    pub budget_stride: usize,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            seeds: 10_000,
            seed0: 0xF1EE7,
            threads: 0,
            scope: CampaignScope::Mixed,
            events: 3,
            budgets: vec![1, 2, 4, 8, 12, 16, 25],
            budget_stride: 25,
        }
    }
}

/// One campaign's outcome: the same fault plan run under the patch and
/// wholesale remaps on the Table III hybrid system, plus a native-mode
/// cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct SeedOutcome {
    /// The campaign's seed.
    pub seed: u64,
    /// Host ranks permanently lost (patch run accounting).
    pub hosts_lost: usize,
    /// Cards permanently lost.
    pub cards_lost: usize,
    /// Completion time under the locality-preserving patch remap, s.
    pub patch_time_s: f64,
    /// Delivered GFLOPS under the patch remap.
    pub patch_gflops: f64,
    /// Completion time under the wholesale reshape, s.
    pub whsl_time_s: f64,
    /// Native-mode cluster completion time, s.
    pub native_time_s: f64,
    /// Replay fingerprint folding both hybrid runs and the native run.
    pub fingerprint: u64,
}

/// A fleet campaign's full result set, in seed order.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// The options the fleet ran under.
    pub options: FleetOptions,
    /// Per-seed outcomes, index `i` ↔ seed `seed0 + i`.
    pub outcomes: Vec<SeedOutcome>,
    /// Healthy Table III completion time, s.
    pub healthy_time_s: f64,
    /// Healthy Table III GFLOPS.
    pub healthy_gflops: f64,
    /// FNV-1a over every outcome's fingerprint, in seed order.
    pub digest: u64,
}

/// The native-mode companion system: 100 cards on a 10 × 10 grid at
/// N = 90K (each card's share fits its GDDR).
pub fn fleet_native_cluster() -> NativeClusterConfig {
    NativeClusterConfig::new(90_000, 10, 10)
}

/// Runs one seed's campaign through both hybrid remaps and the native
/// cluster. `healthy_s` / `native_healthy_s` scale the fault horizons
/// so every campaign actually overlaps its run.
fn eval_seed(
    cfg: &HybridConfig,
    ncfg: &NativeClusterConfig,
    healthy_s: f64,
    native_healthy_s: f64,
    opts: &FleetOptions,
    idx: usize,
) -> SeedOutcome {
    let seed = opts.seed0.wrapping_add(idx as u64);
    let plan = FaultPlan::fleet_campaign(
        seed,
        healthy_s * 1.2,
        opts.events,
        cfg.grid.size(),
        cfg.cards_per_node,
        opts.scope,
    );
    let patch = simulate_cluster_faulty(cfg, &plan, &FtPolicy::default(), false);
    let whsl = simulate_cluster_faulty(
        cfg,
        &plan,
        &FtPolicy::default().with_remap(RemapStrategy::Wholesale),
        false,
    );
    let native_plan = FaultPlan::fleet_campaign(
        seed,
        native_healthy_s * 1.2,
        opts.events,
        ncfg.grid.size(),
        1,
        opts.scope,
    );
    let native = simulate_native_cluster_ft(ncfg, &native_plan, true, RemapStrategy::Patch);
    let f = patch
        .result
        .report
        .faults
        .expect("faulty runs carry accounting");
    let mut fp = patch.run_fingerprint();
    fnv_mix(&mut fp, whsl.run_fingerprint());
    fnv_mix(&mut fp, native.time_s.to_bits());
    SeedOutcome {
        seed,
        hosts_lost: f.hosts_lost,
        cards_lost: f.cards_lost,
        patch_time_s: patch.result.report.time_s,
        patch_gflops: patch.result.report.gflops,
        whsl_time_s: whsl.result.report.time_s,
        native_time_s: native.time_s,
        fingerprint: fp,
    }
}

fn resolve_threads(threads: usize, work: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    if threads == 0 { auto } else { threads }
        .min(work.max(1))
        .max(1)
}

/// Thread-striped, deterministically merged map over `0..count`:
/// thread `t` takes indices `t, t + T, t + 2T, …` and results land in
/// their input slots, so the output is independent of `T` and of
/// thread scheduling — the `phi-tune` evaluator's idiom.
pub(crate) fn striped_map<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let nthreads = resolve_threads(threads, count);
    let mut out: Vec<Option<R>> = Vec::with_capacity(count);
    out.resize_with(count, || None);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                s.spawn(move || {
                    (t..count)
                        .step_by(nthreads)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("fleet worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("slot evaluated"))
        .collect()
}

/// Runs the whole fleet: `opts.seeds` campaigns, thread-striped,
/// byte-identical at any thread count.
pub fn run_fleet(opts: &FleetOptions) -> FleetResult {
    let cfg = paper_cluster();
    let ncfg = fleet_native_cluster();
    let healthy = simulate_cluster(&cfg, false).report;
    let native_healthy_s = simulate_native_cluster(&ncfg).time_s;
    let outcomes = striped_map(opts.seeds, opts.threads, |i| {
        eval_seed(&cfg, &ncfg, healthy.time_s, native_healthy_s, opts, i)
    });
    let mut digest = FNV_OFFSET;
    for o in &outcomes {
        fnv_mix(&mut digest, o.fingerprint);
    }
    FleetResult {
        options: opts.clone(),
        outcomes,
        healthy_time_s: healthy.time_s,
        healthy_gflops: healthy.gflops,
        digest,
    }
}

impl Record for SeedOutcome {
    const NAMESPACE: &'static str = "fleet";
    const HEADER: &'static str = "phi-serve fleet v1";

    fn write_fields(&self, out: &mut String) {
        out.push_str(&format!(
            "seed {:016x} hosts={} cards={}\n",
            self.seed, self.hosts_lost, self.cards_lost
        ));
        out.push_str(&format!(
            "times pt={:016x} pg={:016x} wt={:016x} nt={:016x}\n",
            self.patch_time_s.to_bits(),
            self.patch_gflops.to_bits(),
            self.whsl_time_s.to_bits(),
            self.native_time_s.to_bits(),
        ));
        out.push_str(&format!("fp {:016x}\n", self.fingerprint));
    }

    fn parse_fields(fields: &str) -> Option<Self> {
        fn field<'a>(tokens: &'a [&str], name: &str) -> Option<&'a str> {
            tokens
                .iter()
                .find_map(|t| t.strip_prefix(name)?.strip_prefix('='))
        }
        fn bits(s: &str) -> Option<f64> {
            Some(f64::from_bits(u64::from_str_radix(s, 16).ok()?))
        }
        let mut lines = fields.lines();
        let s: Vec<&str> = lines.next()?.strip_prefix("seed ")?.split(' ').collect();
        let seed = u64::from_str_radix(s.first()?, 16).ok()?;
        let t: Vec<&str> = lines.next()?.strip_prefix("times ")?.split(' ').collect();
        let fp = u64::from_str_radix(lines.next()?.strip_prefix("fp ")?, 16).ok()?;
        if lines.next().is_some() {
            return None;
        }
        Some(Self {
            seed,
            hosts_lost: field(&s, "hosts")?.parse().ok()?,
            cards_lost: field(&s, "cards")?.parse().ok()?,
            patch_time_s: bits(field(&t, "pt")?)?,
            patch_gflops: bits(field(&t, "pg")?)?,
            whsl_time_s: bits(field(&t, "wt")?)?,
            native_time_s: bits(field(&t, "nt")?)?,
            fingerprint: fp,
        })
    }
}

/// Bumped when the per-seed evaluation or the record layout changes
/// meaning, so stale fleet records can never serve a current campaign.
const FLEET_STORE_VERSION: u64 = 1;

/// The content-addressed key of one fleet seed's evaluation: everything
/// [`eval_seed`] reads — the seed itself, the campaign shape and the
/// healthy completion times that scale both fault horizons. Two fleets
/// with identical options share every key; changing the scope, the
/// event count or either system invalidates all of them.
fn fleet_seed_key(
    seed: u64,
    opts: &FleetOptions,
    healthy_s: f64,
    native_healthy_s: f64,
    grid_size: usize,
    cards_per_node: usize,
) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_mix(&mut h, FLEET_STORE_VERSION);
    fnv_mix(&mut h, seed);
    for b in opts.scope.name().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    fnv_mix(&mut h, opts.events as u64);
    fnv_mix(&mut h, healthy_s.to_bits());
    fnv_mix(&mut h, native_healthy_s.to_bits());
    fnv_mix(&mut h, grid_size as u64);
    fnv_mix(&mut h, cards_per_node as u64);
    h
}

/// Store traffic of one [`run_fleet_stored`] call. Per-seed, so
/// `hits + misses == seeds`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStoreStats {
    /// Seeds served from the store without simulating.
    pub hits: usize,
    /// Seeds evaluated and written back (includes corrupt-record
    /// recoveries — a damaged record is a miss, recomputed and
    /// overwritten, never an error).
    pub misses: usize,
}

/// [`run_fleet`] streamed through a content-addressed [`ResultStore`]:
/// each seed's outcome is keyed by seed × options × machine
/// fingerprints in the `fleet`
/// namespace, hits skip the three simulations entirely, and misses are
/// written back — so a second identical fleet is a pure cache hit. The
/// result (outcomes, digest, report) is byte-identical to the unstored
/// fleet at any thread count and any hit/miss split.
pub fn run_fleet_stored(
    opts: &FleetOptions,
    store: &ResultStore,
) -> (FleetResult, FleetStoreStats) {
    let cfg = paper_cluster();
    let ncfg = fleet_native_cluster();
    let healthy = simulate_cluster(&cfg, false).report;
    let native_healthy_s = simulate_native_cluster(&ncfg).time_s;
    let evaluated = striped_map(opts.seeds, opts.threads, |i| {
        let seed = opts.seed0.wrapping_add(i as u64);
        let key = fleet_seed_key(
            seed,
            opts,
            healthy.time_s,
            native_healthy_s,
            cfg.grid.size(),
            cfg.cards_per_node,
        );
        // A hit must witness the exact seed: a colliding or stale
        // record is treated as a miss, not served.
        if let Ok(Some(out)) = store.load::<SeedOutcome>(key) {
            if out.seed == seed {
                return (out, true);
            }
        }
        let out = eval_seed(&cfg, &ncfg, healthy.time_s, native_healthy_s, opts, i);
        // A failed write-back costs a future hit, never correctness.
        let _ = store.put(key, &out);
        (out, false)
    });
    let mut stats = FleetStoreStats::default();
    let mut outcomes = Vec::with_capacity(evaluated.len());
    for (out, hit) in evaluated {
        if hit {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        outcomes.push(out);
    }
    let mut digest = FNV_OFFSET;
    for o in &outcomes {
        fnv_mix(&mut digest, o.fingerprint);
    }
    (
        FleetResult {
            options: opts.clone(),
            outcomes,
            healthy_time_s: healthy.time_s,
            healthy_gflops: healthy.gflops,
            digest,
        },
        stats,
    )
}

/// Nearest-rank percentile (`p` in `[0, 100]`) over a `total_cmp`-sorted
/// copy of `xs`. Empty input returns `NaN`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The headline completion-time percentiles of the patch-remap runs:
/// `[(label, seconds)]` for P50, P99 and P99.9.
pub fn completion_percentiles(fleet: &FleetResult) -> Vec<(&'static str, f64)> {
    let times: Vec<f64> = fleet.outcomes.iter().map(|o| o.patch_time_s).collect();
    vec![
        ("P50", percentile(&times, 50.0)),
        ("P99", percentile(&times, 99.0)),
        ("P99.9", percentile(&times, 99.9)),
    ]
}

/// The GFLOPS-availability curve: for each threshold fraction of the
/// healthy Table III GFLOPS, the fraction of seeds whose patch-remap
/// run still delivered at least that rate.
pub fn availability_curve(fleet: &FleetResult) -> Vec<(f64, f64)> {
    const THRESHOLDS: [f64; 8] = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0];
    let n = fleet.outcomes.len().max(1) as f64;
    THRESHOLDS
        .iter()
        .map(|&thr| {
            let ok = fleet
                .outcomes
                .iter()
                .filter(|o| o.patch_gflops >= thr * fleet.healthy_gflops)
                .count();
            (thr, ok as f64 / n)
        })
        .collect()
}

/// One row of the patch-vs-wholesale crossover frontier: every seed
/// that lost exactly `hosts_lost` ranks, with the mean completion time
/// under each remap.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontierRow {
    /// Host ranks lost by the seeds in this bucket.
    pub hosts_lost: usize,
    /// Seeds in the bucket.
    pub seeds: usize,
    /// Mean patch-remap completion time, s.
    pub patch_mean_s: f64,
    /// Mean wholesale-reshape completion time, s.
    pub whsl_mean_s: f64,
}

/// Buckets the fleet by hosts lost and compares the two remap
/// strategies' mean completion times per bucket — the empirical
/// crossover frontier. Rows come out in increasing `hosts_lost`.
pub fn crossover_frontier(fleet: &FleetResult) -> Vec<FrontierRow> {
    let mut by_lost: Vec<(usize, usize, f64, f64)> = Vec::new();
    for o in &fleet.outcomes {
        match by_lost.binary_search_by_key(&o.hosts_lost, |r| r.0) {
            Ok(i) => {
                by_lost[i].1 += 1;
                by_lost[i].2 += o.patch_time_s;
                by_lost[i].3 += o.whsl_time_s;
            }
            Err(i) => by_lost.insert(i, (o.hosts_lost, 1, o.patch_time_s, o.whsl_time_s)),
        }
    }
    by_lost
        .into_iter()
        .map(|(hosts_lost, n, pt, wt)| FrontierRow {
            hosts_lost,
            seeds: n,
            patch_mean_s: pt / n as f64,
            whsl_mean_s: wt / n as f64,
        })
        .collect()
}

/// The smallest death count at which the wholesale reshape's mean
/// completion time undercuts the patch remap's — `None` when patch
/// wins everywhere the fleet sampled.
pub fn crossover_point(frontier: &[FrontierRow]) -> Option<usize> {
    frontier
        .iter()
        .find(|r| r.hosts_lost > 0 && r.whsl_mean_s < r.patch_mean_s)
        .map(|r| r.hosts_lost)
}

/// One death budget's expected throughput over the sweep subsample.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetRow {
    /// Patch death budget ([`FtPolicy::death_budget`]).
    pub budget: usize,
    /// Mean delivered GFLOPS across the subsampled seeds.
    pub mean_gflops: f64,
}

/// Sweeps [`FtPolicy::death_budget`] over a strided subsample of the
/// fleet's seeds and reports each budget's expected throughput —
/// thread-striped and byte-identical at any thread count, like the
/// fleet itself.
pub fn budget_sweep(fleet: &FleetResult) -> Vec<BudgetRow> {
    let opts = &fleet.options;
    let cfg = paper_cluster();
    let healthy_s = fleet.healthy_time_s;
    let sub: Vec<u64> = (0..opts.seeds)
        .step_by(opts.budget_stride.max(1))
        .map(|i| opts.seed0.wrapping_add(i as u64))
        .collect();
    if sub.is_empty() {
        return Vec::new();
    }
    opts.budgets
        .iter()
        .map(|&budget| {
            let gflops = striped_map(sub.len(), opts.threads, |k| {
                let plan = FaultPlan::fleet_campaign(
                    sub[k],
                    healthy_s * 1.2,
                    opts.events,
                    cfg.grid.size(),
                    cfg.cards_per_node,
                    opts.scope,
                );
                let pol = FtPolicy::default().with_death_budget(budget);
                simulate_cluster_faulty(&cfg, &plan, &pol, false)
                    .result
                    .report
                    .gflops
            });
            BudgetRow {
                budget,
                mean_gflops: gflops.iter().sum::<f64>() / gflops.len() as f64,
            }
        })
        .collect()
}

/// The budget maximizing expected throughput (first maximum wins ties).
pub fn best_budget(sweep: &[BudgetRow]) -> Option<usize> {
    sweep
        .iter()
        .max_by(|a, b| {
            a.mean_gflops
                .total_cmp(&b.mean_gflops)
                .then(b.budget.cmp(&a.budget))
        })
        .map(|r| r.budget)
}

/// Runs the fleet under `opts` and renders the full availability
/// report: headline percentiles, the GFLOPS-availability curve, the
/// patch-vs-wholesale crossover frontier, the death-budget sweep and
/// the campaign digest. Byte-identical at any thread count.
pub fn fleet_render(opts: &FleetOptions) -> String {
    render_fleet_result(&run_fleet(opts))
}

/// [`fleet_render`] streamed through a [`ResultStore`]: byte-identical
/// report (store traffic is returned separately, never printed into the
/// report, so a stored and an unstored run `cmp` equal).
pub fn fleet_render_stored(opts: &FleetOptions, store: &ResultStore) -> (String, FleetStoreStats) {
    let (fleet, stats) = run_fleet_stored(opts, store);
    (render_fleet_result(&fleet), stats)
}

fn render_fleet_result(fleet: &FleetResult) -> String {
    let opts = &fleet.options;
    let mut out = String::new();
    writeln!(
        out,
        "== Fleet availability campaign: {} seeds, scope {}, {} events/campaign ==",
        opts.seeds,
        opts.scope.name(),
        opts.events
    )
    .expect("writing to a String cannot fail");
    writeln!(
        out,
        "system: Table III hybrid (N = 825K, 10x10) under patch + wholesale remaps, \
         native cluster (N = 90K, 10x10)\nhealthy: {:.2} s, {:.0} GFLOPS\n",
        fleet.healthy_time_s, fleet.healthy_gflops
    )
    .expect("writing to a String cannot fail");

    out.push_str("completion time (patch remap):\n");
    let mut t = TextTable::new(["percentile", "t(s)", "vs healthy"]);
    for (label, v) in completion_percentiles(fleet) {
        t.row([
            label.to_string(),
            format!("{v:.2}"),
            format!("{:+.1}%", 100.0 * (v / fleet.healthy_time_s - 1.0)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nGFLOPS availability (fraction of seeds at or above the floor):\n");
    let mut t = TextTable::new(["floor", "GFLOPS", "availability"]);
    for (thr, frac) in availability_curve(fleet) {
        t.row([
            format!("{:.0}%", 100.0 * thr),
            format!("{:.0}", thr * fleet.healthy_gflops),
            format!("{:.3}", frac),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\npatch-vs-wholesale crossover frontier (mean t by hosts lost):\n");
    let frontier = crossover_frontier(fleet);
    let mut t = TextTable::new([
        "hosts lost",
        "seeds",
        "patch t(s)",
        "wholesale t(s)",
        "winner",
    ]);
    for r in &frontier {
        t.row([
            r.hosts_lost.to_string(),
            r.seeds.to_string(),
            format!("{:.2}", r.patch_mean_s),
            format!("{:.2}", r.whsl_mean_s),
            if r.whsl_mean_s < r.patch_mean_s {
                "wholesale".to_string()
            } else {
                "patch".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    match crossover_point(&frontier) {
        Some(d) => writeln!(
            out,
            "crossover: wholesale overtakes patch at {d} hosts lost"
        )
        .expect("writing to a String cannot fail"),
        None => out.push_str("crossover: none — patch wins at every sampled death count\n"),
    }

    out.push_str("\ndeath-budget sweep (expected throughput on the subsample):\n");
    let sweep = budget_sweep(fleet);
    let mut t = TextTable::new(["budget", "mean GFLOPS"]);
    for r in &sweep {
        t.row([r.budget.to_string(), format!("{:.0}", r.mean_gflops)]);
    }
    out.push_str(&t.render());
    if let Some(b) = best_budget(&sweep) {
        writeln!(out, "best budget: {b} deaths before wholesale reshape")
            .expect("writing to a String cannot fail");
    }

    writeln!(out, "\nfleet digest: {:#018x}", fleet.digest)
        .expect("writing to a String cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> FleetOptions {
        FleetOptions {
            seeds: 40,
            budgets: vec![2, 12],
            budget_stride: 10,
            ..FleetOptions::default()
        }
    }

    #[test]
    fn fleet_is_byte_identical_at_any_thread_count() {
        let base = run_fleet(&FleetOptions {
            threads: 1,
            ..small_opts()
        });
        for threads in [2usize, 8] {
            let other = run_fleet(&FleetOptions {
                threads,
                ..small_opts()
            });
            assert_eq!(other.digest, base.digest, "threads {threads}");
            assert_eq!(other.outcomes, base.outcomes, "threads {threads}");
        }
    }

    #[test]
    fn percentiles_and_curve_are_sane() {
        let fleet = run_fleet(&small_opts());
        let pcts = completion_percentiles(&fleet);
        assert_eq!(pcts.len(), 3);
        // P50 ≤ P99 ≤ P99.9, all at or above the healthy time.
        assert!(pcts[0].1 <= pcts[1].1 && pcts[1].1 <= pcts[2].1);
        assert!(pcts[0].1 >= fleet.healthy_time_s);
        // Availability is monotone non-increasing in the floor.
        let curve = availability_curve(&fleet);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1, "{curve:?}");
        }
        // Every outcome is monotone vs healthy.
        for o in &fleet.outcomes {
            assert!(o.patch_time_s >= fleet.healthy_time_s);
            assert!(o.patch_gflops <= fleet.healthy_gflops);
        }
    }

    #[test]
    fn frontier_covers_every_seed_and_budget_sweep_runs() {
        let fleet = run_fleet(&small_opts());
        let frontier = crossover_frontier(&fleet);
        assert_eq!(
            frontier.iter().map(|r| r.seeds).sum::<usize>(),
            fleet.outcomes.len()
        );
        for w in frontier.windows(2) {
            assert!(w[0].hosts_lost < w[1].hosts_lost);
        }
        let sweep = budget_sweep(&fleet);
        assert_eq!(sweep.len(), 2);
        assert!(best_budget(&sweep).is_some());
        // A generous budget can't underperform a starved one here: the
        // patch dominance property lifts to the means.
        assert!(sweep[1].mean_gflops >= sweep[0].mean_gflops);
    }

    #[test]
    fn scopes_produce_distinct_fleets() {
        let mixed = run_fleet(&small_opts());
        let rack = run_fleet(&FleetOptions {
            scope: CampaignScope::Rack,
            ..small_opts()
        });
        let storm = run_fleet(&FleetOptions {
            scope: CampaignScope::Storm,
            ..small_opts()
        });
        assert_ne!(mixed.digest, rack.digest);
        assert_ne!(mixed.digest, storm.digest);
        assert_ne!(rack.digest, storm.digest);
        // Rack campaigns kill correlated sets: strictly more hosts lost
        // on average than the mixed blend.
        let lost = |f: &FleetResult| f.outcomes.iter().map(|o| o.hosts_lost).sum::<usize>();
        assert!(lost(&rack) > lost(&mixed));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn stored_fleet_matches_unstored_and_second_run_is_pure_hit() {
        let dir = std::env::temp_dir().join(format!("phi-fleet-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let opts = FleetOptions {
            seeds: 20,
            ..small_opts()
        };
        let plain = run_fleet(&opts);
        let (cold, cold_stats) = run_fleet_stored(&opts, &store);
        assert_eq!(cold_stats.misses, opts.seeds);
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold.digest, plain.digest, "store must not change results");
        assert_eq!(cold.outcomes, plain.outcomes);

        // Second identical fleet: every seed deduplicates to a hit, at
        // a different thread count, with identical bytes.
        let (warm, warm_stats) = run_fleet_stored(
            &FleetOptions {
                threads: 3,
                ..opts.clone()
            },
            &store,
        );
        assert_eq!(warm_stats.hits, opts.seeds, "{warm_stats:?}");
        assert_eq!(warm_stats.misses, 0);
        assert_eq!(warm.digest, plain.digest);
        assert_eq!(warm.outcomes, plain.outcomes);

        // A corrupt record is a per-seed miss, recovered by rewrite.
        let keys = store.keys::<SeedOutcome>().unwrap();
        assert_eq!(keys.len(), opts.seeds);
        std::fs::write(store.record_path::<SeedOutcome>(keys[0]), "junk\n").unwrap();
        let (fixed, fixed_stats) = run_fleet_stored(&opts, &store);
        assert_eq!(fixed_stats.misses, 1);
        assert_eq!(fixed_stats.hits, opts.seeds - 1);
        assert_eq!(fixed.digest, plain.digest);

        // A changed scope shares no keys with the mixed fleet.
        let (_, other_stats) = run_fleet_stored(
            &FleetOptions {
                scope: CampaignScope::Rack,
                ..opts.clone()
            },
            &store,
        );
        assert_eq!(other_stats.hits, 0, "scope change must re-key every seed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_outcome_record_round_trips_byte_identically() {
        use phi_serve::store::{parse_record, serialize_record};
        let out = SeedOutcome {
            seed: 0xF1EE7,
            hosts_lost: 2,
            cards_lost: 3,
            patch_time_s: 123.456,
            patch_gflops: -0.0,
            whsl_time_s: f64::MIN_POSITIVE / 2.0,
            native_time_s: 99.5,
            fingerprint: 0xABCD,
        };
        let text = serialize_record(&out);
        let back: SeedOutcome = parse_record(&text).expect("own serialization parses");
        assert_eq!(back.patch_gflops.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back, out);
        assert_eq!(serialize_record(&back), text);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let opts = FleetOptions {
            seeds: 12,
            budgets: vec![2, 12],
            budget_stride: 6,
            ..FleetOptions::default()
        };
        let a = fleet_render(&opts);
        let b = fleet_render(&FleetOptions { threads: 3, ..opts });
        assert_eq!(a, b, "report must not depend on the thread count");
        for needle in [
            "P99.9",
            "availability",
            "crossover",
            "death-budget sweep",
            "fleet digest",
        ] {
            assert!(a.contains(needle), "missing {needle}:\n{a}");
        }
    }
}
