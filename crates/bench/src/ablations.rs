//! Ablation studies for the design decisions DESIGN.md calls out.
//!
//! Each function isolates one mechanism the paper argues for and
//! measures the system with and without it:
//!
//! 1. **super-stages + regrouping** vs a fixed thread partition
//!    (Section IV-A's extension over Buttari et al.);
//! 2. **dynamic work stealing** vs a static host/card split
//!    (Section V-B);
//! 3. **run-time tile-size selection** vs fixed tile grids
//!    (Section V-B);
//! 4. **prefetch-fill tolerance** — the Fig. 1c defer-threshold and the
//!    L1-port holes that motivate Basic Kernel 2.

use crate::format::TextTable;
use phi_blas::gemm::MicroKernelKind;
use phi_hpl::native::NativeConfig;
use phi_hpl::offload::OffloadModel;
use phi_knc::{kernels, PipelineConfig};
use phi_matrix::HplRng;

/// One row of the super-stage ablation.
#[derive(Clone, Copy, Debug)]
pub struct SuperstageRow {
    /// Problem size.
    pub n: usize,
    /// GFLOPS with adaptive regrouping (the paper's scheme).
    pub adaptive_gflops: f64,
    /// GFLOPS with groups fixed at the initial size.
    pub fixed_small_gflops: f64,
    /// GFLOPS with a single whole-machine group (fully serialized tasks).
    pub fixed_whole_gflops: f64,
}

/// Runs the super-stage ablation over a size sweep.
pub fn ablation_superstage(sizes: &[usize]) -> Vec<SuperstageRow> {
    sizes
        .iter()
        .map(|&n| {
            let base = NativeConfig::new(n);
            let adaptive = base.simulate(crate::NativeScheme::DynamicScheduling);
            let mut small = base;
            small.fixed_group_threads = Some(base.min_group_threads);
            let small_r = phi_hpl::native::model::simulate_dynamic(&small, false);
            let mut whole = base;
            whole.fixed_group_threads = Some(base.total_threads);
            let whole_r = phi_hpl::native::model::simulate_dynamic(&whole, false);
            SuperstageRow {
                n,
                adaptive_gflops: adaptive.gflops,
                fixed_small_gflops: small_r.gflops,
                fixed_whole_gflops: whole_r.gflops,
            }
        })
        .collect()
}

/// Renders the super-stage ablation.
pub fn superstage_render() -> String {
    let mut t = TextTable::new(["N", "adaptive", "fixed 16-thr groups", "one 240-thr group"]);
    for r in ablation_superstage(&[4096, 8192, 16384, 30_720]) {
        t.row([
            r.n.to_string(),
            format!("{:.0}", r.adaptive_gflops),
            format!("{:.0}", r.fixed_small_gflops),
            format!("{:.0}", r.fixed_whole_gflops),
        ]);
    }
    t.render()
}

/// One row of the work-stealing ablation.
#[derive(Clone, Copy, Debug)]
pub struct StealingRow {
    /// Assumed card share of a static split.
    pub card_fraction: f64,
    /// Static-split GFLOPS.
    pub static_gflops: f64,
    /// Dynamic-stealing GFLOPS (fraction-independent).
    pub stealing_gflops: f64,
}

/// Work stealing vs static splits around the "ideal" fraction.
pub fn ablation_stealing(m: usize, host_cores: f64) -> Vec<StealingRow> {
    let model = OffloadModel::default();
    let grid = (6, 6);
    let steal = model.simulate_with_grid(m, m, 1, host_cores, grid);
    [0.70f64, 0.80, 0.88, 0.95, 1.0]
        .iter()
        .map(|&f| {
            let st = model.simulate_static_split(m, m, host_cores, grid, f);
            StealingRow {
                card_fraction: f,
                static_gflops: st.gflops,
                stealing_gflops: steal.gflops,
            }
        })
        .collect()
}

/// Renders the stealing ablation.
pub fn stealing_render() -> String {
    let mut t = TextTable::new(["card share", "static split GF", "stealing GF"]);
    for r in ablation_stealing(40_000, 12.0) {
        t.row([
            format!("{:.0}%", 100.0 * r.card_fraction),
            format!("{:.0}", r.static_gflops),
            format!("{:.0}", r.stealing_gflops),
        ]);
    }
    t.render()
}

/// One row of the tile-size ablation.
#[derive(Clone, Copy, Debug)]
pub struct TileRow {
    /// Matrix size.
    pub n: usize,
    /// Fixed coarse grid (2×2) GFLOPS.
    pub coarse_gflops: f64,
    /// Fixed fine grid (10×10) GFLOPS.
    pub fine_gflops: f64,
    /// Run-time-selected grid GFLOPS and the grid chosen.
    pub selected_gflops: f64,
    /// See `selected_gflops`.
    pub selected_grid: (usize, usize),
}

/// Fixed tile grids vs run-time selection across sizes.
pub fn ablation_tiles(sizes: &[usize]) -> Vec<TileRow> {
    let model = OffloadModel::default();
    sizes
        .iter()
        .map(|&n| {
            let coarse = model.simulate_with_grid(n, n, 1, 0.0, (2, 2));
            let fine = model.simulate_with_grid(n, n, 1, 0.0, (10, 10));
            let sel = model.simulate(n, n, 1, 0.0);
            TileRow {
                n,
                coarse_gflops: coarse.gflops,
                fine_gflops: fine.gflops,
                selected_gflops: sel.gflops,
                selected_grid: sel.grid,
            }
        })
        .collect()
}

/// Renders the tile-size ablation.
pub fn tiles_render() -> String {
    let mut t = TextTable::new(["M=N", "2x2 grid", "10x10 grid", "selected", "grid"]);
    for r in ablation_tiles(&[10_000, 20_000, 40_000, 82_000]) {
        t.row([
            r.n.to_string(),
            format!("{:.0}", r.coarse_gflops),
            format!("{:.0}", r.fine_gflops),
            format!("{:.0}", r.selected_gflops),
            format!("{}x{}", r.selected_grid.0, r.selected_grid.1),
        ]);
    }
    t.render()
}

/// One row of the prefetch ablation.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchRow {
    /// Fill defer threshold (Fig. 1c "threshold cycles").
    pub defer_threshold: u32,
    /// Kernel 1 steady efficiency.
    pub kernel1_eff: f64,
    /// Kernel 2 steady efficiency.
    pub kernel2_eff: f64,
}

/// Sweeps the prefetch-fill defer threshold on the emulator.
pub fn ablation_prefetch(thresholds: &[u32]) -> Vec<PrefetchRow> {
    let depth = 300;
    let run = |kind: MicroKernelKind, thr: u32| {
        let mr = kernels::kernel_mr(kind);
        let mut rng = HplRng::new(3);
        let a: Vec<f64> = (0..mr * depth).map(|_| rng.next_value()).collect();
        let bs =
            std::array::from_fn(|_| (0..depth * kernels::NR).map(|_| rng.next_value()).collect());
        let cfg = PipelineConfig {
            fill_defer_threshold: thr,
            ..PipelineConfig::default()
        };
        kernels::run_tile_product(kind, depth, &a, &bs, cfg).steady_efficiency
    };
    thresholds
        .iter()
        .map(|&thr| PrefetchRow {
            defer_threshold: thr,
            kernel1_eff: run(MicroKernelKind::Kernel1, thr),
            kernel2_eff: run(MicroKernelKind::Kernel2, thr),
        })
        .collect()
}

/// Renders the prefetch ablation.
pub fn prefetch_render() -> String {
    let mut t = TextTable::new(["defer threshold", "Kernel1 eff", "Kernel2 eff"]);
    for r in ablation_prefetch(&[1, 2, 4, 8, 16, 64]) {
        t.row([
            r.defer_threshold.to_string(),
            format!("{:.1}%", 100.0 * r.kernel1_eff),
            format!("{:.1}%", 100.0 * r.kernel2_eff),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_regrouping_tracks_the_best_fixed_choice() {
        // The paper's point (Section IV-A): no single fixed partition
        // works across problem sizes. Small fixed groups collapse on
        // small problems (exposed panels); one whole-machine group
        // serializes away the look-ahead. Adaptive regrouping must stay
        // within a whisker of the best fixed choice at *every* size —
        // without knowing the size in advance.
        for r in ablation_superstage(&[4096, 30_720]) {
            let best_fixed = r.fixed_small_gflops.max(r.fixed_whole_gflops);
            assert!(
                r.adaptive_gflops >= best_fixed * 0.98,
                "n={}: adaptive {:.0} vs best fixed {:.0}",
                r.n,
                r.adaptive_gflops,
                best_fixed
            );
        }
        // And the failure modes of the fixed choices are real: small
        // fixed groups lose badly at 4K...
        let small_n = &ablation_superstage(&[4096])[0];
        assert!(
            small_n.adaptive_gflops > 2.0 * small_n.fixed_small_gflops,
            "fixed-small must collapse at 4K: {:.0} vs {:.0}",
            small_n.adaptive_gflops,
            small_n.fixed_small_gflops
        );
        // ...and the whole-machine group trails at 30K (no overlap).
        let big_n = &ablation_superstage(&[30_720])[0];
        assert!(
            big_n.adaptive_gflops > big_n.fixed_whole_gflops,
            "serialized whole-machine group must lose at 30K: {:.0} vs {:.0}",
            big_n.adaptive_gflops,
            big_n.fixed_whole_gflops
        );
    }

    #[test]
    fn stealing_tolerates_misestimation() {
        let rows = ablation_stealing(40_000, 12.0);
        let steal = rows[0].stealing_gflops;
        // The best static split can tie stealing...
        let best_static = rows.iter().map(|r| r.static_gflops).fold(0.0, f64::max);
        assert!(best_static <= steal * 1.02);
        // ...but a 15-20% mis-estimate costs real throughput, which
        // stealing is immune to.
        let worst = rows
            .iter()
            .filter(|r| r.card_fraction <= 0.8)
            .map(|r| r.static_gflops)
            .fold(f64::INFINITY, f64::min);
        assert!(
            worst < steal * 0.93,
            "mis-split {worst:.0} vs stealing {steal:.0}"
        );
    }

    #[test]
    fn tile_selection_beats_fixed_grids() {
        for r in ablation_tiles(&[10_000, 82_000]) {
            let best_fixed = r.coarse_gflops.max(r.fine_gflops);
            assert!(
                r.selected_gflops >= best_fixed * 0.98,
                "n={}: selected {:.0} vs best fixed {:.0}",
                r.n,
                r.selected_gflops,
                best_fixed
            );
        }
        // And the selected grid refines as the matrix grows: big
        // matrices afford more tiles (better transfer hiding) while each
        // tile stays large enough for full kernel efficiency.
        let rows = ablation_tiles(&[10_000, 82_000]);
        assert!(
            rows[1].selected_grid.0 >= rows[0].selected_grid.0,
            "82K grid {:?} vs 10K grid {:?}",
            rows[1].selected_grid,
            rows[0].selected_grid
        );
    }

    #[test]
    fn kernel2_is_threshold_insensitive() {
        let rows = ablation_prefetch(&[1, 8, 64]);
        // Kernel 2's fills always land in its port holes, so the
        // threshold cannot matter.
        let k2: Vec<f64> = rows.iter().map(|r| r.kernel2_eff).collect();
        assert!(k2.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9), "{k2:?}");
        // Kernel 1 *is* sensitive — in the direction Fig. 1c's bounded
        // threshold exists for: deferring fills indefinitely (thr = 64)
        // lets demand accesses catch un-filled lines, which costs more
        // than force-completing the fill with a short stall.
        let k1_bounded = rows[1].kernel1_eff;
        let k1_unbounded = rows[2].kernel1_eff;
        assert!(
            k1_unbounded < k1_bounded - 0.01,
            "unbounded deferral must hurt Kernel 1: {k1_unbounded:.4} vs {k1_bounded:.4}"
        );
    }
}
