//! One regenerator per table/figure of the paper's evaluation.
//!
//! Every function returns structured rows carrying both our measured
//! value and the paper's reported value (where the paper gives one), so
//! the binaries — and `EXPERIMENTS.md` — can show them side by side.

use crate::format::TextTable;
use phi_blas::gemm::MicroKernelKind;
use phi_fabric::ProcessGrid;
use phi_hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use phi_hpl::native::{
    model::simulate_dynamic_traced, static_la::simulate_static_traced, NativeConfig,
};
use phi_hpl::offload::OffloadModel;
use phi_knc::{GemmModel, KncChip, PipelineConfig, Precision};
use phi_matrix::HplRng;
use phi_xeon::{XeonConfig, XeonModel};

// ---------------------------------------------------------------- Table I

/// Renders Table I: the system configurations.
pub fn table1_render() -> String {
    let knc = KncChip::default();
    let xeon = XeonConfig::default();
    let mut t = TextTable::new(["property", "Xeon E5-2670", "Xeon Phi (KNC)"]);
    t.row([
        "sockets x cores x SMT".to_string(),
        format!("{} x {} x 2", xeon.sockets, xeon.cores_per_socket),
        format!("1 x {} x 4", knc.cores_total),
    ]);
    t.row([
        "clock (GHz)".to_string(),
        format!("{:.1}", xeon.freq_ghz),
        format!("{:.1}", knc.freq_ghz),
    ]);
    t.row([
        "DP GFLOPS".to_string(),
        format!("{:.0}", xeon.peak_gflops()),
        format!("{:.0}", knc.full_peak_gflops(Precision::F64)),
    ]);
    t.row([
        "SP GFLOPS".to_string(),
        format!("{:.0}", 2.0 * xeon.peak_gflops()),
        format!("{:.0}", knc.full_peak_gflops(Precision::F32)),
    ]);
    t.row([
        "STREAM BW (GB/s)".to_string(),
        format!("{:.0}", xeon.stream_bw_gbs),
        format!("{:.0}", knc.stream_bw_gbs),
    ]);
    t.row([
        "memory".to_string(),
        format!("{:.0} GB DDR", xeon.dram_gib),
        format!("{:.0} GB GDDR", knc.memory_gib),
    ]);
    t.row([
        "PCIe BW (GB/s)".to_string(),
        format!("{:.0}", xeon.pcie_gbs),
        "-".to_string(),
    ]);
    t.render()
}

// --------------------------------------------------------------- Table II

/// One row of Table II.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Inner blocking.
    pub k: usize,
    /// Our SGEMM efficiency.
    pub sp_eff: f64,
    /// Our SGEMM GFLOPS.
    pub sp_gflops: f64,
    /// Our DGEMM efficiency.
    pub dp_eff: f64,
    /// Our DGEMM GFLOPS.
    pub dp_gflops: f64,
    /// Paper's SGEMM efficiency.
    pub paper_sp_eff: f64,
    /// Paper's DGEMM efficiency.
    pub paper_dp_eff: f64,
}

/// The Table II sweep: SGEMM/DGEMM efficiency vs `k` at M = N = 28,000.
pub fn table2_rows() -> Vec<Table2Row> {
    const PAPER: [(usize, f64, f64); 6] = [
        (120, 0.883, 0.867),
        (180, 0.893, 0.886),
        (240, 0.901, 0.891),
        (300, 0.904, 0.894),
        (340, 0.906, 0.893),
        (400, 0.908, 0.889),
    ];
    let m = GemmModel::default();
    PAPER
        .iter()
        .map(|&(k, psp, pdp)| Table2Row {
            k,
            sp_eff: m.efficiency_vs_k(k, Precision::F32),
            sp_gflops: m.gflops_vs_k(k, Precision::F32),
            dp_eff: m.efficiency_vs_k(k, Precision::F64),
            dp_gflops: m.gflops_vs_k(k, Precision::F64),
            paper_sp_eff: psp,
            paper_dp_eff: pdp,
        })
        .collect()
}

/// Renders Table II.
pub fn table2_render() -> String {
    let mut t = TextTable::new([
        "k", "SP eff", "SP GF", "SP paper", "DP eff", "DP GF", "DP paper",
    ]);
    for r in table2_rows() {
        t.row([
            r.k.to_string(),
            format!("{:.1}%", 100.0 * r.sp_eff),
            format!("{:.0}", r.sp_gflops),
            format!("{:.1}%", 100.0 * r.paper_sp_eff),
            format!("{:.1}%", 100.0 * r.dp_eff),
            format!("{:.0}", r.dp_gflops),
            format!("{:.1}%", 100.0 * r.paper_dp_eff),
        ]);
    }
    t.render()
}

// ----------------------------------------------------------------- Fig. 2

/// Outcome of emulating one basic kernel on the cycle-level core model.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Which kernel.
    pub kind: MicroKernelKind,
    /// FMAs per vector slot (31/32 or 30/32).
    pub theoretical: f64,
    /// Achieved steady-state FMA efficiency from the emulator.
    pub steady: f64,
    /// Pipeline stall cycles caused by blocked prefetch fills.
    pub fill_stalls: u64,
    /// Fills that landed in port-free holes.
    pub fills_in_holes: u64,
}

/// Emulates Basic Kernel 1 and 2 (k = 300) on the cycle-level model.
pub fn fig2_rows() -> Vec<Fig2Row> {
    let depth = 300;
    [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2]
        .into_iter()
        .map(|kind| {
            let mr = phi_knc::kernels::kernel_mr(kind);
            let mut rng = HplRng::new(7);
            let a: Vec<f64> = (0..mr * depth).map(|_| rng.next_value()).collect();
            let bs = std::array::from_fn(|_| {
                (0..depth * phi_knc::kernels::NR)
                    .map(|_| rng.next_value())
                    .collect()
            });
            let rep = phi_knc::run_tile_product(kind, depth, &a, &bs, PipelineConfig::default());
            Fig2Row {
                kind,
                theoretical: rep.theoretical_efficiency,
                steady: rep.steady_efficiency,
                fill_stalls: rep.stats.fill_stall_cycles,
                fills_in_holes: rep.stats.fills_in_holes,
            }
        })
        .collect()
}

/// Renders the Fig. 2 kernel comparison.
pub fn fig2_render() -> String {
    let mut t = TextTable::new([
        "kernel",
        "theoretical",
        "achieved",
        "fill stalls",
        "fills in holes",
    ]);
    for r in fig2_rows() {
        t.row([
            format!("{:?}", r.kind),
            format!("{:.1}%", 100.0 * r.theoretical),
            format!("{:.1}%", 100.0 * r.steady),
            r.fill_stalls.to_string(),
            r.fills_in_holes.to_string(),
        ]);
    }
    t.render()
}

// ----------------------------------------------------------------- Fig. 4

/// One point of Fig. 4.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Point {
    /// Matrix dimension (M = N).
    pub n: usize,
    /// Sandy Bridge EP MKL DGEMM GFLOPS.
    pub snb_gflops: f64,
    /// KNC outer-product kernel (k = 300, no packing) GFLOPS.
    pub knc_kernel_gflops: f64,
    /// KNC DGEMM including packing GFLOPS.
    pub knc_dgemm_gflops: f64,
    /// Packing overhead fraction.
    pub pack_overhead: f64,
}

/// The Fig. 4 size sweep.
pub fn fig4_series(sizes: &[usize]) -> Vec<Fig4Point> {
    let knc = GemmModel::default();
    let xeon = XeonModel::default();
    let peak = knc.chip.native_peak_gflops(Precision::F64);
    sizes
        .iter()
        .map(|&n| Fig4Point {
            n,
            snb_gflops: xeon.dgemm_gflops(n),
            knc_kernel_gflops: knc.outer_product_efficiency(n, n, 300, Precision::F64) * peak,
            knc_dgemm_gflops: knc.dgemm_efficiency(n, 300, Precision::F64) * peak,
            pack_overhead: knc.packing_overhead(n),
        })
        .collect()
}

/// Default Fig. 4 sizes: 1K..28K.
pub fn fig4_default_sizes() -> Vec<usize> {
    (1..=28).map(|i| i * 1000).collect()
}

/// Renders Fig. 4 as a table of series.
pub fn fig4_render() -> String {
    let mut t = TextTable::new(["N", "SNB MKL", "KNC kernel", "KNC dgemm", "pack ovh"]);
    for p in fig4_series(&fig4_default_sizes()) {
        t.row([
            p.n.to_string(),
            format!("{:.0}", p.snb_gflops),
            format!("{:.0}", p.knc_kernel_gflops),
            format!("{:.0}", p.knc_dgemm_gflops),
            format!("{:.1}%", 100.0 * p.pack_overhead),
        ]);
    }
    t.render()
}

// ----------------------------------------------------------------- Fig. 6

/// One point of Fig. 6.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// Problem size.
    pub n: usize,
    /// Sandy Bridge MKL SMP Linpack GFLOPS.
    pub snb_gflops: f64,
    /// KNC static look-ahead GFLOPS.
    pub static_gflops: f64,
    /// KNC dynamic scheduling GFLOPS.
    pub dynamic_gflops: f64,
}

/// The Fig. 6 native Linpack sweep.
pub fn fig6_series(sizes: &[usize]) -> Vec<Fig6Point> {
    let xeon = XeonModel::default();
    sizes
        .iter()
        .map(|&n| {
            let cfg = NativeConfig::new(n);
            let (dy, _) = simulate_dynamic_traced(&cfg, false);
            let (st, _) = simulate_static_traced(&cfg, false);
            Fig6Point {
                n,
                snb_gflops: xeon.hpl_gflops(n),
                static_gflops: st.gflops,
                dynamic_gflops: dy.gflops,
            }
        })
        .collect()
}

/// Default Fig. 6 sizes (1K to 30K, the 8 GB limit).
pub fn fig6_default_sizes() -> Vec<usize> {
    vec![
        1024, 2048, 4096, 6144, 8192, 10240, 12288, 16384, 20480, 24576, 28672, 30720,
    ]
}

/// Renders Fig. 6.
pub fn fig6_render() -> String {
    let mut t = TextTable::new(["N", "SNB MKL HPL", "KNC static", "KNC dynamic"]);
    for p in fig6_series(&fig6_default_sizes()) {
        t.row([
            p.n.to_string(),
            format!("{:.0}", p.snb_gflops),
            format!("{:.0}", p.static_gflops),
            format!("{:.0}", p.dynamic_gflops),
        ]);
    }
    t.render()
}

// ----------------------------------------------------------------- Fig. 7

/// The Fig. 7 Gantt charts for the 5K problem: `(static, dynamic)` ASCII
/// renderings plus per-kind totals.
pub fn fig7_gantt(width: usize) -> (String, String) {
    let cfg = NativeConfig::new(5120);
    let (st_rep, st_trace) = simulate_static_traced(&cfg, true);
    let (dy_rep, dy_trace) = simulate_dynamic_traced(&cfg, true);
    let render = |label: &str, rep: &phi_hpl::report::GigaflopsReport, trace: &phi_des::Trace| {
        let mut s = format!(
            "{label}: {:.0} GFLOPS ({:.1}%), {:.4}s\nlegend: P=DGETRF S=DLASWP T=DTRSM G=DGEMM .=barrier\n",
            rep.gflops,
            100.0 * rep.efficiency(),
            rep.time_s
        );
        s.push_str(&trace.gantt_ascii(width, rep.time_s));
        s.push_str("totals: ");
        for (k, v) in trace.totals() {
            s.push_str(&format!("{}={:.4}s ", k.label(), v));
        }
        s.push('\n');
        s
    };
    (
        render("static look-ahead (Fig. 7a)", &st_rep, &st_trace),
        render("dynamic scheduling (Fig. 7b)", &dy_rep, &dy_trace),
    )
}

// ----------------------------------------------------------------- Fig. 9

/// Summary of the Fig. 9 experiment (2×2 nodes, 2 cards, N = 84K).
#[derive(Clone, Debug)]
pub struct Fig9Summary {
    /// Exposure fraction of swap+DTRSM+U-bcast, early third, basic.
    pub basic_exposure: f64,
    /// Same for pipelined.
    pub pipelined_exposure: f64,
    /// Largest per-iteration time saving of pipelining.
    pub max_iteration_saving: f64,
    /// Per-iteration profiles (basic, pipelined).
    pub basic: Vec<phi_hpl::hybrid::IterationProfile>,
    /// See `basic`.
    pub pipelined: Vec<phi_hpl::hybrid::IterationProfile>,
}

/// Runs the Fig. 9 comparison.
pub fn fig9_summary() -> Fig9Summary {
    let mut cfg = HybridConfig::new(84_000, ProcessGrid::new(2, 2), 2);
    cfg.lookahead = Lookahead::Basic;
    let basic = simulate_cluster(&cfg, true);
    cfg.lookahead = Lookahead::Pipelined;
    let pipe = simulate_cluster(&cfg, true);

    let expo = |r: &phi_hpl::hybrid::ClusterResult| {
        let k = (r.iterations.len() / 3).max(1);
        let e: f64 = r.iterations[..k].iter().map(|i| i.three_exposed).sum();
        let t: f64 = r.iterations[..k].iter().map(|i| i.stage_time).sum();
        e / t
    };
    // Fig. 9c measures the saving "in the early and most time-consuming
    // iterations"; late, tiny stages have noisy ratios, so restrict to
    // the first (largest) third.
    let early = (basic.iterations.len() / 3).max(1);
    let max_saving = basic.iterations[..early]
        .iter()
        .zip(&pipe.iterations[..early])
        .map(|(b, p)| (b.stage_time - p.stage_time) / b.stage_time)
        .fold(0.0f64, f64::max);
    Fig9Summary {
        basic_exposure: expo(&basic),
        pipelined_exposure: expo(&pipe),
        max_iteration_saving: max_saving,
        basic: basic.iterations,
        pipelined: pipe.iterations,
    }
}

/// Renders the Fig. 9 per-iteration profile (sampled every 8 stages).
pub fn fig9_render() -> String {
    let s = fig9_summary();
    let mut t = TextTable::new([
        "trailing N",
        "basic t(s)",
        "basic exp",
        "pipe t(s)",
        "pipe exp",
        "saving",
    ]);
    for (b, p) in s.basic.iter().zip(&s.pipelined).step_by(8) {
        t.row([
            b.trailing_n.to_string(),
            format!("{:.3}", b.stage_time),
            format!("{:.1}%", 100.0 * b.three_exposed / b.stage_time),
            format!("{:.3}", p.stage_time),
            format!("{:.1}%", 100.0 * p.three_exposed / p.stage_time),
            format!(
                "{:.1}%",
                100.0 * (b.stage_time - p.stage_time) / b.stage_time
            ),
        ]);
    }
    format!(
        "{}\nearly-third exposure: basic {:.1}% (paper: >=13%), pipelined {:.1}% (paper: <3%)\n\
         max per-iteration saving: {:.1}% (paper: up to 11%)\n",
        t.render(),
        100.0 * s.basic_exposure,
        100.0 * s.pipelined_exposure,
        100.0 * s.max_iteration_saving
    )
}

// ---------------------------------------------------------------- Fig. 11

/// One point of Fig. 11.
#[derive(Clone, Copy, Debug)]
pub struct Fig11Point {
    /// Matrix dimension (M = N, Kt = 1200).
    pub n: usize,
    /// Single-card offload DGEMM GFLOPS / efficiency (vs 61-core peak).
    pub one_card_gflops: f64,
    /// See `one_card_gflops`.
    pub one_card_eff: f64,
    /// Dual-card GFLOPS / efficiency (vs 2×61-core peak).
    pub two_card_gflops: f64,
    /// See `two_card_gflops`.
    pub two_card_eff: f64,
}

/// The Fig. 11 offload-DGEMM sweep.
pub fn fig11_series(sizes: &[usize]) -> Vec<Fig11Point> {
    let model = OffloadModel::default();
    let peak1 = model.card.chip.full_peak_gflops(Precision::F64);
    sizes
        .iter()
        .map(|&n| {
            let one = model.simulate(n, n, 1, 0.0);
            let two = model.simulate(n, n, 2, 0.0);
            Fig11Point {
                n,
                one_card_gflops: one.gflops,
                one_card_eff: one.gflops / peak1,
                two_card_gflops: two.gflops,
                two_card_eff: two.gflops / (2.0 * peak1),
            }
        })
        .collect()
}

/// Default Fig. 11 sizes.
pub fn fig11_default_sizes() -> Vec<usize> {
    vec![
        10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000, 82_000,
    ]
}

/// Renders Fig. 11.
pub fn fig11_render() -> String {
    let mut t = TextTable::new([
        "M=N",
        "1 card GF",
        "1 card eff",
        "2 cards GF",
        "2 cards eff",
    ]);
    for p in fig11_series(&fig11_default_sizes()) {
        t.row([
            p.n.to_string(),
            format!("{:.0}", p.one_card_gflops),
            format!("{:.1}%", 100.0 * p.one_card_eff),
            format!("{:.0}", p.two_card_gflops),
            format!("{:.1}%", 100.0 * p.two_card_eff),
        ]);
    }
    t.render()
}

// --------------------------------------------------------------- Table III

/// One row of Table III.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Human-readable system description.
    pub system: String,
    /// Problem size.
    pub n: usize,
    /// Process rows.
    pub p: usize,
    /// Process columns.
    pub q: usize,
    /// Our TFLOPS.
    pub tflops: f64,
    /// Our efficiency.
    pub eff: f64,
    /// Paper's TFLOPS.
    pub paper_tflops: f64,
    /// Paper's efficiency (fraction).
    pub paper_eff: f64,
}

/// Runs every row of Table III.
pub fn table3_rows() -> Vec<Table3Row> {
    struct Spec {
        label: &'static str,
        n: usize,
        p: usize,
        q: usize,
        cards: usize,
        la: Lookahead,
        mem: f64,
        paper_tf: f64,
        paper_eff: f64,
    }
    let rows = [
        // CPU-only MKL MP Linpack.
        Spec {
            label: "Sandy Bridge EP, 64GB",
            n: 84_000,
            p: 1,
            q: 1,
            cards: 0,
            la: Lookahead::Basic,
            mem: 64.0,
            paper_tf: 0.29,
            paper_eff: 0.864,
        },
        Spec {
            label: "Sandy Bridge EP, 64GB",
            n: 168_000,
            p: 2,
            q: 2,
            cards: 0,
            la: Lookahead::Basic,
            mem: 64.0,
            paper_tf: 1.10,
            paper_eff: 0.828,
        },
        // One card.
        Spec {
            label: "no pipeline, 1 card, 64GB",
            n: 84_000,
            p: 1,
            q: 1,
            cards: 1,
            la: Lookahead::Basic,
            mem: 64.0,
            paper_tf: 0.99,
            paper_eff: 0.710,
        },
        Spec {
            label: "pipeline, 1 card, 64GB",
            n: 84_000,
            p: 1,
            q: 1,
            cards: 1,
            la: Lookahead::Pipelined,
            mem: 64.0,
            paper_tf: 1.12,
            paper_eff: 0.798,
        },
        Spec {
            label: "no pipeline, 1 card, 64GB",
            n: 168_000,
            p: 2,
            q: 2,
            cards: 1,
            la: Lookahead::Basic,
            mem: 64.0,
            paper_tf: 3.88,
            paper_eff: 0.691,
        },
        Spec {
            label: "pipeline, 1 card, 64GB",
            n: 168_000,
            p: 2,
            q: 2,
            cards: 1,
            la: Lookahead::Pipelined,
            mem: 64.0,
            paper_tf: 4.36,
            paper_eff: 0.776,
        },
        Spec {
            label: "no pipeline, 1 card, 64GB",
            n: 825_000,
            p: 10,
            q: 10,
            cards: 1,
            la: Lookahead::Basic,
            mem: 64.0,
            paper_tf: 95.2,
            paper_eff: 0.677,
        },
        Spec {
            label: "pipeline, 1 card, 64GB",
            n: 825_000,
            p: 10,
            q: 10,
            cards: 1,
            la: Lookahead::Pipelined,
            mem: 64.0,
            paper_tf: 107.0,
            paper_eff: 0.761,
        },
        // Two cards.
        Spec {
            label: "no pipeline, 2 cards, 64GB",
            n: 84_000,
            p: 1,
            q: 1,
            cards: 2,
            la: Lookahead::Basic,
            mem: 64.0,
            paper_tf: 1.66,
            paper_eff: 0.682,
        },
        Spec {
            label: "pipeline, 2 cards, 64GB",
            n: 84_000,
            p: 1,
            q: 1,
            cards: 2,
            la: Lookahead::Pipelined,
            mem: 64.0,
            paper_tf: 1.87,
            paper_eff: 0.766,
        },
        Spec {
            label: "no pipeline, 2 cards, 64GB",
            n: 166_000,
            p: 2,
            q: 2,
            cards: 2,
            la: Lookahead::Basic,
            mem: 64.0,
            paper_tf: 6.36,
            paper_eff: 0.650,
        },
        Spec {
            label: "pipeline, 2 cards, 64GB",
            n: 166_000,
            p: 2,
            q: 2,
            cards: 2,
            la: Lookahead::Pipelined,
            mem: 64.0,
            paper_tf: 7.15,
            paper_eff: 0.731,
        },
        Spec {
            label: "no pipeline, 2 cards, 64GB",
            n: 822_000,
            p: 10,
            q: 10,
            cards: 2,
            la: Lookahead::Basic,
            mem: 64.0,
            paper_tf: 156.5,
            paper_eff: 0.640,
        },
        Spec {
            label: "pipeline, 2 cards, 64GB",
            n: 822_000,
            p: 10,
            q: 10,
            cards: 2,
            la: Lookahead::Pipelined,
            mem: 64.0,
            paper_tf: 175.8,
            paper_eff: 0.719,
        },
        // Doubled host memory.
        Spec {
            label: "pipeline, 1 card, 128GB",
            n: 242_000,
            p: 2,
            q: 2,
            cards: 1,
            la: Lookahead::Pipelined,
            mem: 128.0,
            paper_tf: 4.42,
            paper_eff: 0.796,
        },
    ];
    rows.iter()
        .map(|s| {
            let mut cfg = HybridConfig::new(s.n, ProcessGrid::new(s.p, s.q), s.cards);
            cfg.lookahead = s.la;
            cfg.host_mem_gib = s.mem;
            let r = simulate_cluster(&cfg, false);
            Table3Row {
                system: s.label.to_string(),
                n: s.n,
                p: s.p,
                q: s.q,
                tflops: r.report.gflops / 1e3,
                eff: r.report.efficiency(),
                paper_tflops: s.paper_tf,
                paper_eff: s.paper_eff,
            }
        })
        .collect()
}

/// Renders Table III.
pub fn table3_render() -> String {
    let mut t = TextTable::new([
        "system",
        "N",
        "P",
        "Q",
        "TFLOPS",
        "eff",
        "paper TF",
        "paper eff",
    ]);
    for r in table3_rows() {
        t.row([
            r.system.clone(),
            r.n.to_string(),
            r.p.to_string(),
            r.q.to_string(),
            format!("{:.2}", r.tflops),
            format!("{:.1}%", 100.0 * r.eff),
            format!("{:.2}", r.paper_tflops),
            format!("{:.1}%", 100.0 * r.paper_eff),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_tracks_paper_within_half_point() {
        for r in table2_rows() {
            assert!((r.dp_eff - r.paper_dp_eff).abs() < 0.005, "k={}", r.k);
            assert!((r.sp_eff - r.paper_sp_eff).abs() < 0.005, "k={}", r.k);
        }
    }

    #[test]
    fn fig2_kernel2_wins() {
        let rows = fig2_rows();
        assert_eq!(rows.len(), 2);
        let k1 = &rows[0];
        let k2 = &rows[1];
        assert!(k1.theoretical > k2.theoretical);
        assert!(k2.steady > k1.steady);
        assert_eq!(k2.fill_stalls, 0);
    }

    #[test]
    fn fig4_ordering_holds() {
        // KNC kernel > KNC dgemm (packing) > SNB, at every size ≥ 2K.
        for p in fig4_series(&[2000, 10_000, 28_000]) {
            assert!(p.knc_kernel_gflops >= p.knc_dgemm_gflops, "n={}", p.n);
            assert!(p.knc_dgemm_gflops > p.snb_gflops, "n={}", p.n);
        }
    }

    #[test]
    fn fig6_dynamic_dominates_and_both_converge() {
        let pts = fig6_series(&[4096, 6144, 30_720]);
        for p in &pts {
            assert!(p.dynamic_gflops >= p.static_gflops * 0.99, "n={}", p.n);
            assert!(p.dynamic_gflops > p.snb_gflops, "KNC beats the host");
        }
        let last = pts.last().unwrap();
        assert!((last.dynamic_gflops - 832.0).abs() < 20.0);
        // In the crossover region (≈8K) the schemes are within 10% of
        // each other, converging again at 30K.
        let mid = &fig6_series(&[8192])[0];
        let ratio = mid.dynamic_gflops / mid.static_gflops;
        assert!((0.90..1.15).contains(&ratio), "crossover ratio {ratio:.3}");
    }

    #[test]
    fn fig7_charts_nonempty() {
        let (st, dy) = fig7_gantt(80);
        assert!(st.contains('P') && st.contains('G'));
        assert!(dy.contains('P') && dy.contains('G'));
    }

    #[test]
    fn fig9_savings_band() {
        let s = fig9_summary();
        assert!(s.basic_exposure > 0.10);
        assert!(s.pipelined_exposure < 0.03);
        // "Up to 11% can be saved per iteration due to swapping pipeline."
        assert!(
            (0.06..0.30).contains(&s.max_iteration_saving),
            "max saving {:.3}",
            s.max_iteration_saving
        );
    }

    #[test]
    fn fig11_82k_points() {
        let pts = fig11_series(&[82_000]);
        assert!((pts[0].one_card_eff - 0.854).abs() < 0.02);
        assert!((pts[0].two_card_eff - 0.83).abs() < 0.025);
    }

    #[test]
    fn table3_every_row_within_tolerance() {
        for r in table3_rows() {
            let d = (r.eff - r.paper_eff).abs();
            assert!(
                d < 0.05,
                "{} N={}: ours {:.3} vs paper {:.3}",
                r.system,
                r.n,
                r.eff,
                r.paper_eff
            );
        }
    }

    #[test]
    fn table3_orderings_match_paper() {
        let rows = table3_rows();
        // Pipelining beats no-pipelining on every paired row.
        for pair in rows.windows(2) {
            if pair[0].system.starts_with("no pipeline")
                && pair[1].system.starts_with("pipeline")
                && pair[0].n == pair[1].n
            {
                assert!(pair[1].eff > pair[0].eff, "N={}", pair[0].n);
            }
        }
        // Cluster efficiency below single node for the same config.
        let single = rows
            .iter()
            .find(|r| r.system == "pipeline, 1 card, 64GB" && r.p == 1)
            .unwrap();
        let cluster = rows
            .iter()
            .find(|r| r.system == "pipeline, 1 card, 64GB" && r.p == 10)
            .unwrap();
        assert!(cluster.eff < single.eff);
    }

    #[test]
    fn renders_are_nonempty() {
        assert!(table1_render().contains("STREAM"));
        assert!(table2_render().contains("89"));
        assert!(fig2_render().contains("Kernel2"));
        assert!(fig4_render().lines().count() > 20);
        assert!(fig11_render().contains("82000"));
    }
}
